//! Criterion: the ε auto-configuration (Algorithm 1) — k-NN queries,
//! spline smoothing and Kneedle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cluster::autoconf::{auto_configure, AutoConfig};
use dissim::{dissimilarity, CondensedMatrix, DissimParams};
use fieldclust::truth::truth_segmentation;
use fieldclust::SegmentStore;
use protocols::{corpus, Protocol};

fn matrix_for(n_messages: usize) -> CondensedMatrix {
    let trace = corpus::build_trace(Protocol::Ntp, n_messages, 5);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let seg = truth_segmentation(&trace, &gt);
    let store = SegmentStore::collect(&trace, &seg, 2);
    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
    let params = DissimParams::default();
    CondensedMatrix::build_parallel(values.len(), 4, |i, j| {
        dissimilarity(values[i], values[j], &params)
    })
}

fn bench_autoconf(c: &mut Criterion) {
    let mut group = c.benchmark_group("autoconf");
    group.sample_size(10);
    for n_messages in [25usize, 50, 100] {
        let m = matrix_for(n_messages);
        group.bench_with_input(
            BenchmarkId::from_parameter(m.len()),
            &m,
            |b, m| b.iter(|| auto_configure(m, &AutoConfig::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_autoconf);
criterion_main!(benches);
