//! Criterion: the ε auto-configuration (Algorithm 1) — k-NN queries,
//! spline smoothing and Kneedle.

use cluster::autoconf::{auto_configure, AutoConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::CondensedMatrix;
use fieldclust::truth::truth_segmentation;
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use protocols::{corpus, Protocol};

fn matrix_for(n_messages: usize) -> CondensedMatrix {
    let trace = corpus::build_trace(Protocol::Ntp, n_messages, 5);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let mut session = AnalysisSession::from_owned(trace, FieldTypeClusterer::default());
    session.set_segmentation(truth_segmentation(session.trace(), &gt));
    session.matrix().expect("enough segments").clone()
}

fn bench_autoconf(c: &mut Criterion) {
    let mut group = c.benchmark_group("autoconf");
    group.sample_size(10);
    for n_messages in [25usize, 50, 100] {
        let m = matrix_for(n_messages);
        group.bench_with_input(BenchmarkId::from_parameter(m.len()), &m, |b, m| {
            b.iter(|| auto_configure(m, &AutoConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_autoconf);
criterion_main!(benches);
