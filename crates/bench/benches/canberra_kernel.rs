//! Criterion: the Canberra kernel ladder — naive scalar closure build,
//! byte-pair LUT, LUT + early-abandon sliding windows, and the full
//! length-bucketed `build_segments` — on realistic mixed-length segment
//! corpora at u = 500 / 1000 / 2000 unique segments.
//!
//! A second, sampled group extends the ladder to u = 5000 / 10 000 /
//! 50 000: instead of the full O(u²) triangle each iteration evaluates
//! a fixed budget of random pairs drawn from the large corpus (plus the
//! opt-in SWAR kernel variant), keeping every rung time-boxed while
//! still exercising the large-u length mix and cache behavior.
//!
//! Every rung is bit-identical to the one below it (pinned by the
//! property tests in `dissim`); this bench isolates what each
//! transformation buys. Medians are recorded in
//! `BENCH_canberra_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::kernel::{dissimilarity_kernel, dissimilarity_lut, dissimilarity_swar};
use dissim::{dissimilarity, CanberraLut, CondensedMatrix, DissimParams};
use rand::{Rng, SeedableRng, StdRng};

/// A segment corpus mimicking a segmented binary-protocol trace: short
/// ids and flags, 4-byte counters sharing high bytes, 8-byte timestamps
/// sharing a 4-byte epoch prefix, 16-byte addresses/digests, and
/// variable-length printable names (DNS labels, hostnames) — many
/// distinct lengths, so mixed-length sliding-window pairs dominate.
fn mixed_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut segments = Vec::with_capacity(u);
    for _ in 0..u {
        let seg: Vec<u8> = match rng.gen_range(0usize..10) {
            // 2-byte message ids.
            0 | 1 => vec![rng.gen_range(0u8..8), rng.gen()],
            // 4-byte counters with shared high bytes.
            2 | 3 => vec![0x00, 0x01, rng.gen(), rng.gen()],
            // 8-byte timestamps sharing an epoch prefix.
            4..=6 => {
                let mut ts = vec![0xD2, 0x3D, 0x19, rng.gen_range(0u8..4)];
                ts.extend((0..4).map(|_| rng.gen::<u8>()));
                ts
            }
            // 16-byte addresses / digests.
            7 => (0..16).map(|_| rng.gen::<u8>()).collect(),
            // Variable-length printable names.
            _ => {
                let len = rng.gen_range(3usize..32);
                (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
            }
        };
        segments.push(seg);
    }
    segments
}

fn bench_kernel_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("canberra_kernel");
    group.sample_size(10);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();
    for u in [500usize, 1000, 2000] {
        let segments = mixed_segments(u, 7);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();

        group.bench_with_input(BenchmarkId::new("naive", u), &values, |b, values| {
            b.iter(|| {
                CondensedMatrix::build_parallel(values.len(), threads, |i, j| {
                    dissimilarity(values[i], values[j], &params)
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("lut", u), &values, |b, values| {
            let lut = CanberraLut::global();
            b.iter(|| {
                CondensedMatrix::build_parallel(values.len(), threads, |i, j| {
                    dissimilarity_lut(values[i], values[j], &params, lut)
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("lut_early_abandon", u),
            &values,
            |b, values| {
                let lut = CanberraLut::global();
                b.iter(|| {
                    CondensedMatrix::build_parallel(values.len(), threads, |i, j| {
                        dissimilarity_kernel(values[i], values[j], &params, lut)
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build_segments", u),
            &values,
            |b, values| b.iter(|| CondensedMatrix::build_segments(values, &params, threads)),
        );
    }
    group.finish();
}

/// Pair evaluations per iteration of the sampled large-u rungs.
const PAIR_BUDGET: usize = 500_000;

fn bench_kernel_sampled(c: &mut Criterion) {
    let mut group = c.benchmark_group("canberra_kernel_sampled");
    group.sample_size(10);
    let params = DissimParams::default();
    for u in [5_000usize, 10_000, 50_000] {
        let segments = mixed_segments(u, 7);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        // A fixed, deterministic off-diagonal pair sample: the same
        // PAIR_BUDGET evaluations for every kernel variant.
        let mut rng = StdRng::seed_from_u64(13);
        let pairs: Vec<(u32, u32)> = (0..PAIR_BUDGET)
            .map(|_| {
                let i = rng.gen_range(0..u as u32);
                let j = rng.gen_range(0..u as u32 - 1);
                (i, if j >= i { j + 1 } else { j })
            })
            .collect();
        let eval = |f: &dyn Fn(&[u8], &[u8]) -> f64| -> f64 {
            pairs
                .iter()
                .map(|&(i, j)| f(values[i as usize], values[j as usize]))
                .sum()
        };

        group.bench_with_input(BenchmarkId::new("naive", u), &values, |b, _| {
            b.iter(|| eval(&|a, v| dissimilarity(a, v, &params)))
        });
        let lut = CanberraLut::global();
        group.bench_with_input(BenchmarkId::new("lut", u), &values, |b, _| {
            b.iter(|| eval(&|a, v| dissimilarity_lut(a, v, &params, lut)))
        });
        group.bench_with_input(BenchmarkId::new("lut_early_abandon", u), &values, |b, _| {
            b.iter(|| eval(&|a, v| dissimilarity_kernel(a, v, &params, lut)))
        });
        group.bench_with_input(BenchmarkId::new("swar", u), &values, |b, _| {
            b.iter(|| eval(&|a, v| dissimilarity_swar(a, v, &params, lut)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_ladder, bench_kernel_sampled);
criterion_main!(benches);
