//! Criterion: alternative clustering backends (DBSCAN vs OPTICS vs
//! HDBSCAN) and the MDS embedding, over identical inputs.

use cluster::dbscan::dbscan;
use cluster::hdbscan::{hdbscan, HdbscanParams};
use cluster::optics::optics;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::CondensedMatrix;
use mathkit::mds::classical_mds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(n: usize) -> CondensedMatrix {
    let mut rng = StdRng::seed_from_u64(11);
    let pts: Vec<f64> = (0..n)
        .map(|i| (i % 6) as f64 * 8.0 + rng.gen_range(-0.3..0.3))
        .collect();
    CondensedMatrix::build(n, |i, j| (pts[i] - pts[j]).abs())
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_backends");
    group.sample_size(10);
    for n in [100usize, 300] {
        let m = blobs(n);
        group.bench_with_input(BenchmarkId::new("dbscan", n), &m, |b, m| {
            b.iter(|| dbscan(m, 0.5, 5))
        });
        group.bench_with_input(BenchmarkId::new("optics_cut", n), &m, |b, m| {
            b.iter(|| optics(m, f64::INFINITY, 5).extract_dbscan(0.5))
        });
        group.bench_with_input(BenchmarkId::new("hdbscan", n), &m, |b, m| {
            b.iter(|| hdbscan(m, &HdbscanParams::default()))
        });
    }
    group.finish();
}

fn bench_mds(c: &mut Criterion) {
    let mut group = c.benchmark_group("mds");
    group.sample_size(10);
    for n in [50usize, 150] {
        let m = blobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| classical_mds(m.len(), 2, |i, j| m.get(i, j)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_mds);
criterion_main!(benches);
