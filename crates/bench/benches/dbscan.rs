//! Criterion: DBSCAN and refinement over precomputed matrices, plus the
//! neighbor-index ε-region query path against the matrix scan.

use cluster::dbscan::{dbscan, dbscan_with_index};
use cluster::refine::{merge_clusters, split_clusters, RefineParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::{CondensedMatrix, DissimArtifact};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(n: usize) -> CondensedMatrix {
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<f64> = (0..n)
        .map(|i| (i % 8) as f64 * 5.0 + rng.gen_range(-0.2..0.2))
        .collect();
    CondensedMatrix::build(n, |i, j| (pts[i] - pts[j]).abs())
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    for n in [100usize, 400, 1000] {
        let m = blobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| dbscan(m, 0.5, 5))
        });
    }
    group.finish();
}

/// Matrix-scan DBSCAN vs the `NeighborIndex`-backed variant. The two
/// produce identical clusterings (pinned by tests in `cluster`); the
/// question is the ε-region query cost: a full-row scan per query vs a
/// binary search on the presorted neighbor list. The index variant is
/// benchmarked both with a prebuilt index (the session reuses one index
/// across autoconf, DBSCAN, and refinement, so clustering itself never
/// pays the build) and with the O(n² log n) build included (plus a
/// matrix clone, as `DissimArtifact` owns its matrix).
fn bench_neighbor_index(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("dbscan_region_query");
    for n in [1000usize, 2000, 3000] {
        let m = blobs(n);
        let mut artifact = DissimArtifact::from_matrix(m.clone(), threads);
        artifact.neighbors();
        group.bench_with_input(BenchmarkId::new("matrix_scan", n), &m, |b, m| {
            b.iter(|| dbscan(m, 0.5, 5))
        });
        group.bench_with_input(BenchmarkId::new("neighbor_index", n), &artifact, |b, a| {
            b.iter(|| dbscan_with_index(a.neighbors_built().expect("prebuilt"), 0.5, 5))
        });
        group.bench_with_input(BenchmarkId::new("index_build_and_dbscan", n), &m, |b, m| {
            b.iter(|| {
                let mut a = DissimArtifact::from_matrix(m.clone(), threads);
                dbscan_with_index(a.neighbors(), 0.5, 5)
            })
        });
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    for n in [100usize, 400] {
        let m = blobs(n);
        let clustering = dbscan(&m, 0.5, 5);
        let occurrences: Vec<usize> = (0..n).map(|i| 1 + i % 7).collect();
        group.bench_with_input(BenchmarkId::new("merge", n), &m, |b, m| {
            b.iter(|| merge_clusters(&clustering, m, &RefineParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("split", n), &clustering, |b, cl| {
            b.iter(|| split_clusters(cl, &occurrences, &RefineParams::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan, bench_neighbor_index, bench_refine);
criterion_main!(benches);
