//! Criterion: DBSCAN and refinement over precomputed matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cluster::dbscan::dbscan;
use cluster::refine::{merge_clusters, split_clusters, RefineParams};
use dissim::CondensedMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blobs(n: usize) -> CondensedMatrix {
    let mut rng = StdRng::seed_from_u64(7);
    let pts: Vec<f64> = (0..n)
        .map(|i| (i % 8) as f64 * 5.0 + rng.gen_range(-0.2..0.2))
        .collect();
    CondensedMatrix::build(n, |i, j| (pts[i] - pts[j]).abs())
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan");
    for n in [100usize, 400, 1000] {
        let m = blobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| dbscan(m, 0.5, 5))
        });
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    for n in [100usize, 400] {
        let m = blobs(n);
        let clustering = dbscan(&m, 0.5, 5);
        let occurrences: Vec<usize> = (0..n).map(|i| 1 + i % 7).collect();
        group.bench_with_input(BenchmarkId::new("merge", n), &m, |b, m| {
            b.iter(|| merge_clusters(&clustering, m, &RefineParams::default()))
        });
        group.bench_with_input(BenchmarkId::new("split", n), &clustering, |b, cl| {
            b.iter(|| split_clusters(cl, &occurrences, &RefineParams::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan, bench_refine);
criterion_main!(benches);
