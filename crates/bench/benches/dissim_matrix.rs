//! Criterion: pairwise Canberra dissimilarity matrix construction — the
//! pipeline's dominant cost — across trace sizes and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::{dissimilarity, CondensedMatrix, DissimArtifact, DissimParams};
use fieldclust::truth::truth_segmentation;
use fieldclust::SegmentStore;
use protocols::{corpus, Protocol};

fn segments_for(n_messages: usize) -> Vec<Vec<u8>> {
    let trace = corpus::build_trace(Protocol::Ntp, n_messages, 1);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let seg = truth_segmentation(&trace, &gt);
    let store = SegmentStore::collect(&trace, &seg, 2);
    store.segments.into_iter().map(|s| s.value).collect()
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissim_matrix");
    group.sample_size(10);
    for n_messages in [25usize, 50, 100] {
        let values = segments_for(n_messages);
        let params = DissimParams::default();
        group.bench_with_input(
            BenchmarkId::new("serial", values.len()),
            &values,
            |b, values| {
                b.iter(|| {
                    CondensedMatrix::build(values.len(), |i, j| {
                        dissimilarity(&values[i], &values[j], &params)
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", values.len()),
            &values,
            |b, values| {
                b.iter(|| {
                    DissimArtifact::compute(values.len(), 4, |i, j| {
                        dissimilarity(&values[i], &values[j], &params)
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernel", values.len()),
            &values,
            |b, values| {
                // The structure-aware kernel build the session uses
                // (bit-identical to the closure builds above).
                let refs: Vec<&[u8]> = values.iter().map(|v| &v[..]).collect();
                b.iter(|| DissimArtifact::compute_segments(&refs, &params, 4))
            },
        );
    }
    group.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissim_pair");
    let params = DissimParams::default();
    let a8 = [0xD2u8, 0x3D, 0x19, 0x03, 0xB3, 0xFC, 0xDA, 0xB1];
    let b8 = [0xD2u8, 0x3D, 0x19, 0x7A, 0x01, 0x58, 0x10, 0x62];
    group.bench_function("equal_len_8", |b| {
        b.iter(|| {
            dissimilarity(
                std::hint::black_box(&a8),
                std::hint::black_box(&b8),
                &params,
            )
        })
    });
    let long: Vec<u8> = (0..64).collect();
    group.bench_function("mixed_len_8_vs_64", |b| {
        b.iter(|| {
            dissimilarity(
                std::hint::black_box(&a8),
                std::hint::black_box(&long),
                &params,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matrix, bench_pairwise);
criterion_main!(benches);
