//! Criterion: the end-to-end pipeline (segment → dissimilarity →
//! auto-configure → cluster → refine) per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fieldclust::truth::truth_segmentation;
use fieldclust::FieldTypeClusterer;
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::Segmenter;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for protocol in [Protocol::Ntp, Protocol::Dns, Protocol::Au] {
        // AU messages carry hundreds of measurement segments; keep its
        // trace tiny so one iteration stays in the tens of milliseconds.
        let n = if protocol == Protocol::Au { 10 } else { 50 };
        let trace = corpus::build_trace(protocol, n, 9);
        let gt = corpus::ground_truth(protocol, &trace);
        let truth_seg = truth_segmentation(&trace, &gt);
        let heur_seg = Nemesys::default().segment_trace(&trace).unwrap();
        let clusterer = FieldTypeClusterer::default();
        group.bench_with_input(
            BenchmarkId::new("truth", protocol),
            &(&trace, &truth_seg),
            |b, (t, s)| b.iter(|| clusterer.cluster_trace(t, s).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("nemesys", protocol),
            &(&trace, &heur_seg),
            |b, (t, s)| b.iter(|| clusterer.cluster_trace(t, s).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
