//! Criterion: the three heuristic segmenters across protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocols::{corpus, Protocol};
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::Segmenter;

fn bench_segmenters(c: &mut Criterion) {
    let mut group = c.benchmark_group("segmenters");
    group.sample_size(10);
    for protocol in [Protocol::Ntp, Protocol::Dns, Protocol::Dhcp] {
        let trace = corpus::build_trace(protocol, 50, 3);
        group.bench_with_input(BenchmarkId::new("nemesys", protocol), &trace, |b, t| {
            b.iter(|| Nemesys::default().segment_trace(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("csp", protocol), &trace, |b, t| {
            b.iter(|| Csp::default().segment_trace(t).unwrap())
        });
    }
    // Netzob is quadratic; bench on small traces only.
    for protocol in [Protocol::Ntp, Protocol::Dns] {
        let trace = corpus::build_trace(protocol, 25, 3);
        group.bench_with_input(BenchmarkId::new("netzob", protocol), &trace, |b, t| {
            b.iter(|| Netzob::default().segment_trace(t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segmenters);
criterion_main!(benches);
