//! Criterion: the artifact-store ladder — cold matrix build, warm
//! artifact load, incremental extension, and cold vs warm
//! `AnalysisSession::finish` — at u = 500 / 1000 / 2000 unique
//! segments.
//!
//! `cold_matrix` is what every cache-less run pays for the
//! dissimilarity stage; `warm_artifact` replaces it with one store
//! read; `extend` replaces it with the incremental kernel over a
//! cached prefix (here u − 200 of u segments). `session_cold` vs
//! `session_warm` measures the full `analyze` pipeline with and
//! without a populated `--cache-dir` — the warm path never touches the
//! matrix, it restores the clustering from the small stage artifacts.
//! All paths are bit-identical to the cold build (pinned by
//! fieldclust's session-equivalence tests). Medians are recorded in
//! `BENCH_store.json`.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::{CondensedMatrix, DissimArtifact, DissimParams};
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use rand::{Rng, SeedableRng, StdRng};
use segment::{MessageSegments, TraceSegmentation};
use std::path::PathBuf;
use store::{ArtifactStore, Key, KeyDigest, Kind};
use trace::{Message, Trace};

/// Exactly `u` distinct segments (each at least two bytes, so all are
/// clusterable) drawn from the same mixed-length corpus shapes as the
/// `canberra_kernel` bench.
fn unique_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut segments = Vec::with_capacity(u);
    while segments.len() < u {
        let seg: Vec<u8> = match rng.gen_range(0usize..10) {
            0 | 1 => vec![rng.gen_range(0u8..8), rng.gen()],
            2 | 3 => vec![0x00, 0x01, rng.gen(), rng.gen()],
            4..=6 => {
                let mut ts = vec![0xD2, 0x3D, 0x19, rng.gen_range(0u8..4)];
                ts.extend((0..4).map(|_| rng.gen::<u8>()));
                ts
            }
            7 => (0..16).map(|_| rng.gen::<u8>()).collect(),
            _ => {
                let len = rng.gen_range(3usize..32);
                (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
            }
        };
        if seen.insert(seg.clone()) {
            segments.push(seg);
        }
    }
    segments
}

/// A trace with one message per segment, pre-segmented whole-message —
/// so the session's unique-segment count is exactly `segments.len()`.
fn segment_trace(segments: &[Vec<u8>]) -> (Trace, TraceSegmentation) {
    let messages: Vec<Message> = segments
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Message::builder(Bytes::from(s.clone()))
                .timestamp_micros(i as u64)
                .build()
        })
        .collect();
    let seg = TraceSegmentation {
        messages: segments
            .iter()
            .map(|s| MessageSegments::from_cuts(s.len(), &[]))
            .collect(),
    };
    (Trace::new("store-bench", messages), seg)
}

fn bench_key(u: usize) -> Key {
    let mut d = KeyDigest::new(Kind::DISSIM);
    d.str("store-warm-bench");
    d.usize(u);
    d.finish()
}

fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("fieldclust-store-bench-{}", std::process::id()))
}

fn bench_store_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_warm");
    group.sample_size(10);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();
    let root = bench_root();

    for u in [500usize, 1000, 2000] {
        let segments = unique_segments(u, 7);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();

        // What every cache-less run pays for the dissimilarity stage.
        group.bench_with_input(BenchmarkId::new("cold_matrix", u), &values, |b, values| {
            b.iter(|| CondensedMatrix::build_segments(values, &params, threads))
        });

        // Warm: one store read of the persisted matrix + neighbor index.
        let store = ArtifactStore::open(root.join(format!("warm-{u}"))).expect("open store");
        let key = bench_key(u);
        let mut artifact = DissimArtifact::from_matrix(
            CondensedMatrix::build_segments(&values, &params, threads),
            threads,
        );
        artifact.neighbors();
        assert!(store.put(&key, &artifact));
        group.bench_with_input(BenchmarkId::new("warm_artifact", u), &key, |b, key| {
            b.iter(|| store.get::<DissimArtifact>(key).expect("cache hit"))
        });

        // Incremental: splice a cached prefix (u - 200 segments) and
        // compute only the pairs touching the 200 appended segments.
        let prefix = CondensedMatrix::build_segments(&values[..u - 200], &params, threads);
        group.bench_with_input(BenchmarkId::new("extend", u), &values, |b, values| {
            b.iter(|| prefix.extend_segments(values, &params, threads))
        });

        // Full pipeline: AnalysisSession::finish without a store vs
        // warm-starting from a populated one.
        let (trace, seg) = segment_trace(&segments);
        group.bench_with_input(BenchmarkId::new("session_cold", u), &trace, |b, trace| {
            b.iter(|| {
                let mut session = AnalysisSession::new(trace, FieldTypeClusterer::default());
                session.set_segmentation(seg.clone());
                session.finish().expect("pipeline")
            })
        });

        let session_store =
            ArtifactStore::open(root.join(format!("session-{u}"))).expect("open store");
        // Populate the cache with one cold run, then measure warm runs.
        {
            let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
            session.set_store(session_store.clone());
            session.set_segmentation(seg.clone());
            session.finish().expect("pipeline");
        }
        group.bench_with_input(BenchmarkId::new("session_warm", u), &trace, |b, trace| {
            b.iter(|| {
                let mut session = AnalysisSession::new(trace, FieldTypeClusterer::default());
                session.set_store(session_store.clone());
                session.set_segmentation(seg.clone());
                session.finish().expect("pipeline")
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, bench_store_ladder);
criterion_main!(benches);
