//! Criterion: the tiled dissimilarity build and the clustering-stage
//! ladder — serial matrix scans vs the tiled build's merged k-NN table
//! plus the neighbor index — on the same mixed-length segment corpora
//! as `canberra_kernel` at u = 500 / 1000 / 2000 unique segments.
//!
//! The `cluster_stages` pair measures everything downstream of the
//! dissimilarity artifact (ε auto-configuration, weighted DBSCAN,
//! merge + split refinement): `serial_scan` drives each stage off raw
//! matrix scans, `tiled_indexed` off the per-tile k-NN partials and the
//! neighbor index the tiled session keeps. Both are pinned
//! bit-identical (cluster unit tests + fieldclust session-equivalence
//! tests), so the ladder isolates pure wall-clock. Medians are
//! recorded in `BENCH_tiled.json`.
//!
//! A second, sampled group (`tiled_matrix_sampled`) extends the ladder
//! to u = 5000 / 10 000 / 50 000 without ever paying the full O(u²)
//! build: each iteration computes one 64-row strip of lower-triangle
//! rows starting at u/2 through the shared [`PairContext`] — exactly
//! the kernel work of one mid-matrix tile, whose cost scales with
//! `strip_rows × u/2` (linear in u), so the rungs stay time-boxed.

use cluster::autoconf::{auto_configure, auto_configure_with_knn, required_k_max, AutoConfig};
use cluster::dbscan::{dbscan_weighted, dbscan_weighted_parallel_with_index};
use cluster::refine::{merge_clusters, merge_clusters_parallel, split_clusters, RefineParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissim::{CondensedMatrix, DissimParams, KnnTable, NeighborIndex, TiledMatrix};
use rand::{Rng, SeedableRng, StdRng};

/// Same corpus shape as the `canberra_kernel` bench (see there).
fn mixed_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut segments = Vec::with_capacity(u);
    for _ in 0..u {
        let seg: Vec<u8> = match rng.gen_range(0usize..10) {
            0 | 1 => vec![rng.gen_range(0u8..8), rng.gen()],
            2 | 3 => vec![0x00, 0x01, rng.gen(), rng.gen()],
            4..=6 => {
                let mut ts = vec![0xD2, 0x3D, 0x19, rng.gen_range(0u8..4)];
                ts.extend((0..4).map(|_| rng.gen::<u8>()));
                ts
            }
            7 => (0..16).map(|_| rng.gen::<u8>()).collect(),
            _ => {
                let len = rng.gen_range(3usize..32);
                (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
            }
        };
        segments.push(seg);
    }
    segments
}

/// Occurrence weights mimicking a deduplicated trace: a few hot values,
/// a long tail of singletons.
fn occurrence_weights(u: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..u)
        .map(|_| {
            if rng.gen_range(0usize..10) == 0 {
                rng.gen_range(2usize..40)
            } else {
                1
            }
        })
        .collect()
}

struct Stage {
    matrix: CondensedMatrix,
    index: NeighborIndex,
    knn: KnnTable,
    weights: Vec<usize>,
    min_samples: usize,
}

fn prepare(u: usize, threads: usize) -> Stage {
    let segments = mixed_segments(u, 7);
    let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
    let params = DissimParams::default();
    let tiled = TiledMatrix::build_segments(&values, &params, 256, threads);
    let knn = tiled.knn_table(required_k_max(u), threads);
    let matrix = tiled.assemble();
    let index = NeighborIndex::build_parallel(&matrix, threads);
    let weights = occurrence_weights(u, 11);
    let total: usize = weights.iter().sum();
    let min_samples = ((total as f64).ln().round() as usize).max(2);
    Stage {
        matrix,
        index,
        knn,
        weights,
        min_samples,
    }
}

/// The serial baseline: every clustering stage scans matrix rows.
fn cluster_stages_scan(s: &Stage) -> u32 {
    let selected = auto_configure(&s.matrix, &AutoConfig::default()).expect("knee");
    let clustering = dbscan_weighted(&s.matrix, selected.epsilon, s.min_samples, &s.weights);
    let refined = split_clusters(
        &merge_clusters(&clustering, &s.matrix, &RefineParams::default()),
        &s.weights,
        &RefineParams::default(),
    );
    refined.n_clusters()
}

/// The tiled session's path: ε from the merged per-tile k-NN table,
/// DBSCAN and refinement from the neighbor index (parallel entries).
fn cluster_stages_indexed(s: &Stage, threads: usize) -> u32 {
    let selected = auto_configure_with_knn(&s.knn, &AutoConfig::default()).expect("knee");
    let clustering = dbscan_weighted_parallel_with_index(
        &s.index,
        selected.epsilon,
        s.min_samples,
        &s.weights,
        threads,
    );
    let refined = split_clusters(
        &merge_clusters_parallel(
            &clustering,
            &s.matrix,
            &s.index,
            &RefineParams::default(),
            threads,
        ),
        &s.weights,
        &RefineParams::default(),
    );
    refined.n_clusters()
}

fn bench_tiled_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_matrix");
    group.sample_size(10);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();
    for u in [500usize, 1000, 2000] {
        let segments = mixed_segments(u, 7);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();

        group.bench_with_input(
            BenchmarkId::new("build_monolithic", u),
            &values,
            |b, values| b.iter(|| CondensedMatrix::build_segments(values, &params, threads)),
        );
        group.bench_with_input(BenchmarkId::new("build_tiled", u), &values, |b, values| {
            b.iter(|| TiledMatrix::build_segments(values, &params, 256, threads))
        });

        let stage = prepare(u, threads);
        // Sanity: both chains must agree before we time them.
        assert_eq!(
            cluster_stages_scan(&stage),
            cluster_stages_indexed(&stage, threads)
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_stages_serial_scan", u),
            &stage,
            |b, s| b.iter(|| cluster_stages_scan(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_stages_tiled_indexed", u),
            &stage,
            |b, s| b.iter(|| cluster_stages_indexed(s, threads)),
        );
    }
    group.finish();
}

/// Rows per sampled mid-matrix strip.
const STRIP_ROWS: usize = 64;

fn bench_tiled_sampled(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_matrix_sampled");
    group.sample_size(10);
    let params = DissimParams::default();
    for u in [5_000usize, 10_000, 50_000] {
        let segments = mixed_segments(u, 7);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        let ctx = dissim::kernel::PairContext::new(&values, &params);
        let start = u / 2;
        let mut buf = vec![0.0f64; start + STRIP_ROWS];
        group.bench_with_input(BenchmarkId::new("tile_strip_mid", u), &values, |b, _| {
            b.iter(|| {
                let mut checksum = 0.0f64;
                for j in start..start + STRIP_ROWS {
                    ctx.fill_lower_row(j, &mut buf[..j]);
                    checksum += buf[..j].iter().sum::<f64>();
                }
                checksum
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiled_matrix, bench_tiled_sampled);
criterion_main!(benches);
