//! Ablation study over the design choices DESIGN.md calls out:
//!
//! 1. cluster refinement (merge + split) on/off,
//! 2. occurrence-weighted vs unweighted DBSCAN,
//! 3. the mixed-length Canberra penalty constant,
//! 4. the spline smoothing strength of the ε auto-configuration,
//! 5. DBSCAN vs an OPTICS ε-cut vs HDBSCAN as the clustering backend,
//! 6. content-aware segmentation vs naive fixed-width chunking.
//!
//! Run with: `cargo run --release -p bench --bin ablation`

use cluster::autoconf::{auto_configure, AutoConfig};
use cluster::dbscan::{dbscan, dbscan_weighted, Clustering, Label};
use cluster::hdbscan::{hdbscan_with_index, HdbscanParams};
use cluster::optics::optics_with_index;
use cluster::refine::{merge_clusters, split_clusters, RefineParams};
use dissim::{CondensedMatrix, DissimParams, NeighborIndex};
use evalkit::{pair_counts, ClusterMetrics};
use fieldclust::truth::{label_store, truth_segmentation};
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use protocols::{corpus, FieldKind, Protocol};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    protocol: String,
    variant: String,
    precision: f64,
    recall: f64,
    f_score: f64,
    clusters: u32,
    noise: usize,
}

struct Prepared {
    protocol: Protocol,
    labels: Vec<FieldKind>,
    weights: Vec<usize>,
    matrix: CondensedMatrix,
    index: NeighborIndex,
    min_samples: usize,
}

fn prepare(protocol: Protocol, n: usize, penalty: f64) -> Prepared {
    let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(protocol, &trace);
    let config = FieldTypeClusterer {
        dissim: DissimParams {
            length_penalty: penalty,
        },
        ..FieldTypeClusterer::default()
    };
    let mut session = AnalysisSession::from_owned(trace, config);
    session.set_segmentation(truth_segmentation(session.trace(), &gt));
    let labels = label_store(session.store().expect("enough segments"), &gt);
    let weights = session
        .store()
        .expect("enough segments")
        .occurrence_counts();
    let matrix = session.matrix().expect("enough segments").clone();
    // The session's neighbor index rides along so the OPTICS / HDBSCAN
    // variants query it instead of re-scanning matrix rows.
    let index = session.neighbors().expect("enough segments").clone();
    let total: usize = weights.iter().sum();
    let min_samples = ((total as f64).ln().round() as usize).max(2);
    Prepared {
        protocol,
        labels,
        weights,
        matrix,
        index,
        min_samples,
    }
}

fn score(p: &Prepared, clustering: &Clustering, variant: &str) -> AblationRow {
    let clusters: Vec<Vec<FieldKind>> = clustering
        .clusters()
        .iter()
        .map(|m| m.iter().map(|&i| p.labels[i]).collect())
        .collect();
    let noise: Vec<FieldKind> = clustering
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| p.labels[i])
        .collect();
    let m = ClusterMetrics::from_counts(&pair_counts(&clusters, &noise));
    AblationRow {
        protocol: p.protocol.to_string(),
        variant: variant.to_string(),
        precision: m.precision,
        recall: m.recall,
        f_score: m.f_score,
        clusters: clustering.n_clusters(),
        noise: noise.len(),
    }
}

fn print_row(r: &AblationRow) {
    println!(
        "{:6} {:34} P={:5.2} R={:5.2} F={:5.2} ({:3} clusters, {:4} noise)",
        r.protocol, r.variant, r.precision, r.recall, r.f_score, r.clusters, r.noise
    );
}

fn main() {
    let bench_start = std::time::Instant::now();
    let mut rows: Vec<AblationRow> = Vec::new();
    let cases = [
        (Protocol::Ntp, 1000),
        (Protocol::Dns, 1000),
        (Protocol::Smb, 100),
    ];

    println!(
        "ABLATION 1/2/5 — refinement, weighting, clustering backend (DBSCAN / OPTICS / HDBSCAN)"
    );
    for &(protocol, n) in &cases {
        let p = prepare(protocol, n, DissimParams::default().length_penalty);
        let eps = auto_configure(&p.matrix, &AutoConfig::default())
            .map(|s| s.epsilon)
            .unwrap_or_else(|_| p.matrix.mean().unwrap_or(0.5) / 2.0);

        // Full pipeline configuration (weighted + refinement).
        let weighted = dbscan_weighted(&p.matrix, eps, p.min_samples, &p.weights);
        let refined = split_clusters(
            &merge_clusters(&weighted, &p.matrix, &RefineParams::default()),
            &p.weights,
            &RefineParams::default(),
        );
        rows.push(score(&p, &refined, "full (weighted + refinement)"));
        print_row(rows.last().unwrap());

        rows.push(score(&p, &weighted, "no refinement"));
        print_row(rows.last().unwrap());

        let unweighted = dbscan(&p.matrix, eps, p.min_samples.min(p.matrix.len()));
        rows.push(score(&p, &unweighted, "unweighted DBSCAN"));
        print_row(rows.last().unwrap());

        let optics_cut = optics_with_index(&p.index, 1.0, p.min_samples).extract_dbscan(eps);
        rows.push(score(&p, &optics_cut, "OPTICS eps-cut (unweighted)"));
        print_row(rows.last().unwrap());

        let h = hdbscan_with_index(
            &p.matrix,
            &p.index,
            &HdbscanParams {
                min_samples: p.min_samples.min(8),
                min_cluster_size: 5,
            },
        );
        rows.push(score(&p, &h, "HDBSCAN (EOM, unweighted)"));
        print_row(rows.last().unwrap());
    }

    println!("\nABLATION 3 — mixed-length Canberra penalty");
    for &(protocol, n) in &[(Protocol::Dns, 1000), (Protocol::Smb, 100)] {
        for penalty in [0.0, 0.3, 0.59, 0.8, 1.0] {
            let p = prepare(protocol, n, penalty);
            let clusterer = FieldTypeClusterer {
                dissim: DissimParams {
                    length_penalty: penalty,
                },
                ..FieldTypeClusterer::default()
            };
            let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
            let gt = corpus::ground_truth(protocol, &trace);
            let seg = truth_segmentation(&trace, &gt);
            let result = clusterer.cluster_trace(&trace, &seg).expect("pipeline");
            rows.push(score(
                &p,
                &result.clustering,
                &format!("penalty = {penalty}"),
            ));
            print_row(rows.last().unwrap());
        }
    }

    println!("\nABLATION 4 — spline smoothing strength (interior knots)");
    for knots in [4usize, 8, 12, 24, 48] {
        let protocol = Protocol::Ntp;
        let p = prepare(protocol, 1000, DissimParams::default().length_penalty);
        let config = AutoConfig {
            smoothing_knots: knots,
            ..AutoConfig::default()
        };
        match auto_configure(&p.matrix, &config) {
            Ok(s) => {
                let c = dbscan_weighted(&p.matrix, s.epsilon, p.min_samples, &p.weights);
                let mut row = score(&p, &c, &format!("knots = {knots} (eps = {:.3})", s.epsilon));
                row.variant = format!("knots = {knots} (eps = {:.3})", s.epsilon);
                print_row(&row);
                rows.push(row);
            }
            Err(e) => println!("ntp    knots = {knots}: auto-configuration failed ({e})"),
        }
    }

    println!("\nABLATION 6 — content-aware segmentation vs fixed-width chunks");
    {
        use fieldclust::evaluate;
        use segment::fixed::FixedChunks;
        use segment::nemesys::Nemesys;
        use segment::Segmenter;
        let protocol = Protocol::Ntp;
        let trace = corpus::build_trace(protocol, 200, corpus::DEFAULT_SEED);
        let gt = corpus::ground_truth(protocol, &trace);
        let clusterer = FieldTypeClusterer::default();
        let mut variants: Vec<(String, segment::TraceSegmentation)> = vec![(
            "nemesys".to_string(),
            Nemesys::default()
                .segment_trace(&trace)
                .expect("nemesys never fails"),
        )];
        for width in [2usize, 4, 8] {
            variants.push((
                format!("fixed-{width}"),
                FixedChunks { width }
                    .segment_trace(&trace)
                    .expect("fixed never fails"),
            ));
        }
        for (name, seg) in variants {
            match clusterer.cluster_trace(&trace, &seg) {
                Ok(result) => {
                    let eval = evaluate(&result, &trace, &gt);
                    let row = AblationRow {
                        protocol: protocol.to_string(),
                        variant: format!("segmenter = {name}"),
                        precision: eval.metrics.precision,
                        recall: eval.metrics.recall,
                        f_score: eval.metrics.f_score,
                        clusters: eval.n_clusters,
                        noise: eval.n_noise,
                    };
                    print_row(&row);
                    rows.push(row);
                }
                Err(e) => println!("{protocol}  segmenter = {name}: pipeline failed ({e})"),
            }
        }
    }

    bench::dump_json("target/ablation.json", &rows);
    bench::append_trajectory("ablation", bench_start.elapsed());
}
