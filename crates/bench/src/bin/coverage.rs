//! Regenerates the **§IV-D coverage comparison**: FieldHunter types one
//! or two fields per message (~3 % of bytes on average), field type
//! clustering covers most of every message (~87 % in the paper) —
//! almost a factor 30.
//!
//! Run with: `cargo run --release -p bench --bin coverage`

use bench::CONTEXT_PROTOCOLS;
use fieldclust::FieldTypeClusterer;
use fieldhunter::{FieldHunter, FieldHunterError};
use protocols::corpus;
use segment::nemesys::Nemesys;
use segment::Segmenter;
use serde::Serialize;

#[derive(Serialize)]
struct CoverageRow {
    protocol: String,
    messages: usize,
    clustering: f64,
    fieldhunter: Option<f64>,
    fieldhunter_fields: Option<usize>,
}

fn main() {
    let bench_start = std::time::Instant::now();
    let clusterer = FieldTypeClusterer::default();
    let mut rows: Vec<CoverageRow> = Vec::new();

    println!("COVERAGE — field type clustering vs FieldHunter (§IV-D)");
    println!("proto  msgs   clustering  fieldhunter  (typed fields)");

    let specs = corpus::large_specs()
        .into_iter()
        .chain(corpus::small_specs());
    for spec in specs {
        let trace = spec.build();
        let seg = Nemesys::default()
            .segment_trace(&trace)
            .expect("nemesys never fails");
        let clustering_cov = clusterer
            .cluster_trace(&trace, &seg)
            .map(|r| r.coverage(&trace).ratio())
            .unwrap_or(0.0);
        let fh = FieldHunter::default().analyze(&trace);
        let (fh_cov, fh_fields, fh_text) = match &fh {
            Ok(a) => (
                Some(a.coverage.ratio()),
                Some(a.fields.len()),
                format!(
                    "{:10.1}%  ({} fields)",
                    a.coverage.ratio() * 100.0,
                    a.fields.len()
                ),
            ),
            Err(FieldHunterError::NoContext) => (None, None, "no context".to_string()),
            Err(e) => (None, None, format!("error: {e}")),
        };
        println!(
            "{:6} {:5} {:9.1}%  {}",
            spec.protocol,
            spec.messages,
            clustering_cov * 100.0,
            fh_text
        );
        rows.push(CoverageRow {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            clustering: clustering_cov,
            fieldhunter: fh_cov,
            fieldhunter_fields: fh_fields,
        });
    }

    let cl_avg = rows.iter().map(|r| r.clustering).sum::<f64>() / rows.len() as f64;
    let fh_rows: Vec<f64> = rows.iter().filter_map(|r| r.fieldhunter).collect();
    let fh_avg = if fh_rows.is_empty() {
        0.0
    } else {
        fh_rows.iter().sum::<f64>() / fh_rows.len() as f64
    };
    println!("\naverage clustering coverage:  {:5.1}%", cl_avg * 100.0);
    println!(
        "average FieldHunter coverage: {:5.1}% (where applicable)",
        fh_avg * 100.0
    );
    if fh_avg > 0.0 {
        println!("factor: {:.1}x", cl_avg / fh_avg);
    }
    println!(
        "(FieldHunter inapplicable to {} of {} traces: link-layer protocols without context)",
        rows.iter().filter(|r| r.fieldhunter.is_none()).count(),
        rows.len()
    );
    let _ = &CONTEXT_PROTOCOLS; // documented set; used by tests
    bench::dump_json("target/coverage.json", &rows);
    bench::append_trajectory("coverage", bench_start.elapsed());
}
