//! Diagnostic: inspect the ε auto-configuration and an ε sweep for one
//! protocol/size. Development tool behind the Table I/II calibration.
//!
//! Usage: `cargo run --release -p bench --bin diag -- <protocol> <messages>`

use cluster::autoconf::{auto_configure, AutoConfig};
use cluster::dbscan::dbscan;
use evalkit::{pair_counts, ClusterMetrics};
use fieldclust::truth::{label_store, truth_segmentation};
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use protocols::{corpus, Protocol};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let protocol = Protocol::from_name(args.get(1).map(|s| s.as_str()).unwrap_or("ntp"))
        .expect("unknown protocol");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000);

    let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(protocol, &trace);
    let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    let store = bench::attach_cache_from_args(&mut session, &args);
    session.set_segmentation(truth_segmentation(&trace, &gt));
    let labels = label_store(session.store().expect("enough segments"), &gt);
    let matrix = session.matrix().expect("enough segments");
    let unique = matrix.len();
    println!("{} n={} unique_segments={}", protocol, n, unique);

    // k-NN quantiles for each candidate k.
    let min_samples = ((unique as f64).ln().round() as usize).max(2);
    for k in 2..=min_samples.min(unique - 1) {
        let mut knn = matrix.knn_dissimilarities(k);
        knn.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |f: f64| knn[((knn.len() - 1) as f64 * f) as usize];
        println!(
            "k={k:2}  q10={:.3} q50={:.3} q80={:.3} q90={:.3} q95={:.3} q99={:.3} max={:.3}",
            q(0.1),
            q(0.5),
            q(0.8),
            q(0.9),
            q(0.95),
            q(0.99),
            q(1.0)
        );
    }

    let selected = auto_configure(matrix, &AutoConfig::default()).expect("autoconf");
    println!(
        "autoconf: k={} eps={:.3} min_samples={}",
        selected.k, selected.epsilon, selected.min_samples
    );

    // ε sweep: what would each ε give?
    println!("\neps     clusters noise  largest   P     R");
    let max_d = matrix.max().unwrap_or(1.0);
    for step in 1..=20 {
        let eps = max_d * step as f64 / 20.0;
        let c = dbscan(matrix, eps, min_samples);
        let clusters = c.clusters();
        let largest = clusters.iter().map(Vec::len).max().unwrap_or(0);
        let label_clusters: Vec<Vec<_>> = clusters
            .iter()
            .map(|m| m.iter().map(|&i| labels[i]).collect())
            .collect();
        let noise_labels: Vec<_> = c.noise().iter().map(|&i| labels[i]).collect();
        let m = ClusterMetrics::from_counts(&pair_counts(&label_clusters, &noise_labels));
        println!(
            "{eps:6.3} {:8} {:5} {:8} {:5.2} {:5.2}",
            c.n_clusters(),
            c.noise().len(),
            largest,
            m.precision,
            m.recall
        );
    }
    bench::report_cache(store.as_ref());
}
