//! Regenerates **Fig. 2**: the ECDF Ê₂ of 2-NN dissimilarities for the
//! NTP-1000 trace, its spline smoothing, and the knee Kneedle detects —
//! the dissimilarity used as DBSCAN's ε.
//!
//! Prints the curve as aligned columns (dissimilarity, raw ECDF,
//! smoothed ECDF) plus the detected knee, and dumps the series to JSON
//! for plotting. Run with: `cargo run --release -p bench --bin fig2`

use bench::dump_json;
use cluster::autoconf::{auto_configure, AutoConfig};
use fieldclust::truth::truth_segmentation;
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use protocols::{corpus, Protocol};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Data {
    k: usize,
    epsilon: f64,
    min_samples: usize,
    ecdf: Vec<(f64, f64)>,
    smoothed: Vec<(f64, f64)>,
}

fn main() {
    let bench_start = std::time::Instant::now();
    let args: Vec<String> = std::env::args().collect();
    // The paper's Fig. 2 uses segments from 1000 NTP messages.
    let trace = corpus::build_trace(Protocol::Ntp, 1000, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    let store = bench::attach_cache_from_args(&mut session, &args);
    session.set_segmentation(truth_segmentation(&trace, &gt));
    let matrix = session.matrix().expect("enough segments");
    eprintln!("built {0}x{0} dissimilarity matrix", matrix.len());

    let selected = auto_configure(matrix, &AutoConfig::default()).expect("auto-configuration");
    let n = selected.ecdf_values.len() as f64;
    let ecdf: Vec<(f64, f64)> = selected
        .ecdf_values
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, (i + 1) as f64 / n))
        .collect();

    println!("FIG 2 — k-NN dissimilarity ECDF and its knee (NTP, 1000 messages)");
    println!(
        "selected k = {}, min_samples = {}",
        selected.k, selected.min_samples
    );
    println!(
        "knee at dissimilarity = {:.3}  -> used as eps",
        selected.epsilon
    );
    println!();
    println!("dissim  ECDF(smoothed)");
    // Print a readable down-sampled curve with an ASCII bar.
    let curve = &selected.smoothed_curve;
    let step = (curve.len() / 30).max(1);
    for (x, y) in curve.iter().step_by(step) {
        let bar = "#".repeat((y * 50.0).round() as usize);
        let marker = if (x - selected.epsilon).abs()
            < (curve[step.min(curve.len() - 1)].0 - curve[0].0).abs()
        {
            " <- knee"
        } else {
            ""
        };
        println!("{x:6.3}  {y:5.3} {bar}{marker}");
    }

    // Render the figure itself: raw ECDF (dots), smoothed spline (line),
    // detected knee (vertical marker) — the paper's Fig. 2.
    let figure = bench::plot::Plot {
        title: "Fig. 2 — k-NN dissimilarity ECDF and its knee (NTP, 1000 messages)".to_string(),
        x_label: "Canberra dissimilarity".to_string(),
        y_label: "cumulative fraction of segments".to_string(),
        series: vec![
            bench::plot::Series {
                label: format!("ECDF of {}-NN dissimilarities", selected.k),
                points: ecdf.clone(),
                color: "steelblue".to_string(),
                scatter: true,
            },
            bench::plot::Series {
                label: "smoothed (cubic B-spline)".to_string(),
                points: selected.smoothed_curve.clone(),
                color: "darkorange".to_string(),
                scatter: false,
            },
        ],
        v_lines: vec![(
            selected.epsilon,
            format!("knee = {:.3} -> eps", selected.epsilon),
        )],
    };
    if std::fs::write("target/fig2.svg", figure.to_svg()).is_ok() {
        eprintln!("(figure written to target/fig2.svg)");
    }

    dump_json(
        "target/fig2.json",
        &Fig2Data {
            k: selected.k,
            epsilon: selected.epsilon,
            min_samples: selected.min_samples,
            ecdf,
            smoothed: selected.smoothed_curve.clone(),
        },
    );
    bench::report_cache(store.as_ref());
    bench::append_trajectory("fig2", bench_start.elapsed());
}
