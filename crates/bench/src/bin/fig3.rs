//! Regenerates **Fig. 3**: typical errors in heuristically inferred
//! segment boundaries on NTP timestamps — the vertical lines NEMESYS
//! draws *inside* the true 8-byte timestamp fields, whose shared static
//! prefix (`d2 3d 19 …`) contrasts with their random tails.
//!
//! Run with: `cargo run --release -p bench --bin fig3`

use fieldclust::truth::dominant_kind;
use protocols::{corpus, FieldKind, Protocol, ProtocolSpec};
use segment::nemesys::Nemesys;
use segment::Segmenter;

fn main() {
    let bench_start = std::time::Instant::now();
    let trace = corpus::build_trace(Protocol::Ntp, 1000, corpus::DEFAULT_SEED);
    let segmentation = Nemesys::default()
        .segment_trace(&trace)
        .expect("nemesys never fails");

    println!("FIG 3 — heuristic segment boundaries inside NTP timestamps");
    println!("(vertical bars: NEMESYS boundaries; brackets: true timestamp fields)\n");

    let mut shown = 0;
    let mut split_timestamps = 0u64;
    let mut total_timestamps = 0u64;
    for (msg, segs) in trace.iter().zip(&segmentation.messages) {
        let fields = Protocol::Ntp
            .dissect(msg.payload())
            .expect("corpus dissects");
        // The transmit timestamp (offset 40..48) is present and live in
        // every NTP message.
        for f in fields
            .iter()
            .filter(|f| f.kind == FieldKind::Timestamp && f.offset == 40)
        {
            total_timestamps += 1;
            let inner_cuts: Vec<usize> = segs
                .cuts()
                .into_iter()
                .filter(|&c| c > f.offset && c < f.offset + f.len)
                .collect();
            if !inner_cuts.is_empty() {
                split_timestamps += 1;
                if shown < 6 {
                    let mut rendering = String::new();
                    for (i, b) in msg.payload()[f.range()].iter().enumerate() {
                        if inner_cuts.contains(&(f.offset + i)) {
                            rendering.push('|');
                        }
                        rendering.push_str(&format!("{b:02x}"));
                    }
                    println!(
                        "NTP timestamp {}: [{rendering}]",
                        (b'A' + shown as u8) as char
                    );
                    shown += 1;
                }
            }
        }
    }
    println!(
        "\n{split_timestamps} of {total_timestamps} transmit timestamps are split by heuristic \
         boundaries ({:.0}%) — the boundary-shift error the paper's Fig. 3 illustrates:",
        100.0 * split_timestamps as f64 / total_timestamps.max(1) as f64
    );
    println!("the random low bytes of a timestamp cannot be clustered by value once detached.");

    // Quantify the consequence: label the detached fragments.
    let store = fieldclust::SegmentStore::collect(&trace, &segmentation, 2);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let mut fragment_count = 0usize;
    for seg in &store.segments {
        let inst = &seg.instances[0];
        let fields = &gt[inst.message];
        if let Some(FieldKind::Timestamp) = dominant_kind(fields, &inst.range) {
            let exact = fields.iter().any(|f| f.range() == inst.range);
            if !exact {
                fragment_count += 1;
            }
        }
    }
    println!(
        "{} unique timestamp-dominated segments are fragments (not exact fields).",
        fragment_count
    );
    bench::append_trajectory("fig3", bench_start.elapsed());
}
