//! State-machine inference ladder: wall clock and peak RSS of
//! [`statemachine::infer`] over growing synthetic flow corpora.
//!
//! Each rung builds `u` total messages worth of flows drawn from a
//! fixed ground-truth protocol (handshake, query/reply rounds with
//! occasional errors, teardown) under a deterministic LCG, then runs
//! the full prefix-tree + Alergia merge. This isolates the inference
//! cost itself — flows go in as label sequences, bypassing the
//! segmentation/clustering pipeline that produces them in production —
//! so the rung scales to corpus sizes the ladder's CI budget allows.
//! Every rung asserts the recovered machine is non-trivial and is
//! upserted into `BENCH_trajectory.json` as `fsm_ladder{u=..}`.
//!
//! Run with:
//! `cargo run --release -p bench --bin fsm_ladder -- [messages_csv]`
//! (default: `2000,10000,50000`)

use bench::{append_trajectory, peak_rss_bytes};
use statemachine::{infer, FsmConfig};
use std::time::Instant;

fn csv_arg(args: &[String], i: usize, default: &[usize]) -> Vec<usize> {
    match args.get(i) {
        None => default.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().expect("ladder values are numbers"))
            .collect(),
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Flows from a five-symbol ground truth: hello, then 1–6 query/reply
/// rounds (one in eight replies is an error), then bye. Total message
/// count reaches at least `total`.
fn synth_flows(total: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = seed;
    let mut flows = Vec::new();
    let mut emitted = 0;
    while emitted < total {
        let mut flow = vec![0u32];
        for _ in 0..=(lcg(&mut rng) % 6) {
            flow.push(1);
            flow.push(if lcg(&mut rng).is_multiple_of(8) {
                3
            } else {
                2
            });
        }
        flow.push(4);
        emitted += flow.len();
        flows.push(flow);
    }
    flows
}

fn run_rung(u: usize) -> std::time::Duration {
    let flows = synth_flows(u, 0x5eed ^ u as u64);
    let symbols: Vec<String> = ["hello", "query", "reply", "error", "bye"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let start = Instant::now();
    let machine = infer(&flows, symbols, &FsmConfig::default());
    let wall = start.elapsed();
    println!(
        "  u={u}: {:.3}s, {} flows -> {} states, {} transitions, peak rss {} MiB",
        wall.as_secs_f64(),
        machine.flows,
        machine.n_states,
        machine.n_transitions(),
        peak_rss_bytes() >> 20,
    );
    assert!(machine.n_states >= 2, "ground truth has structure");
    assert_eq!(machine.flows as usize, flows.len());
    wall
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let messages = csv_arg(&args, 0, &[2_000, 10_000, 50_000]);
    println!("fsm_ladder: total messages {messages:?}");
    assert!(peak_rss_bytes() > 0, "VmHWM must be readable");
    for &u in &messages {
        let wall = run_rung(u);
        append_trajectory(&format!("fsm_ladder{{u={u}}}"), wall);
    }
}
