//! Extension experiment: message type identification (NEMETYL-style,
//! the paper's reference \[10\]) over the same corpus, from ground-truth
//! segments and from NEMESYS segments.
//!
//! Not a table in the DSN-W 2022 paper — the paper defers message-type
//! clustering to prior work — but the companion analysis completes the
//! inference stack and exercises the same dissimilarity machinery.
//!
//! Run with: `cargo run --release -p bench --bin msgtype`

use evalkit::{pair_counts, ClusterMetrics};
use fieldclust::msgtype::{identify_message_types, MessageTypeConfig};
use fieldclust::truth::truth_segmentation;
use protocols::{corpus, ProtocolSpec};
use segment::nemesys::Nemesys;
use segment::Segmenter;
use serde::Serialize;

#[derive(Serialize)]
struct MsgTypeRow {
    protocol: String,
    messages: usize,
    segmentation: String,
    true_types: usize,
    found_clusters: u32,
    precision: f64,
    recall: f64,
    f_score: f64,
}

fn main() {
    let mut rows: Vec<MsgTypeRow> = Vec::new();
    println!("MESSAGE TYPE IDENTIFICATION (extension; cf. NEMETYL [10])");
    println!("proto  msgs  segm     types found   P     R     F1/4");
    for spec in corpus::small_specs() {
        // AU's huge reports make the segment matrix heavy; the small set
        // is ample for message-type identification.
        let trace = spec.build();
        let gt = corpus::ground_truth(spec.protocol, &trace);
        let types: Vec<&'static str> = trace
            .iter()
            .map(|m| {
                spec.protocol
                    .message_type(m.payload())
                    .expect("corpus parses")
            })
            .collect();
        let n_types = types.iter().collect::<std::collections::HashSet<_>>().len();

        let truth_seg = truth_segmentation(&trace, &gt);
        let nem_seg = Nemesys::default()
            .segment_trace(&trace)
            .expect("nemesys never fails");
        for (name, seg) in [("truth", &truth_seg), ("nemesys", &nem_seg)] {
            let result = match identify_message_types(&trace, seg, &MessageTypeConfig::default()) {
                Ok(r) => r,
                Err(e) => {
                    println!(
                        "{:6} {:5} {:8} failed: {e}",
                        spec.protocol, spec.messages, name
                    );
                    continue;
                }
            };
            let clusters: Vec<Vec<&str>> = result
                .clustering
                .clusters()
                .iter()
                .map(|members| members.iter().map(|&m| types[m]).collect())
                .collect();
            let noise: Vec<&str> = result
                .clustering
                .noise()
                .iter()
                .map(|&m| types[m])
                .collect();
            let m = ClusterMetrics::from_counts(&pair_counts(&clusters, &noise));
            println!(
                "{:6} {:5} {:8} {:4} {:6} {:5.2} {:5.2} {:5.2}",
                spec.protocol,
                spec.messages,
                name,
                n_types,
                result.clustering.n_clusters(),
                m.precision,
                m.recall,
                m.f_score
            );
            rows.push(MsgTypeRow {
                protocol: spec.protocol.to_string(),
                messages: spec.messages,
                segmentation: name.to_string(),
                true_types: n_types,
                found_clusters: result.clustering.n_clusters(),
                precision: m.precision,
                recall: m.recall,
                f_score: m.f_score,
            });
        }
    }
    bench::dump_json("target/msgtype.json", &rows);
}
