//! Neighbor-backend scaling ladder: where does the metric tree beat the
//! matrix?
//!
//! For each rung `u` of a segment-count ladder the harness answers the
//! same sampled ε-range and k-NN queries through every
//! [`NeighborProvider`] backend that fits in memory:
//!
//! - `vptree` — [`VpForest`] + [`VpProvider`], never materializing the
//!   O(u²) condensed triangle (peak memory is O(u) nodes);
//! - `vptree+swar` — the same forest with the opt-in SWAR kernel fast
//!   path (pinned bit-identical);
//! - `matrix` — [`CondensedMatrix`] + [`NeighborIndex`] +
//!   [`IndexedProvider`], the exact oracle, capped at `MATRIX_CAP`
//!   segments (the 50k triangle alone would be ~10 GB; the sorted index
//!   doubles that).
//!
//! The corpus is uniform-length (8-byte segments), so the Canberra
//! dissimilarity is a true metric and the vp-tree runs its pruned
//! search rather than the exact linear fallback. Query checksums are
//! order-normalized and asserted bit-identical across backends wherever
//! more than one ran — including a `vptree+batch` pass that answers the
//! identical workload through the provider's batched parallel query API
//! ([`NeighborProvider::neighbors_within_batch`] / `knn_batch`) — and
//! every rung appends a `neighbor_ladder_u{u}_{backend}` record (wall
//! time + peak RSS) to `BENCH_trajectory.json`. The matrix/vptree
//! crossover is read off the wall-time columns, and the top rungs' RSS
//! documents that u=1M completes without the triangle.
//!
//! Run with:
//! `cargo run --release -p bench --bin neighbor_ladder -- [max_u] [samples] [budget_bytes]
//!  [--cache-dir D] [--max-memory BYTES]`
//!
//! With a `budget_bytes` argument the harness becomes the vptree RSS
//! smoke check (`scripts/check.sh`): the matrix oracle rungs are
//! skipped so the process footprint is the vp-forest path alone, and
//! the run exits nonzero if peak RSS (`VmHWM`) exceeds the budget.
//!
//! `--cache-dir D` persists each rung's chunk trees to an on-disk
//! [`ArtifactStore`] and faults them back in on re-runs — the big rungs
//! (u ≥ 100k) then pay their forest build once, not per invocation.
//! `--max-memory BYTES` guards the matrix oracle by *projection*: a
//! rung whose condensed triangle + sorted index would exceed the cap is
//! skipped (and logged) before a byte of it is allocated, instead of
//! blowing past the budget mid-build.

use cluster::autoconf::required_k_max;
use dissim::vptree::DEFAULT_CHUNK;
use dissim::{
    CondensedMatrix, DissimParams, IndexedProvider, NeighborIndex, NeighborProvider, VpForest,
    VpProvider, VpTree,
};
use rand::{Rng, SeedableRng, StdRng};
use std::time::Instant;
use store::{ArtifactStore, Key, KeyDigest, Kind};

/// Largest rung that still builds the condensed triangle + sorted
/// index (~100 MB + ~400 MB at this cap).
const MATRIX_CAP: usize = 5_000;

/// The rungs; trimmed by the `max_u` argument. The default `max_u` of
/// 50k keeps the classic ladder; the u ≥ 100k rungs are opt-in (pass a
/// larger `max_u`) and are meant to run in budget mode with a
/// `--cache-dir` so the forests persist across invocations.
const LADDER: [usize; 9] = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Corpus seed shared by every rung (the corpus is a pure function of
/// `(u, CORPUS_SEED)`, which is what makes the on-disk forest keys
/// sound).
const CORPUS_SEED: u64 = 11;

/// Uniform-length corpus (8-byte segments) drawn from a few field-type
/// templates, so dense ε-neighborhoods exist and the metric-eligibility
/// gate holds (all lengths equal ⇒ no length penalty ⇒ true metric).
fn uniform_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..u)
        .map(|_| {
            let mut seg = vec![0u8; 8];
            match rng.gen_range(0usize..4) {
                // Little-endian counter-ish: tiny leading values.
                0 => {
                    seg[0] = rng.gen_range(0u8..4);
                    for b in &mut seg[1..] {
                        *b = rng.gen_range(0u8..16);
                    }
                }
                // Timestamp-ish: shared epoch prefix, random low bytes.
                1 => {
                    seg[..3].copy_from_slice(&[0xD2, 0x3D, 0x19]);
                    for b in &mut seg[3..] {
                        *b = rng.gen();
                    }
                }
                // ASCII text.
                2 => {
                    for b in &mut seg {
                        *b = rng.gen_range(b'a'..=b'z');
                    }
                }
                // Opaque payload bytes.
                _ => {
                    for b in &mut seg {
                        *b = rng.gen();
                    }
                }
            }
            seg
        })
        .collect()
}

/// Evenly-strided sample of query items.
fn sample_indices(u: usize, samples: usize) -> Vec<usize> {
    let samples = samples.clamp(1, u);
    (0..samples).map(|q| q * u / samples).collect()
}

/// Runs the sampled k-NN + ε-range workload against one backend.
///
/// Returns `(eps, checksum, neighbor_count)`. When `eps` is `None` it
/// is derived as the median sampled k-NN dissimilarity (so later
/// backends replay the exact same queries). The checksum folds every
/// k-NN value and every order-normalized `(dissimilarity, index)` pair,
/// so two backends agree iff their answers are bit-identical.
fn run_queries<P: NeighborProvider>(
    provider: &P,
    sample: &[usize],
    k: usize,
    eps: Option<f64>,
) -> (f64, f64, usize) {
    let knns: Vec<f64> = sample.iter().map(|&i| provider.knn(i, k)).collect();
    let eps = eps.unwrap_or_else(|| {
        let mut finite: Vec<f64> = knns.iter().copied().filter(|d| d.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        finite.get(finite.len() / 2).copied().unwrap_or(0.1)
    });
    let mut out = Vec::new();
    let mut checksum = 0.0f64;
    let mut count = 0usize;
    for (&i, &dk) in sample.iter().zip(&knns) {
        if dk.is_finite() {
            checksum += dk;
        }
        provider.neighbors_within(i, eps, &mut out);
        // Backends emit in different deterministic orders (index order
        // vs. tree traversal order); normalize before checksumming.
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        count += out.len();
        for &(d, j) in &out {
            checksum += d + f64::from(j);
        }
    }
    (eps, checksum, count)
}

/// Replays the exact workload of [`run_queries`] through the batched
/// parallel query API ([`NeighborProvider::knn_batch`] +
/// [`NeighborProvider::neighbors_within_batch`]). The fold order is
/// identical — sample order, k-NN value first, then the
/// order-normalized range pairs — so the checksum is bit-comparable
/// against the scalar pass regardless of how the batch was scheduled.
fn run_queries_batch<P: NeighborProvider + Sync>(
    provider: &P,
    sample: &[usize],
    k: usize,
    eps: f64,
    threads: usize,
) -> (f64, usize) {
    let knns = provider.knn_batch(sample, k, threads);
    let mut lists = provider.neighbors_within_batch(sample, eps, threads);
    let mut checksum = 0.0f64;
    let mut count = 0usize;
    for (&dk, out) in knns.iter().zip(&mut lists) {
        if dk.is_finite() {
            checksum += dk;
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        count += out.len();
        for &(d, j) in out.iter() {
            checksum += d + f64::from(j);
        }
    }
    (checksum, count)
}

/// Content keys for one rung's persisted chunk trees. The corpus is a
/// pure function of `(u, CORPUS_SEED)`, so digesting the generator
/// inputs — not the segment bytes — is sound and costs O(1) per key.
fn ladder_tree_keys(u: usize, chunk: usize) -> Vec<Key> {
    (0..VpForest::chunk_count(u, chunk))
        .map(|t| {
            let mut digest = KeyDigest::new(Kind::VPTREE);
            digest.frame(b"neighbor_ladder");
            digest.u64(CORPUS_SEED);
            digest.usize(u);
            digest.usize(chunk);
            digest.usize(t);
            digest.finish()
        })
        .collect()
}

/// Builds the rung's forest, faulting chunk trees in from (and
/// persisting fresh ones to) the on-disk store when one is attached.
/// `build_with` re-derives any tree whose span or checksum doesn't
/// match, so a stale or damaged cache degrades to a plain build.
fn build_forest(
    values: &[&[u8]],
    params: &DissimParams,
    store: Option<&ArtifactStore>,
) -> VpForest {
    let Some(store) = store else {
        return VpForest::build(values, params, DEFAULT_CHUNK);
    };
    let keys = ladder_tree_keys(values.len(), DEFAULT_CHUNK);
    VpForest::build_with(
        values,
        params,
        DEFAULT_CHUNK,
        |t, _span| store.get::<VpTree>(&keys[t]),
        |t, tree, built| {
            if built {
                store.put(&keys[t], tree);
            }
        },
    )
}

/// Projected footprint of the matrix oracle at `u` segments: the
/// condensed triangle (`u(u-1)/2` f64s) plus the sorted neighbor index
/// (both directions of every pair as padded `(f64, u32)` entries).
fn projected_matrix_bytes(u: usize) -> u64 {
    let u = u as u64;
    u * (u - 1) / 2 * 8 + u * (u - 1) * 16
}

fn rung_line(u: usize, backend: &str, wall: std::time::Duration, eps: f64, count: usize) {
    println!(
        "neighbor_ladder: u={u} backend={backend} wall_ms={:.1} eps={eps:.6} neighbors={count} \
         peak_rss_bytes={}",
        wall.as_secs_f64() * 1e3,
        bench::peak_rss_bytes()
    );
}

fn fail_usage(message: &str) -> ! {
    eprintln!("error: neighbor_ladder: {message}");
    eprintln!(
        "usage: neighbor_ladder [max_u] [samples] [budget_bytes] [--cache-dir D] \
         [--max-memory BYTES]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut max_memory: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(v.clone()),
                None => fail_usage("--cache-dir needs a directory"),
            },
            "--max-memory" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_memory = Some(v),
                None => fail_usage("--max-memory needs a byte count"),
            },
            _ => positional.push(arg.clone()),
        }
    }
    let max_u: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let samples: usize = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let budget: Option<u64> = positional.get(2).and_then(|a| a.parse().ok());
    let store = cache_dir.map(|dir| match ArtifactStore::open(&dir) {
        Ok(store) => store,
        Err(e) => fail_usage(&format!("--cache-dir {dir}: {e}")),
    });

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();

    for &u in LADDER.iter().filter(|&&u| u <= max_u) {
        let segments = uniform_segments(u, CORPUS_SEED);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        let k_max = required_k_max(u);
        let sample = sample_indices(u, samples);

        // vptree: build the forest, then the sampled workload. This
        // rung defines ε for the others.
        let start = Instant::now();
        let forest = build_forest(&values, &params, store.as_ref());
        let vp = VpProvider::new(&values, &params, &forest);
        assert!(vp.prunable(), "uniform corpus must take the pruned path");
        let (eps, vp_sum, vp_count) = run_queries(&vp, &sample, k_max, None);
        let wall = start.elapsed();
        rung_line(u, "vptree", wall, eps, vp_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_vptree"), wall);

        // vptree + SWAR fast path: same forest, pinned bit-identical.
        let start = Instant::now();
        let swar = VpProvider::new(&values, &params, &forest).with_swar(true);
        let (_, swar_sum, swar_count) = run_queries(&swar, &sample, k_max, Some(eps));
        let wall = start.elapsed();
        assert_eq!(
            (vp_sum.to_bits(), vp_count),
            (swar_sum.to_bits(), swar_count),
            "SWAR fast path diverged at u={u}"
        );
        rung_line(u, "vptree+swar", wall, eps, swar_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_swar"), wall);

        // vptree + batched parallel queries: the identical workload
        // answered through the batch API, pinned bit-identical to the
        // scalar pass above regardless of worker count.
        let start = Instant::now();
        let (batch_sum, batch_count) = run_queries_batch(&vp, &sample, k_max, eps, threads);
        let wall = start.elapsed();
        assert_eq!(
            (vp_sum.to_bits(), vp_count),
            (batch_sum.to_bits(), batch_count),
            "batched queries diverged from scalar at u={u}"
        );
        rung_line(u, "vptree+batch", wall, eps, batch_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_vptree_batch"), wall);

        // matrix oracle: only where the triangle fits comfortably,
        // never in budget mode (the budget pins the matrix-free path),
        // and never when its *projected* footprint would blow a
        // `--max-memory` cap — the guard fires before a byte of the
        // triangle is allocated.
        let projected = projected_matrix_bytes(u);
        let over_cap = max_memory.is_some_and(|cap| projected > cap);
        if over_cap {
            println!(
                "neighbor_ladder: u={u} backend=matrix skipped (projected {projected} bytes \
                 exceeds --max-memory {})",
                max_memory.unwrap_or(0)
            );
        } else if u <= MATRIX_CAP && budget.is_none() {
            let start = Instant::now();
            let matrix = CondensedMatrix::build_segments(&values, &params, threads);
            let index = NeighborIndex::build_parallel(&matrix, threads);
            let indexed = IndexedProvider::new(&matrix, &index);
            let (_, m_sum, m_count) = run_queries(&indexed, &sample, k_max, Some(eps));
            let wall = start.elapsed();
            assert_eq!(
                (vp_sum.to_bits(), vp_count),
                (m_sum.to_bits(), m_count),
                "vptree diverged from the matrix oracle at u={u}"
            );
            rung_line(u, "matrix", wall, eps, m_count);
            bench::append_trajectory(&format!("neighbor_ladder_u{u}_matrix"), wall);
        } else {
            println!("neighbor_ladder: u={u} backend=matrix skipped (cap {MATRIX_CAP})");
        }
    }
    if let Some(store) = &store {
        println!("neighbor_ladder: cache {}", store.stats());
    }
    let rss = bench::peak_rss_bytes();
    println!("neighbor_ladder: done peak_rss_bytes={rss}");
    if let Some(budget) = budget {
        if rss > budget {
            eprintln!("neighbor_ladder: peak RSS {rss} exceeds budget {budget}");
            std::process::exit(1);
        }
        println!("neighbor_ladder: peak RSS within budget ({rss} <= {budget})");
    }
}
