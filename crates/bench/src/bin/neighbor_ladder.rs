//! Neighbor-backend scaling ladder: where does the metric tree beat the
//! matrix?
//!
//! For each rung `u` of a segment-count ladder the harness answers the
//! same sampled ε-range and k-NN queries through every
//! [`NeighborProvider`] backend that fits in memory:
//!
//! - `vptree` — [`VpForest`] + [`VpProvider`], never materializing the
//!   O(u²) condensed triangle (peak memory is O(u) nodes);
//! - `vptree+swar` — the same forest with the opt-in SWAR kernel fast
//!   path (pinned bit-identical);
//! - `matrix` — [`CondensedMatrix`] + [`NeighborIndex`] +
//!   [`IndexedProvider`], the exact oracle, capped at `MATRIX_CAP`
//!   segments (the 50k triangle alone would be ~10 GB; the sorted index
//!   doubles that).
//!
//! The corpus is uniform-length (8-byte segments), so the Canberra
//! dissimilarity is a true metric and the vp-tree runs its pruned
//! search rather than the exact linear fallback. Query checksums are
//! order-normalized and asserted bit-identical across backends wherever
//! more than one ran, and every rung appends a
//! `neighbor_ladder_u{u}_{backend}` record (wall time + peak RSS) to
//! `BENCH_trajectory.json` — the matrix/vptree crossover is read off
//! the wall-time columns, and the top rung's RSS documents that u=50k
//! completes without the triangle.
//!
//! Run with:
//! `cargo run --release -p bench --bin neighbor_ladder -- [max_u] [samples] [budget_bytes]`
//!
//! With a `budget_bytes` argument the harness becomes the vptree RSS
//! smoke check (`scripts/check.sh`): the matrix oracle rungs are
//! skipped so the process footprint is the vp-forest path alone, and
//! the run exits nonzero if peak RSS (`VmHWM`) exceeds the budget.

use cluster::autoconf::required_k_max;
use dissim::vptree::DEFAULT_CHUNK;
use dissim::{
    CondensedMatrix, DissimParams, IndexedProvider, NeighborIndex, NeighborProvider, VpForest,
    VpProvider,
};
use rand::{Rng, SeedableRng, StdRng};
use std::time::Instant;

/// Largest rung that still builds the condensed triangle + sorted
/// index (~100 MB + ~400 MB at this cap).
const MATRIX_CAP: usize = 5_000;

/// The rungs; trimmed by the `max_u` argument.
const LADDER: [usize; 6] = [1_000, 2_000, 5_000, 10_000, 20_000, 50_000];

/// Uniform-length corpus (8-byte segments) drawn from a few field-type
/// templates, so dense ε-neighborhoods exist and the metric-eligibility
/// gate holds (all lengths equal ⇒ no length penalty ⇒ true metric).
fn uniform_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..u)
        .map(|_| {
            let mut seg = vec![0u8; 8];
            match rng.gen_range(0usize..4) {
                // Little-endian counter-ish: tiny leading values.
                0 => {
                    seg[0] = rng.gen_range(0u8..4);
                    for b in &mut seg[1..] {
                        *b = rng.gen_range(0u8..16);
                    }
                }
                // Timestamp-ish: shared epoch prefix, random low bytes.
                1 => {
                    seg[..3].copy_from_slice(&[0xD2, 0x3D, 0x19]);
                    for b in &mut seg[3..] {
                        *b = rng.gen();
                    }
                }
                // ASCII text.
                2 => {
                    for b in &mut seg {
                        *b = rng.gen_range(b'a'..=b'z');
                    }
                }
                // Opaque payload bytes.
                _ => {
                    for b in &mut seg {
                        *b = rng.gen();
                    }
                }
            }
            seg
        })
        .collect()
}

/// Evenly-strided sample of query items.
fn sample_indices(u: usize, samples: usize) -> Vec<usize> {
    let samples = samples.clamp(1, u);
    (0..samples).map(|q| q * u / samples).collect()
}

/// Runs the sampled k-NN + ε-range workload against one backend.
///
/// Returns `(eps, checksum, neighbor_count)`. When `eps` is `None` it
/// is derived as the median sampled k-NN dissimilarity (so later
/// backends replay the exact same queries). The checksum folds every
/// k-NN value and every order-normalized `(dissimilarity, index)` pair,
/// so two backends agree iff their answers are bit-identical.
fn run_queries<P: NeighborProvider>(
    provider: &P,
    sample: &[usize],
    k: usize,
    eps: Option<f64>,
) -> (f64, f64, usize) {
    let knns: Vec<f64> = sample.iter().map(|&i| provider.knn(i, k)).collect();
    let eps = eps.unwrap_or_else(|| {
        let mut finite: Vec<f64> = knns.iter().copied().filter(|d| d.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        finite.get(finite.len() / 2).copied().unwrap_or(0.1)
    });
    let mut out = Vec::new();
    let mut checksum = 0.0f64;
    let mut count = 0usize;
    for (&i, &dk) in sample.iter().zip(&knns) {
        if dk.is_finite() {
            checksum += dk;
        }
        provider.neighbors_within(i, eps, &mut out);
        // Backends emit in different deterministic orders (index order
        // vs. tree traversal order); normalize before checksumming.
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        count += out.len();
        for &(d, j) in &out {
            checksum += d + f64::from(j);
        }
    }
    (eps, checksum, count)
}

fn rung_line(u: usize, backend: &str, wall: std::time::Duration, eps: f64, count: usize) {
    println!(
        "neighbor_ladder: u={u} backend={backend} wall_ms={:.1} eps={eps:.6} neighbors={count} \
         peak_rss_bytes={}",
        wall.as_secs_f64() * 1e3,
        bench::peak_rss_bytes()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_u: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let samples: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(256);
    let budget: Option<u64> = args.get(2).and_then(|a| a.parse().ok());

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();

    for &u in LADDER.iter().filter(|&&u| u <= max_u) {
        let segments = uniform_segments(u, 11);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        let k_max = required_k_max(u);
        let sample = sample_indices(u, samples);

        // vptree: build the forest, then the sampled workload. This
        // rung defines ε for the others.
        let start = Instant::now();
        let forest = VpForest::build(&values, &params, DEFAULT_CHUNK);
        let vp = VpProvider::new(&values, &params, &forest);
        assert!(vp.prunable(), "uniform corpus must take the pruned path");
        let (eps, vp_sum, vp_count) = run_queries(&vp, &sample, k_max, None);
        let wall = start.elapsed();
        rung_line(u, "vptree", wall, eps, vp_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_vptree"), wall);

        // vptree + SWAR fast path: same forest, pinned bit-identical.
        let start = Instant::now();
        let swar = VpProvider::new(&values, &params, &forest).with_swar(true);
        let (_, swar_sum, swar_count) = run_queries(&swar, &sample, k_max, Some(eps));
        let wall = start.elapsed();
        assert_eq!(
            (vp_sum.to_bits(), vp_count),
            (swar_sum.to_bits(), swar_count),
            "SWAR fast path diverged at u={u}"
        );
        rung_line(u, "vptree+swar", wall, eps, swar_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_swar"), wall);

        // matrix oracle: only where the triangle fits comfortably, and
        // never in budget mode (the budget pins the matrix-free path).
        if u <= MATRIX_CAP && budget.is_none() {
            let start = Instant::now();
            let matrix = CondensedMatrix::build_segments(&values, &params, threads);
            let index = NeighborIndex::build_parallel(&matrix, threads);
            let indexed = IndexedProvider::new(&matrix, &index);
            let (_, m_sum, m_count) = run_queries(&indexed, &sample, k_max, Some(eps));
            let wall = start.elapsed();
            assert_eq!(
                (vp_sum.to_bits(), vp_count),
                (m_sum.to_bits(), m_count),
                "vptree diverged from the matrix oracle at u={u}"
            );
            rung_line(u, "matrix", wall, eps, m_count);
            bench::append_trajectory(&format!("neighbor_ladder_u{u}_matrix"), wall);
        } else {
            println!("neighbor_ladder: u={u} backend=matrix skipped (cap {MATRIX_CAP})");
        }
    }
    let rss = bench::peak_rss_bytes();
    println!("neighbor_ladder: done peak_rss_bytes={rss}");
    if let Some(budget) = budget {
        if rss > budget {
            eprintln!("neighbor_ladder: peak RSS {rss} exceeds budget {budget}");
            std::process::exit(1);
        }
        println!("neighbor_ladder: peak RSS within budget ({rss} <= {budget})");
    }
}
