//! Neighbor-backend scaling ladder: where does the metric tree beat the
//! matrix?
//!
//! For each rung `u` of a segment-count ladder the harness answers the
//! same sampled ε-range and k-NN queries through every
//! [`NeighborProvider`] backend that fits in memory:
//!
//! - `vptree` — [`VpForest`] + [`VpProvider`], never materializing the
//!   O(u²) condensed triangle (peak memory is O(u) nodes);
//! - `vptree+swar` — the same forest with the opt-in SWAR kernel fast
//!   path (pinned bit-identical);
//! - `matrix` — [`CondensedMatrix`] + [`NeighborIndex`] +
//!   [`IndexedProvider`], the exact oracle, capped at `MATRIX_CAP`
//!   segments (the 50k triangle alone would be ~10 GB; the sorted index
//!   doubles that).
//!
//! The classic ladder's corpus is uniform-length (8-byte segments), so
//! the Canberra dissimilarity is a true metric and the vp-tree runs its
//! pruned search rather than the exact linear fallback. Query checksums
//! are order-normalized and asserted bit-identical across backends
//! wherever more than one ran — including a `vptree+batch` pass that
//! answers the identical workload through the provider's batched
//! parallel query API ([`NeighborProvider::neighbors_within_batch`] /
//! `knn_batch`) — and every rung appends a
//! `neighbor_ladder_u{u}_{backend}` record (wall time + peak RSS) to
//! `BENCH_trajectory.json`. The matrix/vptree crossover is read off the
//! wall-time columns, and the top rungs' RSS documents that u=1M
//! completes without the triangle.
//!
//! A second, *mixed-length* ladder ([`MIXED_LADDER`]) covers the
//! corpora the classic rungs deliberately avoid: NEMESYS-like segment
//! sets whose lengths differ, where the length penalty breaks the
//! triangle inequality and the plain vp-forest degrades to an exact
//! O(u) linear scan per query. There the contenders are
//!
//! - `stratified` — [`StrataIndex`] + [`StratifiedProvider`]: per-length
//!   strata searched through in-stratum vp-trees, whole strata skipped
//!   through the penalty-aware length lower bound;
//! - `stratified+batch` — the same index through the batched query API;
//! - `vptree-linear` — the metricity-gated forest's exact linear
//!   fallback, i.e. the status quo this backend replaces;
//! - `matrix` — the condensed-triangle oracle, under [`MATRIX_CAP`].
//!
//! All are pinned bit-identical per rung; the printed
//! `stratified_speedup_vs_linear` is the headline number, and the
//! stratified prune counters (kernel evaluations, pruned candidates,
//! skipped strata) are printed so the mechanism — not just the wall
//! time — is visible. Three real NEMESYS-segmented protocol corpora
//! (ntp/nbns/smb, deduplicated segment values) run the same
//! stratified-vs-linear comparison.
//!
//! Run with:
//! `cargo run --release -p bench --bin neighbor_ladder -- [max_u] [samples] [budget_bytes]
//!  [--cache-dir D] [--max-memory BYTES]`
//!
//! With a `budget_bytes` argument the harness becomes the vptree RSS
//! smoke check (`scripts/check.sh`): the matrix oracle rungs are
//! skipped so the process footprint is the vp-forest path alone, and
//! the run exits nonzero if peak RSS (`VmHWM`) exceeds the budget.
//!
//! `--cache-dir D` persists each rung's chunk trees to an on-disk
//! [`ArtifactStore`] and faults them back in on re-runs — the big rungs
//! (u ≥ 100k) then pay their forest build once, not per invocation.
//! `--max-memory BYTES` guards the matrix oracle by *projection*: a
//! rung whose condensed triangle + sorted index would exceed the cap is
//! skipped (and logged) before a byte of it is allocated, instead of
//! blowing past the budget mid-build.

use cluster::autoconf::required_k_max;
use dissim::vptree::DEFAULT_CHUNK;
use dissim::{
    CondensedMatrix, DissimParams, IndexedProvider, NeighborIndex, NeighborProvider, QueryCounters,
    StrataIndex, StratifiedProvider, VpForest, VpProvider, VpTree,
};
use protocols::{corpus, Protocol};
use rand::{Rng, SeedableRng, StdRng};
use segment::nemesys::Nemesys;
use segment::Segmenter;
use std::sync::Arc;
use std::time::Instant;
use store::{ArtifactStore, Key, KeyDigest, Kind};

/// Largest rung that still builds the condensed triangle + sorted
/// index (~100 MB + ~400 MB at this cap).
const MATRIX_CAP: usize = 5_000;

/// The rungs; trimmed by the `max_u` argument. The default `max_u` of
/// 50k keeps the classic ladder; the u ≥ 100k rungs are opt-in (pass a
/// larger `max_u`) and are meant to run in budget mode with a
/// `--cache-dir` so the forests persist across invocations.
const LADDER: [usize; 9] = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Corpus seed shared by every rung (the corpus is a pure function of
/// `(u, CORPUS_SEED)`, which is what makes the on-disk forest keys
/// sound).
const CORPUS_SEED: u64 = 11;

/// The mixed-length rungs; trimmed by `max_u` like the classic ladder.
/// The 2k rung exists so the budget-mode RSS smoke exercises the
/// stratified path too; 250k is opt-in (pass a larger `max_u`) because
/// its linear-fallback baseline alone is tens of seconds.
const MIXED_LADDER: [usize; 4] = [2_000, 5_000, 50_000, 250_000];

/// Seed for the mixed-length corpus — distinct from [`CORPUS_SEED`] so
/// the two generators can never be confused in cache keys.
const MIXED_SEED: u64 = 12;

/// Uniform-length corpus (8-byte segments) drawn from a few field-type
/// templates, so dense ε-neighborhoods exist and the metric-eligibility
/// gate holds (all lengths equal ⇒ no length penalty ⇒ true metric).
fn uniform_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..u)
        .map(|_| {
            let mut seg = vec![0u8; 8];
            match rng.gen_range(0usize..4) {
                // Little-endian counter-ish: tiny leading values.
                0 => {
                    seg[0] = rng.gen_range(0u8..4);
                    for b in &mut seg[1..] {
                        *b = rng.gen_range(0u8..16);
                    }
                }
                // Timestamp-ish: shared epoch prefix, random low bytes.
                1 => {
                    seg[..3].copy_from_slice(&[0xD2, 0x3D, 0x19]);
                    for b in &mut seg[3..] {
                        *b = rng.gen();
                    }
                }
                // ASCII text.
                2 => {
                    for b in &mut seg {
                        *b = rng.gen_range(b'a'..=b'z');
                    }
                }
                // Opaque payload bytes.
                _ => {
                    for b in &mut seg {
                        *b = rng.gen();
                    }
                }
            }
            seg
        })
        .collect()
}

/// Mixed-length corpus shaped like a NEMESYS segmentation of a real
/// binary protocol: one-byte flags, two-byte type/length words,
/// four-byte timestamps and addresses, variable-length text, and
/// eight-byte opaque payload — so segment lengths differ, the length
/// penalty is live, and the dissimilarity is provably non-metric.
fn mixed_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..u)
        .map(|_| match rng.gen_range(0usize..6) {
            // Flags byte: a handful of hot values.
            0 => vec![rng.gen_range(0u8..4)],
            // Big-endian type/length word: small values.
            1 => vec![0, rng.gen_range(0u8..64)],
            // Timestamp: shared epoch prefix, random low bytes.
            2 => vec![0xD2, 0x3D, rng.gen(), rng.gen()],
            // Address-ish: 10.x.y.z.
            3 => vec![10, rng.gen_range(0u8..4), rng.gen(), rng.gen()],
            // ASCII text, 6..=11 bytes.
            4 => {
                let len = rng.gen_range(6usize..12);
                (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
            }
            // Opaque payload bytes.
            _ => (0..8).map(|_| rng.gen()).collect(),
        })
        .collect()
}

/// Evenly-strided sample of query items.
fn sample_indices(u: usize, samples: usize) -> Vec<usize> {
    let samples = samples.clamp(1, u);
    (0..samples).map(|q| q * u / samples).collect()
}

/// Runs the sampled k-NN + ε-range workload against one backend.
///
/// Returns `(eps, checksum, neighbor_count)`. When `eps` is `None` it
/// is derived as the median sampled k-NN dissimilarity (so later
/// backends replay the exact same queries). The checksum folds every
/// k-NN value and every order-normalized `(dissimilarity, index)` pair,
/// so two backends agree iff their answers are bit-identical.
fn run_queries<P: NeighborProvider>(
    provider: &P,
    sample: &[usize],
    k: usize,
    eps: Option<f64>,
) -> (f64, f64, usize) {
    let knns: Vec<f64> = sample.iter().map(|&i| provider.knn(i, k)).collect();
    let eps = eps.unwrap_or_else(|| {
        let mut finite: Vec<f64> = knns.iter().copied().filter(|d| d.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        finite.get(finite.len() / 2).copied().unwrap_or(0.1)
    });
    let mut out = Vec::new();
    let mut checksum = 0.0f64;
    let mut count = 0usize;
    for (&i, &dk) in sample.iter().zip(&knns) {
        if dk.is_finite() {
            checksum += dk;
        }
        provider.neighbors_within(i, eps, &mut out);
        // Backends emit in different deterministic orders (index order
        // vs. tree traversal order); normalize before checksumming.
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        count += out.len();
        for &(d, j) in &out {
            checksum += d + f64::from(j);
        }
    }
    (eps, checksum, count)
}

/// Replays the exact workload of [`run_queries`] through the batched
/// parallel query API ([`NeighborProvider::knn_batch`] +
/// [`NeighborProvider::neighbors_within_batch`]). The fold order is
/// identical — sample order, k-NN value first, then the
/// order-normalized range pairs — so the checksum is bit-comparable
/// against the scalar pass regardless of how the batch was scheduled.
fn run_queries_batch<P: NeighborProvider + Sync>(
    provider: &P,
    sample: &[usize],
    k: usize,
    eps: f64,
    threads: usize,
) -> (f64, usize) {
    let knns = provider.knn_batch(sample, k, threads);
    let mut lists = provider.neighbors_within_batch(sample, eps, threads);
    let mut checksum = 0.0f64;
    let mut count = 0usize;
    for (&dk, out) in knns.iter().zip(&mut lists) {
        if dk.is_finite() {
            checksum += dk;
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        count += out.len();
        for &(d, j) in out.iter() {
            checksum += d + f64::from(j);
        }
    }
    (checksum, count)
}

/// Content keys for one rung's persisted chunk trees. The corpus is a
/// pure function of `(u, CORPUS_SEED)`, so digesting the generator
/// inputs — not the segment bytes — is sound and costs O(1) per key.
fn ladder_tree_keys(u: usize, chunk: usize) -> Vec<Key> {
    (0..VpForest::chunk_count(u, chunk))
        .map(|t| {
            let mut digest = KeyDigest::new(Kind::VPTREE);
            digest.frame(b"neighbor_ladder");
            digest.u64(CORPUS_SEED);
            digest.usize(u);
            digest.usize(chunk);
            digest.usize(t);
            digest.finish()
        })
        .collect()
}

/// Builds the rung's forest, faulting chunk trees in from (and
/// persisting fresh ones to) the on-disk store when one is attached.
/// `build_with` re-derives any tree whose span or checksum doesn't
/// match, so a stale or damaged cache degrades to a plain build.
fn build_forest(
    values: &[&[u8]],
    params: &DissimParams,
    store: Option<&ArtifactStore>,
) -> VpForest {
    let Some(store) = store else {
        return VpForest::build(values, params, DEFAULT_CHUNK);
    };
    let keys = ladder_tree_keys(values.len(), DEFAULT_CHUNK);
    VpForest::build_with(
        values,
        params,
        DEFAULT_CHUNK,
        |t, _span| store.get::<VpTree>(&keys[t]),
        |t, tree, built| {
            if built {
                store.put(&keys[t], tree);
            }
        },
    )
}

/// Content key for one mixed rung's persisted [`StrataIndex`] — a
/// single whole-index artifact, keyed (like the forest chunk trees) by
/// the generator inputs rather than the segment bytes.
fn ladder_strata_key(u: usize, chunk: usize) -> Key {
    let mut digest = KeyDigest::new(Kind::STRATA);
    digest.frame(b"neighbor_ladder_mixed");
    digest.u64(MIXED_SEED);
    digest.usize(u);
    digest.usize(chunk);
    digest.finish()
}

/// Builds the mixed rung's stratified index, faulting it in from (and
/// persisting it to) the on-disk store when one is attached. A stale or
/// damaged artifact fails the `matches` check and degrades to a plain
/// build.
fn build_strata(
    values: &[&[u8]],
    params: &DissimParams,
    store: Option<&ArtifactStore>,
) -> StrataIndex {
    let Some(store) = store else {
        return StrataIndex::build(values, params, DEFAULT_CHUNK);
    };
    let key = ladder_strata_key(values.len(), DEFAULT_CHUNK);
    if let Some(index) = store.get::<StrataIndex>(&key) {
        if index.chunk() == DEFAULT_CHUNK && index.matches(values) {
            return index;
        }
    }
    let index = StrataIndex::build(values, params, DEFAULT_CHUNK);
    store.put(&key, &index);
    index
}

/// Projected footprint of the matrix oracle at `u` segments: the
/// condensed triangle (`u(u-1)/2` f64s) plus the sorted neighbor index
/// (both directions of every pair as padded `(f64, u32)` entries).
fn projected_matrix_bytes(u: usize) -> u64 {
    let u = u as u64;
    u * (u - 1) / 2 * 8 + u * (u - 1) * 16
}

fn rung_line(u: usize, backend: &str, wall: std::time::Duration, eps: f64, count: usize) {
    println!(
        "neighbor_ladder: u={u} backend={backend} wall_ms={:.1} eps={eps:.6} neighbors={count} \
         peak_rss_bytes={}",
        wall.as_secs_f64() * 1e3,
        bench::peak_rss_bytes()
    );
}

/// Like [`rung_line`], for the mixed-length and protocol rungs: tagged
/// with the corpus name so the two ladders never collide in greps.
fn corpus_line(
    name: &str,
    u: usize,
    backend: &str,
    wall: std::time::Duration,
    eps: f64,
    count: usize,
) {
    println!(
        "neighbor_ladder: corpus={name} u={u} backend={backend} wall_ms={:.1} eps={eps:.6} \
         neighbors={count} peak_rss_bytes={}",
        wall.as_secs_f64() * 1e3,
        bench::peak_rss_bytes()
    );
}

/// Runs the full stratified-vs-linear-fallback comparison (plus the
/// batched stratified pass) on one mixed-length corpus, pinning every
/// backend bit-identical and reporting the prune counters and the
/// speedup. Returns `(eps, checksum, count)` so callers can extend the
/// comparison (e.g. with the matrix oracle).
fn run_mixed_corpus(
    name: &str,
    trajectory: &str,
    values: &[&[u8]],
    params: &DissimParams,
    samples: usize,
    threads: usize,
    store: Option<&ArtifactStore>,
) -> (f64, f64, usize) {
    let u = values.len();
    let k_max = required_k_max(u);
    let sample = sample_indices(u, samples);

    // stratified: per-length strata + penalty-aware lower bound. This
    // pass defines ε for the others.
    let counters = Arc::new(QueryCounters::default());
    let start = Instant::now();
    let index = build_strata(values, params, store);
    let strat =
        StratifiedProvider::new(values, params, &index).with_counters(Arc::clone(&counters));
    let (eps, s_sum, s_count) = run_queries(&strat, &sample, k_max, None);
    let strat_wall = start.elapsed();
    corpus_line(name, u, "stratified", strat_wall, eps, s_count);
    let (kernel_evals, pruned, skipped) = counters.snapshot();
    println!(
        "neighbor_ladder: corpus={name} u={u} stratified_counters kernel_evals={kernel_evals} \
         pruned={pruned} strata_skipped={skipped}"
    );
    assert!(
        pruned > 0,
        "stratified backend must prune on the mixed corpus {name} (u={u})"
    );
    bench::append_trajectory(&format!("{trajectory}_stratified"), strat_wall);

    // stratified + batched parallel queries: identical workload through
    // the batch API, pinned bit-identical regardless of worker count.
    let start = Instant::now();
    let (b_sum, b_count) = run_queries_batch(&strat, &sample, k_max, eps, threads);
    let wall = start.elapsed();
    assert_eq!(
        (s_sum.to_bits(), s_count),
        (b_sum.to_bits(), b_count),
        "batched stratified queries diverged from scalar on {name} (u={u})"
    );
    corpus_line(name, u, "stratified+batch", wall, eps, b_count);
    bench::append_trajectory(&format!("{trajectory}_stratified_batch"), wall);

    // vptree-linear: the metricity gate sees mixed lengths and refuses
    // to prune, so this is the exact O(u)-per-query status quo the
    // stratified backend replaces.
    let start = Instant::now();
    let forest = VpForest::build(values, params, DEFAULT_CHUNK);
    let vp = VpProvider::new(values, params, &forest);
    assert!(
        !vp.prunable(),
        "mixed corpus {name} must force the linear fallback (u={u})"
    );
    let (_, l_sum, l_count) = run_queries(&vp, &sample, k_max, Some(eps));
    let linear_wall = start.elapsed();
    assert_eq!(
        (s_sum.to_bits(), s_count),
        (l_sum.to_bits(), l_count),
        "stratified diverged from the linear fallback on {name} (u={u})"
    );
    corpus_line(name, u, "vptree-linear", linear_wall, eps, l_count);
    bench::append_trajectory(&format!("{trajectory}_linear"), linear_wall);
    println!(
        "neighbor_ladder: corpus={name} u={u} stratified_speedup_vs_linear={:.1}x",
        linear_wall.as_secs_f64() / strat_wall.as_secs_f64().max(1e-9)
    );

    (eps, s_sum, s_count)
}

fn fail_usage(message: &str) -> ! {
    eprintln!("error: neighbor_ladder: {message}");
    eprintln!(
        "usage: neighbor_ladder [max_u] [samples] [budget_bytes] [--cache-dir D] \
         [--max-memory BYTES]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut cache_dir: Option<String> = None;
    let mut max_memory: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = Some(v.clone()),
                None => fail_usage("--cache-dir needs a directory"),
            },
            "--max-memory" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_memory = Some(v),
                None => fail_usage("--max-memory needs a byte count"),
            },
            _ => positional.push(arg.clone()),
        }
    }
    let max_u: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let samples: usize = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let budget: Option<u64> = positional.get(2).and_then(|a| a.parse().ok());
    let store = cache_dir.map(|dir| match ArtifactStore::open(&dir) {
        Ok(store) => store,
        Err(e) => fail_usage(&format!("--cache-dir {dir}: {e}")),
    });

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let params = DissimParams::default();

    for &u in LADDER.iter().filter(|&&u| u <= max_u) {
        let segments = uniform_segments(u, CORPUS_SEED);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        let k_max = required_k_max(u);
        let sample = sample_indices(u, samples);

        // vptree: build the forest, then the sampled workload. This
        // rung defines ε for the others.
        let start = Instant::now();
        let forest = build_forest(&values, &params, store.as_ref());
        let vp = VpProvider::new(&values, &params, &forest);
        assert!(vp.prunable(), "uniform corpus must take the pruned path");
        let (eps, vp_sum, vp_count) = run_queries(&vp, &sample, k_max, None);
        let wall = start.elapsed();
        rung_line(u, "vptree", wall, eps, vp_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_vptree"), wall);

        // vptree + SWAR fast path: same forest, pinned bit-identical.
        let start = Instant::now();
        let swar = VpProvider::new(&values, &params, &forest).with_swar(true);
        let (_, swar_sum, swar_count) = run_queries(&swar, &sample, k_max, Some(eps));
        let wall = start.elapsed();
        assert_eq!(
            (vp_sum.to_bits(), vp_count),
            (swar_sum.to_bits(), swar_count),
            "SWAR fast path diverged at u={u}"
        );
        rung_line(u, "vptree+swar", wall, eps, swar_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_swar"), wall);

        // vptree + batched parallel queries: the identical workload
        // answered through the batch API, pinned bit-identical to the
        // scalar pass above regardless of worker count.
        let start = Instant::now();
        let (batch_sum, batch_count) = run_queries_batch(&vp, &sample, k_max, eps, threads);
        let wall = start.elapsed();
        assert_eq!(
            (vp_sum.to_bits(), vp_count),
            (batch_sum.to_bits(), batch_count),
            "batched queries diverged from scalar at u={u}"
        );
        rung_line(u, "vptree+batch", wall, eps, batch_count);
        bench::append_trajectory(&format!("neighbor_ladder_u{u}_vptree_batch"), wall);

        // matrix oracle: only where the triangle fits comfortably,
        // never in budget mode (the budget pins the matrix-free path),
        // and never when its *projected* footprint would blow a
        // `--max-memory` cap — the guard fires before a byte of the
        // triangle is allocated.
        let projected = projected_matrix_bytes(u);
        let over_cap = max_memory.is_some_and(|cap| projected > cap);
        if over_cap {
            println!(
                "neighbor_ladder: u={u} backend=matrix skipped (projected {projected} bytes \
                 exceeds --max-memory {})",
                max_memory.unwrap_or(0)
            );
        } else if u <= MATRIX_CAP && budget.is_none() {
            let start = Instant::now();
            let matrix = CondensedMatrix::build_segments(&values, &params, threads);
            let index = NeighborIndex::build_parallel(&matrix, threads);
            let indexed = IndexedProvider::new(&matrix, &index);
            let (_, m_sum, m_count) = run_queries(&indexed, &sample, k_max, Some(eps));
            let wall = start.elapsed();
            assert_eq!(
                (vp_sum.to_bits(), vp_count),
                (m_sum.to_bits(), m_count),
                "vptree diverged from the matrix oracle at u={u}"
            );
            rung_line(u, "matrix", wall, eps, m_count);
            bench::append_trajectory(&format!("neighbor_ladder_u{u}_matrix"), wall);
        } else {
            println!("neighbor_ladder: u={u} backend=matrix skipped (cap {MATRIX_CAP})");
        }
    }

    // Mixed-length ladder: the corpora where the penalized dissimilarity
    // is non-metric and the classic forest degrades to a linear scan.
    for &u in MIXED_LADDER.iter().filter(|&&u| u <= max_u) {
        let segments = mixed_segments(u, MIXED_SEED);
        let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
        let (eps, s_sum, s_count) = run_mixed_corpus(
            "mixed",
            &format!("neighbor_ladder_mixed_u{u}"),
            &values,
            &params,
            samples,
            threads,
            store.as_ref(),
        );

        // matrix oracle: same guards as the classic ladder — never in
        // budget mode, never past the cap or a projected-memory limit.
        let projected = projected_matrix_bytes(u);
        if max_memory.is_some_and(|cap| projected > cap) {
            println!(
                "neighbor_ladder: corpus=mixed u={u} backend=matrix skipped (projected \
                 {projected} bytes exceeds --max-memory {})",
                max_memory.unwrap_or(0)
            );
        } else if u <= MATRIX_CAP && budget.is_none() {
            let k_max = required_k_max(u);
            let sample = sample_indices(u, samples);
            let start = Instant::now();
            let matrix = CondensedMatrix::build_segments(&values, &params, threads);
            let index = NeighborIndex::build_parallel(&matrix, threads);
            let indexed = IndexedProvider::new(&matrix, &index);
            let (_, m_sum, m_count) = run_queries(&indexed, &sample, k_max, Some(eps));
            let wall = start.elapsed();
            assert_eq!(
                (s_sum.to_bits(), s_count),
                (m_sum.to_bits(), m_count),
                "stratified diverged from the matrix oracle at mixed u={u}"
            );
            corpus_line("mixed", u, "matrix", wall, eps, m_count);
            bench::append_trajectory(&format!("neighbor_ladder_mixed_u{u}_matrix"), wall);
        } else {
            println!(
                "neighbor_ladder: corpus=mixed u={u} backend=matrix skipped (cap {MATRIX_CAP})"
            );
        }
    }

    // Real NEMESYS-segmented protocol corpora: the deduplicated segment
    // values of three generated traces, run through the same
    // stratified-vs-linear comparison. Skipped in budget mode — the
    // budget pins the synthetic ladder's footprint, not trace
    // generation and segmentation.
    if budget.is_none() {
        for proto in [Protocol::Ntp, Protocol::Nbns, Protocol::Smb] {
            let name = proto.to_string();
            let trace = corpus::build_trace(proto, 400, MIXED_SEED);
            let segmentation = match Nemesys::default().segment_trace(&trace) {
                Ok(s) => s,
                Err(e) => {
                    println!("neighbor_ladder: corpus={name} skipped ({e})");
                    continue;
                }
            };
            // First-occurrence dedup, mirroring the pipeline's global
            // segment de-duplication.
            let mut seen = std::collections::HashSet::new();
            let mut segments: Vec<Vec<u8>> = Vec::new();
            for (msg, segs) in trace.messages().iter().zip(&segmentation.messages) {
                for r in segs.ranges() {
                    let v = msg.payload()[r.clone()].to_vec();
                    if seen.insert(v.clone()) {
                        segments.push(v);
                    }
                }
            }
            let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
            if values.len() < 2 {
                println!("neighbor_ladder: corpus={name} skipped (too few unique segments)");
                continue;
            }
            run_mixed_corpus(
                &name,
                &format!("neighbor_ladder_{name}"),
                &values,
                &params,
                samples,
                threads,
                None,
            );
        }
    }

    if let Some(store) = &store {
        println!("neighbor_ladder: cache {}", store.stats());
    }
    let rss = bench::peak_rss_bytes();
    println!("neighbor_ladder: done peak_rss_bytes={rss}");
    if let Some(budget) = budget {
        if rss > budget {
            eprintln!("neighbor_ladder: peak RSS {rss} exceeds budget {budget}");
            std::process::exit(1);
        }
        println!("neighbor_ladder: peak RSS within budget ({rss} <= {budget})");
    }
}
