//! Visual analytics (paper §V): a 2-D map of the segment space.
//!
//! Embeds the unique segments of a trace with classical MDS over their
//! Canberra dissimilarities and renders an SVG scatter, one color per
//! pseudo data type — the "islands" an analyst would explore.
//!
//! Usage: `cargo run --release -p bench --bin segmap -- [protocol] [messages]`

use bench::plot::{Plot, Series};
use cluster::dbscan::Label;
use fieldclust::truth::truth_segmentation;
use fieldclust::{AnalysisSession, FieldTypeClusterer};
use mathkit::mds::classical_mds;
use protocols::{corpus, Protocol};

const COLORS: [&str; 10] = [
    "steelblue",
    "darkorange",
    "seagreen",
    "crimson",
    "mediumpurple",
    "sienna",
    "hotpink",
    "teal",
    "olive",
    "navy",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let protocol = Protocol::from_name(args.get(1).map(|s| s.as_str()).unwrap_or("ntp"))
        .expect("unknown protocol");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let trace = corpus::build_trace(protocol, n, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(protocol, &trace);
    let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    let store = bench::attach_cache_from_args(&mut session, &args);
    session.set_segmentation(truth_segmentation(&trace, &gt));
    let result = session.finish().expect("pipeline");

    // The session already built the matrix for clustering — reuse it.
    let matrix = session.matrix().expect("pipeline");
    eprintln!("embedding {} unique segments…", matrix.len());
    let embedding = classical_mds(matrix.len(), 2, |i, j| matrix.get(i, j)).expect("embedding");

    // One scatter series per cluster, plus noise in gray.
    let mut series: Vec<Series> = Vec::new();
    for (id, members) in result.clustering.clusters().iter().enumerate() {
        series.push(Series {
            label: format!("type {id} ({} segs)", members.len()),
            points: members
                .iter()
                .map(|&m| (embedding.coords[m][0], embedding.coords[m][1]))
                .collect(),
            color: COLORS[id % COLORS.len()].to_string(),
            scatter: true,
        });
    }
    let noise: Vec<(f64, f64)> = result
        .clustering
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| (embedding.coords[i][0], embedding.coords[i][1]))
        .collect();
    if !noise.is_empty() {
        series.push(Series {
            label: format!("noise ({})", noise.len()),
            points: noise,
            color: "silver".to_string(),
            scatter: true,
        });
    }

    let plot = Plot {
        title: format!("Segment map: {protocol} ({n} messages) — MDS of Canberra dissimilarities"),
        x_label: "MDS axis 1".to_string(),
        y_label: "MDS axis 2".to_string(),
        series,
        v_lines: Vec::new(),
    };
    let path = format!("target/segmap-{protocol}.svg");
    std::fs::write(&path, plot.to_svg()).expect("write svg");
    println!(
        "segment map written to {path} ({} pseudo data types, eigenvalues {:.2}/{:.2})",
        result.clustering.n_clusters(),
        embedding.eigenvalues[0],
        embedding.eigenvalues[1]
    );
    bench::report_cache(store.as_ref());
}
