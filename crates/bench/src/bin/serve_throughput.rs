//! Loopback throughput ladder for the `ftcd` daemon.
//!
//! Each rung starts a fresh in-process daemon and drives it with
//! `c` concurrent clients over real TCP. Every client submits its own
//! synthetic capture of `m` messages, then runs `1 + a` analysis
//! rounds: the first on the freshly submitted trace, each later one
//! after an `AppendMessages` growing the trace — so the rung exercises
//! cold submit, warm re-analysis, and the append/invalidate path
//! together. Per-rung walls and jobs/second are printed and each rung
//! is upserted into `BENCH_trajectory.json` under its own
//! `serve_throughput{c=..,m=..,a=..}` name, giving the trajectory a
//! real surface instead of a single point.
//!
//! Run with:
//! `cargo run --release -p bench --bin serve_throughput -- [clients_csv] [messages_csv] [appends_csv]`
//! (defaults: `1,2,4` × `40,80` × `0,2`)

use bench::append_trajectory;
use protocols::{corpus, Protocol};
use serve::{Client, JobState, ServerConfig};
use std::time::{Duration, Instant};
use trace::pcap;

fn csv_arg(args: &[String], i: usize, default: &[usize]) -> Vec<usize> {
    match args.get(i) {
        None => default.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().expect("ladder values are numbers"))
            .collect(),
    }
}

fn run_rung(clients: usize, messages: usize, appends: usize) -> Duration {
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let handle = serve::start(ServerConfig {
        workers,
        queue_capacity: clients.max(4) * 2,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();

    let protocols = [
        Protocol::Ntp,
        Protocol::Dns,
        Protocol::Dhcp,
        Protocol::Nbns,
        Protocol::Smb,
    ];
    let run_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            let protocol = protocols[c % protocols.len()];
            scope.spawn(move || {
                let seed = 40 + c as u64;
                let trace = corpus::build_trace(protocol, messages, seed);
                let bytes = pcap::write_to_vec(&trace).expect("encode capture");
                let mut client = Client::connect(&addr).expect("connect");
                let (trace_id, n) = client
                    .submit_trace(&format!("{protocol:?}-{c}"), bytes, None, None, false)
                    .expect("submit");
                assert!(n > 0);
                for round in 0..=appends {
                    if round > 0 {
                        // Each append grows the trace with a fresh
                        // slice, invalidating the warm session so the
                        // next analysis takes the incremental path.
                        let extra =
                            corpus::build_trace(protocol, messages / 2, seed + 100 * round as u64);
                        let extra_bytes = pcap::write_to_vec(&extra).expect("encode append");
                        client
                            .append_messages(trace_id, extra_bytes)
                            .expect("append");
                    }
                    let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
                    match client.wait_for(job, Duration::from_millis(10)) {
                        Ok(JobState::Done { report }) => assert!(!report.is_empty()),
                        other => panic!("client {c} round {round}: {other:?}"),
                    }
                }
            });
        }
    });
    let wall = run_start.elapsed();

    let mut client = Client::connect(&addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let jobs = stats.jobs_completed;
    let expected = clients * (1 + appends);
    assert_eq!(jobs as usize, expected, "every job must complete");
    println!(
        "  c={clients} m={messages} a={appends}: {jobs} jobs in {:.3}s = {:.2} jobs/s \
         (rejected {}, evictions {})",
        wall.as_secs_f64(),
        jobs as f64 / wall.as_secs_f64(),
        stats.jobs_rejected,
        stats.session_evictions,
    );
    client.shutdown().expect("shutdown");
    handle.wait();
    wall
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients = csv_arg(&args, 0, &[1, 2, 4]);
    let messages = csv_arg(&args, 1, &[40, 80]);
    let appends = csv_arg(&args, 2, &[0, 2]);
    println!(
        "serve_throughput ladder: clients {clients:?} × messages {messages:?} × appends {appends:?}"
    );
    for &m in &messages {
        for &a in &appends {
            for &c in &clients {
                let wall = run_rung(c, m, a);
                append_trajectory(&format!("serve_throughput{{c={c},m={m},a={a}}}"), wall);
            }
        }
    }
}
