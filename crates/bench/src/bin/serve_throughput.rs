//! Loopback throughput harness for the `ftcd` daemon.
//!
//! Starts an in-process daemon, then drives it with concurrent clients
//! over real TCP: each client submits its own synthetic capture,
//! requests an analysis, and polls to completion — twice, so the
//! second round measures the warm-session path. Prints per-phase
//! daemon stage timings and jobs/second, and appends a record to
//! `BENCH_trajectory.json` like every other harness.
//!
//! Run with:
//! `cargo run --release -p bench --bin serve_throughput -- [messages] [clients]`

use bench::append_trajectory;
use protocols::{corpus, Protocol};
use serve::{Client, JobState, ServerConfig};
use std::time::{Duration, Instant};
use trace::pcap;

fn main() {
    let bench_start = Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let messages: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(60);
    let clients: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let handle = serve::start(ServerConfig {
        workers,
        queue_capacity: clients.max(4) * 2,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    println!(
        "daemon on {addr}: {workers} workers, {clients} clients × {messages} messages × 2 rounds"
    );

    let protocols = [
        Protocol::Ntp,
        Protocol::Dns,
        Protocol::Dhcp,
        Protocol::Nbns,
        Protocol::Smb,
    ];
    let run_start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            let protocol = protocols[c % protocols.len()];
            scope.spawn(move || {
                let trace = corpus::build_trace(protocol, messages, 40 + c as u64);
                let bytes = pcap::write_to_vec(&trace).expect("encode capture");
                let mut client = Client::connect(&addr).expect("connect");
                let (trace_id, n) = client
                    .submit_trace(&format!("{protocol:?}-{c}"), bytes, None, None, false)
                    .expect("submit");
                assert!(n > 0);
                for round in 0..2 {
                    let job = client.analyze(trace_id, "nemesys", 0).expect("analyze");
                    match client.wait_for(job, Duration::from_millis(10)) {
                        Ok(JobState::Done { report }) => assert!(!report.is_empty()),
                        other => panic!("client {c} round {round}: {other:?}"),
                    }
                }
            });
        }
    });
    let wall = run_start.elapsed();

    let mut client = Client::connect(&addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let jobs = stats.jobs_completed;
    println!(
        "{jobs} jobs in {:.3}s = {:.2} jobs/s (rejected {}, cancelled {})",
        wall.as_secs_f64(),
        jobs as f64 / wall.as_secs_f64(),
        stats.jobs_rejected,
        stats.jobs_cancelled,
    );
    println!("daemon counters:\n{stats}");
    assert_eq!(jobs as usize, clients * 2, "every job must complete");
    client.shutdown().expect("shutdown");
    handle.wait();

    append_trajectory("serve_throughput", bench_start.elapsed());
}
