//! Streaming-ingestion ladder: batches × batch-size × sampling on/off.
//!
//! Each rung drives a [`ingest::StreamSession`] the way `fieldclust
//! follow` does — `b` batches of `n` synthetic NTP messages pushed and
//! flushed through a warm artifact store — once with sampling off and
//! once with a stratified reservoir cap of `n` (so the admitted set
//! stays one batch wide no matter how many arrive). Per-rung walls,
//! final drift, and peak RSS are printed, and every rung is upserted
//! into `BENCH_trajectory.json` under its own
//! `stream_ladder{b=..,n=..,s=..}` name.
//!
//! Run with:
//! `cargo run --release -p bench --bin stream_ladder -- [batches_csv] [batch_msgs_csv]`
//! (defaults: `2,4` × `50,100`)

use bench::append_trajectory;
use fieldclust::{ArtifactStore, FieldTypeClusterer};
use ingest::{peak_rss_bytes, PrepareOpts, SampleConfig, StreamConfig, StreamSession};
use protocols::{corpus, Protocol};
use std::time::Instant;

fn csv_arg(args: &[String], i: usize, default: &[usize]) -> Vec<usize> {
    match args.get(i) {
        None => default.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().expect("ladder values are numbers"))
            .collect(),
    }
}

fn run_rung(batches: usize, batch_msgs: usize, sample: usize) -> std::time::Duration {
    let dir = std::env::temp_dir().join(format!(
        "stream-ladder-{}-{batches}-{batch_msgs}-{sample}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("open store");
    let mut session = StreamSession::new(
        StreamConfig {
            prepare: PrepareOpts::default(),
            segmenter: "nemesys".to_string(),
            clusterer: FieldTypeClusterer::default(),
            sample: SampleConfig {
                max: sample,
                seed: 1,
            },
            fsm: false,
        },
        Some(store),
    );
    let trace = corpus::build_trace(Protocol::Ntp, batches * batch_msgs, 7);
    let msgs = trace.messages().to_vec();
    let start = Instant::now();
    for slice in msgs.chunks(batch_msgs) {
        session.push(slice.to_vec());
        session
            .flush()
            .expect("flush")
            .expect("every slice is a batch");
    }
    let wall = start.elapsed();
    let last = session.records().last().expect("at least one batch");
    println!(
        "  b={batches} n={batch_msgs} sample={sample}: {:.3}s, final batch {} msgs / {} clusters \
         (ari {:.3}, births {}, deaths {}), peak rss {} MiB",
        wall.as_secs_f64(),
        last.messages,
        last.clusters,
        last.delta.ari,
        last.delta.births,
        last.delta.deaths,
        peak_rss_bytes() >> 20,
    );
    if sample > 0 {
        assert!(
            last.messages as usize <= sample,
            "reservoir must cap the admitted set"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    wall
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let batches = csv_arg(&args, 0, &[2, 4]);
    let batch_msgs = csv_arg(&args, 1, &[50, 100]);
    println!("stream_ladder: batches {batches:?} × batch-msgs {batch_msgs:?} × sampling off/on");
    assert!(peak_rss_bytes() > 0, "VmHWM must be readable");
    for &b in &batches {
        for &n in &batch_msgs {
            for sample in [0, n] {
                let wall = run_rung(b, n, sample);
                append_trajectory(&format!("stream_ladder{{b={b},n={n},s={sample}}}"), wall);
            }
        }
    }
}
