//! Regenerates **Table I**: clustering statistics for data type
//! clustering from ground-truth segmentation.
//!
//! Paper columns: protocol, messages, unique fields, auto-configured ε,
//! precision, recall, F¼. Run with:
//! `cargo run --release -p bench --bin table1`

use bench::{dump_json, render_row, run_truth, RunRecord, ROW_HEADER};
use fieldclust::FieldTypeClusterer;
use protocols::corpus;

fn main() {
    let bench_start = std::time::Instant::now();
    let clusterer = FieldTypeClusterer::default();
    let mut records: Vec<RunRecord> = Vec::new();

    println!("TABLE I — clustering from ground-truth segments");
    println!("{ROW_HEADER}");
    for spec in corpus::large_specs()
        .into_iter()
        .chain(corpus::small_specs())
    {
        let start = std::time::Instant::now();
        match run_truth(&spec, &clusterer) {
            Ok(record) => {
                println!("{}   [{:.1?}]", render_row(&record), start.elapsed());
                records.push(record);
            }
            // Skip the row, keep the table: one broken spec must not
            // sink the whole regeneration run.
            Err(e) => eprintln!("skipping row: {e}"),
        }
    }
    dump_json("target/table1.json", &records);
    bench::append_trajectory("table1", bench_start.elapsed());
}
