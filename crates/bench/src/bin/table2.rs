//! Regenerates **Table II**: combinatorial clustering statistics and
//! coverage for pseudo data types of heuristic segments, for the three
//! segmenters Netzob, NEMESYS and CSP — including the paper's "fails"
//! cells, reproduced via the segmenters' work budgets.
//!
//! Run with: `cargo run --release -p bench --bin table2`

use bench::{dump_json, render_row, run_segmenter, RunOutcome};
use fieldclust::FieldTypeClusterer;
use protocols::corpus;
use segment::csp::Csp;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::Segmenter;
use serde::Serialize;

#[derive(Serialize)]
struct Table2Cell {
    segmenter: String,
    outcome: Option<bench::RunRecord>,
    fails: bool,
}

fn main() {
    let bench_start = std::time::Instant::now();
    let clusterer = FieldTypeClusterer::default();
    let segmenters: Vec<Box<dyn Segmenter>> = vec![
        Box::new(Netzob::default()),
        Box::new(Nemesys::default()),
        Box::new(Csp::default()),
    ];
    let mut cells: Vec<Table2Cell> = Vec::new();

    println!("TABLE II — clustering from heuristic segments");
    for spec in corpus::large_specs()
        .into_iter()
        .chain(corpus::small_specs())
    {
        println!("--- {} ({} msgs) ---", spec.protocol, spec.messages);
        for segmenter in &segmenters {
            let start = std::time::Instant::now();
            match run_segmenter(&spec, segmenter.as_ref(), &clusterer) {
                // Skip the cell, keep the table.
                Err(e) => eprintln!("  {:8} skipped: {e}", segmenter.name()),
                Ok(RunOutcome::Done(record)) => {
                    println!(
                        "  {:8} {}   [{:.1?}]",
                        segmenter.name(),
                        render_row(&record),
                        start.elapsed()
                    );
                    cells.push(Table2Cell {
                        segmenter: segmenter.name().to_string(),
                        outcome: Some(*record),
                        fails: false,
                    });
                }
                Ok(RunOutcome::Fails(e)) => {
                    println!("  {:8} fails ({e})", segmenter.name());
                    cells.push(Table2Cell {
                        segmenter: segmenter.name().to_string(),
                        outcome: None,
                        fails: true,
                    });
                }
            }
        }
    }
    dump_json("target/table2.json", &cells);
    bench::append_trajectory("table2", bench_start.elapsed());
}
