//! Peak-memory smoke harness for the tiled dissimilarity build.
//!
//! Streams the tiled build over a mixed-length segment corpus without
//! ever materializing the full condensed matrix: each tile is computed,
//! folded into the k-NN accumulator, and dropped — peak memory is
//! O(tile) + O(u·k) instead of O(u²). Prints the peak RSS and, when a
//! byte budget is given, exits nonzero if the process exceeded it (the
//! `scripts/check.sh` RSS smoke check drives this, preferring
//! `/usr/bin/time -v` where available and falling back to this
//! self-report).
//!
//! Run with:
//! `cargo run --release -p bench --bin tiledmem -- [u] [tile_rows] [budget_bytes]`

use cluster::autoconf::required_k_max;
use dissim::{DissimParams, KnnAccumulator, TiledMatrix};
use rand::{Rng, SeedableRng, StdRng};

/// Same corpus shape as the `canberra_kernel` / `tiled_matrix` benches.
fn mixed_segments(u: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut segments = Vec::with_capacity(u);
    for _ in 0..u {
        let seg: Vec<u8> = match rng.gen_range(0usize..10) {
            0 | 1 => vec![rng.gen_range(0u8..8), rng.gen()],
            2 | 3 => vec![0x00, 0x01, rng.gen(), rng.gen()],
            4..=6 => {
                let mut ts = vec![0xD2, 0x3D, 0x19, rng.gen_range(0u8..4)];
                ts.extend((0..4).map(|_| rng.gen::<u8>()));
                ts
            }
            7 => (0..16).map(|_| rng.gen::<u8>()).collect(),
            _ => {
                let len = rng.gen_range(3usize..32);
                (0..len).map(|_| rng.gen_range(b'a'..=b'z')).collect()
            }
        };
        segments.push(seg);
    }
    segments
}

fn main() {
    let bench_start = std::time::Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let u: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let tile_rows: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(256);
    let budget: Option<u64> = args.get(2).and_then(|a| a.parse().ok());

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let segments = mixed_segments(u, 7);
    let values: Vec<&[u8]> = segments.iter().map(|s| &s[..]).collect();
    let params = DissimParams::default();
    let k_max = required_k_max(u);

    let mut acc = KnnAccumulator::new(u, k_max);
    let mut tiles = 0usize;
    TiledMatrix::stream_segments(
        &values,
        &params,
        tile_rows,
        threads,
        |_, _| None,
        |_, tile, _| {
            acc.consume_tile(&tile);
            tiles += 1;
        },
    );
    let table = acc.finish();
    // Touch the result so the whole chain stays observable.
    let checksum: f64 = (0..u.min(8)).map(|i| table.kth(i, 1)).sum();

    let rss = bench::peak_rss_bytes();
    let tile_bytes = 8 * tile_rows * u;
    println!(
        "tiledmem: u={u} tile_rows={tile_rows} tiles={tiles} k_max={k_max} \
         tile_bytes={tile_bytes} peak_rss_bytes={rss} knn1_sum={checksum:.6}"
    );
    bench::append_trajectory("tiledmem", bench_start.elapsed());
    if let Some(budget) = budget {
        if rss > budget {
            eprintln!("tiledmem: peak RSS {rss} exceeds budget {budget}");
            std::process::exit(1);
        }
        println!("tiledmem: peak RSS within budget ({rss} <= {budget})");
    }
}
