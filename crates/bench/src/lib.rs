//! Shared harness code for the paper-reproduction binaries.
//!
//! Each binary regenerates one table or figure of the evaluation
//! (DESIGN.md §3): `table1`, `table2`, `fig2`, `fig3`, `coverage`. The
//! helpers here run the pipeline for a corpus spec and render rows.

pub mod plot;

use fieldclust::{evaluate, truth, Evaluation, FieldTypeClusterer};
use protocols::corpus::CorpusSpec;
use protocols::{corpus, Protocol};
use segment::{SegmentError, Segmenter, TraceSegmentation};
use serde::Serialize;
use trace::Trace;

/// One rendered cell of Table I/II.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Protocol name.
    pub protocol: String,
    /// Messages in the trace.
    pub messages: usize,
    /// Unique clusterable segments ("fields" column of Table I).
    pub segments: usize,
    /// Auto-configured ε.
    pub epsilon: f64,
    /// Pairwise precision.
    pub precision: f64,
    /// Pairwise recall.
    pub recall: f64,
    /// F¼ score.
    pub f_score: f64,
    /// Byte coverage.
    pub coverage: f64,
    /// Number of clusters.
    pub clusters: u32,
    /// Unique segments labelled noise.
    pub noise: usize,
}

impl RunRecord {
    /// Builds a record from an evaluation.
    pub fn from_eval(spec: &CorpusSpec, eval: &Evaluation) -> Self {
        Self {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            segments: eval.n_segments,
            epsilon: eval.epsilon,
            precision: eval.metrics.precision,
            recall: eval.metrics.recall,
            f_score: eval.metrics.f_score,
            coverage: eval.coverage.ratio(),
            clusters: eval.n_clusters,
            noise: eval.n_noise,
        }
    }
}

/// Outcome of one (segmenter, trace) run.
#[derive(Debug)]
pub enum RunOutcome {
    /// The pipeline completed.
    Done(Box<RunRecord>),
    /// The segmenter exceeded its work budget (a "fails" table cell).
    Fails(SegmentError),
}

/// Builds the corpus trace and ground truth for a spec.
pub fn prepare(spec: &CorpusSpec) -> (Trace, Vec<Vec<protocols::TrueField>>) {
    let trace = spec.build();
    let gt = corpus::ground_truth(spec.protocol, &trace);
    (trace, gt)
}

/// Runs the pipeline on the ground-truth segmentation (Table I).
pub fn run_truth(spec: &CorpusSpec, clusterer: &FieldTypeClusterer) -> RunRecord {
    let (trace, gt) = prepare(spec);
    let segmentation = truth::truth_segmentation(&trace, &gt);
    run_on(spec, clusterer, &trace, &gt, &segmentation)
}

/// Runs the pipeline on a heuristic segmentation (Table II).
pub fn run_segmenter(
    spec: &CorpusSpec,
    segmenter: &dyn Segmenter,
    clusterer: &FieldTypeClusterer,
) -> RunOutcome {
    let (trace, gt) = prepare(spec);
    match segmenter.segment_trace(&trace) {
        Err(e) => RunOutcome::Fails(e),
        Ok(segmentation) => RunOutcome::Done(Box::new(run_on(
            spec,
            clusterer,
            &trace,
            &gt,
            &segmentation,
        ))),
    }
}

fn run_on(
    spec: &CorpusSpec,
    clusterer: &FieldTypeClusterer,
    trace: &Trace,
    gt: &[Vec<protocols::TrueField>],
    segmentation: &TraceSegmentation,
) -> RunRecord {
    let result = clusterer
        .cluster_trace(trace, segmentation)
        .unwrap_or_else(|e| panic!("{} ({} msgs): {e}", spec.protocol, spec.messages));
    let eval: Evaluation = evaluate(&result, trace, gt);
    RunRecord::from_eval(spec, &eval)
}

/// Formats a table row like the paper prints them.
pub fn render_row(r: &RunRecord) -> String {
    format!(
        "{:6} {:5} {:6} {:7.3} {:5.2} {:5.2} {:5.2} {:5.0}%  ({} clusters, {} noise)",
        r.protocol,
        r.messages,
        r.segments,
        r.epsilon,
        r.precision,
        r.recall,
        r.f_score,
        r.coverage * 100.0,
        r.clusters,
        r.noise
    )
}

/// Header matching [`render_row`].
pub const ROW_HEADER: &str = "proto  msgs  fields  eps     P     R     F1/4  cov";

/// Writes records as JSON next to the printed table so EXPERIMENTS.md
/// entries can be regenerated.
pub fn dump_json<T: Serialize>(path: &str, records: &T) {
    match serde_json::to_string_pretty(records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("(records written to {path})");
            }
        }
        Err(e) => eprintln!("warning: could not serialize records: {e}"),
    }
}

/// All protocols that have IP context (FieldHunter-able).
pub const CONTEXT_PROTOCOLS: [Protocol; 5] = [
    Protocol::Dhcp,
    Protocol::Dns,
    Protocol::Nbns,
    Protocol::Ntp,
    Protocol::Smb,
];
