//! Shared harness code for the paper-reproduction binaries.
//!
//! Each binary regenerates one table or figure of the evaluation
//! (DESIGN.md §3): `table1`, `table2`, `fig2`, `fig3`, `coverage`. The
//! helpers here run the pipeline for a corpus spec and render rows.

pub mod plot;

use fieldclust::{evaluate, truth, Evaluation, FieldTypeClusterer};
use protocols::corpus::CorpusSpec;
use protocols::{corpus, Protocol};
use segment::{SegmentError, Segmenter, TraceSegmentation};
use serde::Serialize;
use trace::Trace;

/// One rendered cell of Table I/II.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Protocol name.
    pub protocol: String,
    /// Messages in the trace.
    pub messages: usize,
    /// Unique clusterable segments ("fields" column of Table I).
    pub segments: usize,
    /// Auto-configured ε.
    pub epsilon: f64,
    /// Pairwise precision.
    pub precision: f64,
    /// Pairwise recall.
    pub recall: f64,
    /// F¼ score.
    pub f_score: f64,
    /// Byte coverage.
    pub coverage: f64,
    /// Number of clusters.
    pub clusters: u32,
    /// Unique segments labelled noise.
    pub noise: usize,
}

impl RunRecord {
    /// Builds a record from an evaluation.
    pub fn from_eval(spec: &CorpusSpec, eval: &Evaluation) -> Self {
        Self {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            segments: eval.n_segments,
            epsilon: eval.epsilon,
            precision: eval.metrics.precision,
            recall: eval.metrics.recall,
            f_score: eval.metrics.f_score,
            coverage: eval.coverage.ratio(),
            clusters: eval.n_clusters,
            noise: eval.n_noise,
        }
    }
}

/// Outcome of one (segmenter, trace) run.
#[derive(Debug)]
pub enum RunOutcome {
    /// The pipeline completed.
    Done(Box<RunRecord>),
    /// The segmenter exceeded its work budget (a "fails" table cell).
    Fails(SegmentError),
}

/// A pipeline failure on one corpus spec, carrying enough context to
/// skip the row and keep the table generation going.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Protocol of the failing spec.
    pub protocol: String,
    /// Messages in the failing spec.
    pub messages: usize,
    /// The rendered pipeline error.
    pub error: String,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} msgs): {}",
            self.protocol, self.messages, self.error
        )
    }
}

impl std::error::Error for RunError {}

/// Builds the corpus trace and ground truth for a spec.
pub fn prepare(spec: &CorpusSpec) -> (Trace, Vec<Vec<protocols::TrueField>>) {
    let trace = spec.build();
    let gt = corpus::ground_truth(spec.protocol, &trace);
    (trace, gt)
}

/// Runs the pipeline on the ground-truth segmentation (Table I).
pub fn run_truth(spec: &CorpusSpec, clusterer: &FieldTypeClusterer) -> Result<RunRecord, RunError> {
    let (trace, gt) = prepare(spec);
    let segmentation = truth::truth_segmentation(&trace, &gt);
    run_on(spec, clusterer, &trace, &gt, &segmentation)
}

/// Runs the pipeline on a heuristic segmentation (Table II).
pub fn run_segmenter(
    spec: &CorpusSpec,
    segmenter: &dyn Segmenter,
    clusterer: &FieldTypeClusterer,
) -> Result<RunOutcome, RunError> {
    let (trace, gt) = prepare(spec);
    match segmenter.segment_trace(&trace) {
        Err(e) => Ok(RunOutcome::Fails(e)),
        Ok(segmentation) => Ok(RunOutcome::Done(Box::new(run_on(
            spec,
            clusterer,
            &trace,
            &gt,
            &segmentation,
        )?))),
    }
}

fn run_on(
    spec: &CorpusSpec,
    clusterer: &FieldTypeClusterer,
    trace: &Trace,
    gt: &[Vec<protocols::TrueField>],
    segmentation: &TraceSegmentation,
) -> Result<RunRecord, RunError> {
    let result = clusterer
        .cluster_trace(trace, segmentation)
        .map_err(|e| RunError {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            error: e.to_string(),
        })?;
    let eval: Evaluation = evaluate(&result, trace, gt);
    Ok(RunRecord::from_eval(spec, &eval))
}

/// Formats a table row like the paper prints them.
pub fn render_row(r: &RunRecord) -> String {
    format!(
        "{:6} {:5} {:6} {:7.3} {:5.2} {:5.2} {:5.2} {:5.0}%  ({} clusters, {} noise)",
        r.protocol,
        r.messages,
        r.segments,
        r.epsilon,
        r.precision,
        r.recall,
        r.f_score,
        r.coverage * 100.0,
        r.clusters,
        r.noise
    )
}

/// Header matching [`render_row`].
pub const ROW_HEADER: &str = "proto  msgs  fields  eps     P     R     F1/4  cov";

/// Writes records as JSON next to the printed table so EXPERIMENTS.md
/// entries can be regenerated.
pub fn dump_json<T: Serialize>(path: &str, records: &T) {
    match serde_json::to_string_pretty(records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("(records written to {path})");
            }
        }
        Err(e) => eprintln!("warning: could not serialize records: {e}"),
    }
}

/// One entry of the unified benchmark trajectory
/// (`BENCH_trajectory.json`): which harness ran, at which commit, how
/// long it took, and its peak RSS. Every bench binary appends one on
/// exit, so regressions across commits show up in a single file.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryRecord {
    /// Harness name (the bench binary).
    pub name: String,
    /// `git rev-parse HEAD` at run time, or `"unknown"`.
    pub commit: String,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Peak resident set size of the process (`VmHWM`), in bytes.
    pub peak_rss_bytes: u64,
}

/// The commit hash of the working tree, or `"unknown"` outside git.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Appends one run record to `BENCH_trajectory.json` (a single JSON
/// array, created on first use) in the current directory. Read-modify-
/// write through the tolerant reader: well-formed existing records are
/// preserved, malformed ones are skipped with a warning instead of
/// discarding the whole history. The file is compacted as it grows:
/// re-running a harness at the same commit replaces its previous record
/// (see [`upsert_trajectory_record`]), so the trajectory holds one —
/// the latest — measurement per `(name, commit)` instead of an
/// unbounded append log. Failures only warn — benchmarks never fail on
/// bookkeeping.
pub fn append_trajectory(name: &str, wall: std::time::Duration) {
    let path = "BENCH_trajectory.json";
    let record = TrajectoryRecord {
        name: name.to_string(),
        commit: git_commit(),
        wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
        peak_rss_bytes: peak_rss_bytes(),
    };
    let existing = match std::fs::read_to_string(path) {
        Ok(text) => {
            let (records, skipped) = read_trajectory(&text);
            if skipped > 0 {
                eprintln!("warning: skipping {skipped} malformed record(s) in {path}");
            }
            records
        }
        Err(_) => Vec::new(),
    };
    let records = upsert_trajectory_record(existing, record);
    let body = match serde_json::to_string_pretty(&records) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warning: could not serialize trajectory records: {e}");
            return;
        }
    };
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(trajectory appended to {path}: {name})");
    }
}

/// Compacts-and-appends: drops every existing record sharing the new
/// record's `(name, commit)` — re-runs of one harness at one commit
/// keep only the latest measurement — then appends the new record.
/// Records of other harnesses or other commits are untouched, so the
/// cross-commit history the trajectory exists for is preserved.
pub fn upsert_trajectory_record(
    mut records: Vec<TrajectoryRecord>,
    record: TrajectoryRecord,
) -> Vec<TrajectoryRecord> {
    records.retain(|r| r.name != record.name || r.commit != record.commit);
    records.push(record);
    records
}

/// Parses a trajectory file tolerantly: every top-level `{…}` object
/// that carries the four expected fields becomes a record; everything
/// else — truncated objects, wrong field types, editor damage — is
/// counted as skipped, never an error. Returns `(records, skipped)`.
///
/// The parser is hand-rolled (the vendored `serde_json` is a writer
/// only): a string-aware brace matcher splits the text into top-level
/// objects, and a flat key/value scanner validates each one.
pub fn read_trajectory(text: &str) -> (Vec<TrajectoryRecord>, usize) {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for object in top_level_objects(text) {
        match parse_record(object) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    (records, skipped)
}

/// Splits `text` into its top-level `{…}` spans, counting braces only
/// outside string literals (so `{"a": "}"}` is one object). An
/// unterminated object at EOF is simply dropped — the caller counts it
/// as damage only if it opened.
fn top_level_objects(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    objects.push(&text[start..=i]);
                }
            }
            _ => {}
        }
    }
    objects
}

/// Validates one flat object as a [`TrajectoryRecord`]: `name` and
/// `commit` must be strings, `wall_ns` and `peak_rss_bytes` unsigned
/// numbers. Unknown extra fields are tolerated (forward compatibility);
/// nested values, missing fields, or type mismatches are not.
fn parse_record(object: &str) -> Option<TrajectoryRecord> {
    let mut name = None;
    let mut commit = None;
    let mut wall_ns = None;
    let mut peak_rss_bytes = None;
    for (key, value) in flat_fields(object)? {
        match key.as_str() {
            "name" => name = Some(string_value(&value)?),
            "commit" => commit = Some(string_value(&value)?),
            "wall_ns" => wall_ns = Some(value.parse::<u64>().ok()?),
            "peak_rss_bytes" => peak_rss_bytes = Some(value.parse::<u64>().ok()?),
            _ => {}
        }
    }
    Some(TrajectoryRecord {
        name: name?,
        commit: commit?,
        wall_ns: wall_ns?,
        peak_rss_bytes: peak_rss_bytes?,
    })
}

/// The content of a string literal (quotes included in `value`), with
/// the two escapes our writer emits unescaped. `None` for non-strings.
fn string_value(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Tokenizes a flat JSON object into raw `(key, value)` pairs. String
/// values keep their quotes (see [`string_value`]); numbers come back
/// as their bare token. Nested objects/arrays make the object
/// non-flat → `None`.
fn flat_fields(object: &str) -> Option<Vec<(String, String)>> {
    let inner = object.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        let (key, after_key) = take_string_token_raw(rest)?;
        let after_colon = after_key.trim_start().strip_prefix(':')?.trim_start();
        let (value, after_value) = if after_colon.starts_with('"') {
            take_string_token_raw(after_colon)?
        } else {
            let end = after_colon
                .find(|c: char| c == ',' || c.is_whitespace())
                .unwrap_or(after_colon.len());
            let token = &after_colon[..end];
            if token.is_empty() || token.starts_with(['{', '[']) {
                return None;
            }
            (token.to_string(), &after_colon[end..])
        };
        fields.push((string_value(&key).unwrap_or(key), value));
        rest = after_value.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(fields)
}

/// Reads a leading string literal, returning it with quotes plus the
/// remainder. Escape-aware.
fn take_string_token_raw(s: &str) -> Option<(String, &str)> {
    let bytes = s.as_bytes();
    if *bytes.first()? != b'"' {
        return None;
    }
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(1) {
        if escaped {
            escaped = false;
        } else if b == b'\\' {
            escaped = true;
        } else if b == b'"' {
            return Some((s[..=i].to_string(), &s[i + 1..]));
        }
    }
    None
}

/// Extracts `--cache-dir DIR` from raw process args (bench bins parse
/// positionals by hand; this keeps the flag uniform with the CLI).
pub fn cache_dir_from_args(args: &[String]) -> Option<String> {
    let pos = args.iter().position(|a| a == "--cache-dir")?;
    args.get(pos + 1).cloned()
}

/// Attaches a `--cache-dir` artifact store to the session when the raw
/// process args request one. Returns the store so callers can report
/// hit/miss statistics; a store that fails to open degrades to a cold
/// run with a warning.
pub fn attach_cache_from_args(
    session: &mut fieldclust::AnalysisSession<'_>,
    args: &[String],
) -> Option<fieldclust::ArtifactStore> {
    let dir = cache_dir_from_args(args)?;
    match fieldclust::ArtifactStore::open(&dir) {
        Ok(store) => {
            session.set_store(store.clone());
            Some(store)
        }
        Err(e) => {
            eprintln!("warning: cannot open cache dir {dir}: {e} (running cold)");
            None
        }
    }
}

/// Prints the greppable cache statistics line, if a store is attached.
pub fn report_cache(store: Option<&fieldclust::ArtifactStore>) {
    if let Some(s) = store {
        eprintln!("cache: {}", s.stats());
    }
}

/// All protocols that have IP context (FieldHunter-able).
pub const CONTEXT_PROTOCOLS: [Protocol; 5] = [
    Protocol::Dhcp,
    Protocol::Dns,
    Protocol::Nbns,
    Protocol::Ntp,
    Protocol::Smb,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, wall_ns: u64) -> TrajectoryRecord {
        TrajectoryRecord {
            name: name.to_string(),
            commit: "abc123".to_string(),
            wall_ns,
            peak_rss_bytes: 1 << 20,
        }
    }

    #[test]
    fn trajectory_roundtrips_through_the_tolerant_reader() {
        let records = vec![record("table1", 5), record("serve_throughput", 7)];
        let text = serde_json::to_string_pretty(&records).unwrap();
        let (back, skipped) = read_trajectory(&text);
        assert_eq!(skipped, 0);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "table1");
        assert_eq!(back[1].wall_ns, 7);
        assert_eq!(back[1].peak_rss_bytes, 1 << 20);
    }

    #[test]
    fn malformed_records_are_skipped_not_fatal() {
        // A valid record, then editor damage (wrong type, missing
        // field, truncated object), then another valid record: the two
        // good ones survive, the three bad ones count as skipped.
        let text = r#"[
  { "name": "good1", "commit": "c1", "wall_ns": 10, "peak_rss_bytes": 20 },
  { "name": "bad-type", "commit": "c2", "wall_ns": "fast", "peak_rss_bytes": 1 },
  { "name": "bad-missing", "commit": "c3", "wall_ns": 10 },
  { "name": "bad-negative", "commit": "c4", "wall_ns": -4, "peak_rss_bytes": 1 },
  { "name": "good2", "commit": "c5", "wall_ns": 30, "peak_rss_bytes": 40 }
]"#;
        let (records, skipped) = read_trajectory(text);
        assert_eq!(skipped, 3);
        let names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["good1", "good2"]);
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_the_matcher() {
        let text =
            r#"[{ "name": "has{brace}", "commit": "}{", "wall_ns": 1, "peak_rss_bytes": 2 }]"#;
        let (records, skipped) = read_trajectory(text);
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "has{brace}");
        assert_eq!(records[0].commit, "}{");
    }

    #[test]
    fn garbage_and_empty_files_read_as_empty() {
        assert_eq!(read_trajectory("").0.len(), 0);
        assert_eq!(read_trajectory("not json at all").0.len(), 0);
        // A nested (non-flat) object is damage, not a crash.
        let (records, skipped) = read_trajectory(
            r#"[{ "name": "x", "commit": "y", "wall_ns": {"n":1}, "peak_rss_bytes": 2 }]"#,
        );
        assert_eq!(records.len(), 0);
        // The nested braces produce one outer malformed object (the
        // inner one closes first but never validates as a record).
        assert!(skipped >= 1);
    }

    #[test]
    fn upsert_compacts_same_name_and_commit_through_the_reader() {
        // The existing file is parsed by the string-aware brace matcher
        // (brace-laden strings included), then compaction replaces the
        // stale record of the re-run harness at the same commit — and
        // only that one.
        let text = r#"[
  { "name": "ladder{u=1k}", "commit": "c1", "wall_ns": 100, "peak_rss_bytes": 1 },
  { "name": "ladder{u=1k}", "commit": "c2", "wall_ns": 200, "peak_rss_bytes": 2 },
  { "name": "other", "commit": "c1", "wall_ns": 300, "peak_rss_bytes": 3 }
]"#;
        let (existing, skipped) = read_trajectory(text);
        assert_eq!((existing.len(), skipped), (3, 0));
        let rerun = TrajectoryRecord {
            name: "ladder{u=1k}".to_string(),
            commit: "c1".to_string(),
            wall_ns: 150,
            peak_rss_bytes: 9,
        };
        let compacted = upsert_trajectory_record(existing, rerun);
        let summary: Vec<(&str, &str, u64)> = compacted
            .iter()
            .map(|r| (r.name.as_str(), r.commit.as_str(), r.wall_ns))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("ladder{u=1k}", "c2", 200),
                ("other", "c1", 300),
                ("ladder{u=1k}", "c1", 150),
            ]
        );
    }

    #[test]
    fn unknown_extra_fields_are_tolerated() {
        let text = r#"[{ "name": "x", "commit": "y", "wall_ns": 1, "peak_rss_bytes": 2, "note": "kept" }]"#;
        let (records, skipped) = read_trajectory(text);
        assert_eq!((records.len(), skipped), (1, 0));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // VmHWM exists on every Linux procfs; a few MB at minimum.
        let rss = peak_rss_bytes();
        assert!(rss > 1 << 20, "peak RSS = {rss}");
    }
}
