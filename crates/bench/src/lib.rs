//! Shared harness code for the paper-reproduction binaries.
//!
//! Each binary regenerates one table or figure of the evaluation
//! (DESIGN.md §3): `table1`, `table2`, `fig2`, `fig3`, `coverage`. The
//! helpers here run the pipeline for a corpus spec and render rows.

pub mod plot;

use fieldclust::{evaluate, truth, Evaluation, FieldTypeClusterer};
use protocols::corpus::CorpusSpec;
use protocols::{corpus, Protocol};
use segment::{SegmentError, Segmenter, TraceSegmentation};
use serde::Serialize;
use trace::Trace;

/// One rendered cell of Table I/II.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Protocol name.
    pub protocol: String,
    /// Messages in the trace.
    pub messages: usize,
    /// Unique clusterable segments ("fields" column of Table I).
    pub segments: usize,
    /// Auto-configured ε.
    pub epsilon: f64,
    /// Pairwise precision.
    pub precision: f64,
    /// Pairwise recall.
    pub recall: f64,
    /// F¼ score.
    pub f_score: f64,
    /// Byte coverage.
    pub coverage: f64,
    /// Number of clusters.
    pub clusters: u32,
    /// Unique segments labelled noise.
    pub noise: usize,
}

impl RunRecord {
    /// Builds a record from an evaluation.
    pub fn from_eval(spec: &CorpusSpec, eval: &Evaluation) -> Self {
        Self {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            segments: eval.n_segments,
            epsilon: eval.epsilon,
            precision: eval.metrics.precision,
            recall: eval.metrics.recall,
            f_score: eval.metrics.f_score,
            coverage: eval.coverage.ratio(),
            clusters: eval.n_clusters,
            noise: eval.n_noise,
        }
    }
}

/// Outcome of one (segmenter, trace) run.
#[derive(Debug)]
pub enum RunOutcome {
    /// The pipeline completed.
    Done(Box<RunRecord>),
    /// The segmenter exceeded its work budget (a "fails" table cell).
    Fails(SegmentError),
}

/// A pipeline failure on one corpus spec, carrying enough context to
/// skip the row and keep the table generation going.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Protocol of the failing spec.
    pub protocol: String,
    /// Messages in the failing spec.
    pub messages: usize,
    /// The rendered pipeline error.
    pub error: String,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} msgs): {}",
            self.protocol, self.messages, self.error
        )
    }
}

impl std::error::Error for RunError {}

/// Builds the corpus trace and ground truth for a spec.
pub fn prepare(spec: &CorpusSpec) -> (Trace, Vec<Vec<protocols::TrueField>>) {
    let trace = spec.build();
    let gt = corpus::ground_truth(spec.protocol, &trace);
    (trace, gt)
}

/// Runs the pipeline on the ground-truth segmentation (Table I).
pub fn run_truth(spec: &CorpusSpec, clusterer: &FieldTypeClusterer) -> Result<RunRecord, RunError> {
    let (trace, gt) = prepare(spec);
    let segmentation = truth::truth_segmentation(&trace, &gt);
    run_on(spec, clusterer, &trace, &gt, &segmentation)
}

/// Runs the pipeline on a heuristic segmentation (Table II).
pub fn run_segmenter(
    spec: &CorpusSpec,
    segmenter: &dyn Segmenter,
    clusterer: &FieldTypeClusterer,
) -> Result<RunOutcome, RunError> {
    let (trace, gt) = prepare(spec);
    match segmenter.segment_trace(&trace) {
        Err(e) => Ok(RunOutcome::Fails(e)),
        Ok(segmentation) => Ok(RunOutcome::Done(Box::new(run_on(
            spec,
            clusterer,
            &trace,
            &gt,
            &segmentation,
        )?))),
    }
}

fn run_on(
    spec: &CorpusSpec,
    clusterer: &FieldTypeClusterer,
    trace: &Trace,
    gt: &[Vec<protocols::TrueField>],
    segmentation: &TraceSegmentation,
) -> Result<RunRecord, RunError> {
    let result = clusterer
        .cluster_trace(trace, segmentation)
        .map_err(|e| RunError {
            protocol: spec.protocol.to_string(),
            messages: spec.messages,
            error: e.to_string(),
        })?;
    let eval: Evaluation = evaluate(&result, trace, gt);
    Ok(RunRecord::from_eval(spec, &eval))
}

/// Formats a table row like the paper prints them.
pub fn render_row(r: &RunRecord) -> String {
    format!(
        "{:6} {:5} {:6} {:7.3} {:5.2} {:5.2} {:5.2} {:5.0}%  ({} clusters, {} noise)",
        r.protocol,
        r.messages,
        r.segments,
        r.epsilon,
        r.precision,
        r.recall,
        r.f_score,
        r.coverage * 100.0,
        r.clusters,
        r.noise
    )
}

/// Header matching [`render_row`].
pub const ROW_HEADER: &str = "proto  msgs  fields  eps     P     R     F1/4  cov";

/// Writes records as JSON next to the printed table so EXPERIMENTS.md
/// entries can be regenerated.
pub fn dump_json<T: Serialize>(path: &str, records: &T) {
    match serde_json::to_string_pretty(records) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("(records written to {path})");
            }
        }
        Err(e) => eprintln!("warning: could not serialize records: {e}"),
    }
}

/// One entry of the unified benchmark trajectory
/// (`BENCH_trajectory.json`): which harness ran, at which commit, how
/// long it took, and its peak RSS. Every bench binary appends one on
/// exit, so regressions across commits show up in a single file.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryRecord {
    /// Harness name (the bench binary).
    pub name: String,
    /// `git rev-parse HEAD` at run time, or `"unknown"`.
    pub commit: String,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Peak resident set size of the process (`VmHWM`), in bytes.
    pub peak_rss_bytes: u64,
}

/// The commit hash of the working tree, or `"unknown"` outside git.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Appends one run record to `BENCH_trajectory.json` (a single JSON
/// array, created on first use) in the current directory. Read-modify-
/// write: existing records are preserved by splicing the new one into
/// the array; an unreadable file starts a fresh one. Failures only
/// warn — benchmarks never fail on bookkeeping.
pub fn append_trajectory(name: &str, wall: std::time::Duration) {
    let path = "BENCH_trajectory.json";
    let record = TrajectoryRecord {
        name: name.to_string(),
        commit: git_commit(),
        wall_ns: u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
        peak_rss_bytes: peak_rss_bytes(),
    };
    let rendered = match serde_json::to_string_pretty(&record) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warning: could not serialize trajectory record: {e}");
            return;
        }
    };
    let spliced = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| splice_json_array(&s, &rendered));
    let body = spliced.unwrap_or_else(|| format!("[\n{rendered}\n]"));
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(trajectory appended to {path}: {name})");
    }
}

/// Splices `element` before the closing bracket of a rendered JSON
/// array. `None` when `existing` does not look like one (the caller
/// then starts a fresh array).
fn splice_json_array(existing: &str, element: &str) -> Option<String> {
    let trimmed = existing.trim_end();
    let prefix = trimmed.strip_suffix(']')?.trim_end();
    if !prefix.starts_with('[') {
        return None;
    }
    if prefix == "[" {
        return Some(format!("[\n{element}\n]"));
    }
    Some(format!("{},\n{element}\n]", prefix.trim_end_matches(',')))
}

/// Extracts `--cache-dir DIR` from raw process args (bench bins parse
/// positionals by hand; this keeps the flag uniform with the CLI).
pub fn cache_dir_from_args(args: &[String]) -> Option<String> {
    let pos = args.iter().position(|a| a == "--cache-dir")?;
    args.get(pos + 1).cloned()
}

/// Attaches a `--cache-dir` artifact store to the session when the raw
/// process args request one. Returns the store so callers can report
/// hit/miss statistics; a store that fails to open degrades to a cold
/// run with a warning.
pub fn attach_cache_from_args(
    session: &mut fieldclust::AnalysisSession<'_>,
    args: &[String],
) -> Option<fieldclust::ArtifactStore> {
    let dir = cache_dir_from_args(args)?;
    match fieldclust::ArtifactStore::open(&dir) {
        Ok(store) => {
            session.set_store(store.clone());
            Some(store)
        }
        Err(e) => {
            eprintln!("warning: cannot open cache dir {dir}: {e} (running cold)");
            None
        }
    }
}

/// Prints the greppable cache statistics line, if a store is attached.
pub fn report_cache(store: Option<&fieldclust::ArtifactStore>) {
    if let Some(s) = store {
        eprintln!("cache: {}", s.stats());
    }
}

/// All protocols that have IP context (FieldHunter-able).
pub const CONTEXT_PROTOCOLS: [Protocol; 5] = [
    Protocol::Dhcp,
    Protocol::Dns,
    Protocol::Nbns,
    Protocol::Ntp,
    Protocol::Smb,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_array_splicing() {
        // First record starts a fresh array; later records splice in.
        assert_eq!(
            splice_json_array("[]", "{\"a\":1}"),
            Some("[\n{\"a\":1}\n]".into())
        );
        let one = splice_json_array("[\n{\"a\":1}\n]", "{\"b\":2}").unwrap();
        assert_eq!(one, "[\n{\"a\":1},\n{\"b\":2}\n]");
        let two = splice_json_array(&one, "{\"c\":3}").unwrap();
        assert_eq!(two, "[\n{\"a\":1},\n{\"b\":2},\n{\"c\":3}\n]");
        // Garbage degrades to a fresh array at the call site.
        assert_eq!(splice_json_array("not json", "{}"), None);
        assert_eq!(splice_json_array("", "{}"), None);
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // VmHWM exists on every Linux procfs; a few MB at minimum.
        let rss = peak_rss_bytes();
        assert!(rss > 1 << 20, "peak RSS = {rss}");
    }
}
