//! Minimal self-contained SVG line plots for the figure-reproduction
//! binaries (no plotting dependencies; an SVG is just a string).

/// One series of a plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (any SVG color string).
    pub color: String,
    /// Draw markers instead of a connected line.
    pub scatter: bool,
}

/// A simple 2-D plot rendered to SVG.
#[derive(Debug, Clone)]
pub struct Plot {
    /// Plot title.
    pub title: String,
    /// x axis label.
    pub x_label: String,
    /// y axis label.
    pub y_label: String,
    /// Series to draw.
    pub series: Vec<Series>,
    /// Vertical marker lines (e.g. a detected knee), as (x, label).
    pub v_lines: Vec<(f64, String)>,
}

const W: f64 = 640.0;
const H: f64 = 420.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

impl Plot {
    /// Renders the plot as a standalone SVG document.
    ///
    /// Returns a minimal empty plot when no finite data exists.
    pub fn to_svg(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let (x0, x1) = bounds(all.iter().map(|p| p.0));
        let (y0, y1) = bounds(all.iter().map(|p| p.1));
        let sx = |x: f64| MARGIN_L + (x - x0) / (x1 - x0).max(1e-12) * (W - MARGIN_L - MARGIN_R);
        let sy =
            |y: f64| H - MARGIN_B - (y - y0) / (y1 - y0).max(1e-12) * (H - MARGIN_T - MARGIN_B);

        let mut svg = String::with_capacity(8192);
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        ));
        svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        svg.push_str(&format!(
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
            W / 2.0,
            escape(&self.title)
        ));
        // Axes.
        svg.push_str(&format!(
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            H - MARGIN_B,
            W - MARGIN_R,
            H - MARGIN_B
        ));
        svg.push_str(&format!(
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            H - MARGIN_B
        ));
        // Ticks.
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * i as f64 / 5.0;
            let fy = y0 + (y1 - y0) * i as f64 / 5.0;
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{:.3}</text>"#,
                sx(fx),
                H - MARGIN_B + 18.0,
                fx
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{:.2}</text>"#,
                MARGIN_L - 6.0,
                sy(fy) + 4.0,
                fy
            ));
        }
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
            (MARGIN_L + W - MARGIN_R) / 2.0,
            H - 12.0,
            escape(&self.x_label)
        ));
        svg.push_str(&format!(
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MARGIN_T + H - MARGIN_B) / 2.0,
            (MARGIN_T + H - MARGIN_B) / 2.0,
            escape(&self.y_label)
        ));

        // Series.
        for (si, s) in self.series.iter().enumerate() {
            if s.scatter {
                for &(x, y) in &s.points {
                    svg.push_str(&format!(
                        r#"<circle cx="{:.1}" cy="{:.1}" r="2" fill="{}"/>"#,
                        sx(x),
                        sy(y),
                        s.color
                    ));
                }
            } else {
                let path: Vec<String> = s
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, &(x, y))| {
                        format!(
                            "{}{:.1},{:.1}",
                            if i == 0 { "M" } else { "L" },
                            sx(x),
                            sy(y)
                        )
                    })
                    .collect();
                svg.push_str(&format!(
                    r#"<path d="{}" fill="none" stroke="{}" stroke-width="1.6"/>"#,
                    path.join(" "),
                    s.color
                ));
            }
            // Legend.
            svg.push_str(&format!(
                r#"<rect x="{:.1}" y="{:.1}" width="12" height="4" fill="{}"/>"#,
                MARGIN_L + 10.0,
                MARGIN_T + 8.0 + 16.0 * si as f64,
                s.color
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12">{}</text>"#,
                MARGIN_L + 28.0,
                MARGIN_T + 14.0 + 16.0 * si as f64,
                escape(&s.label)
            ));
        }

        // Vertical markers.
        for (x, label) in &self.v_lines {
            svg.push_str(&format!(
                r#"<line x1="{:.1}" y1="{MARGIN_T}" x2="{:.1}" y2="{:.1}" stroke="red" stroke-dasharray="4 3"/>"#,
                sx(*x),
                sx(*x),
                H - MARGIN_B
            ));
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" fill="red">{}</text>"#,
                sx(*x) + 4.0,
                MARGIN_T + 12.0,
                escape(label)
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        (0.0, 1.0)
    } else if lo == hi {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plot() -> Plot {
        Plot {
            title: "demo".to_string(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            series: vec![
                Series {
                    label: "line".to_string(),
                    points: vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)],
                    color: "steelblue".to_string(),
                    scatter: false,
                },
                Series {
                    label: "dots".to_string(),
                    points: vec![(0.5, 0.1), (1.5, 0.9)],
                    color: "darkorange".to_string(),
                    scatter: true,
                },
            ],
            v_lines: vec![(1.0, "knee".to_string())],
        }
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = demo_plot().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("demo"));
        assert!(svg.contains("knee"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn handles_empty_and_degenerate_data() {
        let empty = Plot {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
            v_lines: vec![],
        };
        assert!(empty.to_svg().contains("</svg>"));

        let flat = Plot {
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "flat".into(),
                points: vec![(1.0, 2.0), (1.0, 2.0)],
                color: "black".into(),
                scatter: false,
            }],
            v_lines: vec![],
        };
        assert!(flat.to_svg().contains("</svg>"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut p = demo_plot();
        p.title = "a < b & c".to_string();
        let svg = p.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }
}
