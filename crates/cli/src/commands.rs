//! The CLI subcommands.

use crate::error::CliError;
use crate::opts::{hex_preview, CommonOpts};
use fieldclust::fuzzgen::ValueModel;
use fieldclust::report::standard_report;
use fieldclust::semantics::{interpret, SemanticsConfig};
use fieldclust::{AnalysisSession, ArtifactStore, FieldTypeClusterer};
use protocols::{Protocol, ProtocolSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{prepare_trace, Client, ClientError, JobState, PrepareOpts};
use std::time::Duration;
use trace::{pcap, Trace};

fn load_trace(opts: &CommonOpts) -> Result<Trace, CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing <capture.pcap> argument"))?;
    load_trace_from(path, opts)
}

/// The preprocessing options the common flags select — the exact
/// struct the daemon uses, so offline and daemon runs prepare captures
/// identically.
fn prepare_opts(opts: &CommonOpts) -> PrepareOpts {
    PrepareOpts {
        port: opts.port,
        max: opts.max,
        reassemble: opts.reassemble,
    }
}

fn load_trace_from(path: &str, opts: &CommonOpts) -> Result<Trace, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?;
    // The single shared loading path (sniffing, reassembly,
    // preprocessing) — see `serve::prepare`.
    let (trace, stats) = prepare_trace(&bytes, &prepare_opts(opts))
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    if let Some(stats) = stats {
        eprintln!(
            "reassembled {} TCP segments into {} messages ({} resync, {} trailing bytes)",
            stats.segments_in, stats.messages_out, stats.resync_bytes, stats.trailing_bytes
        );
    }
    Ok(trace)
}

/// Opens the `--cache-dir` artifact store if one was requested.
fn open_store(opts: &CommonOpts) -> Result<Option<ArtifactStore>, CliError> {
    match &opts.cache_dir {
        Some(dir) => ArtifactStore::open(dir)
            .map(Some)
            .map_err(|e| CliError::runtime(format!("opening cache dir {dir}: {e}"))),
        None => Ok(None),
    }
}

/// The pipeline configuration selected by the common flags:
/// `--tile-rows` / `--max-memory` switch the dissimilarity stage to the
/// tiled build, and `--neighbor-backend` selects how neighbor queries are
/// answered (results are pinned bit-identical either way).
fn build_clusterer(opts: &CommonOpts) -> FieldTypeClusterer {
    let mut config = FieldTypeClusterer {
        tile_rows: opts.tile_rows,
        max_memory: opts.max_memory,
        neighbor_backend: opts.neighbor_backend,
        swar: opts.swar,
        ..FieldTypeClusterer::default()
    };
    // `--threads` only tunes wall time; every parallel stage is pinned
    // bit-identical to its serial counterpart.
    if opts.threads > 0 {
        config.threads = opts.threads;
    }
    config
}

/// Prints the greppable cache statistics line to stderr.
fn emit_cache_stats(store: Option<&ArtifactStore>) {
    if let Some(s) = store {
        eprintln!("cache: {}", s.stats());
    }
}

/// Prints the greppable neighbor-query counter line to stderr. Only
/// the stratified backend moves these counters; other backends stay
/// silent so their diagnostics are unchanged.
fn emit_neighbor_counters(session: &AnalysisSession<'_>) {
    let (kernel_evals, pruned, strata_skipped) = session.neighbor_counters();
    if kernel_evals > 0 || pruned > 0 || strata_skipped > 0 {
        eprintln!(
            "neighbors: kernel_evals={kernel_evals} pruned={pruned} strata_skipped={strata_skipped}"
        );
    }
}

/// `fieldclust analyze <pcap>`: cluster, interpret, report.
pub fn analyze(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let trace = load_trace(&opts)?;
    let segmenter = opts.build_segmenter()?;
    let store = open_store(&opts)?;
    // One session: field types, message types, and diagnostics all share
    // the same cached artifacts (segmentation, stores, matrices) — and,
    // with `--cache-dir`, warm-start from artifacts persisted by
    // earlier runs.
    let mut session = AnalysisSession::new(&trace, build_clusterer(&opts));
    if let Some(s) = &store {
        session.set_store(s.clone());
    }
    session
        .segment_with(segmenter.as_ref())
        .map_err(|e| CliError::runtime(format!("segmentation failed: {e}")))?;

    if let Some(path) = &opts.report {
        // The canonical rendering path shared with the daemon — daemon
        // reports are byte-identical to this file.
        let md = standard_report(&trace, &mut session)
            .map_err(|e| CliError::runtime(format!("clustering failed: {e}")))?;
        std::fs::write(path, md).map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        println!("report written to {path}");
        emit_neighbor_counters(&session);
        emit_cache_stats(store.as_ref());
        return Ok(());
    }

    let result = session
        .finish()
        .map_err(|e| CliError::runtime(format!("clustering failed: {e}")))?;
    let semantics = interpret(&result, &trace, &SemanticsConfig::default());
    let coverage = result.coverage(&trace);

    if opts.json {
        #[derive(serde::Serialize)]
        struct JsonCluster {
            id: usize,
            distinct_values: usize,
            occurrences: usize,
            hypothesis: String,
            confidence: f64,
            evidence: String,
            sample_values: Vec<String>,
        }
        #[derive(serde::Serialize)]
        struct JsonReport {
            messages: usize,
            unique_segments: usize,
            noise_segments: usize,
            epsilon: f64,
            coverage: f64,
            clusters: Vec<JsonCluster>,
        }
        let clusters = result
            .clustering
            .clusters()
            .iter()
            .zip(&semantics)
            .enumerate()
            .map(|(id, (members, sem))| JsonCluster {
                id,
                distinct_values: members.len(),
                occurrences: members
                    .iter()
                    .map(|&m| result.store.segments[m].occurrences())
                    .sum(),
                hypothesis: sem.hypothesis.to_string(),
                confidence: sem.confidence,
                evidence: sem.evidence.clone(),
                sample_values: members
                    .iter()
                    .take(3)
                    .map(|&m| hex_preview(&result.store.segments[m].value, 16))
                    .collect(),
            })
            .collect();
        let report = JsonReport {
            messages: trace.len(),
            unique_segments: result.store.segments.len(),
            noise_segments: result.clustering.noise().len(),
            epsilon: result.params.epsilon,
            coverage: coverage.ratio(),
            clusters,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| CliError::runtime(e.to_string()))?
        );
        emit_neighbor_counters(&session);
        emit_cache_stats(store.as_ref());
        return Ok(());
    }

    println!(
        "{} messages, {} unique segments, eps = {:.3} ({:?}), coverage {:.0}%",
        trace.len(),
        result.store.segments.len(),
        result.params.epsilon,
        result.epsilon_source,
        coverage.ratio() * 100.0
    );
    println!(
        "{} pseudo data types ({} noise segments):\n",
        result.clustering.n_clusters(),
        result.clustering.noise().len()
    );
    for ((id, members), sem) in result
        .clustering
        .clusters()
        .iter()
        .enumerate()
        .zip(&semantics)
    {
        let occurrences: usize = members
            .iter()
            .map(|&m| result.store.segments[m].occurrences())
            .sum();
        println!(
            "  type {id:2}: {:10} ({:4.0}% conf) — {:4} values / {:5} occurrences — {}",
            sem.hypothesis.to_string(),
            sem.confidence * 100.0,
            members.len(),
            occurrences,
            sem.evidence
        );
        if id < opts.limit {
            let samples: Vec<String> = members
                .iter()
                .take(3)
                .map(|&m| hex_preview(&result.store.segments[m].value, 12))
                .collect();
            println!("           e.g. [{}]", samples.join(", "));
        }
    }
    emit_neighbor_counters(&session);
    emit_cache_stats(store.as_ref());
    Ok(())
}

/// `fieldclust msgtype <pcap>`: cluster messages into message types.
pub fn msgtype(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let trace = load_trace(&opts)?;
    let segmenter = opts.build_segmenter()?;
    let store = open_store(&opts)?;
    // Run through the session so the segmentation and the message
    // matrix hit the artifact store when `--cache-dir` is given.
    let mut session = AnalysisSession::new(&trace, build_clusterer(&opts));
    if let Some(s) = &store {
        session.set_store(s.clone());
    }
    session
        .segment_with(segmenter.as_ref())
        .map_err(|e| CliError::runtime(format!("segmentation failed: {e}")))?;
    let result = session
        .message_types(&fieldclust::msgtype::MessageTypeConfig::default())
        .map_err(|e| CliError::runtime(format!("message type identification failed: {e}")))?;
    println!(
        "{} messages -> {} message types ({} noise), eps = {:.3}",
        trace.len(),
        result.clustering.n_clusters(),
        result.clustering.noise().len(),
        result.epsilon
    );
    for (id, members) in result.clustering.clusters().iter().enumerate() {
        let sample = &trace.messages()[members[0]];
        println!(
            "  type {id:2}: {:4} messages, e.g. [{}] ({} bytes)",
            members.len(),
            hex_preview(sample.payload(), 12),
            sample.payload().len()
        );
    }
    emit_cache_stats(store.as_ref());
    Ok(())
}

/// `fieldclust statemachine <pcap>`: infer the protocol state machine
/// over message-type-labelled flows.
pub fn statemachine(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let trace = load_trace(&opts)?;
    let segmenter = opts.build_segmenter()?;
    let store = open_store(&opts)?;
    // Through the session: the machine — and every clustering artifact
    // under it — hits the store with `--cache-dir`, so a warm run
    // serves the persisted machine without re-clustering anything.
    let mut session = AnalysisSession::new(&trace, build_clusterer(&opts));
    if let Some(s) = &store {
        session.set_store(s.clone());
    }
    session
        .segment_with(segmenter.as_ref())
        .map_err(|e| CliError::runtime(format!("segmentation failed: {e}")))?;
    let machine = session
        .state_machine(&fieldclust::StateMachineConfig::default())
        .map_err(|e| CliError::runtime(format!("state machine inference failed: {e}")))?;

    if let Some(path) = &opts.dot {
        std::fs::write(path, machine.to_dot())
            .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        println!("state machine written to {path}");
        emit_cache_stats(store.as_ref());
        return Ok(());
    }
    if opts.json {
        // The machine's own canonical rendering — byte-identical to the
        // daemon's `InferStateMachine` response for the same capture.
        println!("{}", machine.to_json());
        emit_cache_stats(store.as_ref());
        return Ok(());
    }

    println!(
        "{} messages in {} flows -> {} states, {} transitions ({} symbols)",
        trace.len(),
        machine.flows,
        machine.n_states,
        machine.n_transitions(),
        machine.symbols.len()
    );
    for state in (0..machine.n_states).take(opts.limit) {
        let term = machine.terminations[state as usize];
        let edges: Vec<String> = machine
            .emissions(state)
            .iter()
            .map(|&(symbol, to, count)| {
                format!("{} -> s{to} ({count})", machine.symbol_name(symbol))
            })
            .collect();
        println!(
            "  s{state}: {:5} visits, {term:4} ends | {}",
            machine.visits[state as usize],
            if edges.is_empty() {
                "(no outgoing)".to_string()
            } else {
                edges.join(", ")
            }
        );
    }
    emit_cache_stats(store.as_ref());
    Ok(())
}

/// `fieldclust segment <pcap>`: print inferred boundaries per message.
pub fn segment(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let trace = load_trace(&opts)?;
    let segmenter = opts.build_segmenter()?;
    let segmentation = segmenter
        .segment_trace(&trace)
        .map_err(|e| CliError::runtime(format!("segmentation failed: {e}")))?;
    println!(
        "{} messages, {} segments ({} segmenter)",
        trace.len(),
        segmentation.total_segments(),
        segmenter.name()
    );
    for (i, (msg, segs)) in trace
        .iter()
        .zip(&segmentation.messages)
        .enumerate()
        .take(opts.limit)
    {
        let rendered: Vec<String> = segs
            .ranges()
            .iter()
            .map(|r| hex_preview(&msg.payload()[r.clone()], 8))
            .collect();
        println!("msg {i:4}: {}", rendered.join(" | "));
    }
    Ok(())
}

/// `fieldclust fuzz <pcap>`: sample fuzzing candidates per cluster.
pub fn fuzz(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let trace = load_trace(&opts)?;
    let segmenter = opts.build_segmenter()?;
    let segmentation = segmenter
        .segment_trace(&trace)
        .map_err(|e| CliError::runtime(format!("segmentation failed: {e}")))?;
    let result = build_clusterer(&opts)
        .cluster_trace(&trace, &segmentation)
        .map_err(|e| CliError::runtime(format!("clustering failed: {e}")))?;
    let models = ValueModel::per_cluster(&result);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    println!(
        "fuzzing candidates per pseudo data type (seed {}):",
        opts.seed
    );
    for (id, model) in models.iter().enumerate().take(opts.limit) {
        let candidates: Vec<String> = (0..opts.count)
            .map(|_| hex_preview(&model.sample(&mut rng), 16))
            .collect();
        println!(
            "  type {id:2} (trained on {:5} values): {}",
            model.training_weight(),
            candidates.join(", ")
        );
    }
    Ok(())
}

/// `fieldclust compare <a.pcap> <b.pcap>`: protocol drift between two
/// captures.
pub fn compare(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    if opts.positional.len() != 2 {
        return Err(CliError::usage(
            "usage: fieldclust compare <a.pcap> <b.pcap>",
        ));
    }
    let segmenter = opts.build_segmenter()?;
    // Both captures share one artifact store, so re-comparing after one
    // capture changed recomputes only that capture's artifacts.
    let store = open_store(&opts)?;
    let mut results = Vec::new();
    for path in &opts.positional {
        let trace = load_trace_from(path, &opts)?;
        let mut session = AnalysisSession::new(&trace, build_clusterer(&opts));
        if let Some(s) = &store {
            session.set_store(s.clone());
        }
        session
            .segment_with(segmenter.as_ref())
            .map_err(|e| CliError::runtime(format!("{path}: segmentation failed: {e}")))?;
        let result = session
            .finish()
            .map_err(|e| CliError::runtime(format!("{path}: clustering failed: {e}")))?;
        results.push(result);
    }
    let diff = fieldclust::compare_clusterings(
        &results[0],
        &results[1],
        fieldclust::compare::DEFAULT_MATCH_THRESHOLD,
    );
    println!(
        "{} vs {}: {} matched types, {} only in A, {} only in B",
        opts.positional[0],
        opts.positional[1],
        diff.matches.len(),
        diff.only_left.len(),
        diff.only_right.len()
    );
    println!(
        "value retention A->B: {:.0}%",
        diff.left_value_retention * 100.0
    );
    for m in diff.matches.iter().take(opts.limit) {
        println!(
            "  A:{:<3} <-> B:{:<3}  jaccard {:.2} ({} shared values)",
            m.left, m.right, m.jaccard, m.shared_values
        );
    }
    if !diff.only_left.is_empty() {
        println!("  vanished types (A only): {:?}", diff.only_left);
    }
    if !diff.only_right.is_empty() {
        println!("  new types (B only): {:?}", diff.only_right);
    }
    emit_cache_stats(store.as_ref());
    Ok(())
}

/// `fieldclust stats <pcap>`: first-look summary of a capture — or,
/// with `--addr`, the counters of a running `ftcd` daemon.
pub fn stats(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    if let Some(addr) = &opts.addr {
        let stats = connect(addr)?.stats().map_err(daemon_error)?;
        print!("{stats}");
        return Ok(());
    }
    let trace = load_trace(&opts)?;
    let s = trace::stats::trace_stats(&trace, 48);
    println!(
        "{} messages, {} bytes, {} flows, uniqueness {:.2}",
        s.messages, s.total_bytes, s.flows, s.uniqueness
    );
    println!(
        "payload lengths: min {} / median {} / max {} ({} distinct)",
        s.len_min,
        s.len_median,
        s.len_max,
        s.length_histogram.len()
    );
    println!("mean payload entropy: {:.2} bits/byte", s.mean_entropy);
    for (t, c) in &s.transports {
        println!("  transport {t:?}: {c} messages");
    }
    println!(
        "per-offset entropy (first {} bytes; low = fixed header):",
        s.offset_profile.len()
    );
    let bar = |e: f64| "#".repeat((e * 4.0).round() as usize);
    for (off, e) in s.offset_profile.iter().enumerate() {
        println!("  byte {off:3}: {e:4.2} {}", bar(*e));
    }
    Ok(())
}

/// `fieldclust generate <protocol> <n> <out.pcap>`: write a synthetic
/// trace.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let [protocol, n, out] = &opts.positional[..] else {
        return Err(CliError::usage(
            "usage: fieldclust generate <protocol> <messages> <out.pcap>",
        ));
    };
    let protocol = Protocol::from_name(protocol).ok_or_else(|| {
        CliError::usage(format!(
            "unknown protocol `{protocol}` (see `fieldclust protocols`)"
        ))
    })?;
    let n: usize = n
        .parse()
        .map_err(|_| CliError::usage("<messages> must be a number"))?;
    let trace = protocol.generate(n, opts.seed);
    pcap::write_to_file(&trace, out)
        .map_err(|e| CliError::runtime(format!("writing {out}: {e}")))?;
    println!(
        "wrote {} {} messages ({} bytes of payload) to {out}",
        trace.len(),
        protocol,
        trace.total_payload_bytes()
    );
    Ok(())
}

/// The `--addr` a daemon subcommand requires.
fn required_addr(opts: &CommonOpts) -> Result<&str, CliError> {
    opts.addr
        .as_deref()
        .ok_or_else(|| CliError::usage("--addr <host:port> of a running ftcd is required"))
}

fn connect(addr: &str) -> Result<Client, CliError> {
    Client::connect(addr).map_err(|e| CliError::runtime(format!("connecting to {addr}: {e}")))
}

/// Daemon-side declines keep their structure: a rejection carries the
/// retry hint, everything else is a plain runtime failure.
fn daemon_error(e: ClientError) -> CliError {
    CliError::runtime(e.to_string())
}

/// Delivers a finished job's report: to `--report F` when given, else
/// to stdout.
fn deliver_report(report: Vec<u8>, opts: &CommonOpts) -> Result<(), CliError> {
    let text = String::from_utf8(report)
        .map_err(|_| CliError::runtime("daemon sent a non-UTF-8 report"))?;
    match &opts.report {
        Some(path) => {
            std::fs::write(path, text)
                .map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
            println!("report written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `fieldclust submit <pcap> --addr A`: upload a capture to a running
/// `ftcd`, analyze it there, wait, and deliver the report — which is
/// byte-identical to `fieldclust analyze <pcap> --report`.
pub fn submit(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let addr = required_addr(&opts)?;
    let path = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing <capture.pcap> argument"))?;
    let bytes =
        std::fs::read(path).map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?;
    let mut client = connect(addr)?;
    let (trace_id, messages) = client
        .submit_trace(
            path,
            bytes,
            opts.port,
            opts.max.map(|n| n as u64),
            opts.reassemble,
        )
        .map_err(daemon_error)?;
    eprintln!("trace {trace_id}: {messages} messages after preprocessing");
    let job_id = client
        .analyze(trace_id, &opts.segmenter, 0)
        .map_err(daemon_error)?;
    eprintln!("job {job_id}: accepted");
    match client
        .wait_for(job_id, Duration::from_millis(100))
        .map_err(daemon_error)?
    {
        JobState::Done { report } => deliver_report(report, &opts),
        JobState::Failed { message } => Err(CliError::runtime(format!("job failed: {message}"))),
        JobState::Cancelled => Err(CliError::runtime("job was cancelled")),
        other => Err(CliError::runtime(format!("unexpected job state {other:?}"))),
    }
}

/// `fieldclust query <job-id> --addr A`: fetch a job's state (and its
/// report once done).
pub fn query(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let addr = required_addr(&opts)?;
    let job_id: u64 = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing <job-id> argument"))?
        .parse()
        .map_err(|_| CliError::usage("<job-id> must be a number"))?;
    match connect(addr)?.query(job_id).map_err(daemon_error)? {
        JobState::Queued { position } => {
            println!("job {job_id}: queued ({position} ahead)");
            Ok(())
        }
        JobState::Running => {
            println!("job {job_id}: running");
            Ok(())
        }
        JobState::Done { report } => deliver_report(report, &opts),
        JobState::Failed { message } => Err(CliError::runtime(format!("job failed: {message}"))),
        JobState::Cancelled => {
            println!("job {job_id}: cancelled");
            Ok(())
        }
    }
}

/// `fieldclust shutdown --addr A`: drain and stop a running daemon.
pub fn shutdown(args: &[String]) -> Result<(), CliError> {
    let opts = CommonOpts::parse(args)?;
    let addr = required_addr(&opts)?;
    let drained = connect(addr)?.shutdown().map_err(daemon_error)?;
    println!("daemon at {addr} shutting down ({drained} jobs draining)");
    Ok(())
}

/// Appends one drift record as a JSON line to `--drift-log F`, or to
/// stdout when no sink was given (stdout stays pure JSONL; everything
/// human-facing goes to stderr).
fn emit_drift(
    record: &ingest::DriftRecord,
    sink: &mut Option<std::fs::File>,
) -> Result<(), CliError> {
    use std::io::Write;
    let line = record.to_json_line();
    match sink {
        Some(file) => writeln!(file, "{line}")
            .map_err(|e| CliError::runtime(format!("writing drift log: {e}"))),
        None => {
            println!("{line}");
            Ok(())
        }
    }
}

/// `fieldclust follow <capture.pcap | --listen A>`: continuous
/// streaming ingestion — tail a growing capture file (or accept framed
/// raw messages on a loopback socket), re-cluster in bounded batches
/// through a warm session, and emit one drift record per batch. With
/// `--sample 0` (the default) the final `--report` is byte-identical
/// to a one-shot `analyze --report` of the full capture.
pub fn follow(args: &[String]) -> Result<(), CliError> {
    use ingest::{FollowFile, MessageSource, SampleConfig, SocketFeed, StreamConfig};
    use std::time::Instant;

    let opts = CommonOpts::parse(args)?;
    let mut source: Box<dyn MessageSource> = match &opts.listen {
        Some(addr) => {
            let feed = SocketFeed::bind(addr).map_err(CliError::runtime)?;
            eprintln!("listening on {}", feed.local_addr());
            Box::new(feed)
        }
        None => {
            let path = opts.positional.first().ok_or_else(|| {
                CliError::usage("missing <capture.pcap> argument (or --listen A)")
            })?;
            Box::new(FollowFile::new(path))
        }
    };
    // Warmth between batches needs an artifact store; without
    // `--cache-dir` a throwaway one keeps re-clustering incremental
    // (results never depend on it — cold batches are just slower).
    let (store, scratch_dir) = match open_store(&opts)? {
        Some(s) => (Some(s), None),
        None => {
            let dir = std::env::temp_dir().join(format!(
                "fieldclust-follow-{}-{}",
                std::process::id(),
                opts.seed
            ));
            match ArtifactStore::open(&dir) {
                Ok(s) => (Some(s), Some(dir)),
                Err(_) => (None, None),
            }
        }
    };
    let mut session = ingest::StreamSession::new(
        StreamConfig {
            prepare: prepare_opts(&opts),
            segmenter: opts.segmenter.clone(),
            clusterer: build_clusterer(&opts),
            sample: SampleConfig {
                max: opts.sample,
                seed: opts.seed,
            },
            fsm: opts.fsm,
        },
        store.clone(),
    );
    let mut drift_log = match &opts.drift_log {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| CliError::runtime(format!("opening {path}: {e}")))?,
        ),
        None => None,
    };
    eprintln!(
        "following {} (batch: {} msgs / {} ms, sample cap {})",
        source.describe(),
        opts.batch_msgs,
        opts.batch_interval_ms,
        opts.sample
    );

    let mut last_flush = Instant::now();
    let mut last_arrival = Instant::now();
    loop {
        let fresh = source.poll().map_err(CliError::runtime)?;
        if !fresh.is_empty() {
            last_arrival = Instant::now();
            session.push(fresh);
        }
        let interval = Duration::from_millis(opts.batch_interval_ms);
        let due = session.pending() >= opts.batch_msgs
            || (session.pending() > 0 && last_flush.elapsed() >= interval);
        if due {
            if let Some(record) = session.flush().map_err(CliError::runtime)? {
                emit_drift(&record, &mut drift_log)?;
            }
            last_flush = Instant::now();
        }
        if opts.batches > 0 && session.batches() >= opts.batches {
            break;
        }
        if opts.idle_exit_ms > 0
            && last_arrival.elapsed() >= Duration::from_millis(opts.idle_exit_ms)
        {
            // Flush whatever is pending so the last messages are
            // analyzed before exit.
            if let Some(record) = session.flush().map_err(CliError::runtime)? {
                emit_drift(&record, &mut drift_log)?;
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    if let Some(path) = &opts.report {
        let md = session.final_report().map_err(CliError::runtime)?;
        std::fs::write(path, md).map_err(|e| CliError::runtime(format!("writing {path}: {e}")))?;
        eprintln!("report written to {path}");
    }
    eprintln!(
        "follow: {} batches, {} messages seen",
        session.batches(),
        session.seen()
    );
    emit_cache_stats(store.as_ref());
    if let Some(dir) = scratch_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(())
}

/// `fieldclust protocols`: list the built-in generators.
pub fn protocols(_args: &[String]) -> Result<(), CliError> {
    println!("built-in protocol generators:");
    for p in Protocol::ALL {
        let sample = p.generate(2, 1);
        println!(
            "  {:5} — e.g. {} byte messages",
            p.name(),
            sample.messages()[0].payload().len()
        );
    }
    Ok(())
}
