//! CLI error type separating usage mistakes from runtime failures.
//!
//! The binary maps [`CliError::Usage`] to exit code 2 (the caller got
//! the invocation wrong: unknown flag, missing argument, malformed
//! value) and [`CliError::Runtime`] to exit code 1 (the invocation was
//! well-formed but the work failed: unreadable capture, empty trace,
//! pipeline error). Scripts can branch on the code without parsing
//! stderr.

use std::fmt;

/// Error from a CLI subcommand, tagged with its exit-code class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Malformed invocation — exit code 2.
    Usage(String),
    /// Well-formed invocation whose work failed — exit code 1.
    Runtime(String),
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// A runtime error (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError::Runtime(message.into())
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Runtime(_) => 1,
        }
    }

    /// The human-readable message, without the exit-code class.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_convention() {
        assert_eq!(CliError::usage("bad flag").exit_code(), 2);
        assert_eq!(CliError::runtime("io failed").exit_code(), 1);
    }

    #[test]
    fn display_is_the_bare_message() {
        assert_eq!(
            CliError::usage("x needs a value").to_string(),
            "x needs a value"
        );
        assert_eq!(CliError::runtime("boom").message(), "boom");
    }
}
