//! Library surface of the `fieldclust` CLI: exposed for integration
//! tests; the binary in `main.rs` is a thin dispatcher over
//! [`commands`].

pub mod commands;
pub mod error;
pub mod opts;

pub use error::CliError;
