//! `fieldclust` — command-line field data type clustering.
//!
//! ```text
//! fieldclust analyze  <capture.pcap> [--segmenter S] [--port P] [--max N] [--cache-dir D] [--json]
//! fieldclust statemachine <capture.pcap> [--segmenter S] [--json | --dot F]
//! fieldclust segment  <capture.pcap> [--segmenter S] [--max N] [--limit M]
//! fieldclust fuzz     <capture.pcap> [--segmenter S] [--count N] [--seed X]
//! fieldclust generate <protocol> <messages> <out.pcap> [--seed X]
//! fieldclust follow   <capture.pcap | --listen A> [--batches N] [--sample N]
//! fieldclust protocols
//! fieldclust submit   <capture.pcap> --addr A   (against a running ftcd)
//! fieldclust query    <job-id> --addr A
//! fieldclust shutdown --addr A
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure, 2 bad usage. Errors go to
//! stderr as `error: <subcommand>: <message>`.

use cli::{commands, opts, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", opts::USAGE);
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "analyze" => commands::analyze(rest),
        "msgtype" => commands::msgtype(rest),
        "statemachine" => commands::statemachine(rest),
        "stats" => commands::stats(rest),
        "compare" => commands::compare(rest),
        "segment" => commands::segment(rest),
        "fuzz" => commands::fuzz(rest),
        "generate" => commands::generate(rest),
        "follow" => commands::follow(rest),
        "protocols" => commands::protocols(rest),
        "submit" => commands::submit(rest),
        "query" => commands::query(rest),
        "shutdown" => commands::shutdown(rest),
        "help" | "--help" | "-h" => {
            println!("{}", opts::USAGE);
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{}",
            opts::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Name the failing subcommand so piped stderr stays
            // attributable in scripts that chain several invocations.
            eprintln!("error: {command}: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
