//! Hand-rolled option parsing (the workspace deliberately avoids
//! additional dependencies).

use crate::error::CliError;
use segment::Segmenter;

/// Top-level usage text.
pub const USAGE: &str = "\
fieldclust — field data type clustering for unknown binary protocols

USAGE:
  fieldclust analyze  <capture.pcap> [--segmenter S] [--port P] [--max N] [--cache-dir D] [--tile-rows R | --max-memory B] [--neighbor-backend B] [--json | --report out.md]
  fieldclust msgtype  <capture.pcap> [--segmenter S] [--port P] [--max N] [--cache-dir D]
  fieldclust statemachine <capture.pcap> [--segmenter S] [--port P] [--max N] [--cache-dir D]
                      [--json | --dot out.dot]
  fieldclust stats    <capture.pcap> [--port P] [--max N]
  fieldclust compare  <a.pcap> <b.pcap> [--segmenter S] [--cache-dir D]
  fieldclust segment  <capture.pcap> [--segmenter S] [--max N] [--limit M]
  fieldclust fuzz     <capture.pcap> [--segmenter S] [--count N] [--seed X]
  fieldclust generate <protocol> <messages> <out.pcap> [--seed X]
  fieldclust follow   <capture.pcap | --listen A> [--batch-msgs N] [--batch-interval MS]
                      [--batches N] [--sample N] [--seed X] [--idle-exit MS]
                      [--drift-log F] [--segmenter S] [--cache-dir D] [--report F] [--fsm]
  fieldclust protocols
  fieldclust submit   <capture.pcap> --addr A [--segmenter S] [--port P] [--max N] [--report out.md]
  fieldclust query    <job-id> --addr A [--report out.md]
  fieldclust stats    --addr A
  fieldclust shutdown --addr A

OPTIONS:
  --segmenter S   nemesys (default) | netzob | csp | fixed
  --port P        keep only messages with source or destination port P
  --max N         truncate the trace to N messages after preprocessing
  --reassemble    reassemble TCP streams with NBSS framing before analysis
  --limit M       print at most M items
  --count N       number of fuzzing candidates per cluster (default 3)
  --seed X        generation / sampling seed (default 1)
  --json          machine-readable output
  --report F      write a full Markdown analysis report to F
  --dot F         write the inferred state machine as Graphviz DOT to F
  --cache-dir D   persist stage artifacts under D and warm-start from them
  --tile-rows R   tiled dissimilarity build with R-row tiles (cached per tile)
  --max-memory B  byte budget for the dissimilarity build, with an optional
                  K/M/G suffix (e.g. 512M); translated into a tile height
  --neighbor-backend B
                  neighbor queries: auto (default) | matrix | tiled | vptree
                  | stratified; vptree and stratified never materialize the
                  O(u²) matrix (never affects results, only memory and wall
                  time); auto picks stratified on mixed-length corpora
  --swar          opt-in SWAR kernel fast path for vptree/stratified
                  distance evaluations (bit-identical)
  --threads N     threads for parallel stages, 0 = auto (never affects results)
  --addr A        a running ftcd daemon (e.g. 127.0.0.1:4747); `submit` sends
                  the capture there and waits for the identical report

FOLLOW OPTIONS (streaming ingestion):
  --listen A      accept length-framed raw messages on a loopback socket at A
                  (e.g. 127.0.0.1:0) instead of tailing a capture file
  --batch-msgs N  re-cluster once N messages are pending (default 64)
  --batch-interval MS
                  re-cluster pending messages after MS idle milliseconds
                  (default 500)
  --batches N     stop after N analyzed batches (0 = run until idle-exit)
  --sample N      stratified reservoir cap: keep at most N messages, sampled
                  deterministically by length stratum (0 = keep everything)
  --idle-exit MS  stop once no message has arrived for MS milliseconds
                  (0 = never)
  --drift-log F   append per-batch drift records to F as JSON lines
                  (default: stdout)
  --fsm           infer a protocol state machine per batch and add its
                  drift (states/transitions born/died) to each record

EXIT CODES:
  0  success    1  runtime failure    2  bad usage";

/// Parsed common options.
#[derive(Debug)]
pub struct CommonOpts {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--segmenter`.
    pub segmenter: String,
    /// `--port`.
    pub port: Option<u16>,
    /// `--max`.
    pub max: Option<usize>,
    /// `--limit`.
    pub limit: usize,
    /// `--count`.
    pub count: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--json`.
    pub json: bool,
    /// `--reassemble`.
    pub reassemble: bool,
    /// `--report`.
    pub report: Option<String>,
    /// `--dot`: DOT sink for `statemachine`.
    pub dot: Option<String>,
    /// `--cache-dir`.
    pub cache_dir: Option<String>,
    /// `--tile-rows`.
    pub tile_rows: Option<usize>,
    /// `--max-memory`, parsed to bytes.
    pub max_memory: Option<u64>,
    /// `--threads` (0 = auto). Parallelism only ever changes wall
    /// time, never results.
    pub threads: usize,
    /// `--neighbor-backend`. Backends only ever change memory and wall
    /// time, never results.
    pub neighbor_backend: fieldclust::NeighborBackend,
    /// `--swar`.
    pub swar: bool,
    /// `--addr`: a running `ftcd` daemon to talk to.
    pub addr: Option<String>,
    /// `--listen`: socket-feed address for `follow`.
    pub listen: Option<String>,
    /// `--batch-msgs`: pending-message batch boundary for `follow`.
    pub batch_msgs: usize,
    /// `--batch-interval`: idle-flush interval for `follow`, in ms.
    pub batch_interval_ms: u64,
    /// `--batches`: stop `follow` after this many batches (0 = no cap).
    pub batches: u64,
    /// `--sample`: stratified reservoir cap (0 = sampling off).
    pub sample: usize,
    /// `--idle-exit`: stop `follow` after this much arrival silence, in
    /// ms (0 = never).
    pub idle_exit_ms: u64,
    /// `--drift-log`: JSONL drift-record sink for `follow`.
    pub drift_log: Option<String>,
    /// `--fsm`: per-batch state-machine drift for `follow`.
    pub fsm: bool,
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024, case-insensitive): `"4096"`, `"64K"`, `"512M"`, `"2G"`.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let value: u64 = digits.parse().ok()?;
    value.checked_mul(1u64 << shift)
}

impl CommonOpts {
    /// Parses `args`; unknown flags are a usage error.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = CommonOpts {
            positional: Vec::new(),
            segmenter: "nemesys".to_string(),
            port: None,
            max: None,
            limit: 16,
            count: 3,
            seed: 1,
            json: false,
            reassemble: false,
            report: None,
            dot: None,
            cache_dir: None,
            tile_rows: None,
            max_memory: None,
            threads: 0,
            neighbor_backend: fieldclust::NeighborBackend::Auto,
            swar: false,
            addr: None,
            listen: None,
            batch_msgs: 64,
            batch_interval_ms: 500,
            batches: 0,
            sample: 0,
            idle_exit_ms: 0,
            drift_log: None,
            fsm: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<String, CliError> {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--segmenter" => opts.segmenter = value_for("--segmenter")?,
                "--port" => {
                    opts.port = Some(
                        value_for("--port")?
                            .parse()
                            .map_err(|_| CliError::usage("--port needs a number"))?,
                    )
                }
                "--max" => {
                    opts.max = Some(
                        value_for("--max")?
                            .parse()
                            .map_err(|_| CliError::usage("--max needs a number"))?,
                    )
                }
                "--limit" => {
                    opts.limit = value_for("--limit")?
                        .parse()
                        .map_err(|_| CliError::usage("--limit needs a number"))?
                }
                "--count" => {
                    opts.count = value_for("--count")?
                        .parse()
                        .map_err(|_| CliError::usage("--count needs a number"))?
                }
                "--seed" => {
                    opts.seed = value_for("--seed")?
                        .parse()
                        .map_err(|_| CliError::usage("--seed needs a number"))?
                }
                "--json" => opts.json = true,
                "--reassemble" => opts.reassemble = true,
                "--report" => opts.report = Some(value_for("--report")?),
                "--dot" => opts.dot = Some(value_for("--dot")?),
                "--cache-dir" => opts.cache_dir = Some(value_for("--cache-dir")?),
                "--tile-rows" => {
                    opts.tile_rows = Some(
                        value_for("--tile-rows")?
                            .parse()
                            .map_err(|_| CliError::usage("--tile-rows needs a number"))?,
                    )
                }
                "--max-memory" => {
                    let raw = value_for("--max-memory")?;
                    opts.max_memory = Some(parse_bytes(&raw).ok_or_else(|| {
                        CliError::usage("--max-memory needs a byte count like 4096, 64K, 512M, 2G")
                    })?)
                }
                "--threads" => {
                    opts.threads = value_for("--threads")?
                        .parse()
                        .map_err(|_| CliError::usage("--threads needs a number"))?
                }
                "--neighbor-backend" => {
                    opts.neighbor_backend = value_for("--neighbor-backend")?
                        .parse()
                        .map_err(CliError::usage)?
                }
                "--swar" => opts.swar = true,
                "--addr" => opts.addr = Some(value_for("--addr")?),
                "--listen" => opts.listen = Some(value_for("--listen")?),
                "--batch-msgs" => {
                    opts.batch_msgs = value_for("--batch-msgs")?
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| CliError::usage("--batch-msgs needs a positive number"))?
                }
                "--batch-interval" => {
                    opts.batch_interval_ms = value_for("--batch-interval")?
                        .parse()
                        .map_err(|_| CliError::usage("--batch-interval needs milliseconds"))?
                }
                "--batches" => {
                    opts.batches = value_for("--batches")?
                        .parse()
                        .map_err(|_| CliError::usage("--batches needs a number"))?
                }
                "--sample" => {
                    opts.sample = value_for("--sample")?
                        .parse()
                        .map_err(|_| CliError::usage("--sample needs a number"))?
                }
                "--idle-exit" => {
                    opts.idle_exit_ms = value_for("--idle-exit")?
                        .parse()
                        .map_err(|_| CliError::usage("--idle-exit needs milliseconds"))?
                }
                "--drift-log" => opts.drift_log = Some(value_for("--drift-log")?),
                "--fsm" => opts.fsm = true,
                flag if flag.starts_with("--") => {
                    return Err(CliError::usage(format!("unknown flag `{flag}`")))
                }
                positional => opts.positional.push(positional.to_string()),
            }
        }
        Ok(opts)
    }

    /// Instantiates the selected segmenter via the construction path
    /// shared with the daemon (`serve::build_segmenter`), so both
    /// frontends agree on segmenter identity and cache fingerprints.
    pub fn build_segmenter(&self) -> Result<Box<dyn Segmenter>, CliError> {
        serve::build_segmenter(&self.segmenter).map_err(CliError::usage)
    }
}

/// Renders bytes as a short hex preview.
pub fn hex_preview(bytes: &[u8], max: usize) -> String {
    let mut s: String = bytes.iter().take(max).map(|b| format!("{b:02x}")).collect();
    if bytes.len() > max {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CommonOpts, CliError> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        CommonOpts::parse(&args)
    }

    #[test]
    fn defaults() {
        let o = parse(&["file.pcap"]).unwrap();
        assert_eq!(o.positional, vec!["file.pcap"]);
        assert_eq!(o.segmenter, "nemesys");
        assert_eq!(o.port, None);
        assert!(!o.json);
    }

    #[test]
    fn flags_and_values() {
        let o = parse(&[
            "a.pcap",
            "--segmenter",
            "csp",
            "--port",
            "53",
            "--max",
            "100",
            "--json",
        ])
        .unwrap();
        assert_eq!(o.segmenter, "csp");
        assert_eq!(o.port, Some(53));
        assert_eq!(o.max, Some(100));
        assert!(o.json);
    }

    #[test]
    fn rejects_unknown_flag_and_missing_value() {
        for bad in [
            parse(&["--frobnicate"]),
            parse(&["--port"]),
            parse(&["--port", "x"]),
            parse(&["--cache-dir"]),
        ] {
            // All parse failures are usage errors (exit code 2).
            assert_eq!(bad.unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn dot_flag_is_parsed() {
        let o = parse(&["a.pcap", "--dot", "machine.dot"]).unwrap();
        assert_eq!(o.dot.as_deref(), Some("machine.dot"));
        assert!(parse(&["a.pcap"]).unwrap().dot.is_none());
        assert_eq!(parse(&["--dot"]).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn cache_dir_is_parsed() {
        let o = parse(&["a.pcap", "--cache-dir", "/tmp/cache"]).unwrap();
        assert_eq!(o.cache_dir.as_deref(), Some("/tmp/cache"));
        assert!(parse(&["a.pcap"]).unwrap().cache_dir.is_none());
    }

    #[test]
    fn tile_flags_are_parsed() {
        let o = parse(&["a.pcap", "--tile-rows", "256", "--max-memory", "512M"]).unwrap();
        assert_eq!(o.tile_rows, Some(256));
        assert_eq!(o.max_memory, Some(512 << 20));
        let o = parse(&["a.pcap"]).unwrap();
        assert_eq!(o.tile_rows, None);
        assert_eq!(o.max_memory, None);
        for bad in [
            parse(&["--tile-rows", "many"]),
            parse(&["--max-memory", "lots"]),
            parse(&["--max-memory"]),
        ] {
            assert_eq!(bad.unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn threads_and_addr_are_parsed() {
        let o = parse(&["a.pcap", "--threads", "4", "--addr", "127.0.0.1:4747"]).unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:4747"));
        let o = parse(&["a.pcap"]).unwrap();
        assert_eq!(o.threads, 0);
        assert!(o.addr.is_none());
        for bad in [parse(&["--threads", "many"]), parse(&["--addr"])] {
            assert_eq!(bad.unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn neighbor_backend_is_parsed() {
        use fieldclust::NeighborBackend;
        let o = parse(&["a.pcap", "--neighbor-backend", "vptree", "--swar"]).unwrap();
        assert_eq!(o.neighbor_backend, NeighborBackend::Vptree);
        assert!(o.swar);
        let o = parse(&["a.pcap", "--neighbor-backend", "stratified"]).unwrap();
        assert_eq!(o.neighbor_backend, NeighborBackend::Stratified);
        let o = parse(&["a.pcap"]).unwrap();
        assert_eq!(o.neighbor_backend, NeighborBackend::Auto);
        assert!(!o.swar);
        for bad in [
            parse(&["--neighbor-backend", "quadtree"]),
            parse(&["--neighbor-backend"]),
        ] {
            assert_eq!(bad.unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn follow_flags_are_parsed() {
        let o = parse(&[
            "grow.pcap",
            "--batch-msgs",
            "40",
            "--batch-interval",
            "200",
            "--batches",
            "3",
            "--sample",
            "32",
            "--idle-exit",
            "2000",
            "--drift-log",
            "drift.jsonl",
            "--listen",
            "127.0.0.1:0",
            "--fsm",
        ])
        .unwrap();
        assert_eq!(o.batch_msgs, 40);
        assert_eq!(o.batch_interval_ms, 200);
        assert_eq!(o.batches, 3);
        assert_eq!(o.sample, 32);
        assert_eq!(o.idle_exit_ms, 2000);
        assert_eq!(o.drift_log.as_deref(), Some("drift.jsonl"));
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert!(o.fsm);
    }

    #[test]
    fn follow_defaults_and_bad_values() {
        let o = parse(&["grow.pcap"]).unwrap();
        assert_eq!(o.batch_msgs, 64);
        assert_eq!(o.batch_interval_ms, 500);
        assert_eq!(o.batches, 0);
        assert_eq!(o.sample, 0);
        assert_eq!(o.idle_exit_ms, 0);
        assert!(o.drift_log.is_none());
        assert!(o.listen.is_none());
        assert!(!o.fsm);
        for bad in [
            parse(&["--batch-msgs", "0"]), // a zero boundary never flushes
            parse(&["--batch-msgs", "many"]),
            parse(&["--batch-interval", "soon"]),
            parse(&["--batches"]),
            parse(&["--sample", "-1"]),
            parse(&["--idle-exit", "never"]),
            parse(&["--drift-log"]),
        ] {
            assert_eq!(bad.unwrap_err().exit_code(), 2);
        }
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("512M"), Some(512 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("G"), None);
        assert_eq!(parse_bytes("-1K"), None);
        assert_eq!(parse_bytes("99999999999999999999G"), None);
    }

    #[test]
    fn segmenter_construction() {
        for name in ["nemesys", "netzob", "csp", "fixed"] {
            let o = parse(&["--segmenter", name]).unwrap();
            assert_eq!(o.build_segmenter().unwrap().name(), name);
        }
        assert!(parse(&["--segmenter", "magic"])
            .unwrap()
            .build_segmenter()
            .is_err());
    }

    #[test]
    fn hex_preview_truncates() {
        assert_eq!(hex_preview(&[0xAB, 0xCD], 4), "abcd");
        assert_eq!(hex_preview(&[1, 2, 3, 4, 5], 3), "010203…");
    }
}
