//! Drives the compiled `fieldclust` binary and asserts the exit-code
//! contract: 0 success, 1 runtime failure, 2 bad usage — with the
//! failing subcommand named on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fieldclust"))
        .args(args)
        .output()
        .expect("spawn fieldclust binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fieldclust-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn bad_flag_exits_2_and_names_the_subcommand() {
    let out = run(&["analyze", "whatever.pcap", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("error: analyze:"), "stderr: {err}");
    assert!(err.contains("--frobnicate"), "stderr: {err}");
}

#[test]
fn missing_flag_value_exits_2() {
    let out = run(&["msgtype", "x.pcap", "--port"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("error: msgtype:"));
}

#[test]
fn unknown_command_exits_2_with_usage() {
    let out = run(&["transmogrify"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("USAGE"), "stderr: {err}");
}

#[test]
fn no_arguments_exits_2_with_usage() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn runtime_failure_exits_1_and_names_the_subcommand() {
    let out = run(&["analyze", "/nonexistent/capture.pcap"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("error: analyze:"), "stderr: {err}");
    assert!(err.contains("/nonexistent/capture.pcap"), "stderr: {err}");
}

#[test]
fn success_exits_0() {
    let out = run(&["protocols"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn daemon_commands_without_addr_exit_2() {
    for args in [&["submit", "x.pcap"][..], &["query", "1"], &["shutdown"]] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
        assert!(stderr(&out).contains("--addr"), "stderr: {}", stderr(&out));
    }
}

#[test]
fn unreachable_daemon_exits_1() {
    // Port 1 on loopback is essentially never listening; the connect
    // failure must surface as a runtime error, not a hang or panic.
    let out = run(&["shutdown", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("error: shutdown:"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn query_needs_a_numeric_job_id() {
    let out = run(&["query", "soon", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn statemachine_runtime_failure_exits_1_and_bad_flag_exits_2() {
    let out = run(&["statemachine", "/nonexistent/capture.pcap"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("error: statemachine:"));

    let out = run(&["statemachine", "x.pcap", "--dot"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--dot"), "stderr: {}", stderr(&out));
}

#[test]
fn statemachine_warm_run_rebuilds_nothing_and_dot_is_thread_invariant() {
    let pcap = tmp("fsm.pcap");
    let cache = tmp("fsm-cache");
    let dot_a = tmp("fsm-a.dot");
    let dot_b = tmp("fsm-b.dot");
    let out = run(&[
        "generate",
        "ntp",
        "40",
        pcap.to_str().unwrap(),
        "--seed",
        "12",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let infer = |dot: &PathBuf, threads: &str| {
        run(&[
            "statemachine",
            pcap.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--threads",
            threads,
            "--dot",
            dot.to_str().unwrap(),
        ])
    };
    let cold = infer(&dot_a, "1");
    assert_eq!(cold.status.code(), Some(0), "stderr: {}", stderr(&cold));
    assert!(stderr(&cold).contains("cache: hits=0"));

    // Warm, different thread count: byte-identical DOT and nothing
    // rebuilt — the persisted machine is served straight from the
    // store.
    let warm = infer(&dot_b, "4");
    assert_eq!(warm.status.code(), Some(0), "stderr: {}", stderr(&warm));
    let warm_err = stderr(&warm);
    assert!(warm_err.contains("misses=0"), "stderr: {warm_err}");
    assert!(warm_err.contains("writes=0"), "stderr: {warm_err}");
    let a = std::fs::read(&dot_a).expect("read cold dot");
    let b = std::fs::read(&dot_b).expect("read warm dot");
    assert!(!a.is_empty() && a.starts_with(b"digraph"), "dot rendering");
    assert_eq!(a, b, "DOT must be byte-identical across thread counts");

    // The JSON rendering is deterministic too.
    let json = |threads: &str| {
        run(&[
            "statemachine",
            pcap.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--threads",
            threads,
            "--json",
        ])
    };
    let j1 = json("1");
    let j4 = json("4");
    assert_eq!(j1.status.code(), Some(0), "stderr: {}", stderr(&j1));
    assert_eq!(j1.stdout, j4.stdout, "JSON identical across thread counts");

    std::fs::remove_file(&pcap).ok();
    std::fs::remove_file(&dot_a).ok();
    std::fs::remove_file(&dot_b).ok();
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn cache_dir_warm_run_reports_hits_and_identical_output() {
    let pcap = tmp("cached.pcap");
    let cache = tmp("cache");
    let out = run(&[
        "generate",
        "ntp",
        "60",
        pcap.to_str().unwrap(),
        "--seed",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));

    let analyze = || {
        run(&[
            "analyze",
            pcap.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
    };
    let cold = analyze();
    assert_eq!(cold.status.code(), Some(0), "stderr: {}", stderr(&cold));
    let cold_err = stderr(&cold);
    assert!(cold_err.contains("cache: hits=0"), "stderr: {cold_err}");
    assert!(cold_err.contains("writes="), "stderr: {cold_err}");

    let warm = analyze();
    assert_eq!(warm.status.code(), Some(0), "stderr: {}", stderr(&warm));
    let warm_err = stderr(&warm);
    assert!(warm_err.contains("misses=0"), "stderr: {warm_err}");
    assert!(warm_err.contains("writes=0"), "stderr: {warm_err}");
    // The warm run reproduces the cold run's report byte for byte.
    assert_eq!(cold.stdout, warm.stdout);

    std::fs::remove_file(&pcap).ok();
    std::fs::remove_dir_all(&cache).ok();
}
