//! End-to-end CLI flows: generate a capture, then run every read
//! command against it.

use cli::commands;

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("fieldclust-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn args(words: &[&str]) -> Vec<String> {
    words.iter().map(|s| s.to_string()).collect()
}

#[test]
fn generate_then_analyze_segment_fuzz() {
    let pcap = tmp("roundtrip.pcap");
    commands::generate(&args(&["ntp", "60", &pcap, "--seed", "3"])).unwrap();
    assert!(std::path::Path::new(&pcap).exists());

    commands::analyze(&args(&[&pcap])).unwrap();
    commands::analyze(&args(&[&pcap, "--json", "--max", "40"])).unwrap();
    commands::segment(&args(&[&pcap, "--limit", "2"])).unwrap();
    commands::fuzz(&args(&[&pcap, "--count", "2", "--seed", "7"])).unwrap();
    std::fs::remove_file(&pcap).ok();
}

#[test]
fn generate_rejects_bad_protocol_and_counts() {
    let pcap = tmp("never-written.pcap");
    assert!(commands::generate(&args(&["quic", "10", &pcap])).is_err());
    assert!(commands::generate(&args(&["ntp", "ten", &pcap])).is_err());
    assert!(commands::generate(&args(&["ntp"])).is_err());
    assert!(!std::path::Path::new(&pcap).exists());
}

#[test]
fn analyze_rejects_missing_file_and_empty_trace() {
    // A well-formed invocation over a missing file is a runtime
    // failure (exit class 1), not a usage error.
    let err = commands::analyze(&args(&["/nonexistent/x.pcap"])).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    // Filter that matches nothing -> empty trace error.
    let pcap = tmp("filtered.pcap");
    commands::generate(&args(&["dns", "20", &pcap])).unwrap();
    let err = commands::analyze(&args(&[&pcap, "--port", "9"])).unwrap_err();
    assert!(err.to_string().contains("no messages"), "{err}");
    assert_eq!(err.exit_code(), 1);
    // A missing positional argument is a usage error (exit class 2).
    assert_eq!(commands::analyze(&[]).unwrap_err().exit_code(), 2);
    std::fs::remove_file(&pcap).ok();
}

#[test]
fn protocols_lists_without_error() {
    commands::protocols(&[]).unwrap();
}

#[test]
fn submit_report_is_byte_identical_to_offline_analyze() {
    let pcap = tmp("daemon-identity.pcap");
    let offline_md = tmp("offline.md");
    let daemon_md = tmp("daemon.md");
    commands::generate(&args(&["dns", "24", &pcap, "--seed", "9"])).unwrap();
    commands::analyze(&args(&[&pcap, "--report", &offline_md])).unwrap();

    let handle = serve::start(serve::ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    commands::submit(&args(&[&pcap, "--addr", &addr, "--report", &daemon_md])).unwrap();
    assert_eq!(
        std::fs::read(&offline_md).unwrap(),
        std::fs::read(&daemon_md).unwrap(),
        "daemon report must be byte-identical to the offline CLI's"
    );
    // The daemon-mode stats command answers against the same daemon.
    commands::stats(&args(&["--addr", &addr])).unwrap();
    commands::shutdown(&args(&["--addr", &addr])).unwrap();
    handle.wait();
    for f in [&pcap, &offline_md, &daemon_md] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn threads_flag_never_changes_results() {
    let pcap = tmp("threads.pcap");
    let serial_md = tmp("serial.md");
    let parallel_md = tmp("parallel.md");
    commands::generate(&args(&["ntp", "30", &pcap, "--seed", "4"])).unwrap();
    commands::analyze(&args(&[&pcap, "--threads", "1", "--report", &serial_md])).unwrap();
    commands::analyze(&args(&[&pcap, "--threads", "4", "--report", &parallel_md])).unwrap();
    assert_eq!(
        std::fs::read(&serial_md).unwrap(),
        std::fs::read(&parallel_md).unwrap(),
        "--threads must only affect wall time, never the report"
    );
    for f in [&pcap, &serial_md, &parallel_md] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn segmenter_flag_is_honored() {
    let pcap = tmp("segmenter.pcap");
    commands::generate(&args(&["dns", "30", &pcap])).unwrap();
    commands::segment(&args(&[&pcap, "--segmenter", "csp", "--limit", "1"])).unwrap();
    assert!(commands::segment(&args(&[&pcap, "--segmenter", "bogus"])).is_err());
    std::fs::remove_file(&pcap).ok();
}
