//! Automatic DBSCAN parameter selection (paper §III-D, Algorithm 1).
//!
//! For each `k` from 2 to `round(ln n)` the algorithm builds the ECDF of
//! every segment's k-NN dissimilarity, smooths it with a least-squares
//! cubic B-spline, and measures the sharpness of its steepest step. The
//! `k` with the sharpest step wins; Kneedle then locates the rightmost
//! knee of that smoothed ECDF and its dissimilarity becomes DBSCAN's ε.
//! `min_samples` is `round(ln n)`, which the paper found sufficient to
//! avoid scattering large traces into many small clusters.

use dissim::{
    CondensedMatrix, IndexProvider, KnnTable, MatrixProvider, NeighborIndex, NeighborProvider,
};
use mathkit::kneedle::{detect_knees, KneedleParams};
use mathkit::SmoothingSpline;

/// Tunables of the auto-configuration. The defaults mirror the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoConfig {
    /// Kneedle sensitivity `S`.
    pub sensitivity: f64,
    /// Spline smoothing: number of interior knots of the least-squares
    /// cubic B-spline (our mapping of the original's SciPy `s`
    /// parameter; fewer knots → smoother, see DESIGN.md §4.5).
    pub smoothing_knots: usize,
    /// Number of grid points the smoothed ECDF is sampled on for knee
    /// detection.
    pub grid_points: usize,
    /// Only consider dissimilarities strictly below this cutoff, for the
    /// multi-knee fallback of §III-E (`Ê'_k = Ê_k({d < d_κ})`).
    pub max_dissimilarity: Option<f64>,
}

impl Default for AutoConfig {
    fn default() -> Self {
        Self {
            sensitivity: 1.0,
            smoothing_knots: 12,
            grid_points: 200,
            max_dissimilarity: None,
        }
    }
}

/// The selected DBSCAN parameters plus diagnostics for plotting (Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedParams {
    /// DBSCAN radius: the dissimilarity at the detected knee.
    pub epsilon: f64,
    /// DBSCAN density threshold: `round(ln n)`, at least 2.
    pub min_samples: usize,
    /// The `k` whose ECDF had the sharpest knee.
    pub k: usize,
    /// Sorted k-NN dissimilarities of the winning `k` (the raw ECDF
    /// support; y values are `(i+1)/n`).
    pub ecdf_values: Vec<f64>,
    /// The smoothed ECDF sampled on a uniform dissimilarity grid:
    /// `(dissimilarity, cumulative fraction)` pairs.
    pub smoothed_curve: Vec<(f64, f64)>,
}

/// Error from [`auto_configure`].
#[derive(Debug, Clone, PartialEq)]
pub enum AutoConfError {
    /// Fewer than four unique segments — too few for k-NN statistics.
    TooFewSegments {
        /// How many segments were provided.
        n: usize,
    },
    /// All pairwise dissimilarities are (nearly) identical, so no knee
    /// exists.
    DegenerateDistribution,
    /// The `max_dissimilarity` trim left fewer than four ECDF points for
    /// every candidate `k`, so the spline knee search cannot run. This
    /// is a property of the trim cutoff, not of the data — callers
    /// retrying §III-E's trimmed rerun should fall back to the untrimmed
    /// selection instead of treating the trace as degenerate.
    TooFewEcdfPoints {
        /// Points remaining after the trim for the best-populated `k`.
        points: usize,
    },
    /// No knee was detected in any k-NN ECDF.
    NoKnee,
}

impl std::fmt::Display for AutoConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoConfError::TooFewSegments { n } => {
                write!(f, "too few segments for auto-configuration ({n} < 4)")
            }
            AutoConfError::DegenerateDistribution => {
                write!(f, "dissimilarity distribution is degenerate")
            }
            AutoConfError::TooFewEcdfPoints { points } => {
                write!(
                    f,
                    "max-dissimilarity trim left too few ECDF points ({points} < 4) for every k"
                )
            }
            AutoConfError::NoKnee => write!(f, "no knee detected in any k-NN ECDF"),
        }
    }
}

impl std::error::Error for AutoConfError {}

/// Runs Algorithm 1: selects ε and `min_samples` from the dissimilarity
/// matrix.
///
/// # Errors
///
/// See [`AutoConfError`].
pub fn auto_configure(
    matrix: &CondensedMatrix,
    config: &AutoConfig,
) -> Result<SelectedParams, AutoConfError> {
    auto_configure_with_provider(&MatrixProvider::new(matrix), config)
}

/// Runs Algorithm 1 with k-NN dissimilarities read off a prebuilt
/// [`NeighborIndex`] instead of scanning matrix rows.
///
/// The k-th neighbor dissimilarity is the same order statistic either
/// way, so this selects exactly the parameters [`auto_configure`] would.
///
/// # Errors
///
/// See [`AutoConfError`].
pub fn auto_configure_with_index(
    index: &NeighborIndex,
    config: &AutoConfig,
) -> Result<SelectedParams, AutoConfError> {
    auto_configure_with_provider(&IndexProvider::new(index), config)
}

/// Runs Algorithm 1 with k-NN dissimilarities answered by any
/// [`NeighborProvider`] backend — the entry point the matrix and index
/// variants funnel into.
///
/// The k-th neighbor dissimilarity is the same order statistic for
/// every backend, so all of them select exactly the parameters
/// [`auto_configure`] would.
///
/// # Errors
///
/// See [`AutoConfError`].
pub fn auto_configure_with_provider<P: NeighborProvider + ?Sized>(
    provider: &P,
    config: &AutoConfig,
) -> Result<SelectedParams, AutoConfError> {
    auto_configure_impl(provider.len(), |k| provider.knn_dissimilarities(k), config)
}

/// Runs Algorithm 1 with each candidate `k`'s full k-NN sweep answered
/// by the provider's batched parallel path
/// ([`NeighborProvider::knn_dissimilarities_parallel`]): the n queries
/// of every ECDF fan out over `threads` workers instead of running one
/// at a time.
///
/// The batch path writes each item's answer into its own slot, so the
/// selected parameters are bit-identical to
/// [`auto_configure_with_provider`] at any thread count.
///
/// # Errors
///
/// See [`AutoConfError`].
pub fn auto_configure_parallel<P: NeighborProvider + Sync + ?Sized>(
    provider: &P,
    config: &AutoConfig,
    threads: usize,
) -> Result<SelectedParams, AutoConfError> {
    auto_configure_impl(
        provider.len(),
        |k| provider.knn_dissimilarities_parallel(k, threads),
        config,
    )
}

/// The largest `k` Algorithm 1 will query for `n` items — what a
/// [`KnnTable`] must be built with (at least) for
/// [`auto_configure_with_knn`].
pub fn required_k_max(n: usize) -> usize {
    let min_samples = ((n as f64).ln().round() as usize).max(2);
    min_samples.min(n.saturating_sub(1)).max(1)
}

/// Runs Algorithm 1 with k-NN dissimilarities read off a precomputed
/// [`KnnTable`] (built from a tiled matrix without materializing the
/// full matrix or neighbor lists).
///
/// The table holds the same k-th order statistics a matrix scan
/// produces, so this selects exactly the parameters [`auto_configure`]
/// would.
///
/// # Panics
///
/// Panics if the table was built with `k_max <`
/// [`required_k_max`]`(table.len())`.
///
/// # Errors
///
/// See [`AutoConfError`].
pub fn auto_configure_with_knn(
    table: &KnnTable,
    config: &AutoConfig,
) -> Result<SelectedParams, AutoConfError> {
    let n = table.len();
    assert!(
        n < 4 || table.k_max() >= required_k_max(n),
        "knn table too shallow for auto-configuration"
    );
    auto_configure_impl(n, |k| table.knn_dissimilarities(k), config)
}

/// Shared core of Algorithm 1. `knn` returns each item's k-th nearest
/// neighbor dissimilarity (in any item order — the values are sorted
/// before use).
fn auto_configure_impl(
    n: usize,
    knn: impl Fn(usize) -> Vec<f64>,
    config: &AutoConfig,
) -> Result<SelectedParams, AutoConfError> {
    if n < 4 {
        return Err(AutoConfError::TooFewSegments { n });
    }
    let min_samples = ((n as f64).ln().round() as usize).max(2);
    let k_max = min_samples.min(n - 1);

    let mut best: Option<(f64, usize, Vec<f64>, SmoothingSpline)> = None;
    // Track how the max-dissimilarity trim starved candidate ks, so a
    // cutoff that leaves nothing to fit is reported as such instead of
    // masquerading as a degenerate distribution.
    let mut trim_starved = 0usize;
    let mut trim_best_points = 0usize;
    for k in 2..=k_max {
        let mut knn = knn(k);
        if let Some(cutoff) = config.max_dissimilarity {
            knn.retain(|&d| d < cutoff);
            if knn.len() < 4 {
                trim_starved += 1;
                trim_best_points = trim_best_points.max(knn.len());
                continue;
            }
        }
        knn.sort_by(|a, b| a.partial_cmp(b).expect("dissimilarities are not NaN"));
        let span = knn.last().unwrap() - knn.first().unwrap();
        if span <= f64::EPSILON {
            continue;
        }
        // Smooth the quantile view (fraction → dissimilarity): x is the
        // strictly increasing cumulative fraction, so the spline fit is
        // well-posed even with tied dissimilarities.
        let m = knn.len();
        let fracs: Vec<f64> = (1..=m).map(|i| i as f64 / m as f64).collect();
        let Ok(spline) = SmoothingSpline::fit(&fracs, &knn, config.smoothing_knots) else {
            continue;
        };
        // Sharpness: the largest increase in distance between adjacent
        // grid points of the smoothed curve (max δB_k).
        let grid = config.grid_points.max(8);
        let samples: Vec<f64> = (0..grid)
            .map(|i| spline.eval(fracs[0] + (1.0 - fracs[0]) * i as f64 / (grid - 1) as f64))
            .collect();
        let sharpness = samples
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let replace = match &best {
            None => true,
            Some((s, _, _, _)) => sharpness > *s,
        };
        if replace {
            best = Some((sharpness, k, knn, spline));
        }
    }
    let (_, k, knn, spline) = match best {
        Some(found) => found,
        None if trim_starved == k_max - 1 => {
            // Every candidate k (there are k_max - 1 of them) was starved
            // by the trim: the cutoff is the problem, not the data.
            return Err(AutoConfError::TooFewEcdfPoints {
                points: trim_best_points,
            });
        }
        None => return Err(AutoConfError::DegenerateDistribution),
    };

    // Sample the smoothed ECDF: x = smoothed dissimilarity (monotonized),
    // y = cumulative fraction.
    let m = knn.len();
    let grid = config.grid_points.max(8);
    let f0 = 1.0 / m as f64;
    let mut xs = Vec::with_capacity(grid);
    let mut ys = Vec::with_capacity(grid);
    let mut running_max = f64::NEG_INFINITY;
    for i in 0..grid {
        let frac = f0 + (1.0 - f0) * i as f64 / (grid - 1) as f64;
        let d = spline.eval(frac);
        running_max = running_max.max(d);
        xs.push(running_max);
        ys.push(frac);
    }
    let params = KneedleParams {
        sensitivity: config.sensitivity,
    };
    let knees = detect_knees(&xs, &ys, &params);
    let knee = knees.last().copied().ok_or(AutoConfError::NoKnee)?;

    Ok(SelectedParams {
        epsilon: knee.x,
        min_samples,
        k,
        ecdf_values: knn,
        smoothed_curve: xs.into_iter().zip(ys).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic data: `clusters` groups of points on a line with
    /// intra-cluster jitter `jitter` and inter-cluster spacing `gap`.
    fn blobs(clusters: usize, per: usize, jitter: f64, gap: f64, seed: u64) -> CondensedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for c in 0..clusters {
            for _ in 0..per {
                pts.push(c as f64 * gap + rng.gen_range(-jitter..jitter));
            }
        }
        CondensedMatrix::build(pts.len(), |i, j| (pts[i] - pts[j]).abs())
    }

    #[test]
    fn epsilon_separates_well_spaced_blobs() {
        let m = blobs(5, 20, 0.05, 10.0, 1);
        let p = auto_configure(&m, &AutoConfig::default()).unwrap();
        // ε must be positive and smaller than the inter-blob gap (10) —
        // k-NN distances are all intra-cluster here, so the knee sits at
        // the intra-cluster scale.
        assert!(p.epsilon > 0.0 && p.epsilon < 10.0, "eps = {}", p.epsilon);
        assert_eq!(p.min_samples, ((100f64).ln().round()) as usize);
        assert!(p.k >= 2 && p.k <= p.min_samples);
        // Clustering with those parameters may over-classify (the knee
        // sits at the intra-cluster scale); merge refinement must then
        // recover exactly the 5 blobs — the paper's full §III-D..F loop.
        let c = crate::dbscan::dbscan(&m, p.epsilon, p.min_samples);
        assert!(c.n_clusters() >= 5, "got {} clusters", c.n_clusters());
        let merged = crate::refine::merge_clusters(&c, &m, &crate::refine::RefineParams::default());
        assert_eq!(merged.n_clusters(), 5);
    }

    #[test]
    fn index_backed_autoconf_matches_matrix_scan() {
        let m = blobs(4, 18, 0.08, 7.0, 5);
        let idx = dissim::NeighborIndex::build(&m);
        for config in [
            AutoConfig::default(),
            AutoConfig {
                max_dissimilarity: Some(1.0),
                ..AutoConfig::default()
            },
        ] {
            assert_eq!(
                auto_configure(&m, &config),
                auto_configure_with_index(&idx, &config)
            );
        }
    }

    #[test]
    fn parallel_autoconf_matches_serial() {
        let m = blobs(4, 18, 0.08, 7.0, 5);
        let idx = dissim::NeighborIndex::build(&m);
        let provider = dissim::IndexedProvider::new(&m, &idx);
        for config in [
            AutoConfig::default(),
            AutoConfig {
                max_dissimilarity: Some(1.0),
                ..AutoConfig::default()
            },
        ] {
            let serial = auto_configure_with_provider(&provider, &config);
            for threads in [1usize, 4] {
                assert_eq!(
                    serial,
                    auto_configure_parallel(&provider, &config, threads),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn rejects_tiny_inputs() {
        let m = CondensedMatrix::build(3, |_, _| 1.0);
        assert!(matches!(
            auto_configure(&m, &AutoConfig::default()),
            Err(AutoConfError::TooFewSegments { n: 3 })
        ));
    }

    #[test]
    fn knn_table_autoconf_matches_matrix_scan() {
        let m = blobs(4, 18, 0.08, 7.0, 5);
        let n = m.len();
        let mut acc = dissim::KnnAccumulator::new(n, required_k_max(n));
        for i in 0..n {
            for j in (i + 1)..n {
                let d = m.get(i, j);
                acc.push(i, d);
                acc.push(j, d);
            }
        }
        let table = acc.finish();
        for config in [
            AutoConfig::default(),
            AutoConfig {
                max_dissimilarity: Some(1.0),
                ..AutoConfig::default()
            },
        ] {
            assert_eq!(
                auto_configure(&m, &config),
                auto_configure_with_knn(&table, &config)
            );
        }
    }

    #[test]
    fn trim_starving_every_k_reports_structured_error() {
        let m = blobs(5, 20, 0.05, 10.0, 1);
        // A cutoff below every dissimilarity starves the ECDF of every
        // candidate k: the error must name the trim, not the data.
        let starved = auto_configure(
            &m,
            &AutoConfig {
                max_dissimilarity: Some(0.0),
                ..AutoConfig::default()
            },
        );
        assert_eq!(starved, Err(AutoConfError::TooFewEcdfPoints { points: 0 }));
    }

    #[test]
    fn rejects_degenerate_distribution() {
        // All points identical -> all distances zero -> no knee.
        let m = CondensedMatrix::build(30, |_, _| 0.0);
        assert!(matches!(
            auto_configure(&m, &AutoConfig::default()),
            Err(AutoConfError::DegenerateDistribution)
        ));
    }

    #[test]
    fn trimmed_rerun_moves_epsilon_left() {
        let m = blobs(4, 25, 0.05, 5.0, 2);
        let first = auto_configure(&m, &AutoConfig::default()).unwrap();
        let trimmed = auto_configure(
            &m,
            &AutoConfig {
                max_dissimilarity: Some(first.epsilon),
                ..AutoConfig::default()
            },
        );
        if let Ok(second) = trimmed {
            assert!(
                second.epsilon <= first.epsilon,
                "{} > {}",
                second.epsilon,
                first.epsilon
            );
        }
    }

    #[test]
    fn diagnostics_are_consistent() {
        let m = blobs(3, 30, 0.1, 8.0, 3);
        let p = auto_configure(&m, &AutoConfig::default()).unwrap();
        assert_eq!(p.ecdf_values.len(), 90);
        assert!(p.ecdf_values.windows(2).all(|w| w[0] <= w[1]));
        assert!(!p.smoothed_curve.is_empty());
        // Smoothed x values are monotone.
        assert!(p.smoothed_curve.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn min_samples_follows_ln_n() {
        let m = blobs(2, 10, 0.05, 10.0, 4); // n = 20 -> ln 20 ≈ 3
        let p = auto_configure(&m, &AutoConfig::default()).unwrap();
        assert_eq!(p.min_samples, 3);
    }
}
