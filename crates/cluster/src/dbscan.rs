//! DBSCAN (Ester et al., KDD 1996) over a precomputed dissimilarity
//! matrix.
//!
//! DBSCAN suits the field-type clustering problem because it needs no
//! target cluster count, makes no shape assumptions, and treats sparse
//! segments as noise (paper §III-E). This implementation follows the
//! classic region-growing formulation with scikit-learn's convention that
//! `min_samples` counts the point itself.

use dissim::{CondensedMatrix, IndexProvider, MatrixProvider, NeighborIndex, NeighborProvider};

/// Cluster assignment of one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Member of the cluster with the given id (ids are dense, from 0).
    Cluster(u32),
    /// Not density-reachable from any core point.
    Noise,
}

/// The result of a clustering run: one [`Label`] per item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<Label>,
    n_clusters: u32,
}

impl Clustering {
    /// Builds a clustering from explicit labels.
    ///
    /// Cluster ids need not be dense; they are compacted.
    pub fn from_labels(labels: Vec<Label>) -> Self {
        let mut c = Self {
            labels,
            n_clusters: 0,
        };
        c.compact();
        c
    }

    /// Per-item labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the clustering covers zero items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters (noise excluded).
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Item indices per cluster, indexed by cluster id.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters as usize];
        for (i, l) in self.labels.iter().enumerate() {
            if let Label::Cluster(c) = l {
                out[*c as usize].push(i);
            }
        }
        out
    }

    /// Indices labelled as noise.
    pub fn noise(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Label::Noise)
            .map(|(i, _)| i)
            .collect()
    }

    /// Renumbers cluster ids densely (0..n_clusters) preserving first-
    /// appearance order and recomputes the cluster count.
    fn compact(&mut self) {
        let mut map = std::collections::HashMap::new();
        let mut next = 0u32;
        for l in &mut self.labels {
            if let Label::Cluster(c) = l {
                let id = *map.entry(*c).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                *l = Label::Cluster(id);
            }
        }
        self.n_clusters = next;
    }
}

/// Runs DBSCAN with radius `eps` and density threshold `min_samples`
/// (which counts the point itself).
///
/// Deterministic: items are visited in index order, so cluster ids are
/// stable for a given input.
pub fn dbscan(matrix: &CondensedMatrix, eps: f64, min_samples: usize) -> Clustering {
    let weights = vec![1usize; matrix.len()];
    dbscan_weighted(matrix, eps, min_samples, &weights)
}

/// Runs DBSCAN with ε-region queries answered by a prebuilt
/// [`NeighborIndex`] (binary-searched sorted neighbor lists) instead of
/// matrix row scans.
///
/// Produces exactly the same clustering as [`dbscan`]: the region query
/// returns neighbors ordered by dissimilarity instead of index, and
/// DBSCAN's density-reachable sets are invariant under that permutation.
pub fn dbscan_with_index(index: &NeighborIndex, eps: f64, min_samples: usize) -> Clustering {
    let weights = vec![1usize; index.len()];
    dbscan_weighted_with_index(index, eps, min_samples, &weights)
}

/// Weighted DBSCAN (see [`dbscan_weighted`]) over a prebuilt
/// [`NeighborIndex`].
///
/// # Panics
///
/// Panics if `weights` is shorter than the index.
pub fn dbscan_weighted_with_index(
    index: &NeighborIndex,
    eps: f64,
    min_samples: usize,
    weights: &[usize],
) -> Clustering {
    dbscan_weighted_with_provider(&IndexProvider::new(index), eps, min_samples, weights)
}

/// Weighted DBSCAN with ε-region queries answered by any
/// [`NeighborProvider`] backend — the entry point every other DBSCAN
/// function funnels into.
///
/// # Panics
///
/// Panics if `weights` is shorter than the provider's item count.
pub fn dbscan_weighted_with_provider<P: NeighborProvider + ?Sized>(
    provider: &P,
    eps: f64,
    min_samples: usize,
    weights: &[usize],
) -> Clustering {
    let n = provider.len();
    assert!(weights.len() >= n, "need a weight per item");
    let mut nb: Vec<(f64, u32)> = Vec::new();
    dbscan_impl(n, min_samples, weights, |i, out| {
        provider.neighbors_within(i, eps, &mut nb);
        out.extend(nb.iter().map(|&(_, j)| j as usize));
    })
}

/// [`dbscan_with_index`] with the per-item core predicate evaluated in
/// parallel on the `parkit` scheduler before the (serial, deterministic)
/// region growing.
pub fn dbscan_parallel_with_index(
    index: &NeighborIndex,
    eps: f64,
    min_samples: usize,
    threads: usize,
) -> Clustering {
    let weights = vec![1usize; index.len()];
    dbscan_weighted_parallel_with_index(index, eps, min_samples, &weights, threads)
}

/// [`dbscan_weighted_with_index`] with the per-item core predicate
/// evaluated in parallel on the `parkit` scheduler.
///
/// Whether an item is core — its ε-neighborhood weight reaches
/// `min_samples` — is an integer sum over its own index row, written to
/// its own slot, so the predicate vector is exact and independent of
/// scheduling; the region growing then consumes it in the same serial
/// index order as the other entry points. The clustering is therefore
/// identical to [`dbscan_weighted_with_index`] for any thread count.
///
/// # Panics
///
/// Panics if `weights` is shorter than the index.
pub fn dbscan_weighted_parallel_with_index(
    index: &NeighborIndex,
    eps: f64,
    min_samples: usize,
    weights: &[usize],
    threads: usize,
) -> Clustering {
    dbscan_weighted_parallel_with_provider(
        &IndexProvider::new(index),
        eps,
        min_samples,
        weights,
        threads,
    )
}

/// [`dbscan_weighted_with_provider`] with every ε-range query answered
/// in parallel on the `parkit` scheduler; the region growing then runs
/// serially, query-free, in the same index order, so the clustering is
/// identical for any thread count.
///
/// Two parallel phases feed the serial growing. First the per-item core
/// predicate: each item's ε-neighborhood weight is a sum over its own
/// region query, written to its own slot. Then the *core* points'
/// regions — the only regions [`dbscan_core_impl`] ever consumes — are
/// answered once through
/// [`NeighborProvider::neighbors_within_batch`] and handed to the
/// growing as a lookup table, so no neighbor query runs single-threaded
/// and no core point is queried during the breadth-first expansion.
/// Memory holds only the core regions (the expansion frontier the
/// serial variant materializes piecemeal anyway).
///
/// # Panics
///
/// Panics if `weights` is shorter than the provider's item count.
pub fn dbscan_weighted_parallel_with_provider<P: NeighborProvider + Sync>(
    provider: &P,
    eps: f64,
    min_samples: usize,
    weights: &[usize],
    threads: usize,
) -> Clustering {
    let n = provider.len();
    assert!(weights.len() >= n, "need a weight per item");
    let mut core = vec![false; n];
    if n > 0 {
        let core_ptr = SendFlagPtr(core.as_mut_ptr());
        parkit::for_each_chunk(threads, n, 16, |items| {
            let core_ptr = &core_ptr;
            let mut nb: Vec<(f64, u32)> = Vec::new();
            for i in items {
                provider.neighbors_within(i, eps, &mut nb);
                let w = weights[i] + nb.iter().map(|&(_, j)| weights[j as usize]).sum::<usize>();
                // SAFETY: slot `i` is written by exactly one worker (the
                // scheduler hands out each item once), so writes never
                // alias.
                unsafe { *core_ptr.0.add(i) = w >= min_samples };
            }
        });
    }
    let core_items: Vec<usize> = (0..n).filter(|&i| core[i]).collect();
    let regions = provider.neighbors_within_batch(&core_items, eps, threads);
    let mut region_slot = vec![usize::MAX; n];
    for (slot, &i) in core_items.iter().enumerate() {
        region_slot[i] = slot;
    }
    dbscan_core_impl(n, &core, |i, out| {
        // The growing only queries core items, whose regions were
        // batched above.
        out.extend(regions[region_slot[i]].iter().map(|&(_, j)| j as usize));
    })
}

/// A raw pointer wrapper asserting cross-thread transferability for the
/// disjoint-slot core-predicate writes above.
struct SendFlagPtr(*mut bool);
unsafe impl Sync for SendFlagPtr {}

/// Runs DBSCAN over *weighted* items: item `i` stands for `weights[i]`
/// identical samples at the same position.
///
/// This makes clustering deduplicated segments equivalent to clustering
/// the full segment multiset (the paper de-duplicates segment values for
/// the dissimilarity matrix but sizes `min_samples` by the trace's
/// segment count): an item is a core point when the weights within its
/// ε-neighborhood — its own included — reach `min_samples`, so frequent
/// values (padding, magic numbers, flag constants) are cores by
/// themselves.
///
/// # Panics
///
/// Panics if `weights` is shorter than the matrix.
pub fn dbscan_weighted(
    matrix: &CondensedMatrix,
    eps: f64,
    min_samples: usize,
    weights: &[usize],
) -> Clustering {
    dbscan_weighted_with_provider(&MatrixProvider::new(matrix), eps, min_samples, weights)
}

/// The region-growing core shared by the matrix-scan and neighbor-index
/// entry points. `region` appends the ε-neighbors of an item to the
/// provided scratch buffer (self excluded); the reported clustering does
/// not depend on the order it emits them in.
fn dbscan_impl(
    n: usize,
    min_samples: usize,
    weights: &[usize],
    mut region: impl FnMut(usize, &mut Vec<usize>),
) -> Clustering {
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster_id = 0u32;
    let mut nb: Vec<usize> = Vec::new();

    let neighborhood_weight = |i: usize, nb: &[usize]| -> usize {
        weights[i] + nb.iter().map(|&j| weights[j]).sum::<usize>()
    };

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        nb.clear();
        region(i, &mut nb);
        if neighborhood_weight(i, &nb) < min_samples {
            labels[i] = NOISE;
            continue;
        }
        // Start a new cluster and grow it breadth-first.
        labels[i] = cluster_id;
        let mut queue: std::collections::VecDeque<usize> = nb.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            if labels[q] == NOISE {
                labels[q] = cluster_id; // border point adopted by the cluster
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster_id;
            nb.clear();
            region(q, &mut nb);
            if neighborhood_weight(q, &nb) >= min_samples {
                queue.extend(nb.iter().copied());
            }
        }
        cluster_id += 1;
    }

    let labels = labels
        .into_iter()
        .map(|l| {
            if l == NOISE {
                Label::Noise
            } else {
                Label::Cluster(l)
            }
        })
        .collect();
    Clustering::from_labels(labels)
}

/// Region growing from a *precomputed* core predicate: the same visit
/// order and labeling decisions as [`dbscan_impl`], with the density
/// test `neighborhood_weight(i) >= min_samples` replaced by `core[i]`
/// (evaluated up front, possibly in parallel). Skipping the region query
/// for non-core items changes no decision: their neighbors are never
/// enqueued either way.
fn dbscan_core_impl(
    n: usize,
    core: &[bool],
    mut region: impl FnMut(usize, &mut Vec<usize>),
) -> Clustering {
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster_id = 0u32;
    let mut nb: Vec<usize> = Vec::new();

    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        if !core[i] {
            labels[i] = NOISE;
            continue;
        }
        labels[i] = cluster_id;
        nb.clear();
        region(i, &mut nb);
        let mut queue: std::collections::VecDeque<usize> = nb.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            if labels[q] == NOISE {
                labels[q] = cluster_id; // border point adopted by the cluster
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster_id;
            if core[q] {
                nb.clear();
                region(q, &mut nb);
                queue.extend(nb.iter().copied());
            }
        }
        cluster_id += 1;
    }

    let labels = labels
        .into_iter()
        .map(|l| {
            if l == NOISE {
                Label::Noise
            } else {
                Label::Cluster(l)
            }
        })
        .collect();
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(points: &[f64]) -> CondensedMatrix {
        CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn two_blobs_and_noise() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 100.0];
        let c = dbscan(&line_matrix(&pts), 0.5, 3);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.labels()[0], c.labels()[2]);
        assert_eq!(c.labels()[3], c.labels()[5]);
        assert_ne!(c.labels()[0], c.labels()[3]);
        assert_eq!(c.labels()[6], Label::Noise);
        assert_eq!(c.noise(), vec![6]);
    }

    #[test]
    fn chain_is_density_connected() {
        // Points spaced 1 apart form one cluster with eps = 1.
        let pts: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let c = dbscan(&line_matrix(&pts), 1.0, 3);
        assert_eq!(c.n_clusters(), 1);
        assert!(c.noise().is_empty());
    }

    #[test]
    fn everything_noise_when_sparse() {
        let pts = [0.0, 10.0, 20.0, 30.0];
        let c = dbscan(&line_matrix(&pts), 1.0, 2);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise().len(), 4);
    }

    #[test]
    fn min_samples_one_clusters_everything() {
        let pts = [0.0, 10.0, 20.0];
        let c = dbscan(&line_matrix(&pts), 1.0, 1);
        assert_eq!(c.n_clusters(), 3);
        assert!(c.noise().is_empty());
    }

    #[test]
    fn border_points_join_first_claiming_cluster() {
        // Point 2 is within eps of both blobs' cores but is not core
        // itself (eps = 1.0): it must end in exactly one cluster.
        let pts = [0.0, 0.5, 1.5, 2.5, 3.0];
        let c = dbscan(&line_matrix(&pts), 1.0, 3);
        assert!(matches!(c.labels()[2], Label::Cluster(_)));
    }

    #[test]
    fn empty_input() {
        let m = CondensedMatrix::build(0, |_, _| 0.0);
        let c = dbscan(&m, 1.0, 2);
        assert!(c.is_empty());
        assert_eq!(c.n_clusters(), 0);
    }

    #[test]
    fn clusters_listing_matches_labels() {
        let pts = [0.0, 0.1, 5.0, 5.1, 9.9];
        let c = dbscan(&line_matrix(&pts), 0.5, 2);
        let clusters = c.clusters();
        assert_eq!(clusters.len(), c.n_clusters() as usize);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total + c.noise().len(), pts.len());
    }

    #[test]
    fn weighted_high_occurrence_singleton_is_core() {
        // One isolated value with weight 100 and two sparse outliers:
        // unweighted DBSCAN calls everything noise, weighted makes the
        // heavy value its own cluster.
        let pts = [0.0, 50.0, 90.0];
        let m = line_matrix(&pts);
        let unweighted = dbscan(&m, 1.0, 5);
        assert_eq!(unweighted.n_clusters(), 0);
        let weighted = dbscan_weighted(&m, 1.0, 5, &[100, 1, 1]);
        assert_eq!(weighted.n_clusters(), 1);
        assert_eq!(weighted.labels()[0], Label::Cluster(0));
        assert_eq!(weighted.labels()[1], Label::Noise);
    }

    #[test]
    fn weighted_matches_unweighted_for_unit_weights() {
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 100.0];
        let m = line_matrix(&pts);
        let w = vec![1usize; pts.len()];
        assert_eq!(dbscan(&m, 0.5, 3), dbscan_weighted(&m, 0.5, 3, &w));
    }

    #[test]
    fn weighted_neighbor_pulls_sparse_points_in() {
        // A heavy core at 0.0 makes its light neighbor at 0.5 clustered.
        let pts = [0.0, 0.5, 9.0];
        let m = line_matrix(&pts);
        let c = dbscan_weighted(&m, 1.0, 10, &[20, 1, 1]);
        assert_eq!(c.labels()[0], c.labels()[1]);
        assert_eq!(c.labels()[2], Label::Noise);
    }

    #[test]
    #[should_panic(expected = "weight per item")]
    fn weighted_rejects_short_weights() {
        let m = line_matrix(&[0.0, 1.0]);
        dbscan_weighted(&m, 0.5, 2, &[1]);
    }

    #[test]
    fn index_backed_dbscan_matches_matrix_scan() {
        let pts = [0.0, 0.1, 0.2, 1.5, 10.0, 10.1, 10.2, 55.0, 55.3];
        let m = line_matrix(&pts);
        let idx = dissim::NeighborIndex::build(&m);
        let w = [7, 1, 1, 1, 3, 1, 1, 2, 1];
        for (eps, ms) in [(0.5, 2), (0.5, 3), (0.35, 5), (2.0, 2), (100.0, 3)] {
            assert_eq!(
                dbscan(&m, eps, ms),
                dbscan_with_index(&idx, eps, ms),
                "eps={eps} ms={ms}"
            );
            assert_eq!(
                dbscan_weighted(&m, eps, ms, &w),
                dbscan_weighted_with_index(&idx, eps, ms, &w),
                "weighted eps={eps} ms={ms}"
            );
        }
    }

    #[test]
    fn parallel_core_predicate_matches_serial() {
        let pts = [0.0, 0.1, 0.2, 1.5, 10.0, 10.1, 10.2, 55.0, 55.3];
        let m = line_matrix(&pts);
        let idx = dissim::NeighborIndex::build(&m);
        let w = [7, 1, 1, 1, 3, 1, 1, 2, 1];
        for threads in [1, 2, 4] {
            for (eps, ms) in [(0.5, 2), (0.5, 3), (0.35, 5), (2.0, 2), (100.0, 3)] {
                assert_eq!(
                    dbscan(&m, eps, ms),
                    dbscan_parallel_with_index(&idx, eps, ms, threads),
                    "threads={threads} eps={eps} ms={ms}"
                );
                assert_eq!(
                    dbscan_weighted(&m, eps, ms, &w),
                    dbscan_weighted_parallel_with_index(&idx, eps, ms, &w, threads),
                    "weighted threads={threads} eps={eps} ms={ms}"
                );
            }
        }
    }

    #[test]
    fn from_labels_compacts_ids() {
        let c = Clustering::from_labels(vec![
            Label::Cluster(7),
            Label::Noise,
            Label::Cluster(3),
            Label::Cluster(7),
        ]);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.labels()[0], Label::Cluster(0));
        assert_eq!(c.labels()[2], Label::Cluster(1));
    }
}
