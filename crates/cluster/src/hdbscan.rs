//! HDBSCAN* (Campello, Moulavi & Sander, 2013) over a precomputed
//! dissimilarity matrix.
//!
//! The paper's §III-F observes that the over-classification it repairs
//! with merge refinement "is not only a limitation of DBSCAN and we
//! noticed that similar alternatives, e.g., HDBSCAN and OPTICS, suffer
//! from the same effect". Together with [`crate::optics()`], this
//! implementation lets the ablation harness verify that observation.
//!
//! Structure: (1) mutual reachability distances, (2) a single-linkage
//! dendrogram via an MST (Prim) + union-find, (3) top-down condensation
//! by `min_cluster_size`, (4) cluster stabilities, (5) Excess-of-Mass
//! extraction.

use crate::dbscan::{Clustering, Label};
use dissim::{CondensedMatrix, IndexedProvider, MatrixProvider, NeighborIndex, NeighborProvider};

/// HDBSCAN* parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HdbscanParams {
    /// Neighborhood size for the core distance (counting the point
    /// itself, like DBSCAN's `min_samples`).
    pub min_samples: usize,
    /// Minimum size for a split to count as a real cluster in the
    /// condensed tree.
    pub min_cluster_size: usize,
}

impl Default for HdbscanParams {
    fn default() -> Self {
        Self {
            min_samples: 5,
            min_cluster_size: 5,
        }
    }
}

/// A node of the single-linkage dendrogram: leaves are items `0..n`,
/// internal nodes `n..2n-1` store their merge distance.
#[derive(Debug, Clone, Copy)]
struct DendroNode {
    left: usize,
    right: usize,
    distance: f64,
    size: usize,
}

fn lambda_of(distance: f64) -> f64 {
    1.0 / distance.max(1e-12)
}

/// Runs HDBSCAN* and returns a flat clustering (EOM extraction).
pub fn hdbscan(matrix: &CondensedMatrix, params: &HdbscanParams) -> Clustering {
    hdbscan_with_provider(&MatrixProvider::new(matrix), params)
}

/// Runs HDBSCAN* with core distances and pair lookups answered by any
/// [`NeighborProvider`] backend — the entry point the matrix and index
/// variants funnel into.
///
/// The core distance is the `(min_samples − 1)`-th nearest-neighbor
/// order statistic, i.e. a single [`NeighborProvider::knn`] query per
/// item, so every backend produces exactly the clustering [`hdbscan`]
/// would.
pub fn hdbscan_with_provider<P: NeighborProvider + ?Sized>(
    provider: &P,
    params: &HdbscanParams,
) -> Clustering {
    let n = provider.len();
    let min_samples = params.min_samples.max(1).min(n.max(1));
    let core: Vec<f64> = (0..n)
        .map(|i| {
            if min_samples == 1 {
                0.0
            } else {
                provider.knn(i, min_samples - 1)
            }
        })
        .collect();
    hdbscan_from_core(provider, params, &core)
}

/// Runs HDBSCAN* with core distances read off a prebuilt
/// [`NeighborIndex`] instead of per-item row selections.
///
/// Produces exactly the same clustering as [`hdbscan`]: the core
/// distance is the `(min_samples - 1)`-th order statistic of each row,
/// which the sorted neighbor lists hold directly.
///
/// # Panics
///
/// Panics if the index and matrix cover different item counts.
pub fn hdbscan_with_index(
    matrix: &CondensedMatrix,
    index: &NeighborIndex,
    params: &HdbscanParams,
) -> Clustering {
    hdbscan_with_provider(&IndexedProvider::new(matrix, index), params)
}

/// [`hdbscan_with_index`] with the core distances gathered in parallel
/// on the `parkit` scheduler.
///
/// Each item's core distance is a single read off its sorted neighbor
/// list into its own slot, so the vector is bit-identical to the serial
/// gather for any thread count — and so is the clustering built from it.
///
/// # Panics
///
/// Panics if the index and matrix cover different item counts.
pub fn hdbscan_parallel_with_index(
    matrix: &CondensedMatrix,
    index: &NeighborIndex,
    params: &HdbscanParams,
    threads: usize,
) -> Clustering {
    hdbscan_parallel_with_provider(&IndexedProvider::new(matrix, index), params, threads)
}

/// [`hdbscan_with_provider`] with the core distances gathered through
/// the provider's batched parallel k-NN path
/// ([`NeighborProvider::knn_dissimilarities_parallel`]).
///
/// Each item's core distance is one k-NN query written into its own
/// slot, so the vector is bit-identical to the serial gather for any
/// thread count — and so is the clustering built from it.
pub fn hdbscan_parallel_with_provider<P: NeighborProvider + Sync>(
    provider: &P,
    params: &HdbscanParams,
    threads: usize,
) -> Clustering {
    let n = provider.len();
    let min_samples = params.min_samples.max(1).min(n.max(1));
    let core = if n > 0 && min_samples > 1 {
        provider.knn_dissimilarities_parallel(min_samples - 1, threads)
    } else {
        vec![0.0f64; n]
    };
    hdbscan_from_core(provider, params, &core)
}

/// The dendrogram/condensation/extraction pipeline shared by every entry
/// point, starting from precomputed core distances; pairwise
/// dissimilarities for the mutual-reachability MST come from the
/// provider's [`NeighborProvider::pair`].
fn hdbscan_from_core<P: NeighborProvider + ?Sized>(
    provider: &P,
    params: &HdbscanParams,
    core: &[f64],
) -> Clustering {
    let n = provider.len();
    if n == 0 {
        return Clustering::from_labels(Vec::new());
    }
    if n < params.min_cluster_size.max(2) {
        return Clustering::from_labels(vec![Label::Noise; n]);
    }
    let min_cluster_size = params.min_cluster_size.max(2);

    let mutual = |i: usize, j: usize| provider.pair(i, j).max(core[i]).max(core[j]);

    // 2a. MST over mutual reachability (Prim, O(n²)).
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best[j] = mutual(0, j);
        best_from[j] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < pick_d {
                pick = j;
                pick_d = best[j];
            }
        }
        in_tree[pick] = true;
        edges.push((pick_d, best_from[pick], pick));
        for j in 0..n {
            if !in_tree[j] {
                let d = mutual(pick, j);
                if d < best[j] {
                    best[j] = d;
                    best_from[j] = pick;
                }
            }
        }
    }
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are not NaN"));

    // 2b. Dendrogram from sorted edges via union-find.
    let mut dendro: Vec<DendroNode> = Vec::with_capacity(n - 1);
    let mut parent: Vec<usize> = (0..2 * n - 1).collect();
    // Representative dendrogram node per union-find root.
    let mut rep: Vec<usize> = (0..2 * n - 1).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(d, a, b) in &edges {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        debug_assert_ne!(ra, rb, "MST edges never form cycles");
        let left = rep[ra];
        let right = rep[rb];
        let size_left = if left < n { 1 } else { dendro[left - n].size };
        let size_right = if right < n { 1 } else { dendro[right - n].size };
        dendro.push(DendroNode {
            left,
            right,
            distance: d,
            size: size_left + size_right,
        });
        let new_id = n + dendro.len() - 1;
        parent[rb] = ra;
        rep[ra] = new_id;
    }

    // 3. Condense top-down.
    #[derive(Debug)]
    struct Condensed {
        birth_lambda: f64,
        stability: f64,
        children: Vec<usize>,
        members: Vec<usize>,
    }
    let mut condensed: Vec<Condensed> = Vec::new();
    let dendro_root = n + dendro.len() - 1;
    condensed.push(Condensed {
        birth_lambda: 0.0,
        stability: 0.0,
        children: Vec::new(),
        members: Vec::new(),
    });

    // Iterative DFS: (dendrogram node, condensed cluster it belongs to).
    let mut stack: Vec<(usize, usize)> = vec![(dendro_root, 0)];
    while let Some((node, cluster)) = stack.pop() {
        if node < n {
            // A leaf reached without falling out: it leaves its cluster
            // only at infinite lambda; cap at the lambda of its last
            // merge handled by the parent loop — here simply record
            // membership (its departure lambda was already credited when
            // the enclosing split/fall-out was processed).
            condensed[cluster].members.push(node);
            continue;
        }
        let dn = dendro[node - n];
        let lambda = lambda_of(dn.distance);
        let size = |child: usize| if child < n { 1 } else { dendro[child - n].size };
        let (sl, sr) = (size(dn.left), size(dn.right));
        match (sl >= min_cluster_size, sr >= min_cluster_size) {
            (true, true) => {
                // True split: the current cluster dies here; both sides
                // are born as new condensed clusters at this lambda.
                // Credit the parent: every member below persisted from
                // birth to this split.
                let birth = condensed[cluster].birth_lambda;
                condensed[cluster].stability += (sl + sr) as f64 * (lambda - birth).max(0.0);
                for &(child, child_size) in &[(dn.left, sl), (dn.right, sr)] {
                    let _ = child_size;
                    condensed.push(Condensed {
                        birth_lambda: lambda,
                        stability: 0.0,
                        children: Vec::new(),
                        members: Vec::new(),
                    });
                    let new_id = condensed.len() - 1;
                    condensed[cluster].children.push(new_id);
                    stack.push((child, new_id));
                }
            }
            (true, false) | (false, true) => {
                // The small side falls out of the cluster at this lambda.
                let (big, small, small_size) = if sl >= min_cluster_size {
                    (dn.left, dn.right, sr)
                } else {
                    (dn.right, dn.left, sl)
                };
                let birth = condensed[cluster].birth_lambda;
                condensed[cluster].stability += small_size as f64 * (lambda - birth).max(0.0);
                // Fall-out points are noise candidates unless a selected
                // ancestor claims them; collect them as members of the
                // cluster (they belonged to it until this lambda).
                collect_leaves(&dendro, small, n, &mut condensed[cluster].members);
                stack.push((big, cluster));
            }
            (false, false) => {
                // The cluster dissolves below min size: all remaining
                // members leave at this lambda.
                let birth = condensed[cluster].birth_lambda;
                condensed[cluster].stability += (sl + sr) as f64 * (lambda - birth).max(0.0);
                collect_leaves(&dendro, node, n, &mut condensed[cluster].members);
            }
        }
    }

    // 4.+5. EOM selection, bottom-up (children have larger indices, so
    // iterate in reverse).
    let m = condensed.len();
    let mut selected = vec![false; m];
    let mut subtree_stability = vec![0.0f64; m];
    for id in (0..m).rev() {
        let child_sum: f64 = condensed[id]
            .children
            .iter()
            .map(|&c| subtree_stability[c])
            .sum();
        if condensed[id].children.is_empty() || condensed[id].stability >= child_sum {
            selected[id] = true;
            subtree_stability[id] = condensed[id].stability.max(child_sum);
            let mut stack: Vec<usize> = condensed[id].children.clone();
            while let Some(c) = stack.pop() {
                selected[c] = false;
                stack.extend(condensed[c].children.iter().copied());
            }
        } else {
            subtree_stability[id] = child_sum;
        }
    }
    // The root cluster is "all data": only meaningful if it never split.
    if !condensed[0].children.is_empty() {
        selected[0] = false;
    }

    let mut labels = vec![Label::Noise; n];
    let mut next = 0u32;
    for (id, &sel) in selected.iter().enumerate() {
        if sel {
            // A selected cluster owns all members recorded in its subtree.
            let mut stack = vec![id];
            let mut any = false;
            while let Some(cur) = stack.pop() {
                for &p in &condensed[cur].members {
                    labels[p] = Label::Cluster(next);
                    any = true;
                }
                stack.extend(condensed[cur].children.iter().copied());
            }
            if any {
                next += 1;
            }
        }
    }
    Clustering::from_labels(labels)
}

/// Appends all leaf items under `node` to `out`.
fn collect_leaves(dendro: &[DendroNode], node: usize, n: usize, out: &mut Vec<usize>) {
    let mut stack = vec![node];
    while let Some(cur) = stack.pop() {
        if cur < n {
            out.push(cur);
        } else {
            let dn = dendro[cur - n];
            stack.push(dn.left);
            stack.push(dn.right);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_matrix(points: &[f64]) -> CondensedMatrix {
        CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    fn blob(center: f64, n: usize, spread: f64) -> Vec<f64> {
        (0..n)
            .map(|i| center + spread * i as f64 / n as f64)
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = blob(0.0, 10, 0.5);
        pts.extend(blob(100.0, 10, 0.5));
        let c = hdbscan(&line_matrix(&pts), &HdbscanParams::default());
        assert_eq!(c.n_clusters(), 2, "labels: {:?}", c.labels());
        for i in 0..10 {
            assert_eq!(c.labels()[i], c.labels()[0]);
            assert_eq!(c.labels()[10 + i], c.labels()[10]);
        }
        assert_ne!(c.labels()[0], c.labels()[10]);
    }

    #[test]
    fn three_blobs() {
        let mut pts = blob(0.0, 8, 0.4);
        pts.extend(blob(50.0, 8, 0.4));
        pts.extend(blob(200.0, 8, 0.4));
        let c = hdbscan(
            &line_matrix(&pts),
            &HdbscanParams {
                min_samples: 3,
                min_cluster_size: 4,
            },
        );
        assert_eq!(c.n_clusters(), 3, "labels: {:?}", c.labels());
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(0.0, 12, 0.5);
        pts.extend(blob(40.0, 12, 0.5));
        pts.push(1000.0);
        let c = hdbscan(
            &line_matrix(&pts),
            &HdbscanParams {
                min_samples: 3,
                min_cluster_size: 4,
            },
        );
        assert_eq!(
            *c.labels().last().unwrap(),
            Label::Noise,
            "labels: {:?}",
            c.labels()
        );
        assert_eq!(c.n_clusters(), 2);
    }

    #[test]
    fn varying_density_blobs_both_found() {
        // HDBSCAN's selling point over plain DBSCAN: one tight and one
        // loose cluster.
        let mut pts = blob(0.0, 12, 0.1); // tight
        pts.extend(blob(100.0, 12, 5.0)); // loose
        let c = hdbscan(
            &line_matrix(&pts),
            &HdbscanParams {
                min_samples: 3,
                min_cluster_size: 5,
            },
        );
        assert_eq!(c.n_clusters(), 2, "labels: {:?}", c.labels());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(hdbscan(&line_matrix(&[]), &HdbscanParams::default()).is_empty());
        let one = hdbscan(&line_matrix(&[1.0]), &HdbscanParams::default());
        assert_eq!(one.labels(), &[Label::Noise]);
        // All identical points: one cluster.
        let same = vec![5.0; 10];
        let c = hdbscan(
            &line_matrix(&same),
            &HdbscanParams {
                min_samples: 3,
                min_cluster_size: 4,
            },
        );
        assert_eq!(c.n_clusters(), 1);
        assert!(c.noise().is_empty());
    }

    #[test]
    fn index_backed_hdbscan_matches_matrix_scan() {
        let mut pts = blob(0.0, 10, 0.5);
        pts.extend(blob(40.0, 10, 3.0));
        pts.push(500.0);
        let m = line_matrix(&pts);
        let idx = dissim::NeighborIndex::build(&m);
        for p in [
            HdbscanParams::default(),
            HdbscanParams {
                min_samples: 3,
                min_cluster_size: 4,
            },
            HdbscanParams {
                min_samples: 1,
                min_cluster_size: 3,
            },
        ] {
            assert_eq!(hdbscan(&m, &p), hdbscan_with_index(&m, &idx, &p), "{p:?}");
            for threads in [1, 2, 4] {
                assert_eq!(
                    hdbscan(&m, &p),
                    hdbscan_parallel_with_index(&m, &idx, &p, threads),
                    "threads={threads} {p:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let mut pts = blob(0.0, 9, 0.7);
        pts.extend(blob(30.0, 9, 0.7));
        let m = line_matrix(&pts);
        let p = HdbscanParams::default();
        assert_eq!(hdbscan(&m, &p), hdbscan(&m, &p));
    }

    #[test]
    fn every_item_labelled_exactly_once() {
        let mut pts = blob(0.0, 7, 0.3);
        pts.extend(blob(20.0, 7, 0.3));
        pts.extend(blob(60.0, 7, 0.3));
        let c = hdbscan(
            &line_matrix(&pts),
            &HdbscanParams {
                min_samples: 2,
                min_cluster_size: 3,
            },
        );
        assert_eq!(c.len(), pts.len());
        let in_clusters: usize = c.clusters().iter().map(Vec::len).sum();
        assert_eq!(in_clusters + c.noise().len(), pts.len());
    }
}
