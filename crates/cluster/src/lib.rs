#![warn(missing_docs)]
//! Density-based clustering with automatic parameter selection and
//! refinement, as used for field data type clustering (paper §III-D/E/F).
//!
//! * [`dbscan`](mod@crate::dbscan) — DBSCAN over a precomputed dissimilarity matrix,
//! * [`autoconf`] — the ε auto-configuration of Algorithm 1: pick the
//!   k-NN ECDF with the sharpest knee, smooth it with a spline, detect
//!   the rightmost knee with Kneedle, set `min_samples = round(ln n)`,
//! * [`refine`] — merging of over-classified clusters (Conditions 1–2)
//!   and splitting of clusters with polarized value occurrences.
//!
//! # Examples
//!
//! ```
//! use dissim::CondensedMatrix;
//! use cluster::dbscan::{dbscan, Label};
//!
//! // Two tight groups and one outlier.
//! let points = [0.0_f64, 0.1, 0.2, 5.0, 5.1, 5.2, 50.0];
//! let m = CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs());
//! let c = dbscan(&m, 0.5, 2);
//! assert_eq!(c.n_clusters(), 2);
//! assert_eq!(c.labels()[6], Label::Noise);
//! ```

pub mod autoconf;
pub mod dbscan;
pub mod hdbscan;
pub mod optics;
pub mod refine;

pub use autoconf::{
    auto_configure, auto_configure_parallel, auto_configure_with_index, auto_configure_with_knn,
    auto_configure_with_provider, required_k_max, AutoConfError, AutoConfig, SelectedParams,
};
pub use dbscan::{
    dbscan, dbscan_parallel_with_index, dbscan_weighted, dbscan_weighted_parallel_with_index,
    dbscan_weighted_parallel_with_provider, dbscan_weighted_with_index,
    dbscan_weighted_with_provider, dbscan_with_index, Clustering, Label,
};
pub use hdbscan::{
    hdbscan, hdbscan_parallel_with_index, hdbscan_parallel_with_provider, hdbscan_with_index,
    hdbscan_with_provider, HdbscanParams,
};
pub use optics::{
    optics, optics_parallel_with_provider, optics_with_index, optics_with_provider, OpticsOrdering,
};
pub use refine::{
    merge_clusters, merge_clusters_parallel, merge_clusters_with_index,
    merge_clusters_with_provider, split_clusters, RefineParams,
};
