//! OPTICS (Ankerst et al., SIGMOD 1999) over a precomputed
//! dissimilarity matrix.
//!
//! The paper's §III-F notes that over-classification "is not only a
//! limitation of DBSCAN and we noticed that similar alternatives, e.g.,
//! HDBSCAN and OPTICS, suffer from the same effect". This module
//! implements OPTICS so that claim can be checked experimentally (see
//! the `ablation` bench binary): the reachability ordering is computed
//! once, and an ε-cut extracts DBSCAN-equivalent clusters at any radius.

use crate::dbscan::{Clustering, Label};
use dissim::{CondensedMatrix, IndexProvider, MatrixProvider, NeighborIndex, NeighborProvider};

/// The OPTICS ordering: reachability and core distances per visit rank.
#[derive(Debug, Clone, PartialEq)]
pub struct OpticsOrdering {
    /// Item indices in visit order.
    pub order: Vec<usize>,
    /// Reachability distance of each visited item (`INFINITY` for the
    /// first item of each connected component).
    pub reachability: Vec<f64>,
    /// Core distance of each visited item (`INFINITY` for non-core).
    pub core_distance: Vec<f64>,
}

/// Runs OPTICS with generating distance `max_eps` and density threshold
/// `min_samples` (counting the point itself).
///
/// Deterministic: seeds are taken in index order and ties in the
/// priority queue resolve to the smaller index.
pub fn optics(matrix: &CondensedMatrix, max_eps: f64, min_samples: usize) -> OpticsOrdering {
    optics_with_provider(&MatrixProvider::new(matrix), max_eps, min_samples)
}

/// Runs OPTICS with ε-region queries and core distances answered by a
/// prebuilt [`NeighborIndex`] instead of matrix row scans.
///
/// Produces exactly the same ordering as [`optics`]: reachability
/// updates take per-neighbor minima and the core distance is an order
/// statistic, so neither depends on neighbor enumeration order.
pub fn optics_with_index(
    index: &NeighborIndex,
    max_eps: f64,
    min_samples: usize,
) -> OpticsOrdering {
    optics_with_provider(&IndexProvider::new(index), max_eps, min_samples)
}

/// Runs OPTICS with ε-region queries answered by any
/// [`NeighborProvider`] backend — the entry point the matrix and index
/// variants funnel into.
///
/// Produces exactly the same ordering as [`optics`]: reachability
/// updates take per-neighbor minima and the core distance is an order
/// statistic, so neither depends on neighbor enumeration order.
pub fn optics_with_provider<P: NeighborProvider + ?Sized>(
    provider: &P,
    max_eps: f64,
    min_samples: usize,
) -> OpticsOrdering {
    let mut scratch: Vec<(f64, u32)> = Vec::new();
    optics_impl(provider.len(), min_samples, |i, out| {
        provider.neighbors_within(i, max_eps, &mut scratch);
        out.extend(scratch.iter().map(|&(d, j)| (j as usize, d)));
    })
}

/// [`optics_with_provider`] with the whole query load answered up front
/// through the provider's batched parallel path
/// ([`NeighborProvider::neighbors_within_batch`]).
///
/// OPTICS queries each item's region exactly once — when the item is
/// processed — and always at the fixed generating distance `max_eps`,
/// so all n region queries can fan out over `threads` workers before
/// the (serial, deterministic) expansion consumes them from a lookup
/// table. Reachability updates take per-neighbor minima and the core
/// distance is an order statistic, so the precomputed regions produce
/// exactly the ordering [`optics_with_provider`] does.
pub fn optics_parallel_with_provider<P: NeighborProvider + Sync>(
    provider: &P,
    max_eps: f64,
    min_samples: usize,
    threads: usize,
) -> OpticsOrdering {
    let n = provider.len();
    let queries: Vec<usize> = (0..n).collect();
    let regions = provider.neighbors_within_batch(&queries, max_eps, threads);
    optics_impl(n, min_samples, |i, out| {
        out.extend(regions[i].iter().map(|&(d, j)| (j as usize, d)));
    })
}

/// The expansion core shared by the matrix-scan and neighbor-index entry
/// points. `region` appends the `(neighbor, dissimilarity)` pairs of an
/// item's ε-neighborhood to the scratch buffer (self excluded); the
/// ordering it emits them in does not affect the result.
fn optics_impl(
    n: usize,
    min_samples: usize,
    mut region: impl FnMut(usize, &mut Vec<(usize, f64)>),
) -> OpticsOrdering {
    let mut processed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut reach_out = Vec::with_capacity(n);
    let mut core_out = Vec::with_capacity(n);
    let mut nb: Vec<(usize, f64)> = Vec::new();
    let mut ds: Vec<f64> = Vec::new();

    let core_distance = |nb: &[(usize, f64)], ds: &mut Vec<f64>| -> f64 {
        if nb.len() + 1 < min_samples {
            return f64::INFINITY;
        }
        if min_samples <= 1 {
            return 0.0;
        }
        ds.clear();
        ds.extend(nb.iter().map(|&(_, d)| d));
        ds.sort_by(|a, b| a.partial_cmp(b).expect("distances are not NaN"));
        ds[min_samples - 2] // the (min_samples-1)-th neighbor distance
    };

    for seed in 0..n {
        if processed[seed] {
            continue;
        }
        // Expand one connected component starting at `seed`.
        processed[seed] = true;
        nb.clear();
        region(seed, &mut nb);
        let seed_core = core_distance(&nb, &mut ds);
        order.push(seed);
        reach_out.push(f64::INFINITY);
        core_out.push(seed_core);

        // Priority "queue" of tentative reachabilities.
        let mut reach = vec![f64::INFINITY; n];
        if seed_core.is_finite() {
            for &(j, d) in &nb {
                reach[j] = d.max(seed_core);
            }
        }
        loop {
            // Smallest tentative reachability among unprocessed items.
            let mut best: Option<(usize, f64)> = None;
            for (j, &r) in reach.iter().enumerate() {
                if !processed[j] && r.is_finite() && best.is_none_or(|(_, br)| r < br) {
                    best = Some((j, r));
                }
            }
            let Some((current, r)) = best else { break };
            processed[current] = true;
            nb.clear();
            region(current, &mut nb);
            let core = core_distance(&nb, &mut ds);
            order.push(current);
            reach_out.push(r);
            core_out.push(core);
            if core.is_finite() {
                for &(j, d) in &nb {
                    if !processed[j] {
                        let new_reach = d.max(core);
                        if new_reach < reach[j] {
                            reach[j] = new_reach;
                        }
                    }
                }
            }
        }
    }
    OpticsOrdering {
        order,
        reachability: reach_out,
        core_distance: core_out,
    }
}

impl OpticsOrdering {
    /// Extracts DBSCAN-equivalent clusters by cutting the reachability
    /// plot at `eps`: a new cluster starts wherever reachability exceeds
    /// `eps` and the item is core at `eps`; items that are neither are
    /// noise.
    pub fn extract_dbscan(&self, eps: f64) -> Clustering {
        let n = self.order.len();
        let mut labels = vec![Label::Noise; n];
        let mut cluster: Option<u32> = None;
        let mut next_id = 0u32;
        for (rank, &item) in self.order.iter().enumerate() {
            if self.reachability[rank] > eps {
                if self.core_distance[rank] <= eps {
                    cluster = Some(next_id);
                    next_id += 1;
                    labels[item] = Label::Cluster(cluster.expect("just set"));
                } else {
                    cluster = None;
                }
            } else if let Some(c) = cluster {
                labels[item] = Label::Cluster(c);
            }
        }
        Clustering::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    fn line_matrix(points: &[f64]) -> CondensedMatrix {
        CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn ordering_covers_all_items_once() {
        let pts = [0.0, 0.1, 0.2, 5.0, 5.1, 9.0];
        let o = optics(&line_matrix(&pts), 10.0, 2);
        let mut sorted = o.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..pts.len()).collect::<Vec<_>>());
        assert_eq!(o.reachability.len(), pts.len());
        assert_eq!(o.core_distance.len(), pts.len());
    }

    #[test]
    fn reachability_valley_matches_blobs() {
        // Two tight blobs: within-blob reachability small, the jump to
        // the second blob large.
        let pts = [0.0, 0.05, 0.1, 10.0, 10.05, 10.1];
        let o = optics(&line_matrix(&pts), 100.0, 2);
        let max_within = o
            .reachability
            .iter()
            .filter(|r| r.is_finite() && **r < 1.0)
            .count();
        assert_eq!(max_within, 4, "four small steps inside blobs");
        assert_eq!(
            o.reachability
                .iter()
                .filter(|r| **r > 1.0 && r.is_finite())
                .count(),
            1,
            "one big jump between blobs"
        );
    }

    #[test]
    fn eps_cut_matches_dbscan_clusters() {
        // OPTICS ε-cut and DBSCAN must agree on cluster membership for
        // the same parameters (cluster ids may differ; compare partitions).
        let pts = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 20.0];
        let m = line_matrix(&pts);
        for (eps, min_samples) in [(0.5, 2), (0.5, 3), (6.0, 2)] {
            let d = dbscan(&m, eps, min_samples);
            let o = optics(&m, 100.0, min_samples).extract_dbscan(eps);
            assert_eq!(d.n_clusters(), o.n_clusters(), "eps={eps} ms={min_samples}");
            assert_eq!(d.noise(), o.noise(), "eps={eps} ms={min_samples}");
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let same_d = d.labels()[i] == d.labels()[j];
                    let same_o = o.labels()[i] == o.labels()[j];
                    assert_eq!(same_d, same_o, "pair ({i},{j}) eps={eps}");
                }
            }
        }
    }

    #[test]
    fn index_backed_optics_matches_matrix_scan() {
        let pts = [0.0, 0.1, 0.2, 1.4, 5.0, 5.1, 5.2, 20.0, 20.4];
        let m = line_matrix(&pts);
        let idx = dissim::NeighborIndex::build(&m);
        for (max_eps, ms) in [(0.5, 2), (2.0, 3), (100.0, 2), (100.0, 4)] {
            assert_eq!(
                optics(&m, max_eps, ms),
                optics_with_index(&idx, max_eps, ms),
                "max_eps={max_eps} ms={ms}"
            );
        }
    }

    #[test]
    fn parallel_optics_matches_serial() {
        let pts = [0.0, 0.1, 0.2, 1.4, 5.0, 5.1, 5.2, 20.0, 20.4];
        let m = line_matrix(&pts);
        let idx = dissim::NeighborIndex::build(&m);
        let ip = dissim::IndexedProvider::new(&m, &idx);
        for threads in [1usize, 4] {
            for (max_eps, ms) in [(0.5, 2), (2.0, 3), (100.0, 2), (100.0, 4)] {
                assert_eq!(
                    optics(&m, max_eps, ms),
                    optics_parallel_with_provider(&ip, max_eps, ms, threads),
                    "threads={threads} max_eps={max_eps} ms={ms}"
                );
            }
        }
    }

    #[test]
    fn sparse_points_are_noise_after_cut() {
        let pts = [0.0, 0.1, 0.2, 50.0];
        let o = optics(&line_matrix(&pts), 100.0, 3).extract_dbscan(0.5);
        assert_eq!(o.labels()[3], Label::Noise);
        assert_eq!(o.n_clusters(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        let o = optics(&line_matrix(&[]), 1.0, 2);
        assert!(o.order.is_empty());
        let o1 = optics(&line_matrix(&[3.0]), 1.0, 1);
        assert_eq!(o1.order, vec![0]);
        assert_eq!(o1.extract_dbscan(1.0).n_clusters(), 1);
    }
}
