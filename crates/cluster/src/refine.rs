//! Cluster refinement (paper §III-F): merging over-classified clusters
//! and splitting clusters with polarized value occurrences.
//!
//! DBSCAN over-classifies when field-value variability is not uniformly
//! distributed: one data type falls apart into several nearby clusters
//! linked by sparse regions. Two heuristics repair this: Condition 1
//! merges clusters that are *very* close with similar local ε-density at
//! their link segments, Condition 2 merges clusters that are *somewhat*
//! close with similar overall neighbor density. The inverse error —
//! under-classification, e.g. an enumeration value absorbed into a value
//! cluster — is repaired by splitting clusters whose value occurrence
//! counts are extremely polarized.

use crate::dbscan::{Clustering, Label};
use dissim::{CondensedMatrix, IndexedProvider, MatrixProvider, NeighborIndex, NeighborProvider};
use mathkit::stats;

/// Thresholds of the refinement heuristics. Defaults are the paper's
/// empirically chosen constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineParams {
    /// Condition 1: maximum allowed difference of the ε-densities around
    /// the two link segments (`ερThreshold`).
    pub eps_rho_threshold: f64,
    /// Condition 2: maximum allowed difference of the clusters' `minmed`
    /// neighbor densities (`neighborDensityThreshold`).
    pub neighbor_density_threshold: f64,
    /// Split: required percent rank of the occurrence frequency pivot.
    pub split_percent_rank: f64,
    /// Safety bound on merge fix-point iterations.
    pub max_merge_rounds: usize,
}

impl Default for RefineParams {
    fn default() -> Self {
        Self {
            eps_rho_threshold: 0.01,
            neighbor_density_threshold: 0.002,
            split_percent_rank: 95.0,
            max_merge_rounds: 16,
        }
    }
}

/// Merges nearby clusters of similar density until a fix point (or the
/// round bound) is reached; noise labels are preserved.
pub fn merge_clusters(
    clustering: &Clustering,
    matrix: &CondensedMatrix,
    params: &RefineParams,
) -> Clustering {
    merge_impl(clustering, &MatrixProvider::new(matrix), params, 1)
}

/// [`merge_clusters`] with the link-density region queries of Condition 1
/// answered by a prebuilt [`NeighborIndex`] instead of member scans.
///
/// Produces exactly the same clustering: the ε-region around a link
/// segment holds the same cluster-mates either way, and the density is
/// their median dissimilarity, which is order-insensitive.
pub fn merge_clusters_with_index(
    clustering: &Clustering,
    matrix: &CondensedMatrix,
    index: &NeighborIndex,
    params: &RefineParams,
) -> Clustering {
    merge_impl(clustering, &IndexedProvider::new(matrix, index), params, 1)
}

/// Merge refinement with pair lookups and link-density region queries
/// answered by any [`NeighborProvider`] backend — the entry point every
/// other merge function funnels into (with `threads` worth of
/// statistics parallelism when > 1).
///
/// Produces exactly the clustering [`merge_clusters`] would: the
/// ε-region around a link segment holds the same cluster-mates for
/// every backend, and the density is their median dissimilarity, which
/// is order-insensitive.
pub fn merge_clusters_with_provider<P: NeighborProvider + Sync>(
    clustering: &Clustering,
    provider: &P,
    params: &RefineParams,
    threads: usize,
) -> Clustering {
    merge_impl(clustering, provider, params, threads)
}

/// [`merge_clusters_with_index`] with the per-cluster statistics of each
/// round (mean/max intra-cluster dissimilarity, `minmed`) computed in
/// parallel on the `parkit` scheduler.
///
/// Each cluster's statistics are folded over its members in a fixed
/// order into the cluster's own slot, so the vector — and the merge
/// decisions consuming it in serial pair order — are bit-identical to
/// the serial rounds for any thread count.
pub fn merge_clusters_parallel(
    clustering: &Clustering,
    matrix: &CondensedMatrix,
    index: &NeighborIndex,
    params: &RefineParams,
    threads: usize,
) -> Clustering {
    merge_impl(
        clustering,
        &IndexedProvider::new(matrix, index),
        params,
        threads,
    )
}

fn merge_impl<P: NeighborProvider + Sync>(
    clustering: &Clustering,
    provider: &P,
    params: &RefineParams,
    threads: usize,
) -> Clustering {
    let mut labels = clustering.labels().to_vec();
    for _ in 0..params.max_merge_rounds {
        let current = Clustering::from_labels(labels.clone());
        // Work on the compacted labels so cluster ids match the dense
        // indices of `clusters` below.
        labels = current.labels().to_vec();
        let clusters = current.clusters();
        if clusters.len() < 2 {
            return current;
        }
        let stats = compute_stats(&clusters, provider, threads);

        let mut merged_into: Vec<usize> = (0..clusters.len()).collect();
        let mut any = false;
        if threads <= 1 {
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    if find(&mut merged_into, i) == find(&mut merged_into, j) {
                        continue;
                    }
                    let pair = MergeCandidate {
                        ci: &clusters[i],
                        cj: &clusters[j],
                        si: &stats[i],
                        sj: &stats[j],
                        id_i: i as u32,
                        id_j: j as u32,
                    };
                    if should_merge(&pair, &labels, provider, params) {
                        union(&mut merged_into, i, j);
                        any = true;
                    }
                }
            }
        } else {
            // A round's merge decision for (i, j) depends only on this
            // round's labels, members and statistics — never on earlier
            // unions — so every candidate pair (its cross-cluster link
            // scan and Condition-1 link-density region queries) can be
            // decided in parallel into disjoint slots. Applying the
            // unions serially in pair order then reproduces the serial
            // round exactly: the serial loop only skips pairs that are
            // already united, for which a union is a no-op, and any
            // skipped-but-true pair implies an earlier true pair already
            // set `any`.
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    pairs.push((i as u32, j as u32));
                }
            }
            let mut decisions = vec![false; pairs.len()];
            let decisions_ptr = SendDecisionPtr(decisions.as_mut_ptr());
            let (labels_ref, pairs_ref) = (&labels, &pairs);
            parkit::for_each_chunk(threads, pairs_ref.len(), 1, |chunk| {
                let decisions_ptr = &decisions_ptr;
                for p in chunk {
                    let (i, j) = (pairs_ref[p].0 as usize, pairs_ref[p].1 as usize);
                    let pair = MergeCandidate {
                        ci: &clusters[i],
                        cj: &clusters[j],
                        si: &stats[i],
                        sj: &stats[j],
                        id_i: i as u32,
                        id_j: j as u32,
                    };
                    // SAFETY: slot `p` is written by exactly one worker
                    // (the scheduler hands out each pair once).
                    unsafe {
                        *decisions_ptr.0.add(p) = should_merge(&pair, labels_ref, provider, params);
                    }
                }
            });
            for (&(i, j), &merge) in pairs.iter().zip(&decisions) {
                if merge {
                    union(&mut merged_into, i as usize, j as usize);
                    any = true;
                }
            }
        }
        if !any {
            return current;
        }
        for l in &mut labels {
            if let Label::Cluster(c) = l {
                *l = Label::Cluster(find(&mut merged_into, *c as usize) as u32);
            }
        }
    }
    Clustering::from_labels(labels)
}

/// Splits clusters whose value occurrence counts are extremely polarized
/// (paper §III-F): with pivot `F = ln |c'|`, a cluster is split when
/// `PR(counts, F) > split_percent_rank` and `σ(counts) > F`. Members with
/// occurrence count above `F` move to a new cluster.
///
/// `occurrences[i]` is the number of duplicate segments the unique
/// segment `i` stands for.
///
/// # Panics
///
/// Panics if `occurrences` is shorter than the clustering.
pub fn split_clusters(
    clustering: &Clustering,
    occurrences: &[usize],
    params: &RefineParams,
) -> Clustering {
    assert!(
        occurrences.len() >= clustering.len(),
        "need an occurrence count per clustered item"
    );
    let mut labels = clustering.labels().to_vec();
    let mut next_id = clustering.n_clusters();
    for members in clustering.clusters() {
        let counts: Vec<f64> = members.iter().map(|&i| occurrences[i] as f64).collect();
        let total: f64 = counts.iter().sum();
        if total < 1.0 || members.len() < 2 {
            continue;
        }
        let pivot = total.ln();
        let Some(pr) = stats::percent_rank(&counts, pivot) else {
            continue;
        };
        let Some(sigma) = stats::std_dev(&counts) else {
            continue;
        };
        if pr > params.split_percent_rank && sigma > pivot {
            for (&idx, &count) in members.iter().zip(&counts) {
                if count > pivot {
                    labels[idx] = Label::Cluster(next_id);
                }
            }
            next_id += 1;
        }
    }
    Clustering::from_labels(labels)
}

/// Computes every cluster's statistics, fanning the clusters out over
/// the `parkit` scheduler when more than one thread is requested. Each
/// cluster is folded serially in member order into its own disjoint
/// slot, so the result is bit-identical to the serial map.
fn compute_stats<P: NeighborProvider + Sync>(
    clusters: &[Vec<usize>],
    provider: &P,
    threads: usize,
) -> Vec<ClusterStats> {
    if threads <= 1 || clusters.len() < 2 {
        return clusters
            .iter()
            .map(|c| ClusterStats::compute(c, provider))
            .collect();
    }
    let mut slots: Vec<Option<ClusterStats>> = (0..clusters.len()).map(|_| None).collect();
    let slots_ptr = SendStatsPtr(slots.as_mut_ptr());
    parkit::for_each_chunk(threads, clusters.len(), 1, |chunk| {
        let slots_ptr = &slots_ptr;
        for c in chunk {
            // SAFETY: slot `c` is written by exactly one worker (the
            // scheduler hands out each cluster once).
            unsafe { *slots_ptr.0.add(c) = Some(ClusterStats::compute(&clusters[c], provider)) };
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cluster slot filled"))
        .collect()
}

/// A raw pointer wrapper asserting cross-thread transferability for the
/// disjoint-slot statistics writes above.
struct SendStatsPtr(*mut Option<ClusterStats>);
unsafe impl Sync for SendStatsPtr {}

/// The same pattern for the per-pair merge decisions of a round.
struct SendDecisionPtr(*mut bool);
unsafe impl Sync for SendDecisionPtr {}

/// Per-cluster statistics shared by both merge conditions.
#[derive(Debug)]
struct ClusterStats {
    /// Arithmetic mean of all intra-cluster pairwise dissimilarities.
    mean_dissim: Option<f64>,
    /// Maximum intra-cluster pairwise dissimilarity (cluster extent).
    max_dissim: f64,
    /// Median over members of the distance to their nearest neighbor
    /// within the cluster (`minmed`).
    minmed: Option<f64>,
}

impl ClusterStats {
    fn compute<P: NeighborProvider + ?Sized>(members: &[usize], provider: &P) -> Self {
        if members.len() < 2 {
            return Self {
                mean_dissim: None,
                max_dissim: 0.0,
                minmed: None,
            };
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut max = 0.0f64;
        let mut nearest = vec![f64::INFINITY; members.len()];
        for (ai, &a) in members.iter().enumerate() {
            for (bi, &b) in members.iter().enumerate().skip(ai + 1) {
                let d = provider.pair(a, b);
                sum += d;
                count += 1;
                max = max.max(d);
                nearest[ai] = nearest[ai].min(d);
                nearest[bi] = nearest[bi].min(d);
            }
        }
        Self {
            mean_dissim: Some(sum / count as f64),
            max_dissim: max,
            minmed: stats::median(&nearest),
        }
    }
}

/// One candidate cluster pair for [`should_merge`]: members, shared
/// statistics and the dense cluster ids the current labels carry.
struct MergeCandidate<'a> {
    ci: &'a [usize],
    cj: &'a [usize],
    si: &'a ClusterStats,
    sj: &'a ClusterStats,
    id_i: u32,
    id_j: u32,
}

fn should_merge<P: NeighborProvider + ?Sized>(
    pair: &MergeCandidate<'_>,
    labels: &[Label],
    provider: &P,
    params: &RefineParams,
) -> bool {
    let (ci, cj, si, sj) = (pair.ci, pair.cj, pair.si, pair.sj);
    let (Some(mean_i), Some(mean_j)) = (si.mean_dissim, sj.mean_dissim) else {
        return false;
    };
    // Link segments: the closest pair across the two clusters.
    let mut link = (ci[0], cj[0], f64::INFINITY);
    for &a in ci {
        for &b in cj {
            let d = provider.pair(a, b);
            if d < link.2 {
                link = (a, b, d);
            }
        }
    }
    let (link_i, link_j, d_link) = link;

    // Condition 1: very close by, similar local ε-density at the links.
    if d_link < mean_i.max(mean_j) {
        let smaller_extent = if ci.len() <= cj.len() {
            si.max_dissim
        } else {
            sj.max_dissim
        };
        let eps_local = smaller_extent / 2.0;
        let rho_i = local_density(link_i, pair.id_i, labels, provider, eps_local);
        let rho_j = local_density(link_j, pair.id_j, labels, provider, eps_local);
        if (rho_i - rho_j).abs() < params.eps_rho_threshold {
            return true;
        }
    }

    // Condition 2: somewhat close by, similar overall neighbor density.
    if let (Some(mm_i), Some(mm_j)) = (si.minmed, sj.minmed) {
        if mean_i > 0.0 && mean_j > 0.0 {
            let closeness_bound = (mm_i / mean_i + mm_j / mean_j) / 2.0;
            if d_link < closeness_bound && (mm_i - mm_j).abs() < params.neighbor_density_threshold {
                return true;
            }
        }
    }
    false
}

/// Median dissimilarity from the link segment to its cluster-mates within
/// `eps` (`ρ_ε`); zero when no mate lies that close. Answered by an
/// ε-region query filtered to the items carrying the cluster's label —
/// the same multiset of dissimilarities a member scan yields, whatever
/// order the backend emits it in, hence the same median.
fn local_density<P: NeighborProvider + ?Sized>(
    link: usize,
    cluster: u32,
    labels: &[Label],
    provider: &P,
    eps: f64,
) -> f64 {
    let mut region: Vec<(f64, u32)> = Vec::new();
    provider.neighbors_within(link, eps, &mut region);
    let within: Vec<f64> = region
        .iter()
        .filter(|&&(_, j)| labels[j as usize] == Label::Cluster(cluster))
        .map(|&(d, _)| d)
        .collect();
    stats::median(&within).unwrap_or(0.0)
}

/// Tiny union-find over cluster indices.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi] = lo;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    fn line_matrix(points: &[f64]) -> CondensedMatrix {
        CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    /// Two sub-clusters of the same "type" separated by a small gap, plus
    /// one genuinely distant cluster.
    fn overclassified() -> (CondensedMatrix, Clustering) {
        let mut pts: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect(); // 0.0..1.1
        pts.extend((0..12).map(|i| 1.35 + i as f64 * 0.1)); // 1.35..2.45 (gap 0.25)
        pts.extend((0..12).map(|i| 50.0 + i as f64 * 0.1)); // far away
        let m = line_matrix(&pts);
        let c = dbscan(&m, 0.15, 3);
        assert_eq!(c.n_clusters(), 3, "precondition: DBSCAN over-classifies");
        (m, c)
    }

    #[test]
    fn merge_joins_linked_equal_density_clusters() {
        let (m, c) = overclassified();
        let merged = merge_clusters(&c, &m, &RefineParams::default());
        // The two near sub-clusters merge; the distant one stays apart.
        assert_eq!(merged.n_clusters(), 2);
    }

    #[test]
    fn merge_keeps_distant_clusters_apart() {
        let pts: Vec<f64> = (0..10)
            .map(|i| i as f64 * 0.1)
            .chain((0..10).map(|i| 100.0 + i as f64 * 0.1))
            .collect();
        let m = line_matrix(&pts);
        let c = dbscan(&m, 0.15, 3);
        assert_eq!(c.n_clusters(), 2);
        let merged = merge_clusters(&c, &m, &RefineParams::default());
        assert_eq!(merged.n_clusters(), 2);
    }

    #[test]
    fn merge_respects_density_mismatch() {
        // A tight cluster (spacing 0.01) right next to a loose one
        // (spacing 0.5): link condition may hold but densities differ by
        // more than both thresholds.
        let mut pts: Vec<f64> = (0..10).map(|i| i as f64 * 0.01).collect();
        pts.extend((0..10).map(|i| 0.3 + i as f64 * 0.5));
        let m = line_matrix(&pts);
        let c = dbscan(&m, 0.09, 3);
        let before = c.n_clusters();
        let merged = merge_clusters(
            &c,
            &m,
            &RefineParams {
                eps_rho_threshold: 0.001,
                neighbor_density_threshold: 0.001,
                ..RefineParams::default()
            },
        );
        assert_eq!(merged.n_clusters(), before);
    }

    #[test]
    fn merge_preserves_noise() {
        let (m, c) = overclassified();
        let noise_before = c.noise();
        let merged = merge_clusters(&c, &m, &RefineParams::default());
        assert_eq!(merged.noise(), noise_before);
    }

    #[test]
    fn index_backed_merge_matches_matrix_scan() {
        let (m, c) = overclassified();
        let idx = dissim::NeighborIndex::build(&m);
        let p = RefineParams::default();
        assert_eq!(
            merge_clusters(&c, &m, &p),
            merge_clusters_with_index(&c, &m, &idx, &p)
        );
        // Also when thresholds forbid any merge.
        let strict = RefineParams {
            eps_rho_threshold: 0.0,
            neighbor_density_threshold: 0.0,
            ..RefineParams::default()
        };
        assert_eq!(
            merge_clusters(&c, &m, &strict),
            merge_clusters_with_index(&c, &m, &idx, &strict)
        );
    }

    #[test]
    fn parallel_merge_matches_serial() {
        let (m, c) = overclassified();
        let idx = dissim::NeighborIndex::build(&m);
        let p = RefineParams::default();
        let serial = merge_clusters(&c, &m, &p);
        for threads in [1, 2, 4] {
            assert_eq!(
                serial,
                merge_clusters_parallel(&c, &m, &idx, &p, threads),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn split_separates_polarized_occurrences() {
        // One cluster of 40 members: 39 unique-ish values (count 1) and a
        // single enumeration-like value occurring 500 times.
        let labels = vec![Label::Cluster(0); 40];
        let c = Clustering::from_labels(labels);
        let mut occ = vec![1usize; 40];
        occ[7] = 500;
        let split = split_clusters(&c, &occ, &RefineParams::default());
        assert_eq!(split.n_clusters(), 2);
        assert_ne!(split.labels()[7], split.labels()[0]);
        assert_eq!(split.labels()[0], split.labels()[39]);
    }

    #[test]
    fn split_leaves_uniform_clusters_alone() {
        let labels = vec![Label::Cluster(0); 30];
        let c = Clustering::from_labels(labels);
        let occ = vec![5usize; 30];
        let split = split_clusters(&c, &occ, &RefineParams::default());
        assert_eq!(split.n_clusters(), 1);
    }

    #[test]
    fn split_ignores_noise_and_small_clusters() {
        let labels = vec![Label::Noise, Label::Cluster(0), Label::Cluster(0)];
        let c = Clustering::from_labels(labels);
        let occ = vec![1000, 1, 1000];
        let split = split_clusters(&c, &occ, &RefineParams::default());
        assert_eq!(split.labels()[0], Label::Noise);
    }

    #[test]
    #[should_panic(expected = "occurrence count")]
    fn split_panics_on_short_occurrences() {
        let c = Clustering::from_labels(vec![Label::Cluster(0); 3]);
        split_clusters(&c, &[1], &RefineParams::default());
    }

    #[test]
    fn merge_handles_empty_and_single_cluster() {
        let m = line_matrix(&[0.0, 0.1, 0.2]);
        let single = dbscan(&m, 0.5, 2);
        assert_eq!(single.n_clusters(), 1);
        let merged = merge_clusters(&single, &m, &RefineParams::default());
        assert_eq!(merged.n_clusters(), 1);

        let empty = Clustering::from_labels(vec![]);
        let m0 = CondensedMatrix::build(0, |_, _| 0.0);
        assert!(merge_clusters(&empty, &m0, &RefineParams::default()).is_empty());
    }
}
