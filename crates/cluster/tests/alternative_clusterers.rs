//! Property-based invariants for the alternative density clusterers
//! (OPTICS, HDBSCAN) the paper discusses in §III-F.

use cluster::dbscan::Label;
use cluster::hdbscan::{hdbscan, HdbscanParams};
use cluster::optics::optics;
use dissim::CondensedMatrix;
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0f64..100.0, 2..50)
}

fn matrix_of(pts: &[f64]) -> CondensedMatrix {
    CondensedMatrix::build(pts.len(), |i, j| (pts[i] - pts[j]).abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optics_ordering_is_a_permutation(pts in points(), min_samples in 2usize..6) {
        let o = optics(&matrix_of(&pts), f64::INFINITY, min_samples);
        let mut seen = vec![false; pts.len()];
        for &i in &o.order {
            prop_assert!(!seen[i], "item {} visited twice", i);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Core distances are at most max_eps and reachabilities respect
        // the core distance lower bound where finite.
        for rank in 0..o.order.len() {
            if o.reachability[rank].is_finite() && o.core_distance[rank].is_finite() {
                // reachability >= the *predecessor's* core distance, which
                // we cannot reconstruct here; at least check non-negative.
                prop_assert!(o.reachability[rank] >= 0.0);
            }
        }
    }

    #[test]
    fn optics_cut_partitions_everything(
        pts in points(),
        eps in 0.5f64..20.0,
        min_samples in 2usize..6,
    ) {
        let c = optics(&matrix_of(&pts), f64::INFINITY, min_samples).extract_dbscan(eps);
        prop_assert_eq!(c.len(), pts.len());
        let in_clusters: usize = c.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(in_clusters + c.noise().len(), pts.len());
    }

    #[test]
    fn hdbscan_partitions_everything(
        pts in points(),
        min_cluster_size in 2usize..6,
    ) {
        let c = hdbscan(
            &matrix_of(&pts),
            &HdbscanParams { min_samples: 3, min_cluster_size },
        );
        prop_assert_eq!(c.len(), pts.len());
        let in_clusters: usize = c.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(in_clusters + c.noise().len(), pts.len());
        // No cluster smaller than min_cluster_size.
        for members in c.clusters() {
            prop_assert!(
                members.len() >= min_cluster_size,
                "cluster of {} < min_cluster_size {}",
                members.len(),
                min_cluster_size
            );
        }
    }

    #[test]
    fn hdbscan_is_deterministic(pts in points()) {
        let m = matrix_of(&pts);
        let p = HdbscanParams { min_samples: 3, min_cluster_size: 3 };
        prop_assert_eq!(hdbscan(&m, &p), hdbscan(&m, &p));
    }

    #[test]
    fn identical_points_form_one_cluster(n in 4usize..30) {
        let pts = vec![7.0; n];
        let m = matrix_of(&pts);
        let c = hdbscan(&m, &HdbscanParams { min_samples: 2, min_cluster_size: 2 });
        prop_assert_eq!(c.n_clusters(), 1);
        prop_assert!(c.labels().iter().all(|l| *l == Label::Cluster(0)));
    }
}
