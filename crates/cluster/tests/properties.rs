//! Property-based invariants for DBSCAN and refinement.

use cluster::dbscan::{dbscan, Clustering, Label};
use cluster::refine::{merge_clusters, split_clusters, RefineParams};
use dissim::CondensedMatrix;
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0f64..100.0, 2..60)
}

fn matrix_of(pts: &[f64]) -> CondensedMatrix {
    CondensedMatrix::build(pts.len(), |i, j| (pts[i] - pts[j]).abs())
}

proptest! {
    #[test]
    fn every_item_is_labelled(pts in points(), eps in 0.1f64..20.0, min_samples in 1usize..8) {
        let m = matrix_of(&pts);
        let c = dbscan(&m, eps, min_samples);
        prop_assert_eq!(c.len(), pts.len());
        let in_clusters: usize = c.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(in_clusters + c.noise().len(), pts.len());
    }

    #[test]
    fn cluster_ids_are_dense(pts in points(), eps in 0.1f64..20.0, min_samples in 1usize..8) {
        let m = matrix_of(&pts);
        let c = dbscan(&m, eps, min_samples);
        let mut seen = std::collections::HashSet::new();
        for l in c.labels() {
            if let Label::Cluster(id) = l {
                prop_assert!(*id < c.n_clusters());
                seen.insert(*id);
            }
        }
        prop_assert_eq!(seen.len() as u32, c.n_clusters());
    }

    #[test]
    fn core_points_never_noise(pts in points(), eps in 0.5f64..10.0, min_samples in 2usize..6) {
        let m = matrix_of(&pts);
        let c = dbscan(&m, eps, min_samples);
        for i in 0..pts.len() {
            let neighbors = (0..pts.len())
                .filter(|&j| j != i && m.get(i, j) <= eps)
                .count();
            if neighbors + 1 >= min_samples {
                prop_assert!(
                    matches!(c.labels()[i], Label::Cluster(_)),
                    "core point {} labelled noise", i
                );
            }
        }
    }

    #[test]
    fn dbscan_is_deterministic(pts in points(), eps in 0.1f64..10.0, min_samples in 1usize..6) {
        let m = matrix_of(&pts);
        prop_assert_eq!(dbscan(&m, eps, min_samples), dbscan(&m, eps, min_samples));
    }

    #[test]
    fn merging_never_increases_cluster_count(pts in points(), eps in 0.1f64..10.0) {
        let m = matrix_of(&pts);
        let c = dbscan(&m, eps, 3);
        let merged = merge_clusters(&c, &m, &RefineParams::default());
        prop_assert!(merged.n_clusters() <= c.n_clusters());
        // Noise set is untouched by merging.
        prop_assert_eq!(merged.noise(), c.noise());
    }

    #[test]
    fn splitting_never_loses_items(
        pts in points(),
        occs in prop::collection::vec(1usize..1000, 60),
    ) {
        let m = matrix_of(&pts);
        let c = dbscan(&m, 5.0, 2);
        let occ = &occs[..pts.len().min(occs.len())];
        prop_assume!(occ.len() >= c.len());
        let split = split_clusters(&c, occ, &RefineParams::default());
        prop_assert_eq!(split.len(), c.len());
        let in_clusters: usize = split.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(in_clusters + split.noise().len(), c.len());
        prop_assert!(split.n_clusters() >= c.n_clusters());
    }
}

#[test]
fn merge_is_idempotent_once_stable() {
    let pts: Vec<f64> = (0..30)
        .map(|i| (i / 10) as f64 * 40.0 + (i % 10) as f64 * 0.2)
        .collect();
    let m = matrix_of(&pts);
    let c = dbscan(&m, 0.5, 3);
    let once = merge_clusters(&c, &m, &RefineParams::default());
    let twice = merge_clusters(&once, &m, &RefineParams::default());
    assert_eq!(once, twice);
}

#[test]
fn empty_clustering_roundtrips() {
    let c = Clustering::from_labels(vec![]);
    let m = CondensedMatrix::build(0, |_, _| 0.0);
    assert!(merge_clusters(&c, &m, &RefineParams::default()).is_empty());
    assert!(split_clusters(&c, &[], &RefineParams::default()).is_empty());
}
