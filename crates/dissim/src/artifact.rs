//! A dissimilarity artifact: the condensed matrix plus the derived
//! [`NeighborIndex`], built at most once and shared by every analysis
//! stage that needs pairwise dissimilarities.
//!
//! The matrix is the expensive product (O(n²) dissimilarity
//! evaluations); the neighbor index is a cheaper derived structure
//! (O(n² log n) sort of already-computed values) that accelerates
//! ε-region and k-NN queries. Bundling them keeps the invariant that
//! both describe the *same* item set, and lets the index be built
//! lazily: stages that only need raw matrix entries never pay for it.

use crate::matrix::CondensedMatrix;
use crate::neighbor::NeighborIndex;

/// The condensed dissimilarity matrix together with its lazily built
/// neighbor index.
#[derive(Debug, Clone)]
pub struct DissimArtifact {
    matrix: CondensedMatrix,
    threads: usize,
    neighbors: Option<NeighborIndex>,
}

impl DissimArtifact {
    /// Computes the pairwise matrix with `threads` worker threads.
    /// `f(i, j)` must be symmetric; it is called once per unordered
    /// pair `i < j`.
    pub fn compute(n: usize, threads: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        Self::from_matrix(CondensedMatrix::build_parallel(n, threads, f), threads)
    }

    /// Computes the pairwise Canberra dissimilarity matrix directly
    /// from the segment slices via the kernel layer
    /// ([`CondensedMatrix::build_segments`]): bit-identical to
    /// [`compute`](Self::compute) over [`crate::dissimilarity`], several
    /// times faster.
    pub fn compute_segments(
        segments: &[&[u8]],
        params: &crate::canberra::DissimParams,
        threads: usize,
    ) -> Self {
        Self::from_matrix(
            CondensedMatrix::build_segments(segments, params, threads),
            threads,
        )
    }

    /// Wraps an existing matrix; `threads` is used for a later
    /// [`neighbors`](Self::neighbors) build.
    pub fn from_matrix(matrix: CondensedMatrix, threads: usize) -> Self {
        Self {
            matrix,
            threads: threads.max(1),
            neighbors: None,
        }
    }

    /// Reassembles an artifact from a matrix and an optionally
    /// pre-built neighbor index (the artifact store's warm-start path).
    /// `None` if the index covers a different item count than the
    /// matrix — a corrupt cache file must read as a miss, never as a
    /// mismatched artifact.
    pub fn from_parts(
        matrix: CondensedMatrix,
        neighbors: Option<NeighborIndex>,
        threads: usize,
    ) -> Option<Self> {
        if let Some(ix) = &neighbors {
            if ix.len() != matrix.len() {
                return None;
            }
        }
        Some(Self {
            matrix,
            threads: threads.max(1),
            neighbors,
        })
    }

    /// Sets the worker-thread count used for a later lazy
    /// [`neighbors`](Self::neighbors) build (deserialized artifacts
    /// default to one thread).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the artifact covers zero items.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The condensed pairwise matrix.
    pub fn matrix(&self) -> &CondensedMatrix {
        &self.matrix
    }

    /// The neighbor index, building (in parallel) and caching it on
    /// first use.
    pub fn neighbors(&mut self) -> &NeighborIndex {
        if self.neighbors.is_none() {
            self.neighbors = Some(NeighborIndex::build_parallel(&self.matrix, self.threads));
        }
        self.neighbors.as_ref().expect("just built")
    }

    /// The neighbor index if it has already been built.
    pub fn neighbors_built(&self) -> Option<&NeighborIndex> {
        self.neighbors.as_ref()
    }

    /// Consumes the artifact, returning the matrix.
    pub fn into_matrix(self) -> CondensedMatrix {
        self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_neighbor_index_matches_direct_build() {
        let pts = [0.0f64, 0.4, 1.0, 5.0];
        let mut a = DissimArtifact::compute(pts.len(), 2, |i, j| (pts[i] - pts[j]).abs());
        assert!(a.neighbors_built().is_none());
        let direct = NeighborIndex::build(a.matrix());
        assert_eq!(a.neighbors().neighbors(0), direct.neighbors(0));
        assert!(a.neighbors_built().is_some());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn compute_matches_serial_matrix() {
        let pts = [3.0f64, 1.0, 4.0, 1.5, 9.0];
        let a = DissimArtifact::compute(pts.len(), 3, |i, j| (pts[i] - pts[j]).abs());
        let m = CondensedMatrix::build(pts.len(), |i, j| (pts[i] - pts[j]).abs());
        assert_eq!(*a.matrix(), m);
        assert_eq!(a.into_matrix(), m);
    }
}
