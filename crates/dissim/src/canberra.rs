//! The Canberra distance and its mixed-length dissimilarity extension.

/// Parameters of the mixed-length Canberra dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DissimParams {
    /// Per-byte penalty charged for the non-overlapping part when
    /// comparing segments of different lengths.
    ///
    /// NEMETYL \[10\] does not print this constant; `0.59` was chosen
    /// empirically so that same-type variable-length segments stay closer
    /// than cross-type pairs on the evaluation corpus (documented
    /// substitution, DESIGN.md §4.3). Must lie in `[0, 1]`; use
    /// [`DissimParams::new`] to have the bound checked up front. Every
    /// consumer charges [`DissimParams::effective_penalty`] — the value
    /// clamped to `[0, 1]` — so an unchecked out-of-range field can
    /// never silently produce dissimilarities outside `[0, 1]`.
    pub length_penalty: f64,
}

/// Error from [`DissimParams::new`]: the penalty lies outside `[0, 1]`
/// (or is NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidLengthPenalty(pub f64);

impl std::fmt::Display for InvalidLengthPenalty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "length penalty {} is outside [0, 1]", self.0)
    }
}

impl std::error::Error for InvalidLengthPenalty {}

impl DissimParams {
    /// Checked constructor: rejects penalties outside `[0, 1]` (and
    /// NaN) instead of letting a bad CLI flag silently distort every
    /// dissimilarity.
    ///
    /// # Errors
    ///
    /// [`InvalidLengthPenalty`] when `length_penalty ∉ [0, 1]`.
    pub fn new(length_penalty: f64) -> Result<Self, InvalidLengthPenalty> {
        if (0.0..=1.0).contains(&length_penalty) {
            Ok(Self { length_penalty })
        } else {
            Err(InvalidLengthPenalty(length_penalty))
        }
    }

    /// The penalty actually charged by [`dissimilarity`] and the matrix
    /// builds: [`length_penalty`](Self::length_penalty) clamped to
    /// `[0, 1]`. This validation runs in release builds too (promoted
    /// from a former `debug_assert!`).
    ///
    /// # Panics
    ///
    /// Panics on a NaN penalty, which cannot be meaningfully clamped.
    pub fn effective_penalty(&self) -> f64 {
        assert!(
            !self.length_penalty.is_nan(),
            "length penalty must not be NaN"
        );
        self.length_penalty.clamp(0.0, 1.0)
    }
}

impl Default for DissimParams {
    fn default() -> Self {
        Self {
            length_penalty: 0.59,
        }
    }
}

/// The Canberra distance between two equal-length byte vectors,
/// normalized to `[0, 1]` by the vector length.
///
/// Each component contributes `|x - y| / (x + y)`, with `0/0` defined as
/// `0` (both bytes zero means perfect agreement).
///
/// # Panics
///
/// Panics if the slices have different lengths; use [`dissimilarity`]
/// for the general case.
///
/// ```
/// assert_eq!(dissim::canberra_distance(b"ab", b"ab"), 0.0);
/// assert_eq!(dissim::canberra_distance(b"\x00", b"\xff"), 1.0);
/// ```
pub fn canberra_distance(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "canberra distance needs equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let num = (f64::from(x) - f64::from(y)).abs();
            let den = f64::from(x) + f64::from(y);
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        })
        .sum();
    sum / a.len() as f64
}

/// The Canberra dissimilarity between two byte segments of arbitrary
/// lengths, in `[0, 1]`.
///
/// For equal lengths this is the normalized Canberra distance. For
/// different lengths the shorter segment slides over the longer one; the
/// best (minimum) window distance is combined with a penalty of
/// [`DissimParams::length_penalty`] per non-overlapping byte:
///
/// ```text
/// D(s, t) = (|s| · min_o d̄_C(s, t[o..o+|s|]) + (|t| − |s|) · p) / |t|
/// ```
///
/// Empty segments are maximally dissimilar to non-empty ones and
/// identical to each other.
pub fn dissimilarity(a: &[u8], b: &[u8], params: &DissimParams) -> f64 {
    let penalty = params.effective_penalty();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.is_empty() {
        return 0.0;
    }
    if short.is_empty() {
        return 1.0;
    }
    if short.len() == long.len() {
        return canberra_distance(short, long);
    }
    let mut best = f64::INFINITY;
    for offset in 0..=(long.len() - short.len()) {
        let d = canberra_distance(short, &long[offset..offset + short.len()]);
        if d < best {
            best = d;
            if best == 0.0 {
                break;
            }
        }
    }
    let overlap = short.len() as f64;
    let excess = (long.len() - short.len()) as f64;
    (overlap * best + excess * penalty) / long.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DissimParams = DissimParams {
        length_penalty: 0.59,
    };

    #[test]
    fn identical_is_zero() {
        assert_eq!(dissimilarity(b"\x01\x02\x03", b"\x01\x02\x03", &P), 0.0);
        assert_eq!(dissimilarity(b"", b"", &P), 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        assert_eq!(dissimilarity(b"", b"abc", &P), 1.0);
        assert_eq!(dissimilarity(b"abc", b"", &P), 1.0);
    }

    #[test]
    fn canberra_component_math() {
        // |1-3|/(1+3) = 0.5, |2-2|/4 = 0 -> mean = 0.25
        let d = canberra_distance(&[1, 2], &[3, 2]);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_pair_contributes_zero() {
        assert_eq!(canberra_distance(&[0, 0], &[0, 0]), 0.0);
        // |0-4|/(0+4) = 1 for the second byte -> mean 0.5
        assert_eq!(canberra_distance(&[0, 0], &[0, 4]), 0.5);
    }

    #[test]
    fn symmetric() {
        let a = b"\x12\x34\x56\x78";
        let b = b"\x9a\xbc";
        assert_eq!(dissimilarity(a, b, &P), dissimilarity(b, a, &P));
    }

    #[test]
    fn bounded_by_unit_interval() {
        let cases: [(&[u8], &[u8]); 4] = [
            (b"\x00\x00", b"\xff\xff"),
            (b"\x01", b"\x01\x02\x03\x04\x05"),
            (b"\xff", b"\x00"),
            (b"abcdef", b"abc"),
        ];
        for (a, b) in cases {
            let d = dissimilarity(a, b, &P);
            assert!((0.0..=1.0).contains(&d), "d({a:?},{b:?}) = {d}");
        }
    }

    #[test]
    fn sliding_finds_embedded_match() {
        // `needle` appears inside `haystack`: the window distance is 0 and
        // only the length penalty remains.
        let needle = b"\x10\x20\x30";
        let haystack = b"\xff\x10\x20\x30\xff";
        let d = dissimilarity(needle, haystack, &P);
        let expected = (3.0 * 0.0 + 2.0 * 0.59) / 5.0;
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn penalty_grows_with_length_difference() {
        let base = b"\x11\x22";
        let d1 = dissimilarity(base, b"\x11\x22\x33", &P);
        let d2 = dissimilarity(base, b"\x11\x22\x33\x44\x55\x66", &P);
        assert!(d2 > d1);
    }

    #[test]
    fn same_type_values_are_close() {
        // Two NTP-style timestamps captured close together (four shared
        // high bytes) are closer than a timestamp and a printable string,
        // and two printable strings are closer still.
        let ts_a = [0xD2, 0x3D, 0x19, 0x03, 0xB3, 0xFC, 0xDA, 0xB1];
        let ts_b = [0xD2, 0x3D, 0x19, 0x03, 0x01, 0x58, 0x10, 0x62];
        let chars_a = *b"hostname";
        let chars_b = *b"hostmate";
        let d_same_ts = dissimilarity(&ts_a, &ts_b, &P);
        let d_cross = dissimilarity(&ts_a, &chars_a, &P);
        let d_same_chars = dissimilarity(&chars_a, &chars_b, &P);
        assert!(d_same_ts < d_cross, "{d_same_ts} !< {d_cross}");
        assert!(d_same_chars < d_cross, "{d_same_chars} !< {d_cross}");
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn canberra_panics_on_length_mismatch() {
        canberra_distance(&[1], &[1, 2]);
    }

    #[test]
    fn checked_constructor_validates_penalty() {
        assert_eq!(
            DissimParams::new(0.59),
            Ok(DissimParams {
                length_penalty: 0.59
            })
        );
        assert!(DissimParams::new(0.0).is_ok());
        assert!(DissimParams::new(1.0).is_ok());
        assert_eq!(DissimParams::new(1.5), Err(InvalidLengthPenalty(1.5)));
        assert_eq!(DissimParams::new(-0.1), Err(InvalidLengthPenalty(-0.1)));
        assert!(DissimParams::new(f64::NAN).is_err());
    }

    #[test]
    fn out_of_range_penalty_is_clamped_in_release_too() {
        let too_big = DissimParams {
            length_penalty: 40.0,
        };
        assert_eq!(too_big.effective_penalty(), 1.0);
        // A wildly wrong flag can no longer push dissimilarities out of
        // [0, 1]: the non-overlap is charged at the clamped rate.
        let d = dissimilarity(b"\x01", b"\x01\x02\x03", &too_big);
        assert!((0.0..=1.0).contains(&d), "d = {d}");
        let negative = DissimParams {
            length_penalty: -3.0,
        };
        assert_eq!(negative.effective_penalty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_penalty_panics() {
        dissimilarity(
            b"\x01",
            b"\x01\x02",
            &DissimParams {
                length_penalty: f64::NAN,
            },
        );
    }
}
