//! The fast Canberra kernel layer: byte-pair lookup table, early-abandon
//! sliding windows, and the length-bucketed condensed-matrix build.
//!
//! Everything in this module is a **bit-identical** drop-in for the
//! scalar reference code in [`crate::canberra`]. Bit-identity is a hard
//! requirement, not a nicety: the pipeline's ε auto-configuration finds
//! a knee in the ECDF of k-NN dissimilarities and DBSCAN compares raw
//! matrix entries against that ε, so a 1-ULP perturbation of a single
//! matrix entry can move a segment across the ε threshold and cascade
//! into a structurally different clustering. The session-equivalence
//! tests pin ε bit-for-bit against the naive build; the kernels below
//! therefore only apply transformations that provably preserve every bit
//! of the result:
//!
//! 1. **Byte-pair LUT** ([`CanberraLut`]): the per-byte term
//!    `|x − y| / (x + y)` only depends on the byte pair, so all 256×256
//!    values are precomputed once (512 KiB, L2-resident) with *exactly*
//!    the scalar expression. A lookup returns the same `f64` the scalar
//!    code would compute, and the left-to-right summation order is
//!    unchanged, so the window sum is bit-identical.
//! 2. **Early abandonment** ([`dissimilarity_kernel`]): the windowed
//!    minimum is tracked in the *sum* domain. Rounded division by the
//!    positive constant `len` is monotonic and the minimum is attained
//!    by one of the windows, so `(min_w sum_w) / len` equals
//!    `min_w (sum_w / len)` bit-for-bit — the per-window division
//!    vanishes. A window's accumulation then aborts once its running
//!    partial sum reaches the best complete sum so far: per-byte terms
//!    are non-negative and rounded addition of a non-negative value
//!    never decreases an f64, so the abandoned window's full sum could
//!    never have lowered the minimum. Both arguments hold for *any*
//!    evaluation order of the windows, because the minimum of complete
//!    sums is order-independent.
//! 3. **Length-bucketed build** ([`CondensedMatrix::build_segments`]):
//!    segment indices are sorted into equal-length buckets so
//!    equal-length pairs take the branch-free direct-Canberra path and
//!    every mixed-length (S, L) bucket pair shares one windowed kernel
//!    with its constants hoisted and every segment's LUT row offsets
//!    precomputed once per build. The hot loops run **four independent accumulation
//!    lanes** (four windows of one pair, or four columns of one
//!    equal-length bucket) to hide the f64 add latency of the otherwise
//!    serial accumulation chain — each lane is still a strict
//!    left-to-right sum over its own window, so every completed sum is
//!    the exact scalar value, and per point 2 the window order doesn't
//!    matter. Rows are handed out to scoped threads in contiguous
//!    blocks; each row owns a contiguous condensed range, so writes
//!    stay cache-local and never alias.

use std::sync::OnceLock;

use crate::canberra::DissimParams;
#[cfg(test)]
use crate::canberra::{canberra_distance, dissimilarity};
use crate::matrix::{condensed_index, CondensedMatrix};

/// Lazily initialized 256 × 256 table of per-byte Canberra terms
/// `|x − y| / (x + y)` with `0/0 := 0`.
///
/// Each entry is computed by the exact scalar expression used in
/// [`crate::canberra_distance`], so a lookup is bit-identical to evaluating the
/// term — it merely replaces two int→f64 conversions, a subtraction,
/// an `abs`, and a division with a single L2-resident load.
pub struct CanberraLut {
    terms: Box<[f64; 65536]>,
}

impl CanberraLut {
    fn new() -> Self {
        let mut terms = vec![0.0f64; 65536].into_boxed_slice();
        for x in 0..=255u8 {
            for y in 0..=255u8 {
                // Exactly the scalar per-byte term of `canberra_distance`.
                let num = (f64::from(x) - f64::from(y)).abs();
                let den = f64::from(x) + f64::from(y);
                terms[(usize::from(x) << 8) | usize::from(y)] =
                    if den == 0.0 { 0.0 } else { num / den };
            }
        }
        let terms: Box<[f64; 65536]> = terms.try_into().expect("65536 terms");
        Self { terms }
    }

    /// The process-wide table, built on first use.
    pub fn global() -> &'static CanberraLut {
        static LUT: OnceLock<CanberraLut> = OnceLock::new();
        LUT.get_or_init(CanberraLut::new)
    }

    /// The Canberra term of byte pair `(x, y)`.
    #[inline(always)]
    pub fn term(&self, x: u8, y: u8) -> f64 {
        self.terms[(usize::from(x) << 8) | usize::from(y)]
    }

    /// The Canberra term addressed by a precomputed row key
    /// (`usize::from(x) << 8`) and the column byte `y`.
    #[inline(always)]
    fn term_key(&self, key: usize, y: u8) -> f64 {
        self.terms[key | usize::from(y)]
    }
}

/// Precomputed LUT row offsets (`byte << 8`) for every segment of a
/// build, hoisting the shift out of the hot loops: keys are built once
/// per segment and then shared read-only across all pairings (and all
/// threads), instead of being recomputed per pair.
struct KeyTable {
    data: Vec<usize>,
    ranges: Vec<(usize, usize)>,
}

impl KeyTable {
    fn new(segments: &[&[u8]]) -> Self {
        let total = segments.iter().map(|s| s.len()).sum();
        let mut data = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(segments.len());
        for seg in segments {
            let start = data.len();
            data.extend(seg.iter().map(|&b| usize::from(b) << 8));
            ranges.push((start, data.len()));
        }
        Self { data, ranges }
    }

    /// The key slice of segment `i`; same length as the segment.
    #[inline]
    fn get(&self, i: usize) -> &[usize] {
        let (start, end) = self.ranges[i];
        &self.data[start..end]
    }
}

impl std::fmt::Debug for CanberraLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CanberraLut").finish_non_exhaustive()
    }
}

/// [`crate::canberra_distance`] computed through the LUT; bit-identical.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn canberra_distance_lut(a: &[u8], b: &[u8], lut: &CanberraLut) -> f64 {
    assert_eq!(a.len(), b.len(), "canberra distance needs equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(&x, &y)| lut.term(x, y)).sum();
    sum / a.len() as f64
}

/// Minimum windowed Canberra distance of `short` slid over `long`,
/// computing every window in full (LUT only, no early abandonment).
///
/// Works in the *sum* domain: `min_w (sum_w / len) == (min_w sum_w) /
/// len` bit-for-bit, because rounded division by a positive constant is
/// monotonic and the minimum is attained by one of the windows — so the
/// per-window division of the scalar code can be hoisted out of the
/// loop without changing a single bit.
fn windowed_min_full(short: &[u8], long: &[u8], lut: &CanberraLut) -> f64 {
    debug_assert!(!short.is_empty() && short.len() < long.len());
    let mut best_sum = f64::INFINITY;
    for offset in 0..=(long.len() - short.len()) {
        let window = &long[offset..offset + short.len()];
        let sum: f64 = short
            .iter()
            .zip(window)
            .map(|(&x, &y)| lut.term(x, y))
            .sum();
        if sum < best_sum {
            best_sum = sum;
            if best_sum == 0.0 {
                break;
            }
        }
    }
    best_sum / short.len() as f64
}

/// Minimum windowed Canberra distance of `short` slid over `long`,
/// abandoning each window's left-to-right accumulation as soon as the
/// running partial sum reaches the best complete sum so far: remaining
/// terms are non-negative and rounded addition of a non-negative value
/// never decreases the sum, so the window cannot undercut the minimum.
fn windowed_min_abandon(short: &[u8], long: &[u8], lut: &CanberraLut) -> f64 {
    debug_assert!(!short.is_empty() && short.len() < long.len());
    let mut best_sum = f64::INFINITY;
    'windows: for offset in 0..=(long.len() - short.len()) {
        let window = &long[offset..offset + short.len()];
        // Accumulate four terms between abandonment checks: the check is
        // conservative at any frequency, and testing once per chunk
        // keeps the compare off the accumulation chain.
        let mut sum = 0.0f64;
        for (sc, wc) in short.chunks_exact(4).zip(window.chunks_exact(4)) {
            sum += lut.term(sc[0], wc[0]);
            sum += lut.term(sc[1], wc[1]);
            sum += lut.term(sc[2], wc[2]);
            sum += lut.term(sc[3], wc[3]);
            if sum >= best_sum {
                continue 'windows;
            }
        }
        let rest = short.len() & !3;
        for (&x, &y) in short[rest..].iter().zip(&window[rest..]) {
            sum += lut.term(x, y);
        }
        if sum < best_sum {
            best_sum = sum;
            if best_sum == 0.0 {
                break;
            }
        }
    }
    best_sum / short.len() as f64
}

/// Combines a windowed minimum with the non-overlap penalty, exactly as
/// [`crate::dissimilarity`] does.
#[inline]
fn mixed_length(short_len: usize, long_len: usize, best: f64, penalty: f64) -> f64 {
    let overlap = short_len as f64;
    let excess = (long_len - short_len) as f64;
    (overlap * best + excess * penalty) / long_len as f64
}

/// [`crate::dissimilarity`] computed through the LUT with every window
/// evaluated in full — the intermediate rung of the kernel ladder,
/// benchmarked to isolate the LUT's contribution from early
/// abandonment's. Bit-identical to the scalar reference.
pub fn dissimilarity_lut(a: &[u8], b: &[u8], params: &DissimParams, lut: &CanberraLut) -> f64 {
    let penalty = params.effective_penalty();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.is_empty() {
        return 0.0;
    }
    if short.is_empty() {
        return 1.0;
    }
    if short.len() == long.len() {
        return canberra_distance_lut(short, long, lut);
    }
    let best = windowed_min_full(short, long, lut);
    mixed_length(short.len(), long.len(), best, penalty)
}

/// [`crate::dissimilarity`] computed through the LUT with early-abandon
/// sliding windows — the full pairwise kernel. Bit-identical to the
/// scalar reference.
pub fn dissimilarity_kernel(a: &[u8], b: &[u8], params: &DissimParams, lut: &CanberraLut) -> f64 {
    let penalty = params.effective_penalty();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.is_empty() {
        return 0.0;
    }
    if short.is_empty() {
        return 1.0;
    }
    if short.len() == long.len() {
        return canberra_distance_lut(short, long, lut);
    }
    let best = windowed_min_abandon(short, long, lut);
    mixed_length(short.len(), long.len(), best, penalty)
}

/// Canberra term sum of two equal-length slices with an opt-in SWAR
/// equality skip: bytes are compared eight at a time as little-endian
/// `u64` lanes, and a lane whose XOR is zero skips all eight LUT
/// lookups.
///
/// Bit-identical to the strict left-to-right LUT accumulation: the
/// per-byte term of an equal byte pair is exactly `+0.0` (`0/2x`, or
/// `0/0 := 0`), every term is non-negative so the accumulator is never
/// `-0.0`, and `s + 0.0 == s` bit-for-bit for every non-negative f64 —
/// skipping the additions is a bitwise no-op on the sum.
#[inline]
fn canberra_sum_swar(a: &[u8], b: &[u8], lut: &CanberraLut) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0f64;
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        let wa = u64::from_le_bytes(ca.try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(cb.try_into().expect("8-byte chunk"));
        if wa ^ wb == 0 {
            continue;
        }
        sum += lut.term(ca[0], cb[0]);
        sum += lut.term(ca[1], cb[1]);
        sum += lut.term(ca[2], cb[2]);
        sum += lut.term(ca[3], cb[3]);
        sum += lut.term(ca[4], cb[4]);
        sum += lut.term(ca[5], cb[5]);
        sum += lut.term(ca[6], cb[6]);
        sum += lut.term(ca[7], cb[7]);
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        sum += lut.term(x, y);
    }
    sum
}

/// [`crate::canberra_distance`] with the SWAR equality skip of
/// [`canberra_sum_swar`]; bit-identical to the scalar reference.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn canberra_distance_swar(a: &[u8], b: &[u8], lut: &CanberraLut) -> f64 {
    assert_eq!(a.len(), b.len(), "canberra distance needs equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    canberra_sum_swar(a, b, lut) / a.len() as f64
}

/// Minimum windowed Canberra distance with the SWAR equality skip
/// applied inside each window. Every window's complete sum is exact
/// (see [`canberra_sum_swar`]) and the minimum over complete sums is
/// order-independent, so the result is bit-identical to
/// [`windowed_min_full`].
fn windowed_min_swar(short: &[u8], long: &[u8], lut: &CanberraLut) -> f64 {
    debug_assert!(!short.is_empty() && short.len() < long.len());
    let mut best_sum = f64::INFINITY;
    for offset in 0..=(long.len() - short.len()) {
        let window = &long[offset..offset + short.len()];
        let sum = canberra_sum_swar(short, window, lut);
        if sum < best_sum {
            best_sum = sum;
            if best_sum == 0.0 {
                break;
            }
        }
    }
    best_sum / short.len() as f64
}

/// [`crate::dissimilarity`] with the opt-in SWAR fast path: u64 lane
/// packing skips whole 8-byte runs of equal bytes before touching the
/// LUT, which pays off on traces full of near-duplicate segments
/// (repeated header fields, zero padding). Bit-identical to
/// [`dissimilarity_kernel`] and oracle-checked against it in the tests;
/// callers opt in explicitly (e.g. [`crate::vptree::VpProvider::with_swar`])
/// and the choice never enters any cache key.
pub fn dissimilarity_swar(a: &[u8], b: &[u8], params: &DissimParams, lut: &CanberraLut) -> f64 {
    let penalty = params.effective_penalty();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.is_empty() {
        return 0.0;
    }
    if short.is_empty() {
        return 1.0;
    }
    if short.len() == long.len() {
        return canberra_distance_swar(short, long, lut);
    }
    let best = windowed_min_swar(short, long, lut);
    mixed_length(short.len(), long.len(), best, penalty)
}

/// Mean pairwise dissimilarity of `segments`, streamed pair by pair in
/// condensed row-major order without materializing the matrix; `None`
/// for fewer than two segments.
///
/// Bit-identical to [`CondensedMatrix::mean`] of the built matrix: the
/// entries are the same kernel values and the accumulation visits them
/// in exactly the condensed layout order `data.iter().sum()` uses.
pub fn pairwise_mean(segments: &[&[u8]], params: &DissimParams) -> Option<f64> {
    let n = segments.len();
    if n < 2 {
        return None;
    }
    let lut = CanberraLut::global();
    let mut sum = 0.0f64;
    for i in 0..n - 1 {
        for j in i + 1..n {
            sum += dissimilarity_kernel(segments[i], segments[j], params, lut);
        }
    }
    Some(sum / (n * (n - 1) / 2) as f64)
}

/// Segment indices sharing one length, ascending.
struct Bucket {
    len: usize,
    idxs: Vec<usize>,
}

/// Sorts `indices` into equal-length buckets (ascending length,
/// ascending index within a bucket).
fn make_buckets(segments: &[&[u8]], indices: impl Iterator<Item = usize>) -> Vec<Bucket> {
    let mut order: Vec<usize> = indices.collect();
    order.sort_unstable_by_key(|&i| (segments[i].len(), i));
    let mut buckets: Vec<Bucket> = Vec::new();
    for &i in &order {
        match buckets.last_mut() {
            Some(b) if b.len == segments[i].len() => b.idxs.push(i),
            _ => buckets.push(Bucket {
                len: segments[i].len(),
                idxs: vec![i],
            }),
        }
    }
    buckets
}

/// Canberra sums of one row segment (as LUT row keys) against four
/// equal-length columns at once. Each column's sum is its own strict
/// left-to-right accumulation; the four independent chains hide the f64
/// add latency that serializes the single-column loop.
#[inline]
fn equal_len_sums4(
    keys: &[usize],
    c0: &[u8],
    c1: &[u8],
    c2: &[u8],
    c3: &[u8],
    lut: &CanberraLut,
) -> [f64; 4] {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for ((((&key, &b0), &b1), &b2), &b3) in keys.iter().zip(c0).zip(c1).zip(c2).zip(c3) {
        a0 += lut.term_key(key, b0);
        a1 += lut.term_key(key, b1);
        a2 += lut.term_key(key, b2);
        a3 += lut.term_key(key, b3);
    }
    [a0, a1, a2, a3]
}

/// Minimum window *sum* of the short segment (given as LUT row keys)
/// slid over `long`, accumulating four adjacent windows concurrently.
///
/// Each window's sum is still a strict left-to-right accumulation, so
/// every completed sum is the exact scalar value, and the minimum over
/// complete sums is order-independent — the result is bit-identical to
/// the sequential sweep. Groups of four run check-free to keep the four
/// add chains independent; abandonment happens at group granularity
/// (a whole group is skipped only implicitly, by the min update), and
/// the leftover windows (fewer than four) are summed in full.
fn windowed_min_sum4(keys: &[usize], long: &[u8], lut: &CanberraLut) -> f64 {
    let s = keys.len();
    debug_assert!(s >= 1 && s < long.len());
    let nw = long.len() - s + 1;
    let mut best_sum = f64::INFINITY;
    let mut o = 0usize;
    while o + 4 <= nw {
        // Four shifted views of `long`: lane t sums window o + t.
        let [a0, a1, a2, a3] = equal_len_sums4(
            keys,
            &long[o..o + s],
            &long[o + 1..o + 1 + s],
            &long[o + 2..o + 2 + s],
            &long[o + 3..o + 3 + s],
            lut,
        );
        best_sum = best_sum.min(a0).min(a1).min(a2).min(a3);
        if best_sum == 0.0 {
            return 0.0;
        }
        o += 4;
    }
    while o < nw {
        let window = &long[o..o + s];
        let sum: f64 = keys
            .iter()
            .zip(window)
            .map(|(&key, &y)| lut.term_key(key, y))
            .sum();
        if sum < best_sum {
            best_sum = sum;
            if best_sum == 0.0 {
                return 0.0;
            }
        }
        o += 1;
    }
    best_sum
}

/// Minimum window *sum* of a short segment slid over a long one given
/// as LUT row keys — the transpose of [`windowed_min_sum4`], for the
/// case where the *long* side's keys are the precomputed ones. Window
/// `o` accumulates `term_key(long_keys[o + k], short[k])` left to right
/// in ascending `k`; the per-byte LUT term is symmetric bit-for-bit
/// (`|x − y| = |y − x|` exactly), so each completed sum equals the
/// scalar sweep's `Σ term(short[k], long[o + k])` bit by bit, and the
/// minimum over complete sums is order-independent. Four adjacent
/// windows accumulate concurrently, exactly as in
/// [`windowed_min_sum4`].
fn windowed_min_sum_long_keys(long_keys: &[usize], short: &[u8], lut: &CanberraLut) -> f64 {
    let s = short.len();
    debug_assert!(s >= 1 && s < long_keys.len());
    let nw = long_keys.len() - s + 1;
    let mut best_sum = f64::INFINITY;
    let mut o = 0usize;
    while o + 4 <= nw {
        // Four shifted key views of the long side: lane t sums window o + t.
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let k0 = &long_keys[o..o + s];
        let k1 = &long_keys[o + 1..o + 1 + s];
        let k2 = &long_keys[o + 2..o + 2 + s];
        let k3 = &long_keys[o + 3..o + 3 + s];
        for ((((&y, &key0), &key1), &key2), &key3) in short.iter().zip(k0).zip(k1).zip(k2).zip(k3) {
            a0 += lut.term_key(key0, y);
            a1 += lut.term_key(key1, y);
            a2 += lut.term_key(key2, y);
            a3 += lut.term_key(key3, y);
        }
        best_sum = best_sum.min(a0).min(a1).min(a2).min(a3);
        if best_sum == 0.0 {
            return 0.0;
        }
        o += 4;
    }
    while o < nw {
        let sum: f64 = long_keys[o..o + s]
            .iter()
            .zip(short)
            .map(|(&key, &y)| lut.term_key(key, y))
            .sum();
        if sum < best_sum {
            best_sum = sum;
            if best_sum == 0.0 {
                return 0.0;
            }
        }
        o += 1;
    }
    best_sum
}

/// A per-query kernel configuration: the query segment's LUT row keys,
/// the hoisted penalty, and the kernel-variant choice, computed **once
/// per query** so a scan over thousands of candidates stops redoing the
/// per-pair setup (`effective_penalty`, the `byte << 8` key shifts)
/// that [`dissimilarity_kernel`] performs on every call.
///
/// [`dist`](Self::dist) is bit-identical to
/// `dissimilarity_kernel(query, other, ..)` (or, with `swar` enabled,
/// `dissimilarity_swar`): equal-length pairs take the same strict
/// left-to-right LUT accumulation, a shorter query takes the same
/// sum-domain windowed minimum ([`windowed_min_sum4`], pinned against
/// the scalar sweep by the matrix-build tests), and a longer query
/// takes the key-transposed sweep [`windowed_min_sum_long_keys`], equal
/// bit for bit by LUT-term symmetry. Pinned against the plain kernel by
/// `query_dist_matches_kernel_bitwise`.
#[derive(Debug)]
pub struct QueryDist<'a> {
    query: &'a [u8],
    keys: Vec<usize>,
    params: DissimParams,
    penalty: f64,
    lut: &'static CanberraLut,
    swar: bool,
}

impl<'a> QueryDist<'a> {
    /// Hoists the per-query kernel setup for `query`.
    pub fn new(query: &'a [u8], params: &DissimParams, swar: bool) -> Self {
        Self {
            query,
            keys: query.iter().map(|&b| usize::from(b) << 8).collect(),
            params: *params,
            penalty: params.effective_penalty(),
            lut: CanberraLut::global(),
            swar,
        }
    }

    /// Re-targets the configuration at a new query, reusing the key
    /// buffer — for batch loops that answer many queries with one
    /// scratch allocation.
    pub fn set_query(&mut self, query: &'a [u8]) {
        self.query = query;
        self.keys.clear();
        self.keys.extend(query.iter().map(|&b| usize::from(b) << 8));
    }

    /// The query segment this configuration is targeted at.
    pub fn query(&self) -> &'a [u8] {
        self.query
    }

    /// The dissimilarity of the query to `other`; bit-identical to
    /// [`dissimilarity_kernel`] (or [`dissimilarity_swar`] when the
    /// SWAR path was requested) of the pair.
    #[inline]
    pub fn dist(&self, other: &[u8]) -> f64 {
        if self.swar {
            return dissimilarity_swar(self.query, other, &self.params, self.lut);
        }
        let lq = self.query.len();
        let lo = other.len();
        if lq.max(lo) == 0 {
            return 0.0;
        }
        if lq.min(lo) == 0 {
            return 1.0;
        }
        if lq == lo {
            let sum: f64 = self
                .keys
                .iter()
                .zip(other)
                .map(|(&key, &y)| self.lut.term_key(key, y))
                .sum();
            return sum / lq as f64;
        }
        if lq < lo {
            let best = windowed_min_sum4(&self.keys, other, self.lut) / lq as f64;
            mixed_length(lq, lo, best, self.penalty)
        } else {
            let best = windowed_min_sum_long_keys(&self.keys, other, self.lut) / lo as f64;
            mixed_length(lo, lq, best, self.penalty)
        }
    }
}

/// Fills row `i` of the condensed matrix (`row[c] = D(segments[i],
/// segments[i + 1 + c])`), walking the length buckets so every bucket's
/// column run shares one kernel configuration.
fn fill_row(
    i: usize,
    segments: &[&[u8]],
    row: &mut [f64],
    buckets: &[Bucket],
    penalty: f64,
    lut: &CanberraLut,
    key_table: &KeyTable,
) {
    let si = segments[i];
    let li = si.len();
    let keys = key_table.get(i);
    for bucket in buckets {
        // Only columns j > i belong to this row.
        let from = bucket.idxs.partition_point(|&j| j <= i);
        let cols = &bucket.idxs[from..];
        if cols.is_empty() {
            continue;
        }
        if bucket.len == li {
            if li == 0 {
                // Both empty: identical.
                for &j in cols {
                    row[j - i - 1] = 0.0;
                }
            } else {
                // Equal lengths: direct Canberra, four columns per pass.
                let lenf = li as f64;
                let mut quads = cols.chunks_exact(4);
                for q in quads.by_ref() {
                    let sums = equal_len_sums4(
                        keys,
                        segments[q[0]],
                        segments[q[1]],
                        segments[q[2]],
                        segments[q[3]],
                        lut,
                    );
                    for (t, &j) in q.iter().enumerate() {
                        row[j - i - 1] = sums[t] / lenf;
                    }
                }
                for &j in quads.remainder() {
                    row[j - i - 1] = canberra_distance_lut(si, segments[j], lut);
                }
            }
        } else if bucket.len.min(li) == 0 {
            // Empty vs non-empty: maximally dissimilar.
            for &j in cols {
                row[j - i - 1] = 1.0;
            }
        } else if li < bucket.len {
            // Row is the short side: its keys slide over each column.
            let (s, l) = (li, bucket.len);
            let lenf = s as f64;
            for &j in cols {
                let best = windowed_min_sum4(keys, segments[j], lut) / lenf;
                row[j - i - 1] = mixed_length(s, l, best, penalty);
            }
        } else {
            // Row is the long side: each column's keys slide over it.
            let (s, l) = (bucket.len, li);
            let lenf = s as f64;
            for &j in cols {
                let best = windowed_min_sum4(key_table.get(j), si, lut) / lenf;
                row[j - i - 1] = mixed_length(s, l, best, penalty);
            }
        }
    }
}

/// A reusable bucketed-kernel configuration for computing arbitrary
/// subsets of the pairwise matrix: buckets over all indices, the shared
/// key table, and the hoisted kernel constants. Built once per tiled
/// build and shared read-only across tiles and worker threads; also the
/// row-sampling probe of the large-u benchmark ladders.
pub struct PairContext<'a> {
    segments: &'a [&'a [u8]],
    buckets: Vec<Bucket>,
    key_table: KeyTable,
    penalty: f64,
    lut: &'static CanberraLut,
}

impl<'a> PairContext<'a> {
    /// Builds the shared configuration for `segments` once: length
    /// buckets, per-segment LUT row keys, and the hoisted penalty.
    pub fn new(segments: &'a [&'a [u8]], params: &DissimParams) -> Self {
        Self {
            segments,
            buckets: make_buckets(segments, 0..segments.len()),
            key_table: KeyTable::new(segments),
            penalty: params.effective_penalty(),
            lut: CanberraLut::global(),
        }
    }

    /// Fills lower-triangle row `j` (`out[i] = D(segments[i],
    /// segments[j])` for every `i < j`; `out.len()` must be `j`).
    ///
    /// Bit-identical to the entries [`fill_row`] produces for the same
    /// pairs: the per-byte LUT term is symmetric bit-for-bit
    /// (`|x − y| = |y − x|` exactly and f64 addition is commutative, so
    /// `term(x, y) == term(y, x)`), position order — and with it every
    /// partial sum — is unchanged, equal-length pairs take the same
    /// direct-Canberra path, and mixed-length pairs pick the short/long
    /// roles by length exactly as `fill_row` does, so the same
    /// `windowed_min_sum4` call is issued for the same pair. Quad-lane
    /// grouping differs, but each lane is an independent exact sum, so
    /// grouping never affects a pair's value (see the module docs).
    pub fn fill_lower_row(&self, j: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), j);
        let sj = self.segments[j];
        let lj = sj.len();
        let keys_j = self.key_table.get(j);
        let lut = self.lut;
        for bucket in &self.buckets {
            // Only rows i < j belong to this lower-triangle row.
            let to = bucket.idxs.partition_point(|&i| i < j);
            let rows = &bucket.idxs[..to];
            if rows.is_empty() {
                continue;
            }
            if bucket.len == lj {
                if lj == 0 {
                    // Both empty: identical.
                    for &i in rows {
                        out[i] = 0.0;
                    }
                } else {
                    // Equal lengths: direct Canberra, four rows per pass.
                    let lenf = lj as f64;
                    let mut quads = rows.chunks_exact(4);
                    for q in quads.by_ref() {
                        let sums = equal_len_sums4(
                            keys_j,
                            self.segments[q[0]],
                            self.segments[q[1]],
                            self.segments[q[2]],
                            self.segments[q[3]],
                            lut,
                        );
                        for (t, &i) in q.iter().enumerate() {
                            out[i] = sums[t] / lenf;
                        }
                    }
                    for &i in quads.remainder() {
                        out[i] = canberra_distance_lut(sj, self.segments[i], lut);
                    }
                }
            } else if bucket.len.min(lj) == 0 {
                // Empty vs non-empty: maximally dissimilar.
                for &i in rows {
                    out[i] = 1.0;
                }
            } else if lj < bucket.len {
                // Column segment is the short side: its keys slide over
                // each bucket row.
                let (s, l) = (lj, bucket.len);
                let lenf = s as f64;
                for &i in rows {
                    let best = windowed_min_sum4(keys_j, self.segments[i], lut) / lenf;
                    out[i] = mixed_length(s, l, best, self.penalty);
                }
            } else {
                // Column segment is the long side: each bucket row's keys
                // slide over it.
                let (s, l) = (bucket.len, lj);
                let lenf = s as f64;
                for &i in rows {
                    let best = windowed_min_sum4(self.key_table.get(i), sj, lut) / lenf;
                    out[i] = mixed_length(s, l, best, self.penalty);
                }
            }
        }
    }
}

/// Builds the condensed pairwise Canberra dissimilarity matrix directly
/// from the segment slices: length-bucketed kernels, contiguous row
/// ranges stolen dynamically over the `parkit` scheduler. Bit-identical
/// to the closure-based build over [`crate::dissimilarity`].
pub(crate) fn build_bucketed(
    segments: &[&[u8]],
    params: &DissimParams,
    threads: usize,
) -> CondensedMatrix {
    let n = segments.len();
    let penalty = params.effective_penalty();
    if n < 2 {
        return CondensedMatrix::from_raw(n, Vec::new());
    }
    let lut = CanberraLut::global();
    let buckets = make_buckets(segments, 0..n);
    let key_table = KeyTable::new(segments);
    let mut data = vec![0.0f64; n * (n - 1) / 2];
    let threads = threads.max(1).min(n - 1);
    if threads == 1 {
        for i in 0..(n - 1) {
            let row_start = condensed_index(n, i, i + 1);
            let row = &mut data[row_start..row_start + (n - i - 1)];
            fill_row(i, segments, row, &buckets, penalty, lut, &key_table);
        }
        return CondensedMatrix::from_raw(n, data);
    }

    let data_ptr = SendPtr(data.as_mut_ptr());
    parkit::for_each_chunk(threads, n - 1, 1, |rows| {
        let data_ptr = &data_ptr;
        for i in rows {
            let row_start = condensed_index(n, i, i + 1);
            // SAFETY: row i owns the condensed range [row_start,
            // row_start + n - i - 1) exclusively, and the scheduler
            // hands out each row exactly once, so the slices never
            // alias.
            let row =
                unsafe { std::slice::from_raw_parts_mut(data_ptr.0.add(row_start), n - i - 1) };
            fill_row(i, segments, row, &buckets, penalty, lut, &key_table);
        }
    });
    CondensedMatrix::from_raw(n, data)
}

/// Extends an already-built condensed matrix over the first `old_n`
/// segments to cover all of `segments`: old entries are copied verbatim
/// and only the pairs touching at least one new segment (index ≥
/// `old_n`) are computed, through the same length-bucketed kernels as
/// [`build_bucketed`].
///
/// Bit-identical to a cold [`build_bucketed`] over the full segment set:
/// every kernel entry equals the scalar [`crate::dissimilarity`] of its
/// pair regardless of bucketing or scheduling (see the module docs), so
/// the spliced matrix and the cold matrix agree entry by entry.
pub(crate) fn extend_bucketed(
    old_data: &[f64],
    old_n: usize,
    segments: &[&[u8]],
    params: &DissimParams,
    threads: usize,
) -> CondensedMatrix {
    let n = segments.len();
    assert!(old_n <= n, "extension must not shrink the segment set");
    debug_assert_eq!(old_data.len(), old_n * old_n.saturating_sub(1) / 2);
    if old_n == n {
        return CondensedMatrix::from_raw(n, old_data.to_vec());
    }
    if old_n < 2 {
        // Nothing reusable: every pair touches a new segment.
        return build_bucketed(segments, params, threads);
    }
    let penalty = params.effective_penalty();
    let lut = CanberraLut::global();

    // Buckets over the NEW indices only: every pair (i, j) with
    // j >= old_n is new, and for rows i >= old_n every column j > i is
    // >= old_n too, so new-index buckets cover exactly the missing
    // entries of every row.
    let buckets = make_buckets(segments, old_n..n);
    let key_table = KeyTable::new(segments);
    let mut data = vec![0.0f64; n * (n - 1) / 2];
    // Splice the old rows: row i of the old matrix is the contiguous
    // condensed range for pairs (i, i+1..old_n), which lands at the
    // start of new row i.
    for i in 0..old_n.saturating_sub(1) {
        let old_start = condensed_index(old_n, i, i + 1);
        let new_start = condensed_index(n, i, i + 1);
        data[new_start..new_start + (old_n - i - 1)]
            .copy_from_slice(&old_data[old_start..old_start + (old_n - i - 1)]);
    }

    let threads = threads.max(1).min(n - 1);
    if threads == 1 {
        for i in 0..(n - 1) {
            let row_start = condensed_index(n, i, i + 1);
            let row = &mut data[row_start..row_start + (n - i - 1)];
            fill_row(i, segments, row, &buckets, penalty, lut, &key_table);
        }
        return CondensedMatrix::from_raw(n, data);
    }

    let data_ptr = SendPtr(data.as_mut_ptr());
    parkit::for_each_chunk(threads, n - 1, 1, |rows| {
        let data_ptr = &data_ptr;
        for i in rows {
            let row_start = condensed_index(n, i, i + 1);
            // SAFETY: row i owns the condensed range [row_start,
            // row_start + n - i - 1) exclusively, and the scheduler
            // hands out each row exactly once, so the slices never
            // alias. fill_row only writes new-bucket columns, leaving
            // the spliced old prefix of the row untouched.
            let row =
                unsafe { std::slice::from_raw_parts_mut(data_ptr.0.add(row_start), n - i - 1) };
            fill_row(i, segments, row, &buckets, penalty, lut, &key_table);
        }
    });
    CondensedMatrix::from_raw(n, data)
}

/// A raw pointer wrapper asserting cross-thread transferability for the
/// disjoint-row-write pattern in [`build_bucketed`].
struct SendPtr(*mut f64);
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DissimParams = DissimParams {
        length_penalty: 0.59,
    };

    #[test]
    fn lut_terms_match_scalar() {
        let lut = CanberraLut::global();
        for x in [0u8, 1, 2, 127, 128, 254, 255] {
            for y in [0u8, 1, 3, 100, 200, 255] {
                let num = (f64::from(x) - f64::from(y)).abs();
                let den = f64::from(x) + f64::from(y);
                let want = if den == 0.0 { 0.0 } else { num / den };
                assert_eq!(lut.term(x, y).to_bits(), want.to_bits(), "({x}, {y})");
            }
        }
    }

    #[test]
    fn lut_distance_matches_scalar() {
        let lut = CanberraLut::global();
        let a = [0u8, 1, 255, 17, 0, 200];
        let b = [0u8, 255, 255, 16, 3, 10];
        assert_eq!(
            canberra_distance_lut(&a, &b, lut).to_bits(),
            canberra_distance(&a, &b).to_bits()
        );
        assert_eq!(canberra_distance_lut(&[], &[], lut), 0.0);
    }

    #[test]
    fn kernel_variants_match_scalar_dissimilarity() {
        let lut = CanberraLut::global();
        let cases: [(&[u8], &[u8]); 7] = [
            (b"", b""),
            (b"", b"abc"),
            (b"abc", b""),
            (b"\x01\x02\x03", b"\x01\x02\x03"),
            (b"\x10\x20\x30", b"\xff\x10\x20\x30\xff"),
            (b"\xff\x00\x7f\x80", b"\x01\x02"),
            (b"\x00", b"\x00\x00\x00\x00\x00\x00\x00"),
        ];
        for (a, b) in cases {
            let want = dissimilarity(a, b, &P).to_bits();
            assert_eq!(
                dissimilarity_lut(a, b, &P, lut).to_bits(),
                want,
                "{a:?} {b:?}"
            );
            assert_eq!(
                dissimilarity_kernel(a, b, &P, lut).to_bits(),
                want,
                "{a:?} {b:?}"
            );
        }
    }

    #[test]
    fn early_abandon_survives_adversarial_windows() {
        // A long run whose best window comes last, so every earlier
        // window must be either completed or provably abandoned.
        let lut = CanberraLut::global();
        let short = [10u8, 20, 30, 40];
        let mut long = vec![255u8; 40];
        long.extend_from_slice(&[10, 20, 30, 41]);
        let want = dissimilarity(&short, &long, &P).to_bits();
        assert_eq!(dissimilarity_kernel(&short, &long, &P, lut).to_bits(), want);
    }

    #[test]
    fn bucketed_build_matches_naive_build() {
        let segs: Vec<&[u8]> = vec![
            b"",
            b"\x01",
            b"\x02",
            b"\x01\x02",
            b"\x03\x02",
            b"\x01\x02\x03\x04",
            b"\xff\xfe\xfd",
            b"\x10\x20\x30\x40\x50\x60\x70\x80",
            b"\x00\x00",
        ];
        let naive = CondensedMatrix::build(segs.len(), |i, j| dissimilarity(segs[i], segs[j], &P));
        for threads in [1, 2, 5] {
            let fast = build_bucketed(&segs, &P, threads);
            assert_eq!(fast, naive, "threads = {threads}");
        }
    }

    #[test]
    fn bucketed_build_handles_tiny_inputs() {
        assert!(build_bucketed(&[], &P, 4).is_empty());
        let one = build_bucketed(&[b"ab".as_slice()], &P, 4);
        assert_eq!(one.len(), 1);
        assert!(one.values().is_empty());
    }

    /// Deterministic mixed-length corpus for the extension tests: many
    /// distinct lengths, repeated values, empties.
    fn corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let len = [0usize, 1, 2, 3, 4, 4, 7, 8, 12][i % 9];
                (0..len)
                    .map(|k| ((i * 31 + k * 17 + i * k) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn extension_is_bit_identical_to_cold_build() {
        let segs = corpus(37);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let cold = build_bucketed(&values, &P, 3);
        for old_n in [0usize, 1, 2, 5, 18, 36, 37] {
            let old = build_bucketed(&values[..old_n], &P, 2);
            for threads in [1, 3, 8] {
                let ext = extend_bucketed(old.values(), old_n, &values, &P, threads);
                assert_eq!(ext.len(), cold.len());
                for (k, (a, b)) in ext.values().iter().zip(cold.values()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "old_n = {old_n}, threads = {threads}, entry {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_row_context_matches_bucketed_build() {
        let segs = corpus(41);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let full = build_bucketed(&values, &P, 2);
        let ctx = PairContext::new(&values, &P);
        let mut out = vec![0.0f64; values.len()];
        for j in 0..values.len() {
            let row = &mut out[..j];
            ctx.fill_lower_row(j, row);
            for (i, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), full.get(i, j).to_bits(), "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn swar_path_matches_kernel_bitwise() {
        // Oracle check over a corpus dense in equal 8-byte runs (zero
        // padding, repeated values) and in mixed lengths, so both the
        // skip branch and the fallthrough branch are exercised.
        let lut = CanberraLut::global();
        let mut segs = corpus(64);
        segs.push(vec![0u8; 24]);
        segs.push(vec![0u8; 24]);
        segs.push(vec![7u8; 16]);
        segs.push(vec![7u8; 17]);
        let mut run: Vec<u8> = vec![42; 32];
        run[31] = 43;
        segs.push(run);
        for a in &segs {
            for b in &segs {
                let want = dissimilarity_kernel(a, b, &P, lut).to_bits();
                assert_eq!(
                    dissimilarity_swar(a, b, &P, lut).to_bits(),
                    want,
                    "{a:?} {b:?}"
                );
            }
        }
    }

    #[test]
    fn swar_distance_matches_lut_distance() {
        let lut = CanberraLut::global();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 31] {
            let a: Vec<u8> = (0..len).map(|k| (k * 37 % 256) as u8).collect();
            let mut b = a.clone();
            if len > 2 {
                b[len / 2] ^= 0x5a;
            }
            assert_eq!(
                canberra_distance_swar(&a, &b, lut).to_bits(),
                canberra_distance_lut(&a, &b, lut).to_bits(),
                "len {len}"
            );
            assert_eq!(canberra_distance_swar(&a, &a, lut), 0.0, "len {len}");
        }
    }

    #[test]
    fn query_dist_matches_kernel_bitwise() {
        // Every (query, candidate) pair over a mixed-length corpus —
        // equal-length, query-shorter and query-longer paths all hit —
        // plus empty segments for the trivial cases, against both
        // kernel variants.
        let lut = CanberraLut::global();
        let segs = corpus(40);
        for swar in [false, true] {
            let mut qd = QueryDist::new(&segs[0], &P, swar);
            for q in &segs {
                qd.set_query(q);
                for c in &segs {
                    let want = if swar {
                        dissimilarity_swar(q, c, &P, lut)
                    } else {
                        dissimilarity_kernel(q, c, &P, lut)
                    };
                    assert_eq!(
                        qd.dist(c).to_bits(),
                        want.to_bits(),
                        "swar={swar} {q:?} {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pairwise_mean_matches_matrix_mean() {
        let segs = corpus(23);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let matrix = build_bucketed(&values, &P, 2);
        assert_eq!(
            pairwise_mean(&values, &P).unwrap().to_bits(),
            matrix.mean().unwrap().to_bits()
        );
        assert_eq!(pairwise_mean(&values[..1], &P), None);
        assert_eq!(pairwise_mean(&[], &P), None);
    }

    #[test]
    #[should_panic(expected = "must not shrink")]
    fn extension_rejects_shrinking() {
        let segs = corpus(6);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let full = build_bucketed(&values, &P, 1);
        extend_bucketed(full.values(), full.len(), &values[..3], &P, 1);
    }
}
