#![warn(missing_docs)]
//! Canberra dissimilarity for byte segments and condensed pairwise
//! matrices.
//!
//! The clustering pipeline interprets every message segment as a vector
//! of byte values and compares segments with the *Canberra dissimilarity*
//! (Kleber et al., INFOCOM 2020), which extends the classic Canberra
//! distance (Lance & Williams, 1966) to vectors of different dimensions
//! by sliding the shorter vector over the longer one and penalizing the
//! non-overlap (paper §III-C).
//!
//! The O(n²) pairwise matrix build is the pipeline's dominant cost; the
//! [`kernel`] layer (byte-pair LUT, early-abandon sliding windows,
//! length-bucketed scheduling — see [`CondensedMatrix::build_segments`])
//! makes it several times faster while staying bit-identical to the
//! scalar reference [`dissimilarity`].
//!
//! # Examples
//!
//! ```
//! use dissim::{dissimilarity, DissimParams};
//!
//! let params = DissimParams::default();
//! // Identical segments have dissimilarity 0.
//! assert_eq!(dissimilarity(b"\x10\x20\x30", b"\x10\x20\x30", &params), 0.0);
//! // Same-prefix values of different length are closer than unrelated ones.
//! let near = dissimilarity(b"\x10\x20\x30\x01", b"\x10\x20\x30", &params);
//! let far = dissimilarity(b"\xff\x01\x80\x55", b"\x10\x20\x30", &params);
//! assert!(near < far);
//! ```

pub mod artifact;
pub mod canberra;
pub mod kernel;
pub mod matrix;
pub mod neighbor;
pub mod provider;
pub mod strata;
pub mod tiled;
pub mod vptree;

pub use artifact::DissimArtifact;
pub use canberra::{canberra_distance, dissimilarity, DissimParams, InvalidLengthPenalty};
pub use kernel::{CanberraLut, QueryDist};
pub use matrix::CondensedMatrix;
pub use neighbor::NeighborIndex;
pub use provider::{IndexProvider, IndexedProvider, MatrixProvider, NeighborProvider};
pub use strata::{length_lower_bound, QueryCounters, StrataIndex, StratifiedProvider, Stratum};
pub use tiled::{KnnAccumulator, KnnTable, MatrixTile, TiledMatrix};
pub use vptree::{VpForest, VpProvider, VpTree};
