//! Condensed pairwise dissimilarity matrices.
//!
//! The pipeline stores all pairwise segment dissimilarities in a matrix
//! `D` (paper §III-C). For `n` segments only the strict upper triangle is
//! kept (`n·(n−1)/2` entries); the build is parallelized over the
//! `parkit` work-stealing scheduler since it is the pipeline's dominant
//! cost (O(n²) sliding-window Canberra evaluations).

/// A symmetric zero-diagonal dissimilarity matrix in condensed form.
///
/// # Examples
///
/// ```
/// use dissim::CondensedMatrix;
///
/// let items = ["aa", "ab", "zz"];
/// let m = CondensedMatrix::build(items.len(), |i, j| {
///     if items[i] == items[j] { 0.0 } else { 1.0 }
/// });
/// assert_eq!(m.get(0, 1), 1.0);
/// assert_eq!(m.get(1, 1), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// Builds the matrix by evaluating `f(i, j)` for every pair `i < j`
    /// on the current thread.
    pub fn build(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Builds the pairwise Canberra dissimilarity matrix directly from
    /// the segment byte slices via the kernel layer ([`crate::kernel`]):
    /// byte-pair LUT, early-abandon sliding windows, and length-bucketed
    /// pair scheduling over contiguous row blocks.
    ///
    /// Bit-identical to
    /// `CondensedMatrix::build_parallel(segments.len(), threads,
    /// |i, j| dissimilarity(segments[i], segments[j], params))`
    /// but several times faster — the structure-aware entry point sees
    /// the segment lengths instead of an opaque closure.
    pub fn build_segments(
        segments: &[&[u8]],
        params: &crate::canberra::DissimParams,
        threads: usize,
    ) -> Self {
        crate::kernel::build_bucketed(segments, params, threads)
    }

    /// Wraps an already-filled condensed buffer (`data.len()` must be
    /// `n·(n−1)/2`).
    pub(crate) fn from_raw(n: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), n * n.saturating_sub(1) / 2);
        Self { n, data }
    }

    /// Checked variant of the raw constructor for deserialized buffers:
    /// `None` unless `data.len()` is exactly `n·(n−1)/2`. Used by the
    /// artifact store, where a mismatched buffer must degrade to a cache
    /// miss instead of corrupting every later index computation.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Option<Self> {
        if data.len() == n * n.saturating_sub(1) / 2 {
            Some(Self { n, data })
        } else {
            None
        }
    }

    /// Extends this matrix (built over the first `self.len()` of
    /// `segments`) to cover all of `segments`: existing condensed
    /// entries are spliced over verbatim and only pairs involving at
    /// least one appended segment are computed, through the same kernel
    /// layer as [`build_segments`](Self::build_segments).
    ///
    /// Bit-identical to a cold
    /// `CondensedMatrix::build_segments(segments, params, threads)` —
    /// the incremental warm-start path of the artifact store must never
    /// perturb a single matrix entry.
    ///
    /// # Panics
    ///
    /// Panics if `segments` has fewer entries than this matrix covers —
    /// extension can only grow the item set.
    pub fn extend_segments(
        &self,
        segments: &[&[u8]],
        params: &crate::canberra::DissimParams,
        threads: usize,
    ) -> Self {
        crate::kernel::extend_bucketed(&self.data, self.n, segments, params, threads)
    }

    /// Builds the matrix in parallel over all rows on the `parkit`
    /// work-stealing scheduler.
    ///
    /// `f` must be pure; row ranges are stolen dynamically so irregular
    /// row costs (long segments) balance across cores, and every entry
    /// is written to its own condensed slot — the result is bit-identical
    /// to [`build`](Self::build) regardless of scheduling.
    pub fn build_parallel(
        n: usize,
        threads: usize,
        f: impl Fn(usize, usize) -> f64 + Sync,
    ) -> Self {
        let threads = threads.max(1);
        if n < 2 || threads == 1 {
            return Self::build(n, f);
        }
        let total = n * (n - 1) / 2;
        let mut data = vec![0.0f64; total];
        let data_ptr = SendPtr(data.as_mut_ptr());
        // The last row has no pairs (j > i required), so n - 1 rows.
        parkit::for_each_chunk(threads, n - 1, 1, |rows| {
            let data_ptr = &data_ptr;
            for i in rows {
                let row_start = condensed_index(n, i, i + 1);
                for j in (i + 1)..n {
                    let v = f(i, j);
                    // SAFETY: each (i, j) pair maps to a unique condensed
                    // index and the scheduler hands out each row exactly
                    // once, so writes never alias.
                    unsafe {
                        *data_ptr.0.add(row_start + (j - i - 1)) = v;
                    }
                }
            }
        });
        Self { n, data }
    }

    /// Number of items (rows/columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dissimilarity between items `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.data[condensed_index(self.n, a, b)]
    }

    /// All dissimilarities from item `i` to every other item, in index
    /// order (excluding `i` itself).
    pub fn row(&self, i: usize) -> Vec<f64> {
        let mut buf = Vec::new();
        self.row_into(i, &mut buf);
        buf
    }

    /// Writes row `i` (all dissimilarities to other items, in index
    /// order, excluding `i` itself) into `buf`, clearing it first.
    ///
    /// Callers looping over rows should reuse one scratch buffer instead
    /// of allocating a fresh `Vec` per item via [`Self::row`].
    ///
    /// Walks the two condensed-triangle ranges directly: the column part
    /// (`j < i`) is a strided walk with stride `n − j − 2`, the tail
    /// (`j > i`) a contiguous copy — no per-element index arithmetic or
    /// bounds-checked [`Self::get`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds (and the matrix is non-empty).
    pub fn row_into(&self, i: usize, buf: &mut Vec<f64>) {
        buf.clear();
        if self.n == 0 {
            return;
        }
        assert!(i < self.n, "index out of bounds");
        buf.reserve(self.n - 1);
        // Column part: pairs (j, i) with j < i sit at
        // condensed_index(n, j, i), whose stride from j to j + 1 is
        // n − j − 2.
        if i > 0 {
            let mut idx = condensed_index(self.n, 0, i);
            for j in 0..i {
                buf.push(self.data[idx]);
                idx += self.n - j - 2;
            }
        }
        // Tail: pairs (i, j) with j > i are contiguous.
        if i + 1 < self.n {
            let start = condensed_index(self.n, i, i + 1);
            buf.extend_from_slice(&self.data[start..start + (self.n - i - 1)]);
        }
    }

    /// The dissimilarity of each item to its `k`-th nearest neighbor
    /// (`k >= 1`).
    ///
    /// This is the input of the ε auto-configuration: the paper builds
    /// the ECDF over exactly these values (§III-D).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or `k >= n`.
    pub fn knn_dissimilarities(&self, k: usize) -> Vec<f64> {
        assert!(k >= 1, "k must be at least 1");
        assert!(k < self.n, "k must be smaller than the item count");
        let mut row = Vec::new();
        (0..self.n)
            .map(|i| {
                self.row_into(i, &mut row);
                let (_, kth, _) = row.select_nth_unstable_by(k - 1, |a, b| {
                    a.partial_cmp(b).expect("dissimilarities are not NaN")
                });
                *kth
            })
            .collect()
    }

    /// All condensed (upper-triangle) values.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mean of all pairwise dissimilarities; `None` for fewer than two
    /// items.
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }

    /// Maximum pairwise dissimilarity; `None` for fewer than two items.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
    }
}

/// Index of pair `(i, j)` with `i < j` in the condensed upper triangle.
pub(crate) fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// A raw pointer wrapper that asserts cross-thread transferability for
/// the disjoint-write pattern in [`CondensedMatrix::build_parallel`].
struct SendPtr(*mut f64);
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> CondensedMatrix {
        // d(i, j) = |i - j| as a simple metric.
        CondensedMatrix::build(n, |i, j| (i as f64 - j as f64).abs())
    }

    #[test]
    fn condensed_indexing_is_bijective() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(seen.insert(condensed_index(n, i, j)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(*seen.iter().max().unwrap(), n * (n - 1) / 2 - 1);
    }

    #[test]
    fn get_is_symmetric_with_zero_diagonal() {
        let m = toy(5);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(1, 4), 3.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) % 100) as f64 / 100.0;
        let serial = CondensedMatrix::build(40, f);
        for threads in [2, 3, 8] {
            let par = CondensedMatrix::build_parallel(40, threads, f);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_handles_tiny_inputs() {
        let m = CondensedMatrix::build_parallel(1, 4, |_, _| 1.0);
        assert_eq!(m.len(), 1);
        assert!(m.values().is_empty());
        let empty = CondensedMatrix::build_parallel(0, 4, |_, _| 1.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn knn_returns_kth_smallest() {
        let m = toy(6);
        // For item 0, distances are 1,2,3,4,5 -> 2nd NN = 2.
        let knn2 = m.knn_dissimilarities(2);
        assert_eq!(knn2[0], 2.0);
        // For item 3 (middle), distances are 3,2,1,1,2 -> sorted 1,1,2,2,3.
        assert_eq!(knn2[3], 1.0);
        let knn1 = m.knn_dissimilarities(1);
        assert!(knn1.iter().all(|&d| d == 1.0));
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn knn_rejects_excessive_k() {
        toy(3).knn_dissimilarities(3);
    }

    #[test]
    fn row_excludes_self() {
        let m = toy(4);
        assert_eq!(m.row(2), vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn row_into_matches_per_element_reference() {
        // The pre-optimization implementation, element by element.
        fn reference_row(m: &CondensedMatrix, i: usize) -> Vec<f64> {
            (0..m.len())
                .filter(|&j| j != i)
                .map(|j| m.get(i, j))
                .collect()
        }
        for n in [1usize, 2, 3, 7, 12] {
            let m = CondensedMatrix::build(n, |i, j| ((i * 31 + j * 17) % 97) as f64 / 97.0);
            let mut buf = vec![99.0]; // must be cleared
            for i in 0..n {
                m.row_into(i, &mut buf);
                assert_eq!(buf, reference_row(&m, i), "n = {n}, i = {i}");
            }
        }
        // Empty matrix: any index yields an empty row without panicking,
        // as the per-element loop never touched the data.
        let empty = CondensedMatrix::build(0, |_, _| 0.0);
        let mut buf = vec![1.0];
        empty.row_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn row_into_rejects_out_of_bounds_index() {
        let mut buf = Vec::new();
        toy(3).row_into(3, &mut buf);
    }

    #[test]
    fn mean_and_max() {
        let m = toy(3); // pairs: 1, 2, 1
        assert!((m.mean().unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max().unwrap(), 2.0);
        let empty = toy(1);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.max(), None);
    }
}
