//! Per-item nearest-neighbor lists over a [`CondensedMatrix`].
//!
//! Every density-based stage of the pipeline asks the same two questions
//! of the dissimilarity matrix, over and over: "which items lie within ε
//! of item `i`?" (DBSCAN region queries, refinement link densities) and
//! "how far is item `i`'s k-th nearest neighbor?" (auto-configuration
//! ECDFs, OPTICS and HDBSCAN* core distances). Scanning a matrix row is
//! O(n) per query; this module answers both from neighbor lists sorted
//! by dissimilarity, built once in parallel and then binary-searched in
//! O(log n) per query.
//!
//! Sorting neighbors changes only the *order* in which the clustering
//! algorithms visit them, never the answer: DBSCAN's density-reachable
//! sets, OPTICS's min-based reachability updates and the refinement
//! medians are all invariant under neighbor permutation (see the
//! equivalence tests in `crates/cluster`).

use crate::matrix::CondensedMatrix;

/// For every item, all other items sorted by ascending dissimilarity
/// (ties broken by index, so the layout is fully deterministic).
///
/// # Examples
///
/// ```
/// use dissim::{CondensedMatrix, NeighborIndex};
///
/// let points = [0.0_f64, 0.2, 0.3, 9.0];
/// let m = CondensedMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs());
/// let index = NeighborIndex::build(&m);
/// // Neighbors of item 0 within ε = 0.5: items 1 and 2, nearest first.
/// let near: Vec<usize> = index.range(0, 0.5).iter().map(|&(_, j)| j as usize).collect();
/// assert_eq!(near, vec![1, 2]);
/// // Distance to the 2nd nearest neighbor of item 0.
/// assert_eq!(index.kth_dissimilarity(0, 2), 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborIndex {
    n: usize,
    /// Flattened rows: item `i` owns `lists[i*(n-1) .. (i+1)*(n-1)]`,
    /// each entry `(dissimilarity, neighbor)` with the neighbor index
    /// narrowed to `u32` to keep the entries at 16 bytes.
    lists: Vec<(f64, u32)>,
}

impl NeighborIndex {
    /// Builds the index from a matrix on the current thread.
    pub fn build(matrix: &CondensedMatrix) -> Self {
        Self::build_parallel(matrix, 1)
    }

    /// Builds the index from a matrix, handing row ranges to `threads`
    /// workers on the `parkit` work-stealing scheduler. Each row is
    /// sorted independently into its own disjoint slot, so the result is
    /// bit-identical to the serial build regardless of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the matrix covers more than `u32::MAX` items.
    pub fn build_parallel(matrix: &CondensedMatrix, threads: usize) -> Self {
        let n = matrix.len();
        assert!(
            n <= u32::MAX as usize,
            "too many items for a u32 neighbor index"
        );
        let row_len = n.saturating_sub(1);
        let mut lists = vec![(0.0f64, 0u32); n * row_len];
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 {
            for (i, row) in lists.chunks_mut(row_len.max(1)).enumerate().take(n) {
                fill_row(matrix, i, row);
            }
            return Self { n, lists };
        }
        let lists_ptr = SendRowPtr(lists.as_mut_ptr());
        parkit::for_each_chunk(threads, n, 1, |rows| {
            let lists_ptr = &lists_ptr;
            for i in rows {
                // SAFETY: row `i` is the half-open range
                // [i*row_len, (i+1)*row_len) of the allocation above;
                // rows are disjoint and the scheduler hands out each row
                // exactly once, so writes never alias.
                let row = unsafe {
                    std::slice::from_raw_parts_mut(lists_ptr.0.add(i * row_len), row_len)
                };
                fill_row(matrix, i, row);
            }
        });
        Self { n, lists }
    }

    /// The flattened sorted neighbor lists (item `i` owns entries
    /// `i·(n−1) .. (i+1)·(n−1)`), for persistence by the artifact store.
    pub fn flat_lists(&self) -> &[(f64, u32)] {
        &self.lists
    }

    /// Rebuilds an index from flattened lists previously obtained via
    /// [`flat_lists`](Self::flat_lists): `None` unless `lists.len()` is
    /// exactly `n·(n−1)`. The entries are trusted to be sorted — the
    /// artifact store guards them with a whole-file checksum, and a
    /// mismatched length must degrade to a cache miss, never corrupt
    /// row slicing.
    pub fn from_flat_lists(n: usize, lists: Vec<(f64, u32)>) -> Option<Self> {
        if lists.len() == n * n.saturating_sub(1) {
            Some(Self { n, lists })
        } else {
            None
        }
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All neighbors of item `i` (every other item), nearest first.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn neighbors(&self, i: usize) -> &[(f64, u32)] {
        assert!(i < self.n, "index out of bounds");
        let row_len = self.n - 1;
        &self.lists[i * row_len..(i + 1) * row_len]
    }

    /// The ε-region of item `i`: all neighbors with dissimilarity at
    /// most `eps`, nearest first (item `i` itself excluded). Resolved by
    /// binary search over the sorted neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn range(&self, i: usize, eps: f64) -> &[(f64, u32)] {
        let row = self.neighbors(i);
        let end = row.partition_point(|&(d, _)| d <= eps);
        &row[..end]
    }

    /// The dissimilarity of item `i` to its `k`-th nearest neighbor.
    ///
    /// `k` is clamped to `[1, n − 1]`, so callers never need to
    /// pre-clamp against the item count: `k = 0` reads the nearest
    /// neighbor, `k >= n` reads the farthest. An item with no neighbors
    /// at all (a single-segment trace) reports `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn kth_dissimilarity(&self, i: usize, k: usize) -> f64 {
        let row = self.neighbors(i);
        if row.is_empty() {
            return f64::INFINITY;
        }
        let k = k.clamp(1, row.len());
        row[k - 1].0
    }

    /// The dissimilarity of each item to its `k`-th nearest neighbor —
    /// the same values as [`CondensedMatrix::knn_dissimilarities`], read
    /// directly off the sorted lists, with `k` clamped exactly as in
    /// [`kth_dissimilarity`](Self::kth_dissimilarity).
    pub fn knn_dissimilarities(&self, k: usize) -> Vec<f64> {
        (0..self.n).map(|i| self.kth_dissimilarity(i, k)).collect()
    }
}

/// Fills item `i`'s neighbor list and sorts it by `(dissimilarity, index)`.
fn fill_row(matrix: &CondensedMatrix, i: usize, row: &mut [(f64, u32)]) {
    let n = matrix.len();
    if n < 2 {
        return;
    }
    let mut w = 0;
    for j in 0..n {
        if j != i {
            row[w] = (matrix.get(i, j), j as u32);
            w += 1;
        }
    }
    row.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("dissimilarities are not NaN")
            .then_with(|| a.1.cmp(&b.1))
    });
}

/// A raw pointer wrapper that asserts cross-thread transferability for
/// the disjoint-row-write pattern in [`NeighborIndex::build_parallel`].
struct SendRowPtr(*mut (f64, u32));
unsafe impl Sync for SendRowPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> CondensedMatrix {
        CondensedMatrix::build(n, |i, j| (i as f64 - j as f64).abs())
    }

    #[test]
    fn neighbors_are_sorted_and_complete() {
        let m = toy(6);
        let idx = NeighborIndex::build(&m);
        for i in 0..6 {
            let nb = idx.neighbors(i);
            assert_eq!(nb.len(), 5);
            assert!(nb.windows(2).all(|w| w[0] <= w[1]));
            let mut seen: Vec<u32> = nb.iter().map(|&(_, j)| j).collect();
            seen.sort_unstable();
            let expected: Vec<u32> = (0..6).filter(|&j| j != i as u32).collect();
            assert_eq!(seen, expected);
        }
    }

    #[test]
    fn range_matches_matrix_scan() {
        let f = |i: usize, j: usize| ((i * 13 + j * 7) % 23) as f64 / 10.0;
        let m = CondensedMatrix::build(15, f);
        let idx = NeighborIndex::build(&m);
        for i in 0..15 {
            for eps in [0.0, 0.35, 1.1, 2.3] {
                let mut from_index: Vec<usize> =
                    idx.range(i, eps).iter().map(|&(_, j)| j as usize).collect();
                from_index.sort_unstable();
                let brute: Vec<usize> = (0..15).filter(|&j| j != i && m.get(i, j) <= eps).collect();
                assert_eq!(from_index, brute, "item {i}, eps {eps}");
            }
        }
    }

    #[test]
    fn kth_matches_matrix_knn() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) % 101) as f64 / 50.0;
        let m = CondensedMatrix::build(20, f);
        let idx = NeighborIndex::build(&m);
        for k in 1..20 {
            assert_eq!(
                idx.knn_dissimilarities(k),
                m.knn_dissimilarities(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) % 100) as f64 / 100.0;
        let m = CondensedMatrix::build(40, f);
        let serial = NeighborIndex::build(&m);
        for threads in [2, 3, 8] {
            assert_eq!(
                serial,
                NeighborIndex::build_parallel(&m, threads),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn ties_break_by_index() {
        // All pairs equidistant: neighbor order must be by index.
        let m = CondensedMatrix::build(5, |_, _| 1.0);
        let idx = NeighborIndex::build(&m);
        let order: Vec<u32> = idx.neighbors(2).iter().map(|&(_, j)| j).collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn tiny_inputs() {
        let empty = NeighborIndex::build(&toy(0));
        assert!(empty.is_empty());
        let one = NeighborIndex::build_parallel(&toy(1), 4);
        assert_eq!(one.len(), 1);
        assert!(one.neighbors(0).is_empty());
        assert!(one.range(0, 10.0).is_empty());
    }

    #[test]
    fn kth_clamps_excessive_k() {
        // k >= n clamps to the farthest neighbor; k = 0 to the nearest.
        let idx = NeighborIndex::build(&toy(3));
        assert_eq!(idx.kth_dissimilarity(0, 3), 2.0);
        assert_eq!(idx.kth_dissimilarity(0, usize::MAX), 2.0);
        assert_eq!(idx.kth_dissimilarity(0, 0), 1.0);
        assert_eq!(idx.knn_dissimilarities(99), vec![2.0, 1.0, 2.0]);
    }

    #[test]
    fn kth_on_single_item_trace_is_infinite() {
        let idx = NeighborIndex::build(&toy(1));
        assert_eq!(idx.kth_dissimilarity(0, 1), f64::INFINITY);
        assert_eq!(idx.knn_dissimilarities(1), vec![f64::INFINITY]);
    }

    #[test]
    fn kth_with_duplicate_zero_distance_segments() {
        // Items 0..3 mutually identical (distance 0), item 3 far away:
        // ties at 0.0 break by index and clamping still lands on the
        // farthest entry.
        let m = CondensedMatrix::build(4, |i, j| if i < 3 && j < 3 { 0.0 } else { 5.0 });
        let idx = NeighborIndex::build(&m);
        assert_eq!(idx.kth_dissimilarity(0, 1), 0.0);
        assert_eq!(idx.kth_dissimilarity(0, 2), 0.0);
        assert_eq!(idx.kth_dissimilarity(0, 3), 5.0);
        assert_eq!(idx.kth_dissimilarity(0, 17), 5.0);
        let order: Vec<u32> = idx.neighbors(0).iter().map(|&(_, j)| j).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
