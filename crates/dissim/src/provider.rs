//! Backend-agnostic neighbor queries: the [`NeighborProvider`] trait.
//!
//! Every density-based consumer of the dissimilarity matrix asks the
//! same three questions — "which items lie within ε of item `i`?"
//! (DBSCAN region queries, OPTICS expansion, refinement link
//! densities), "how far is item `i`'s k-th nearest neighbor?"
//! (auto-configuration ECDFs, core distances) and "how far apart are
//! items `i` and `j`?" (mutual reachability, cluster statistics). The
//! trait decouples those questions from *how* the answers are produced,
//! so the clustering stack can run against a full condensed matrix, a
//! presorted neighbor index, or a triangle-inequality-pruned
//! vantage-point forest ([`crate::vptree`]) without materializing the
//! O(u²) triangle.
//!
//! **Bit-identity contract.** Whatever the backend, the *dissimilarity
//! values* a provider reports must be bit-identical to the scalar
//! reference [`crate::dissimilarity`] of the pair: ε auto-configuration
//! and DBSCAN compare raw values against thresholds, so a 1-ULP
//! perturbation can cascade into a structurally different clustering
//! (see `crate::kernel`). Region *emission order* may differ between
//! backends (documented per implementation); every indexed backend
//! emits ascending `(dissimilarity, index)` so order-sensitive border
//! assignment in DBSCAN agrees across them.
//!
//! **Batched queries.** The per-point methods answer one query at a
//! time on the calling thread; the `*_batch` methods answer a whole
//! query slice at once, fanning the points out over the `parkit`
//! work-stealing pool. Each query writes into its own disjoint result
//! slot, so batch answers are bit-identical to the scalar calls in
//! query order no matter how the scheduler interleaves workers — the
//! batch API is a throughput knob, never a result knob. The default
//! implementations already run each backend's native per-point kernel
//! (a matrix row sweep, an index binary search, a pruned tree search)
//! in parallel; backends with reusable per-worker scratch (the
//! vantage-point forest) override them.

use crate::matrix::CondensedMatrix;
use crate::neighbor::NeighborIndex;

/// Minimum queries per stolen work chunk in the batch fan-out: small
/// enough that modest batches still spread across workers, large enough
/// that the scheduler's per-chunk overhead stays invisible next to even
/// the cheapest (binary-search) query kernel.
pub(crate) const BATCH_MIN_CHUNK: usize = 8;

/// A raw pointer wrapper asserting cross-thread shareability for the
/// disjoint-slot-write pattern of the batch queries: slot `i` is
/// written by exactly one worker (the one that received query `i` from
/// the scheduler), so writes never alias.
pub(crate) struct SendSlotPtr<T>(pub(crate) *mut T);
unsafe impl<T> Sync for SendSlotPtr<T> {}

/// Fans `count` region queries out over `threads` workers, each query
/// writing its own result vector. `fill(qi, out)` must clear and fill
/// `out` for query `qi` (the scalar `neighbors_within` contract).
pub(crate) fn fan_out_regions<F>(threads: usize, count: usize, fill: F) -> Vec<Vec<(f64, u32)>>
where
    F: Fn(usize, &mut Vec<(f64, u32)>) + Sync,
{
    let mut results: Vec<Vec<(f64, u32)>> = vec![Vec::new(); count];
    if threads <= 1 || count < 2 {
        for (qi, slot) in results.iter_mut().enumerate() {
            fill(qi, slot);
        }
        return results;
    }
    let slots = SendSlotPtr(results.as_mut_ptr());
    parkit::for_each_chunk(threads, count, BATCH_MIN_CHUNK, |queries| {
        let slots = &slots;
        for qi in queries {
            // SAFETY: slot `qi` belongs to query `qi` alone and the
            // scheduler hands out each query exactly once, so no two
            // workers ever write the same slot.
            let out = unsafe { &mut *slots.0.add(qi) };
            fill(qi, out);
        }
    });
    results
}

/// Fans `count` scalar-valued queries out over `threads` workers into a
/// dense result vector (slot `qi` = `eval(qi)`).
pub(crate) fn fan_out_scalars<F>(threads: usize, count: usize, eval: F) -> Vec<f64>
where
    F: Fn(usize) -> f64 + Sync,
{
    let mut results = vec![0.0f64; count];
    if threads <= 1 || count < 2 {
        for (qi, slot) in results.iter_mut().enumerate() {
            *slot = eval(qi);
        }
        return results;
    }
    let slots = SendSlotPtr(results.as_mut_ptr());
    parkit::for_each_chunk(threads, count, BATCH_MIN_CHUNK, |queries| {
        let slots = &slots;
        for qi in queries {
            // SAFETY: disjoint slots, each handed out exactly once.
            unsafe { *slots.0.add(qi) = eval(qi) };
        }
    });
    results
}

/// Answers ε-range, k-NN and pair queries over one item set.
///
/// Queries take `&self` so parallel consumers can fan items out across
/// threads against a shared provider (`P: Sync`).
pub trait NeighborProvider {
    /// Number of items covered.
    fn len(&self) -> usize;

    /// Whether the provider covers zero items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends every neighbor of item `i` with dissimilarity at most
    /// `eps` to `out` as `(dissimilarity, neighbor)` pairs, the item
    /// itself excluded. `out` is cleared first. Emission order is
    /// deterministic per backend; indexed backends emit ascending
    /// `(dissimilarity, index)`.
    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>);

    /// The dissimilarity of item `i` to its `k`-th nearest neighbor.
    ///
    /// `k` is clamped to `[1, len − 1]`; an item with no neighbors
    /// (a provider over fewer than two items) reports `f64::INFINITY`.
    fn knn(&self, i: usize, k: usize) -> f64;

    /// The dissimilarity between items `i` and `j` (0 on the diagonal).
    fn pair(&self, i: usize, j: usize) -> f64;

    /// The dissimilarity of each item to its `k`-th nearest neighbor —
    /// the vector Algorithm 1 builds its ECDFs over.
    fn knn_dissimilarities(&self, k: usize) -> Vec<f64> {
        (0..self.len()).map(|i| self.knn(i, k)).collect()
    }

    /// Answers one ε-range query per entry of `queries` at once,
    /// fanning the points out over `threads` workers on the `parkit`
    /// pool. Slot `qi` of the result holds exactly what
    /// [`neighbors_within`](Self::neighbors_within)`(queries[qi], eps,
    /// ..)` would have produced — same values, same emission order —
    /// regardless of thread count or work-stealing schedule.
    fn neighbors_within_batch(
        &self,
        queries: &[usize],
        eps: f64,
        threads: usize,
    ) -> Vec<Vec<(f64, u32)>>
    where
        Self: Sync,
    {
        fan_out_regions(threads, queries.len(), |qi, out| {
            self.neighbors_within(queries[qi], eps, out);
        })
    }

    /// Answers one k-NN query per entry of `queries` at once on
    /// `threads` workers: slot `qi` holds exactly
    /// [`knn`](Self::knn)`(queries[qi], k)`.
    fn knn_batch(&self, queries: &[usize], k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        fan_out_scalars(threads, queries.len(), |qi| self.knn(queries[qi], k))
    }

    /// The parallel twin of
    /// [`knn_dissimilarities`](Self::knn_dissimilarities): the k-NN
    /// dissimilarity of *every* item, computed on `threads` workers
    /// without materializing a query-index list.
    fn knn_dissimilarities_parallel(&self, k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        fan_out_scalars(threads, self.len(), |i| self.knn(i, k))
    }
}

/// The row-scan provider over a bare [`CondensedMatrix`]: the oracle
/// every other backend is pinned against.
///
/// Region queries emit in *index* order (the historical matrix-scan
/// emission order of the pre-trait clustering entry points); k-NN
/// queries select the order statistic off a row scan, exactly as
/// [`CondensedMatrix::knn_dissimilarities`] does.
#[derive(Debug, Clone, Copy)]
pub struct MatrixProvider<'a> {
    matrix: &'a CondensedMatrix,
}

impl<'a> MatrixProvider<'a> {
    /// Wraps a condensed matrix.
    pub fn new(matrix: &'a CondensedMatrix) -> Self {
        Self { matrix }
    }
}

impl NeighborProvider for MatrixProvider<'_> {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>) {
        out.clear();
        let n = self.matrix.len();
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = self.matrix.get(i, j);
            if d <= eps {
                out.push((d, j as u32));
            }
        }
    }

    fn knn(&self, i: usize, k: usize) -> f64 {
        let n = self.matrix.len();
        if n < 2 {
            return f64::INFINITY;
        }
        let k = k.clamp(1, n - 1);
        let mut row = self.matrix.row(i);
        let (_, kth, _) = row.select_nth_unstable_by(k - 1, |a, b| {
            a.partial_cmp(b).expect("dissimilarities are not NaN")
        });
        *kth
    }

    fn pair(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }
}

/// A provider over a bare presorted [`NeighborIndex`].
///
/// Region and k-NN queries are O(log n) binary searches / direct reads;
/// [`pair`](NeighborProvider::pair) has no O(1) path (the lists are
/// sorted by dissimilarity, not by index) and degrades to a row scan —
/// use [`IndexedProvider`] when pair lookups sit on a hot path.
#[derive(Debug, Clone, Copy)]
pub struct IndexProvider<'a> {
    index: &'a NeighborIndex,
}

impl<'a> IndexProvider<'a> {
    /// Wraps a neighbor index.
    pub fn new(index: &'a NeighborIndex) -> Self {
        Self { index }
    }
}

impl NeighborProvider for IndexProvider<'_> {
    fn len(&self) -> usize {
        self.index.len()
    }

    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>) {
        out.clear();
        out.extend_from_slice(self.index.range(i, eps));
    }

    fn knn(&self, i: usize, k: usize) -> f64 {
        self.index.kth_dissimilarity(i, k)
    }

    fn pair(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.index
            .neighbors(i)
            .iter()
            .find(|&&(_, nb)| nb as usize == j)
            .map(|&(d, _)| d)
            .expect("j is a neighbor of i in a complete index")
    }
}

/// The matrix + index provider: sorted `(dissimilarity, index)` region
/// emission off the index, O(1) pair lookups off the matrix. This is
/// the session's default backend.
#[derive(Debug, Clone, Copy)]
pub struct IndexedProvider<'a> {
    matrix: &'a CondensedMatrix,
    index: &'a NeighborIndex,
}

impl<'a> IndexedProvider<'a> {
    /// Pairs a matrix with its neighbor index.
    ///
    /// # Panics
    ///
    /// Panics if the two cover different item counts.
    pub fn new(matrix: &'a CondensedMatrix, index: &'a NeighborIndex) -> Self {
        assert_eq!(
            matrix.len(),
            index.len(),
            "matrix and index must cover the same items"
        );
        Self { matrix, index }
    }
}

impl NeighborProvider for IndexedProvider<'_> {
    fn len(&self) -> usize {
        self.matrix.len()
    }

    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>) {
        out.clear();
        out.extend_from_slice(self.index.range(i, eps));
    }

    fn knn(&self, i: usize, k: usize) -> f64 {
        self.index.kth_dissimilarity(i, k)
    }

    fn pair(&self, i: usize, j: usize) -> f64 {
        self.matrix.get(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> CondensedMatrix {
        CondensedMatrix::build(n, |i, j| ((i * 13 + j * 7) % 23) as f64 / 10.0)
    }

    #[test]
    fn matrix_and_indexed_providers_agree() {
        let m = toy(15);
        let idx = NeighborIndex::build(&m);
        let mp = MatrixProvider::new(&m);
        let ip = IndexedProvider::new(&m, &idx);
        let bp = IndexProvider::new(&idx);
        assert_eq!(mp.len(), 15);
        assert_eq!(ip.len(), 15);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..15 {
            for eps in [0.0, 0.35, 1.1, 2.3] {
                mp.neighbors_within(i, eps, &mut a);
                ip.neighbors_within(i, eps, &mut b);
                // Same set (order differs: index vs (d, index)).
                let mut sa = a.clone();
                sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
                let mut sb = b.clone();
                sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
                assert_eq!(sa, sb, "item {i}, eps {eps}");
                // Indexed emission is ascending (d, index).
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
                let mut c = Vec::new();
                bp.neighbors_within(i, eps, &mut c);
                assert_eq!(b, c);
            }
            for k in [1usize, 3, 14, 20, usize::MAX] {
                let want = ip.knn(i, k);
                assert_eq!(mp.knn(i, k).to_bits(), want.to_bits(), "item {i}, k {k}");
                assert_eq!(bp.knn(i, k).to_bits(), want.to_bits(), "item {i}, k {k}");
            }
            for j in 0..15 {
                assert_eq!(mp.pair(i, j), ip.pair(i, j));
                assert_eq!(mp.pair(i, j), bp.pair(i, j));
            }
        }
    }

    #[test]
    fn batch_queries_match_scalar_bitwise() {
        let m = toy(23);
        let idx = NeighborIndex::build(&m);
        let mp = MatrixProvider::new(&m);
        let ip = IndexedProvider::new(&m, &idx);
        let queries: Vec<usize> = (0..23).rev().chain([0, 11, 11]).collect();
        for threads in [1usize, 4] {
            for eps in [0.0, 0.35, 1.1] {
                let batches = ip.neighbors_within_batch(&queries, eps, threads);
                assert_eq!(batches.len(), queries.len());
                let mut want = Vec::new();
                for (&q, got) in queries.iter().zip(&batches) {
                    ip.neighbors_within(q, eps, &mut want);
                    assert_eq!(got, &want, "query {q}, eps {eps}, threads {threads}");
                }
            }
            for k in [1usize, 3, 22] {
                let got = mp.knn_batch(&queries, k, threads);
                for (&q, d) in queries.iter().zip(&got) {
                    assert_eq!(d.to_bits(), mp.knn(q, k).to_bits(), "query {q}, k {k}");
                }
                let all = ip.knn_dissimilarities_parallel(k, threads);
                assert_eq!(
                    all.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    ip.knn_dissimilarities(k)
                        .iter()
                        .map(|d| d.to_bits())
                        .collect::<Vec<_>>(),
                    "k {k}, threads {threads}"
                );
            }
        }
        // Empty batches stay empty on every path.
        assert!(ip.neighbors_within_batch(&[], 1.0, 4).is_empty());
        assert!(ip.knn_batch(&[], 1, 4).is_empty());
    }

    #[test]
    fn tiny_providers_report_infinite_knn() {
        let m = toy(1);
        let idx = NeighborIndex::build(&m);
        let mp = MatrixProvider::new(&m);
        let ip = IndexedProvider::new(&m, &idx);
        assert_eq!(mp.knn(0, 1), f64::INFINITY);
        assert_eq!(ip.knn(0, 1), f64::INFINITY);
        let mut out = vec![(0.0, 0u32)];
        mp.neighbors_within(0, 10.0, &mut out);
        assert!(out.is_empty());
    }
}
