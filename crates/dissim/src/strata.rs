//! Length-stratified neighbor search for mixed-length corpora.
//!
//! The penalized Canberra dissimilarity is a true metric only between
//! equal-length segments; on a mixed-length corpus the triangle
//! inequality fails and [`crate::vptree::metric_eligible`] forces the
//! vantage-point forest into an exact O(u²)-per-query linear fallback.
//! This module restores pruning without giving up exactness by
//! exploiting the structure of the mixed-length formula itself:
//!
//! 1. **Stratification.** Values are partitioned by exact segment
//!    length. Within a stratum every pair is equal-length, so the
//!    dissimilarity restricted to the stratum is the plain normalized
//!    Canberra distance — a metric — and the existing deterministic
//!    [`VpForest`] applies unchanged (built over the stratum-local
//!    index space).
//!
//! 2. **Penalty lower bound.** For `|s| < |t|` the paper's formula is
//!    `D(s,t) = (|s|·min_o c̄(s, t[o..]) + (|t|−|s|)·p) / |t|`, and the
//!    windowed Canberra term is non-negative, so
//!    `D(s,t) ≥ (|t|−|s|)·p / |t|` — a bound that depends only on the
//!    two *lengths*. [`length_lower_bound`] computes it with exactly
//!    the kernel's own sub-expression ordering (`fl(fl(excess·p)/l)`),
//!    which makes the bound sound *bitwise*: the kernel's numerator is
//!    `fl(fl(overlap·best) + fl(excess·p)) ≥ fl(excess·p)` (adding a
//!    non-negative term and rounding to nearest never moves below the
//!    representable addend) and rounded division by the positive `|t|`
//!    is monotone. One bound per (query length, stratum length) pair
//!    lets whole strata be skipped when the bound already exceeds the
//!    range radius or the current k-th-best distance.
//!
//! 3. **LAESA pivots.** Inside a foreign stratum the query is *not* a
//!    member and the mixed-length triangle inequality is unavailable,
//!    but a one-sided bound survives: for pivots `p` and candidates
//!    `x` of common length `L`, `D(q,x) ≥ D(q,p) − d(p,x)` where `d`
//!    is the in-stratum metric. (Proof: each window of the longer side
//!    satisfies the equal-length triangle inequality against the
//!    matching window of `p`, a window mean is at most `L/min(|q|,L)`
//!    times the full-string mean, and the penalty terms coincide.)
//!    Each stratum precomputes `d(p, ·)` rows for its first
//!    [`DEFAULT_PIVOTS`] items, so after `m` exact query–pivot
//!    evaluations every remaining candidate can be screened with a
//!    subtraction before the kernel is touched. The reverse difference
//!    `d(p,x) − D(q,p)` is *not* a valid lower bound across lengths
//!    and is never used.
//!
//! Pruning only ever decides which candidates are *visited*; every
//! emitted distance comes from the exact kernel, every bound is padded
//! by [`PRUNE_SLACK`], and results are emitted in the oracle's
//! `(dissimilarity, index)` order — so answers are bit-identical to
//! the linear fallback (pinned by the oracle tests here and the
//! session-equivalence suite).
//!
//! The index persists through `crates/store` under `Kind::STRATA` with
//! the same chained-prefix-digest keys the tiles and forests use, and
//! [`StrataIndex::extend_from`] reuses complete chunk trees and pivot
//! rows verbatim on growth — appended values only ever append to a
//! stratum, so the per-stratum local index spaces are append-stable.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use crate::canberra::DissimParams;
use crate::kernel::{dissimilarity_kernel, dissimilarity_swar, CanberraLut, QueryDist};
use crate::provider::{NeighborProvider, SendSlotPtr, BATCH_MIN_CHUNK};
use crate::vptree::{Cand, Fnv64, VpForest, NO_NODE, PRUNE_SLACK};

/// Pivots per stratum for the LAESA screen: enough to give several
/// independent chances at a pruning bound, few enough that the
/// per-stratum query overhead (`m` exact evaluations) stays trivial.
pub const DEFAULT_PIVOTS: usize = 8;

/// A stratum must be comfortably larger than its pivot count before
/// the LAESA screen pays for the `m` query–pivot evaluations; smaller
/// strata are scanned directly (still guarded by the length bound).
const MIN_LAESA_GAIN: usize = 2;

/// The penalty-derived lower bound on the dissimilarity of any two
/// segments with lengths `la` and `lb`, from the `DissimParams` length
/// penalty alone.
///
/// Bitwise sound against [`crate::dissimilarity`] and the kernel
/// ladder: computed as `fl(fl((l−s)·p) / l)`, exactly the penalty
/// sub-expression of the kernel's `mixed_length` combine, whose full
/// numerator only adds a non-negative term (see the module docs for
/// the rounding argument). Equal lengths bound to 0; one empty side
/// bounds to exactly 1 (the kernel's hard-coded answer).
pub fn length_lower_bound(la: usize, lb: usize, params: &DissimParams) -> f64 {
    let (s, l) = if la <= lb { (la, lb) } else { (lb, la) };
    if s == l {
        return 0.0;
    }
    if s == 0 {
        return 1.0;
    }
    ((l - s) as f64 * params.effective_penalty()) / l as f64
}

/// Shared query-work counters: exact kernel evaluations performed,
/// candidates skipped by a pruning bound, and whole strata skipped by
/// the length bound. Per-query tallies are accumulated locally and
/// flushed once per query, so the totals are deterministic for a given
/// query set regardless of thread count or scheduling.
#[derive(Debug, Default)]
pub struct QueryCounters {
    kernel_evals: AtomicU64,
    pruned_candidates: AtomicU64,
    strata_skipped: AtomicU64,
}

impl QueryCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact kernel evaluations performed by queries so far.
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals.load(AtomicOrdering::Relaxed)
    }

    /// Candidates excluded by a pruning bound without a kernel call.
    pub fn pruned_candidates(&self) -> u64 {
        self.pruned_candidates.load(AtomicOrdering::Relaxed)
    }

    /// Whole strata skipped by the length lower bound.
    pub fn strata_skipped(&self) -> u64 {
        self.strata_skipped.load(AtomicOrdering::Relaxed)
    }

    /// `(kernel_evals, pruned_candidates, strata_skipped)` at once.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.kernel_evals(),
            self.pruned_candidates(),
            self.strata_skipped(),
        )
    }

    fn flush(&self, local: &LocalCounters) {
        self.kernel_evals
            .fetch_add(local.evals, AtomicOrdering::Relaxed);
        self.pruned_candidates
            .fetch_add(local.pruned, AtomicOrdering::Relaxed);
        self.strata_skipped
            .fetch_add(local.skipped, AtomicOrdering::Relaxed);
    }
}

/// Per-query tallies, flushed to the shared [`QueryCounters`] once at
/// query end.
#[derive(Debug, Default)]
struct LocalCounters {
    evals: u64,
    pruned: u64,
    skipped: u64,
}

/// One length class of the corpus: the global indices of its members
/// (ascending), a [`VpForest`] over the stratum-local index space, and
/// the LAESA pivot rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Stratum {
    len: usize,
    items: Vec<u32>,
    forest: VpForest,
    /// `m × size` row-major: `pivot_rows[p * size + x]` is the
    /// in-stratum metric distance of local pivot `p` (local index `p`)
    /// to local item `x`, with `m = min(DEFAULT_PIVOTS, size)`.
    pivot_rows: Vec<f64>,
}

impl Stratum {
    fn build(
        values: &[&[u8]],
        params: &DissimParams,
        chunk: usize,
        len: usize,
        items: Vec<u32>,
    ) -> Self {
        let local: Vec<&[u8]> = items.iter().map(|&g| values[g as usize]).collect();
        let forest = VpForest::build(&local, params, chunk);
        let m = DEFAULT_PIVOTS.min(local.len());
        let lut = CanberraLut::global();
        let mut pivot_rows = Vec::with_capacity(m * local.len());
        for p in 0..m {
            for &x in &local {
                pivot_rows.push(dissimilarity_kernel(local[p], x, params, lut));
            }
        }
        Self {
            len,
            items,
            forest,
            pivot_rows,
        }
    }

    /// Reassembles a stratum from persisted parts; `None` unless the
    /// shapes agree (forest over exactly the member count, pivot rows
    /// `min(DEFAULT_PIVOTS, size) × size` and NaN-free, members
    /// strictly ascending).
    pub fn from_parts(
        len: usize,
        items: Vec<u32>,
        forest: VpForest,
        pivot_rows: Vec<f64>,
    ) -> Option<Self> {
        if forest.len() != items.len() {
            return None;
        }
        if !items.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let m = DEFAULT_PIVOTS.min(items.len());
        if pivot_rows.len() != m * items.len() || pivot_rows.iter().any(|d| d.is_nan()) {
            return None;
        }
        Some(Self {
            len,
            items,
            forest,
            pivot_rows,
        })
    }

    /// The segment length shared by every member.
    pub fn value_len(&self) -> usize {
        self.len
    }

    /// Global indices of the members, ascending.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// The stratum-local vantage-point forest.
    pub fn forest(&self) -> &VpForest {
        &self.forest
    }

    /// The LAESA pivot rows, `m × size` row-major.
    pub fn pivot_rows(&self) -> &[f64] {
        &self.pivot_rows
    }

    fn size(&self) -> usize {
        self.items.len()
    }

    fn pivot_count(&self) -> usize {
        DEFAULT_PIVOTS.min(self.items.len())
    }
}

/// The length-stratified index over one corpus: strata in ascending
/// length order, each with its local forest and pivot rows.
#[derive(Debug, Clone, PartialEq)]
pub struct StrataIndex {
    n: usize,
    chunk: usize,
    strata: Vec<Stratum>,
    checksum: u64,
}

impl StrataIndex {
    /// Builds the index for `values` with `chunk` items per local
    /// chunk tree. Fully deterministic: the strata are the distinct
    /// lengths in ascending order, members keep ascending global
    /// order, and the forests and pivot rows are the deterministic
    /// kernel values.
    ///
    /// # Panics
    ///
    /// Panics if the item count exceeds `u32::MAX`.
    pub fn build(values: &[&[u8]], params: &DissimParams, chunk: usize) -> Self {
        assert!(values.len() <= u32::MAX as usize, "too many items for u32");
        let chunk = chunk.max(1);
        let mut groups: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (i, v) in values.iter().enumerate() {
            groups.entry(v.len()).or_default().push(i as u32);
        }
        let strata = groups
            .into_iter()
            .map(|(len, items)| Stratum::build(values, params, chunk, len, items))
            .collect();
        let mut index = Self {
            n: values.len(),
            chunk,
            strata,
            checksum: 0,
        };
        index.checksum = index.compute_checksum();
        index
    }

    /// Rebuilds the index for a grown corpus, reusing `prev` wherever
    /// the growth contract holds: appended values only append members
    /// to a stratum, so a previous stratum whose member list is a
    /// prefix of the new one contributes its complete chunk trees and
    /// its pivot rows verbatim (extended by the new columns). The
    /// result is bit-identical to a cold [`build`](Self::build) of the
    /// full corpus.
    pub fn extend_from(prev: &Self, values: &[&[u8]], params: &DissimParams) -> Self {
        assert!(values.len() <= u32::MAX as usize, "too many items for u32");
        assert!(values.len() >= prev.n, "a strata index must not shrink");
        let chunk = prev.chunk;
        let lut = CanberraLut::global();
        let mut groups: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (i, v) in values.iter().enumerate() {
            groups.entry(v.len()).or_default().push(i as u32);
        }
        let strata = groups
            .into_iter()
            .map(|(len, items)| {
                let warm = prev.strata.iter().find(|s| {
                    s.len == len
                        && s.items.len() <= items.len()
                        && s.items[..] == items[..s.items.len()]
                });
                let Some(old) = warm else {
                    return Stratum::build(values, params, chunk, len, items);
                };
                let local: Vec<&[u8]> = items.iter().map(|&g| values[g as usize]).collect();
                let forest = VpForest::build_with(
                    &local,
                    params,
                    chunk,
                    |t, span| {
                        old.forest
                            .trees()
                            .get(t)
                            .filter(|tree| tree.span() == *span)
                            .cloned()
                    },
                    |_, _, _| {},
                );
                let size = local.len();
                let old_size = old.size();
                let m = DEFAULT_PIVOTS.min(size);
                let old_m = old.pivot_count();
                let mut pivot_rows = Vec::with_capacity(m * size);
                for p in 0..m {
                    if p < old_m {
                        pivot_rows
                            .extend_from_slice(&old.pivot_rows[p * old_size..(p + 1) * old_size]);
                        for &x in &local[old_size..] {
                            pivot_rows.push(dissimilarity_kernel(local[p], x, params, lut));
                        }
                    } else {
                        for &x in &local {
                            pivot_rows.push(dissimilarity_kernel(local[p], x, params, lut));
                        }
                    }
                }
                Stratum {
                    len,
                    items,
                    forest,
                    pivot_rows,
                }
            })
            .collect();
        let mut index = Self {
            n: values.len(),
            chunk,
            strata,
            checksum: 0,
        };
        index.checksum = index.compute_checksum();
        index
    }

    /// Reassembles an index from persisted parts: `None` unless the
    /// strata have strictly ascending lengths and member lists that
    /// partition `0..n` exactly, every forest uses the stated chunk
    /// geometry, and the checksum verifies. A damaged store entry must
    /// degrade to a cache miss, never a wrong search.
    pub fn from_parts(n: usize, chunk: usize, strata: Vec<Stratum>, checksum: u64) -> Option<Self> {
        let chunk = chunk.max(1);
        let mut seen = vec![false; n];
        let mut covered = 0usize;
        for (si, s) in strata.iter().enumerate() {
            if si > 0 && strata[si - 1].len >= s.len {
                return None;
            }
            if s.items.is_empty() || s.forest.chunk() != chunk {
                return None;
            }
            for &g in &s.items {
                let g = g as usize;
                if g >= n || seen[g] {
                    return None;
                }
                seen[g] = true;
                covered += 1;
            }
        }
        if covered != n {
            return None;
        }
        let index = Self {
            n,
            chunk,
            strata,
            checksum,
        };
        (index.compute_checksum() == checksum).then_some(index)
    }

    /// Whether the index describes exactly this corpus (same item
    /// count, every member in the stratum of its value's length).
    pub fn matches(&self, values: &[&[u8]]) -> bool {
        self.n == values.len()
            && self
                .strata
                .iter()
                .all(|s| s.items.iter().all(|&g| values[g as usize].len() == s.len))
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Items per local chunk tree.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The strata, ascending by segment length.
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// FNV-64 checksum over geometry, members, tree checksums and
    /// pivot-row bits.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn compute_checksum(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat(&(self.n as u64).to_le_bytes());
        h.eat(&(self.chunk as u64).to_le_bytes());
        for s in &self.strata {
            h.eat(&(s.len as u64).to_le_bytes());
            h.eat(&(s.items.len() as u64).to_le_bytes());
            for &g in &s.items {
                h.eat(&g.to_le_bytes());
            }
            for tree in s.forest.trees() {
                h.eat(&tree.checksum().to_le_bytes());
            }
            for &d in &s.pivot_rows {
                h.eat(&d.to_le_bytes());
            }
        }
        h.0
    }
}

/// Reusable per-worker query scratch: the hoisted query kernel
/// configuration, tree-walk stack, query–pivot distances, k-NN heap,
/// and the stratum visit order.
struct Scratch<'a> {
    qd: QueryDist<'a>,
    stack: Vec<u32>,
    dqp: Vec<f64>,
    heap: BinaryHeap<Cand>,
    order: Vec<(f64, usize)>,
}

impl<'a> Scratch<'a> {
    fn new(params: &DissimParams, swar: bool) -> Self {
        Self {
            qd: QueryDist::new(&[], params, swar),
            stack: Vec::new(),
            dqp: Vec::new(),
            heap: BinaryHeap::new(),
            order: Vec::new(),
        }
    }
}

/// The [`NeighborProvider`] over a [`StrataIndex`]: length-bound
/// stratum skipping, VP-forest pruning inside the query's own stratum,
/// LAESA pivot screening inside foreign strata — and bit-identical
/// answers to the exact linear scan, because pruning only ever decides
/// what is visited.
#[derive(Debug, Clone)]
pub struct StratifiedProvider<'a> {
    values: &'a [&'a [u8]],
    params: DissimParams,
    index: &'a StrataIndex,
    lut: &'static CanberraLut,
    swar: bool,
    counters: Option<Arc<QueryCounters>>,
}

impl<'a> StratifiedProvider<'a> {
    /// Pairs segment `values` with their stratified index.
    ///
    /// # Panics
    ///
    /// Panics if the index covers a different item count.
    pub fn new(values: &'a [&'a [u8]], params: &DissimParams, index: &'a StrataIndex) -> Self {
        assert_eq!(
            values.len(),
            index.len(),
            "strata index and values must cover the same items"
        );
        Self {
            values,
            params: *params,
            index,
            lut: CanberraLut::global(),
            swar: false,
            counters: None,
        }
    }

    /// Toggles the opt-in SWAR kernel fast path (bit-identical to the
    /// default kernel; see [`dissimilarity_swar`]).
    pub fn with_swar(mut self, swar: bool) -> Self {
        self.swar = swar;
        self
    }

    /// Attaches shared query-work counters; every query flushes its
    /// deterministic per-query tallies into them.
    pub fn with_counters(mut self, counters: Arc<QueryCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    fn scratch(&self) -> Scratch<'a> {
        Scratch::new(&self.params, self.swar)
    }

    fn flush(&self, local: &LocalCounters) {
        if let Some(c) = &self.counters {
            c.flush(local);
        }
    }

    /// Whether the LAESA screen is worth its `m` query–pivot
    /// evaluations for a stratum of this size. Depends only on the
    /// stratum, so per-query counter tallies stay deterministic.
    fn use_pivots(s: &Stratum) -> bool {
        let m = s.pivot_count();
        m > 0 && s.size() > MIN_LAESA_GAIN * m
    }

    /// ε-range over the query's own stratum via the local VP forest;
    /// the query is a member, lengths are uniform, full metric pruning
    /// applies. Mirrors `VpProvider::range_tree` with local→global
    /// index translation.
    fn range_own(
        &self,
        s: &Stratum,
        i: usize,
        eps: f64,
        out: &mut Vec<(f64, u32)>,
        scratch: &mut Scratch<'a>,
        local: &mut LocalCounters,
    ) {
        let q_local = s
            .items
            .binary_search(&(i as u32))
            .expect("query item belongs to its length stratum") as u32;
        let before = local.evals;
        for tree in s.forest.trees() {
            scratch.stack.clear();
            scratch.stack.push(tree.root());
            while let Some(ni) = scratch.stack.pop() {
                if ni == NO_NODE {
                    continue;
                }
                let node = &tree.nodes()[ni as usize];
                let gv = s.items[node.item as usize];
                let d = scratch.qd.dist(self.values[gv as usize]);
                local.evals += 1;
                if d <= eps && node.item != q_local {
                    out.push((d, gv));
                }
                if node.inside == NO_NODE && node.outside == NO_NODE {
                    continue;
                }
                if d - eps <= node.threshold + PRUNE_SLACK {
                    scratch.stack.push(node.inside);
                }
                if d + eps >= node.threshold - PRUNE_SLACK {
                    scratch.stack.push(node.outside);
                }
            }
        }
        local.pruned += s.size() as u64 - (local.evals - before);
    }

    /// ε-range over a foreign stratum: every candidate screened first
    /// by the stratum's length bound, then (in large strata) by the
    /// one-sided LAESA bound off the precomputed pivot rows.
    fn range_cross(
        &self,
        s: &Stratum,
        lb: f64,
        eps: f64,
        out: &mut Vec<(f64, u32)>,
        scratch: &mut Scratch<'a>,
        local: &mut LocalCounters,
    ) {
        let before = local.evals;
        if Self::use_pivots(s) {
            let m = s.pivot_count();
            let size = s.size();
            scratch.dqp.clear();
            for p in 0..m {
                let gp = s.items[p];
                let d = scratch.qd.dist(self.values[gp as usize]);
                local.evals += 1;
                if d <= eps {
                    out.push((d, gp));
                }
                scratch.dqp.push(d);
            }
            for x in m..size {
                let mut bound = lb;
                for (p, &dqp) in scratch.dqp.iter().enumerate() {
                    let b = dqp - s.pivot_rows[p * size + x];
                    if b > bound {
                        bound = b;
                    }
                }
                if bound - eps > PRUNE_SLACK {
                    continue;
                }
                let gx = s.items[x];
                let d = scratch.qd.dist(self.values[gx as usize]);
                local.evals += 1;
                if d <= eps {
                    out.push((d, gx));
                }
            }
        } else {
            for &gx in &s.items {
                let d = scratch.qd.dist(self.values[gx as usize]);
                local.evals += 1;
                if d <= eps {
                    out.push((d, gx));
                }
            }
        }
        local.pruned += s.size() as u64 - (local.evals - before);
    }

    /// One full ε-range query, writing the `(dissimilarity, index)`-
    /// sorted result into `out`.
    fn range_query(
        &self,
        i: usize,
        eps: f64,
        out: &mut Vec<(f64, u32)>,
        scratch: &mut Scratch<'a>,
    ) {
        out.clear();
        let q = self.values[i];
        scratch.qd.set_query(q);
        let mut local = LocalCounters::default();
        for s in &self.index.strata {
            let lb = length_lower_bound(q.len(), s.len, &self.params);
            if lb - eps > PRUNE_SLACK {
                local.skipped += 1;
                local.pruned += s.size() as u64;
                continue;
            }
            if s.len == q.len() {
                self.range_own(s, i, eps, out, scratch, &mut local);
            } else {
                self.range_cross(s, lb, eps, out, scratch, &mut local);
            }
        }
        // Match the oracle's (dissimilarity, index) emission order.
        out.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("dissimilarities are not NaN")
                .then_with(|| a.1.cmp(&b.1))
        });
        self.flush(&local);
    }

    /// Folds the query's own stratum into the bounded k-NN max-heap
    /// via the local VP forest. Mirrors `VpProvider::knn_tree`.
    fn knn_own(
        &self,
        s: &Stratum,
        i: usize,
        k: usize,
        scratch: &mut Scratch<'a>,
        local: &mut LocalCounters,
    ) {
        let q_local = s
            .items
            .binary_search(&(i as u32))
            .expect("query item belongs to its length stratum") as u32;
        let before = local.evals;
        for tree in s.forest.trees() {
            scratch.stack.clear();
            scratch.stack.push(tree.root());
            while let Some(ni) = scratch.stack.pop() {
                if ni == NO_NODE {
                    continue;
                }
                let node = &tree.nodes()[ni as usize];
                let gv = s.items[node.item as usize];
                let d = scratch.qd.dist(self.values[gv as usize]);
                local.evals += 1;
                if node.item != q_local {
                    if scratch.heap.len() < k {
                        scratch.heap.push(Cand(d));
                    } else if d < scratch.heap.peek().expect("heap is non-empty").0 {
                        scratch.heap.push(Cand(d));
                        scratch.heap.pop();
                    }
                }
                if node.inside == NO_NODE && node.outside == NO_NODE {
                    continue;
                }
                let tau = if scratch.heap.len() == k {
                    scratch.heap.peek().expect("heap is non-empty").0
                } else {
                    f64::INFINITY
                };
                if d - tau <= node.threshold + PRUNE_SLACK {
                    scratch.stack.push(node.inside);
                }
                if d + tau >= node.threshold - PRUNE_SLACK {
                    scratch.stack.push(node.outside);
                }
            }
        }
        local.pruned += s.size() as u64 - (local.evals - before);
    }

    /// Folds a foreign stratum into the k-NN heap with the length and
    /// LAESA bounds screening candidates against the current
    /// k-th-best distance.
    fn knn_cross(
        &self,
        s: &Stratum,
        lb: f64,
        k: usize,
        scratch: &mut Scratch<'a>,
        local: &mut LocalCounters,
    ) {
        let before = local.evals;
        let Scratch { qd, dqp, heap, .. } = scratch;
        let push = |heap: &mut BinaryHeap<Cand>, d: f64| {
            if heap.len() < k {
                heap.push(Cand(d));
            } else if d < heap.peek().expect("heap is non-empty").0 {
                heap.push(Cand(d));
                heap.pop();
            }
        };
        if Self::use_pivots(s) {
            let m = s.pivot_count();
            let size = s.size();
            dqp.clear();
            for p in 0..m {
                let gp = s.items[p];
                let d = qd.dist(self.values[gp as usize]);
                local.evals += 1;
                push(heap, d);
                dqp.push(d);
            }
            for x in m..size {
                let tau = if heap.len() == k {
                    heap.peek().expect("heap is non-empty").0
                } else {
                    f64::INFINITY
                };
                let mut bound = lb;
                for (p, &dp) in dqp.iter().enumerate() {
                    let b = dp - s.pivot_rows[p * size + x];
                    if b > bound {
                        bound = b;
                    }
                }
                if bound - tau > PRUNE_SLACK {
                    continue;
                }
                let d = qd.dist(self.values[s.items[x] as usize]);
                local.evals += 1;
                push(heap, d);
            }
        } else {
            for &gx in &s.items {
                let d = qd.dist(self.values[gx as usize]);
                local.evals += 1;
                push(heap, d);
            }
        }
        local.pruned += s.size() as u64 - (local.evals - before);
    }

    /// One full k-NN query with caller-provided scratch; `k` must
    /// already be clamped to `[1, n − 1]` with `n >= 2`. Strata are
    /// visited in ascending length-bound order so the k-th-best
    /// distance tightens early and the tail of the order can be cut
    /// off wholesale.
    fn knn_query(&self, i: usize, k: usize, scratch: &mut Scratch<'a>) -> f64 {
        let q = self.values[i];
        scratch.qd.set_query(q);
        scratch.heap.clear();
        let mut local = LocalCounters::default();
        let mut order = std::mem::take(&mut scratch.order);
        order.clear();
        for (si, s) in self.index.strata.iter().enumerate() {
            let lb = length_lower_bound(q.len(), s.len, &self.params);
            order.push((lb, si));
        }
        order.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("length bounds are not NaN")
                .then_with(|| a.1.cmp(&b.1))
        });
        let mut cut = order.len();
        for (oi, &(lb, si)) in order.iter().enumerate() {
            let s = &self.index.strata[si];
            if scratch.heap.len() == k {
                let tau = scratch.heap.peek().expect("heap is non-empty").0;
                // Bounds are ascending from here on: nothing past this
                // point can beat the current k-th best.
                if lb - tau > PRUNE_SLACK {
                    cut = oi;
                    break;
                }
            }
            if s.len == q.len() {
                self.knn_own(s, i, k, scratch, &mut local);
            } else {
                self.knn_cross(s, lb, k, scratch, &mut local);
            }
        }
        for &(_, si) in &order[cut..] {
            local.skipped += 1;
            local.pruned += self.index.strata[si].size() as u64;
        }
        scratch.order = order;
        self.flush(&local);
        scratch.heap.peek().expect("k >= 1 and n >= 2").0
    }
}

impl NeighborProvider for StratifiedProvider<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>) {
        let mut scratch = self.scratch();
        self.range_query(i, eps, out, &mut scratch);
    }

    fn knn(&self, i: usize, k: usize) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return f64::INFINITY;
        }
        let k = k.clamp(1, n - 1);
        let mut scratch = self.scratch();
        self.knn_query(i, k, &mut scratch)
    }

    fn pair(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        if self.swar {
            dissimilarity_swar(self.values[i], self.values[j], &self.params, self.lut)
        } else {
            dissimilarity_kernel(self.values[i], self.values[j], &self.params, self.lut)
        }
    }

    /// Native batch override: one [`Scratch`] per worker chunk, zero
    /// per-query allocations on the hot path. Bit-identical to
    /// per-point calls (disjoint result slots, scratch cleared per
    /// query, counter tallies flushed per query).
    fn neighbors_within_batch(
        &self,
        queries: &[usize],
        eps: f64,
        threads: usize,
    ) -> Vec<Vec<(f64, u32)>>
    where
        Self: Sync,
    {
        let mut results: Vec<Vec<(f64, u32)>> = vec![Vec::new(); queries.len()];
        if threads <= 1 || queries.len() < 2 {
            let mut scratch = self.scratch();
            for (slot, &q) in results.iter_mut().zip(queries) {
                self.range_query(q, eps, slot, &mut scratch);
            }
            return results;
        }
        let slots = SendSlotPtr(results.as_mut_ptr());
        parkit::for_each_chunk(threads, queries.len(), BATCH_MIN_CHUNK, |chunk| {
            let slots = &slots;
            let mut scratch = self.scratch();
            for qi in chunk {
                // SAFETY: slot `qi` belongs to query `qi` alone and the
                // scheduler hands out each query exactly once.
                let out = unsafe { &mut *slots.0.add(qi) };
                self.range_query(queries[qi], eps, out, &mut scratch);
            }
        });
        results
    }

    /// Native batch override: per-worker reusable scratch.
    fn knn_batch(&self, queries: &[usize], k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        let n = self.values.len();
        if n < 2 {
            return vec![f64::INFINITY; queries.len()];
        }
        let k = k.clamp(1, n - 1);
        let mut results = vec![0.0f64; queries.len()];
        if threads <= 1 || queries.len() < 2 {
            let mut scratch = self.scratch();
            for (slot, &q) in results.iter_mut().zip(queries) {
                *slot = self.knn_query(q, k, &mut scratch);
            }
            return results;
        }
        let slots = SendSlotPtr(results.as_mut_ptr());
        parkit::for_each_chunk(threads, queries.len(), BATCH_MIN_CHUNK, |chunk| {
            let slots = &slots;
            let mut scratch = self.scratch();
            for qi in chunk {
                // SAFETY: disjoint slots, each handed out exactly once.
                unsafe {
                    *slots.0.add(qi) = self.knn_query(queries[qi], k, &mut scratch);
                }
            }
        });
        results
    }

    fn knn_dissimilarities_parallel(&self, k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        let queries: Vec<usize> = (0..self.len()).collect();
        self.knn_batch(&queries, k, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CondensedMatrix;
    use crate::neighbor::NeighborIndex;
    use crate::provider::IndexedProvider;

    const P: DissimParams = DissimParams {
        length_penalty: 0.59,
    };

    /// Mixed-length corpus: the kernel tests' length cycle (empty
    /// segments, duplicate lengths, a long tail).
    fn mixed_corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let len = [0usize, 1, 2, 3, 4, 4, 7, 8, 12][i % 9];
                (0..len)
                    .map(|k| ((i * 31 + k * 17 + i * k) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    /// Uniform-length corpus: a single stratum, so every query runs
    /// the own-stratum VP walk.
    fn uniform_corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let base = (i % 5) * 40;
                (0..8)
                    .map(|k| ((base + k * 3 + (i * 7) % 4) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn assert_matches_oracle(segs: &[Vec<u8>], swar: bool) {
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let n = values.len();
        let index = StrataIndex::build(&values, &P, 16);
        let provider = StratifiedProvider::new(&values, &P, &index).with_swar(swar);
        let matrix = CondensedMatrix::build_segments(&values, &P, 1);
        let nindex = NeighborIndex::build(&matrix);
        let oracle = IndexedProvider::new(&matrix, &nindex);
        let mut got = Vec::new();
        let mut want = Vec::new();
        for eps in [0.0, 0.05, 0.2, 0.45, 0.8, 2.0] {
            for i in 0..n {
                provider.neighbors_within(i, eps, &mut got);
                oracle.neighbors_within(i, eps, &mut want);
                let got_bits: Vec<(u64, u32)> =
                    got.iter().map(|&(d, j)| (d.to_bits(), j)).collect();
                let want_bits: Vec<(u64, u32)> =
                    want.iter().map(|&(d, j)| (d.to_bits(), j)).collect();
                assert_eq!(got_bits, want_bits, "range i={i} eps={eps} swar={swar}");
            }
        }
        for k in [1usize, 2, 5, n.saturating_sub(1).max(1), n + 3] {
            for i in 0..n {
                assert_eq!(
                    provider.knn(i, k).to_bits(),
                    oracle.knn(i, k).to_bits(),
                    "knn i={i} k={k} swar={swar}"
                );
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    provider.pair(i, j).to_bits(),
                    oracle.pair(i, j).to_bits(),
                    "pair {i} {j} swar={swar}"
                );
            }
        }
    }

    #[test]
    fn mixed_corpus_matches_oracle() {
        assert_matches_oracle(&mixed_corpus(60), false);
        assert_matches_oracle(&mixed_corpus(60), true);
    }

    #[test]
    fn uniform_corpus_matches_oracle() {
        assert_matches_oracle(&uniform_corpus(40), false);
    }

    #[test]
    fn duplicate_heavy_corpus_matches_oracle() {
        let mut segs = mixed_corpus(30);
        for _ in 0..10 {
            segs.push(vec![0u8; 4]);
            segs.push(vec![7u8; 12]);
        }
        assert_matches_oracle(&segs, false);
        assert_matches_oracle(&segs, true);
    }

    #[test]
    fn length_bound_never_exceeds_kernel() {
        let lut = CanberraLut::global();
        let segs = mixed_corpus(45);
        for penalty in [0.0, 0.11, 0.59, 1.0, 2.5] {
            let params = DissimParams {
                length_penalty: penalty,
            };
            for a in &segs {
                for b in &segs {
                    let lb = length_lower_bound(a.len(), b.len(), &params);
                    let d = dissimilarity_kernel(a, b, &params, lut);
                    assert!(
                        lb <= d,
                        "lb {lb} > d {d} for lens {} {} penalty {penalty}",
                        a.len(),
                        b.len()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_queries_match_scalar_bitwise() {
        let segs = mixed_corpus(50);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&values, &P, 16);
        for swar in [false, true] {
            let provider = StratifiedProvider::new(&values, &P, &index).with_swar(swar);
            let queries: Vec<usize> = (0..values.len()).rev().collect();
            let mut scalar_out = Vec::new();
            for threads in [1usize, 4] {
                let batched = provider.neighbors_within_batch(&queries, 0.3, threads);
                for (qi, &q) in queries.iter().enumerate() {
                    provider.neighbors_within(q, 0.3, &mut scalar_out);
                    let got: Vec<(u64, u32)> =
                        batched[qi].iter().map(|&(d, j)| (d.to_bits(), j)).collect();
                    let want: Vec<(u64, u32)> =
                        scalar_out.iter().map(|&(d, j)| (d.to_bits(), j)).collect();
                    assert_eq!(got, want, "range q={q} threads={threads} swar={swar}");
                }
                let knns = provider.knn_batch(&queries, 3, threads);
                for (qi, &q) in queries.iter().enumerate() {
                    assert_eq!(
                        knns[qi].to_bits(),
                        provider.knn(q, 3).to_bits(),
                        "knn q={q} threads={threads} swar={swar}"
                    );
                }
            }
        }
    }

    #[test]
    fn counters_move_and_are_thread_deterministic() {
        let segs = mixed_corpus(80);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&values, &P, 16);
        let queries: Vec<usize> = (0..values.len()).collect();
        let mut snapshots = Vec::new();
        for threads in [1usize, 4] {
            let counters = Arc::new(QueryCounters::new());
            let provider =
                StratifiedProvider::new(&values, &P, &index).with_counters(Arc::clone(&counters));
            provider.neighbors_within_batch(&queries, 0.1, threads);
            provider.knn_batch(&queries, 3, threads);
            snapshots.push(counters.snapshot());
        }
        assert_eq!(
            snapshots[0], snapshots[1],
            "counters must not depend on threads"
        );
        let (evals, pruned, skipped) = snapshots[0];
        assert!(evals > 0, "queries must evaluate the kernel");
        assert!(pruned > 0, "a tight radius must prune candidates");
        assert!(skipped > 0, "a tight radius must skip whole strata");
    }

    #[test]
    fn growth_extension_is_bit_identical_to_cold_build() {
        let segs = mixed_corpus(90);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let prev = StrataIndex::build(&values[..40], &P, 16);
        let grown = StrataIndex::extend_from(&prev, &values, &P);
        let cold = StrataIndex::build(&values, &P, 16);
        assert_eq!(grown, cold);
        assert_eq!(grown.checksum(), cold.checksum());
    }

    #[test]
    fn from_parts_rejects_damage() {
        let segs = mixed_corpus(40);
        let values: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&values, &P, 16);
        let parts = |idx: &StrataIndex| -> (usize, usize, Vec<Stratum>, u64) {
            (
                idx.len(),
                idx.chunk(),
                idx.strata().to_vec(),
                idx.checksum(),
            )
        };
        let (n, chunk, strata, checksum) = parts(&index);
        assert!(StrataIndex::from_parts(n, chunk, strata.clone(), checksum).is_some());
        // Wrong checksum.
        assert!(StrataIndex::from_parts(n, chunk, strata.clone(), checksum ^ 1).is_none());
        // A member moved out of range.
        let mut bad = strata.clone();
        bad[0].items[0] = n as u32;
        assert!(StrataIndex::from_parts(n, chunk, bad, checksum).is_none());
        // A duplicated member.
        let mut bad = strata.clone();
        let stolen = bad[1].items[0];
        bad[0].items[0] = stolen;
        assert!(StrataIndex::from_parts(n, chunk, bad, checksum).is_none());
        // A missing stratum.
        let mut bad = strata.clone();
        bad.pop();
        assert!(StrataIndex::from_parts(n, chunk, bad, checksum).is_none());
        // Pivot-row shape violation is rejected at the stratum level.
        let s = &strata[0];
        assert!(Stratum::from_parts(
            s.value_len(),
            s.items().to_vec(),
            s.forest().clone(),
            s.pivot_rows()[..s.pivot_rows().len() - 1].to_vec(),
        )
        .is_none());
        assert!(index.matches(&values));
    }

    #[test]
    fn tiny_and_empty_corpora() {
        let values: Vec<&[u8]> = Vec::new();
        let index = StrataIndex::build(&values, &P, 16);
        assert!(index.is_empty());
        let provider = StratifiedProvider::new(&values, &P, &index);
        assert_eq!(provider.knn_dissimilarities(3), Vec::<f64>::new());

        let one = [vec![1u8, 2, 3]];
        let values: Vec<&[u8]> = one.iter().map(|s| &s[..]).collect();
        let index = StrataIndex::build(&values, &P, 16);
        let provider = StratifiedProvider::new(&values, &P, &index);
        assert_eq!(provider.knn(0, 1), f64::INFINITY);
        let mut out = Vec::new();
        provider.neighbors_within(0, 1.0, &mut out);
        assert!(out.is_empty());
    }
}
