//! Tiled representation of the condensed dissimilarity matrix: fixed
//! row-block tiles that are computed, checksummed, persisted, and
//! faulted in independently, so a build's peak working set is O(tile)
//! instead of O(n²) and a grown trace reuses every complete tile
//! verbatim.
//!
//! # Tile geometry
//!
//! Tiles block the **lower triangle** by row: tile `t` of a build with
//! `tile_rows = R` owns rows `t·R .. min((t+1)·R, n)`, where
//! lower-triangle row `j` holds the `j` entries `D(i, j)` for `i < j`.
//! Because `D` is symmetric this is the same value set as the condensed
//! upper triangle, just sliced differently: a lower-triangle row depends
//! only on items `0 ..= j`, so a tile's content is a pure function of
//! the *item prefix* `segments[..rows.end]` — it does not depend on `n`
//! at all. That is what makes extension a **pure tile append**: growing
//! the item set leaves every complete tile's content (and therefore its
//! cache key) unchanged; only the boundary tile (whose row range was
//! clamped by the old `n`) is recomputed and wholly-new tiles are
//! appended. The row-block prefix property mirrors
//! [`CondensedMatrix::extend_segments`]'s splice, expressed per tile.
//!
//! # Bit-identity
//!
//! Tile entries are produced by the same bucketed kernel as
//! [`CondensedMatrix::build_segments`] (see
//! [`crate::kernel`]): every entry equals the scalar
//! [`crate::dissimilarity`] of its pair bit-for-bit, so
//! [`TiledMatrix::assemble`] reproduces the monolithic build exactly,
//! regardless of tile geometry, thread count, or which tiles were
//! faulted in from a store.
//!
//! # Integrity
//!
//! Every tile carries an FNV-64 checksum over its entry bits, verified
//! on fault-in (`crates/store` additionally frames persisted tiles with
//! a whole-file checksum). A tile that fails verification degrades to a
//! recompute — a damaged cache is a slow run, never a wrong one.

use std::ops::Range;

use crate::canberra::DissimParams;
use crate::kernel::PairContext;
use crate::matrix::{condensed_index, CondensedMatrix};

/// FNV-1a 64 over the little-endian bits of the entries — the same
/// checksum primitive the artifact store uses for file framing, applied
/// per tile so fault-in can verify without the store.
fn fnv64_entries(data: &[f64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// `0 + 1 + … + (x − 1)`: entries in lower-triangle rows `0..x`.
fn tri(x: usize) -> usize {
    x * x.saturating_sub(1) / 2
}

/// One row-block tile: lower-triangle rows `rows.start .. rows.end`,
/// concatenated in row order, with a checksum over the entry bits.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixTile {
    rows: Range<usize>,
    data: Vec<f64>,
    checksum: u64,
}

impl MatrixTile {
    /// Number of entries a tile spanning `rows` holds
    /// (`Σ_{j ∈ rows} j`).
    pub fn entries_for(rows: &Range<usize>) -> usize {
        tri(rows.end) - tri(rows.start)
    }

    /// Computes the tile for `rows`, fanning the rows out over the
    /// `parkit` scheduler. Each row writes its own disjoint slice, so
    /// the result is bit-identical regardless of scheduling.
    pub(crate) fn compute(ctx: &PairContext<'_>, rows: Range<usize>, threads: usize) -> Self {
        let base = rows.start;
        let mut data = vec![0.0f64; Self::entries_for(&rows)];
        let span = rows.len();
        if span > 0 {
            let data_ptr = SendPtr(data.as_mut_ptr());
            parkit::for_each_chunk(threads, span, 1, |chunk| {
                let data_ptr = &data_ptr;
                for r in chunk {
                    let j = base + r;
                    let off = tri(j) - tri(base);
                    // SAFETY: lower-triangle row j owns the tile-local
                    // range [off, off + j); rows are disjoint and the
                    // scheduler hands out each row exactly once.
                    let out = unsafe { std::slice::from_raw_parts_mut(data_ptr.0.add(off), j) };
                    ctx.fill_lower_row(j, out);
                }
            });
        }
        let checksum = fnv64_entries(&data);
        Self {
            rows,
            data,
            checksum,
        }
    }

    /// Reassembles a tile from persisted parts: `None` unless the entry
    /// count matches the row span and the checksum verifies. Used by the
    /// artifact store's decoder, where a damaged tile must degrade to a
    /// cache miss.
    pub fn from_parts(rows: Range<usize>, data: Vec<f64>, checksum: u64) -> Option<Self> {
        if rows.start > rows.end || data.len() != Self::entries_for(&rows) {
            return None;
        }
        let tile = Self {
            rows,
            data,
            checksum,
        };
        tile.verify().then_some(tile)
    }

    /// The lower-triangle row span this tile covers.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// All entries, rows concatenated in row order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// FNV-64 checksum over the entry bits.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum and compares it to the stored one.
    pub fn verify(&self) -> bool {
        fnv64_entries(&self.data) == self.checksum
    }

    /// Lower-triangle row `j` of this tile: `row(j)[i] = D(i, j)` for
    /// every `i < j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside this tile's row span.
    pub fn row(&self, j: usize) -> &[f64] {
        assert!(self.rows.contains(&j), "row outside tile span");
        let off = tri(j) - tri(self.rows.start);
        &self.data[off..off + j]
    }
}

/// A raw pointer wrapper asserting cross-thread transferability for the
/// disjoint-row-write pattern in [`MatrixTile::compute`].
struct SendPtr(*mut f64);
unsafe impl Sync for SendPtr {}

/// The condensed matrix as a sequence of row-block tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledMatrix {
    n: usize,
    tile_rows: usize,
    tiles: Vec<MatrixTile>,
}

impl TiledMatrix {
    /// Number of tiles covering `n` items at `tile_rows` rows per tile.
    pub fn tile_count(n: usize, tile_rows: usize) -> usize {
        n.div_ceil(tile_rows.max(1))
    }

    /// Row span of tile `t`.
    pub fn tile_span(n: usize, tile_rows: usize, t: usize) -> Range<usize> {
        let tile_rows = tile_rows.max(1);
        (t * tile_rows).min(n)..((t + 1) * tile_rows).min(n)
    }

    /// Builds all tiles in memory (no store interaction).
    pub fn build_segments(
        segments: &[&[u8]],
        params: &DissimParams,
        tile_rows: usize,
        threads: usize,
    ) -> Self {
        Self::build_with(
            segments,
            params,
            tile_rows,
            threads,
            |_, _| None,
            |_, _, _| {},
        )
    }

    /// Builds the tiled matrix, probing `fault_in` before computing each
    /// tile and reporting every finished tile to `persist`.
    ///
    /// `fault_in(t, rows)` may return a previously persisted tile; it is
    /// used only if its row span matches and its checksum verifies, so a
    /// stale or damaged store degrades to a recompute. `persist(t, tile,
    /// computed)` sees every tile in order with `computed` telling a
    /// fresh computation apart from a cache hit (callers typically write
    /// only computed tiles back to the store).
    pub fn build_with(
        segments: &[&[u8]],
        params: &DissimParams,
        tile_rows: usize,
        threads: usize,
        fault_in: impl FnMut(usize, &Range<usize>) -> Option<MatrixTile>,
        mut persist: impl FnMut(usize, &MatrixTile, bool),
    ) -> Self {
        let n = segments.len();
        let tile_rows = tile_rows.max(1);
        let mut tiles = Vec::with_capacity(Self::tile_count(n, tile_rows));
        Self::stream_segments(
            segments,
            params,
            tile_rows,
            threads,
            fault_in,
            |t, tile, computed| {
                persist(t, &tile, computed);
                tiles.push(tile);
            },
        );
        Self {
            n,
            tile_rows,
            tiles,
        }
    }

    /// Streams tiles in order without retaining them: the peak working
    /// set is one tile (plus the shared kernel context), which is the
    /// O(tile) build the RSS smoke test pins. `consume(t, tile,
    /// computed)` takes ownership of each tile — persist it, fold it
    /// into an accumulator (e.g. [`KnnAccumulator`]), or drop it.
    pub fn stream_segments(
        segments: &[&[u8]],
        params: &DissimParams,
        tile_rows: usize,
        threads: usize,
        mut fault_in: impl FnMut(usize, &Range<usize>) -> Option<MatrixTile>,
        mut consume: impl FnMut(usize, MatrixTile, bool),
    ) {
        let n = segments.len();
        let tile_rows = tile_rows.max(1);
        let ctx = PairContext::new(segments, params);
        for t in 0..Self::tile_count(n, tile_rows) {
            let span = Self::tile_span(n, tile_rows, t);
            let (tile, computed) = match fault_in(t, &span) {
                Some(tile) if tile.rows() == span && tile.verify() => (tile, false),
                _ => (MatrixTile::compute(&ctx, span, threads), true),
            };
            consume(t, tile, computed);
        }
    }

    /// Reassembles a tiled matrix from previously persisted tiles:
    /// `None` unless the tiles exactly cover `n` rows in order at the
    /// given geometry (each tile's checksum was already verified by
    /// [`MatrixTile::from_parts`]).
    pub fn from_tiles(n: usize, tile_rows: usize, tiles: Vec<MatrixTile>) -> Option<Self> {
        let tile_rows = tile_rows.max(1);
        if tiles.len() != Self::tile_count(n, tile_rows) {
            return None;
        }
        for (t, tile) in tiles.iter().enumerate() {
            if tile.rows() != Self::tile_span(n, tile_rows, t) {
                return None;
            }
        }
        Some(Self {
            n,
            tile_rows,
            tiles,
        })
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rows per tile.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// The tiles, in row order.
    pub fn tiles(&self) -> &[MatrixTile] {
        &self.tiles
    }

    /// The dissimilarity between items `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.tiles[hi / self.tile_rows].row(hi)[lo]
    }

    /// Scatters the tiles into a [`CondensedMatrix`] — bit-identical to
    /// [`CondensedMatrix::build_segments`] over the same segments, since
    /// every tile entry is the exact kernel value of its pair.
    pub fn assemble(&self) -> CondensedMatrix {
        let n = self.n;
        let mut data = vec![0.0f64; n * n.saturating_sub(1) / 2];
        for tile in &self.tiles {
            for j in tile.rows() {
                for (i, &d) in tile.row(j).iter().enumerate() {
                    data[condensed_index(n, i, j)] = d;
                }
            }
        }
        CondensedMatrix::from_condensed(n, data).expect("tile spans cover the triangle")
    }

    /// Builds the per-item k-nearest-neighbor table by folding per-tile
    /// partial accumulators over the `parkit` scheduler and merging them
    /// at the barrier. The k-smallest multiset union is partition- and
    /// order-independent, so the table is bit-identical to a serial fold
    /// — and to [`CondensedMatrix::knn_dissimilarities`] for every
    /// `k <= k_max`.
    ///
    /// # Panics
    ///
    /// Panics if `k_max` is 0.
    pub fn knn_table(&self, k_max: usize, threads: usize) -> KnnTable {
        assert!(k_max >= 1, "k_max must be at least 1");
        let n = self.n;
        let parts = parkit::map_parts(
            threads,
            self.tiles.len(),
            1,
            || KnnAccumulator::new(n, k_max),
            |acc, chunk| {
                for t in chunk {
                    acc.consume_tile(&self.tiles[t]);
                }
            },
        );
        let mut parts = parts.into_iter();
        let mut acc = parts
            .next()
            .unwrap_or_else(|| KnnAccumulator::new(n, k_max));
        for part in parts {
            acc.merge(&part);
        }
        acc.finish()
    }
}

/// Accumulates, per item, the `k_max` smallest dissimilarities seen so
/// far. Feeding it every tile of a [`TiledMatrix`] (each pair appears in
/// exactly one tile and updates both endpoints) yields each item's
/// k-nearest-neighbor dissimilarities in O(n · k_max) memory — the
/// ε auto-configuration input, without sorting full neighbor lists.
#[derive(Debug, Clone)]
pub struct KnnAccumulator {
    n: usize,
    k_max: usize,
    /// Flattened `n × k_max`; row `i` keeps `lens[i]` values sorted
    /// ascending.
    lists: Vec<f64>,
    lens: Vec<usize>,
}

impl KnnAccumulator {
    /// An empty accumulator for `n` items keeping `k_max` neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `k_max` is 0.
    pub fn new(n: usize, k_max: usize) -> Self {
        assert!(k_max >= 1, "k_max must be at least 1");
        Self {
            n,
            k_max,
            lists: vec![f64::INFINITY; n * k_max],
            lens: vec![0; n],
        }
    }

    /// Records dissimilarity `d` as a neighbor candidate of `item`.
    pub fn push(&mut self, item: usize, d: f64) {
        let k = self.k_max;
        let len = self.lens[item];
        let row = &mut self.lists[item * k..item * k + k];
        if len == k && d >= row[k - 1] {
            return;
        }
        let pos = row[..len].partition_point(|&x| x <= d);
        let end = (len + 1).min(k);
        row.copy_within(pos..end - 1, pos + 1);
        row[pos] = d;
        self.lens[item] = end;
    }

    /// Folds one tile in: every pair `(i, j)` in the tile updates both
    /// endpoints' lists.
    pub fn consume_tile(&mut self, tile: &MatrixTile) {
        for j in tile.rows() {
            for (i, &d) in tile.row(j).iter().enumerate() {
                self.push(i, d);
                self.push(j, d);
            }
        }
    }

    /// Merges another accumulator covering the same items: each item's
    /// list becomes the `k_max` smallest of the union. Partition- and
    /// order-independent, which is what lets per-worker partials merge
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators' shapes differ.
    pub fn merge(&mut self, other: &KnnAccumulator) {
        assert!(
            self.n == other.n && self.k_max == other.k_max,
            "accumulator shapes differ"
        );
        for item in 0..self.n {
            let o = &other.lists[item * self.k_max..item * self.k_max + other.lens[item]];
            for &d in o {
                self.push(item, d);
            }
        }
    }

    /// Freezes the accumulator into a read-only table.
    pub fn finish(self) -> KnnTable {
        KnnTable {
            n: self.n,
            k_max: self.k_max,
            lists: self.lists,
        }
    }
}

/// Per-item k-nearest-neighbor dissimilarities, ascending; the frozen
/// form of [`KnnAccumulator`]. Entries beyond an item's pair count are
/// `f64::INFINITY` (only possible when `k_max > n − 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnTable {
    n: usize,
    k_max: usize,
    lists: Vec<f64>,
}

impl KnnTable {
    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest supported `k`.
    pub fn k_max(&self) -> usize {
        self.k_max
    }

    /// The dissimilarity of `item` to its `k`-th nearest neighbor
    /// (`1 <= k <= k_max`) — the same value as
    /// [`CondensedMatrix::knn_dissimilarities`]`[item]` for that `k`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of bounds, `k` is 0, or `k > k_max`.
    pub fn kth(&self, item: usize, k: usize) -> f64 {
        assert!(item < self.n, "index out of bounds");
        assert!(k >= 1 && k <= self.k_max, "k out of range");
        self.lists[item * self.k_max + k - 1]
    }

    /// The dissimilarity of each item to its `k`-th nearest neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or `k > k_max`.
    pub fn knn_dissimilarities(&self, k: usize) -> Vec<f64> {
        (0..self.n).map(|i| self.kth(i, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: DissimParams = DissimParams {
        length_penalty: 0.59,
    };

    /// Deterministic mixed-length corpus: many distinct lengths,
    /// repeated values, empties.
    fn corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let len = [0usize, 1, 2, 3, 4, 4, 7, 8, 12][i % 9];
                (0..len)
                    .map(|k| ((i * 31 + k * 17 + i * k) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn values(segs: &[Vec<u8>]) -> Vec<&[u8]> {
        segs.iter().map(|s| &s[..]).collect()
    }

    #[test]
    fn assembled_tiles_match_monolithic_build() {
        let segs = corpus(53);
        let vals = values(&segs);
        let mono = CondensedMatrix::build_segments(&vals, &P, 2);
        for tile_rows in [1usize, 3, 8, 53, 100] {
            for threads in [1usize, 4] {
                let tiled = TiledMatrix::build_segments(&vals, &P, tile_rows, threads);
                let assembled = tiled.assemble();
                assert_eq!(assembled.len(), mono.len());
                for (k, (a, b)) in assembled.values().iter().zip(mono.values()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "tile_rows = {tile_rows}, threads = {threads}, entry {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn get_matches_monolithic() {
        let segs = corpus(20);
        let vals = values(&segs);
        let mono = CondensedMatrix::build_segments(&vals, &P, 1);
        let tiled = TiledMatrix::build_segments(&vals, &P, 6, 2);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(tiled.get(i, j).to_bits(), mono.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn tile_geometry_is_exhaustive_and_disjoint() {
        for n in [0usize, 1, 2, 7, 20] {
            for tile_rows in [1usize, 3, 7, 25] {
                let count = TiledMatrix::tile_count(n, tile_rows);
                let mut next = 0;
                for t in 0..count {
                    let span = TiledMatrix::tile_span(n, tile_rows, t);
                    assert_eq!(span.start, next, "n = {n}, tile_rows = {tile_rows}");
                    assert!(!span.is_empty());
                    next = span.end;
                }
                assert_eq!(next, n, "n = {n}, tile_rows = {tile_rows}");
            }
        }
    }

    #[test]
    fn extension_reuses_complete_tiles_and_appends() {
        let segs = corpus(41);
        let vals = values(&segs);
        let tile_rows = 6;
        let old_n = 27; // boundary inside tile 4 (rows 24..27 clamped)
        let old = TiledMatrix::build_segments(&vals[..old_n], &P, tile_rows, 2);

        // Warm build over the grown set, faulting in the old build's
        // tiles by span: complete tiles (span.end <= old_n) must be
        // reused; the clamped boundary tile and the new tiles computed.
        let mut computed = Vec::new();
        let grown = TiledMatrix::build_with(
            &vals,
            &P,
            tile_rows,
            2,
            |t, span| {
                old.tiles()
                    .get(t)
                    .filter(|tile| tile.rows() == *span)
                    .cloned()
            },
            |t, _tile, was_computed| {
                if was_computed {
                    computed.push(t);
                }
            },
        );
        // Tiles 0..4 (rows < 24) are complete at old_n = 27 and reused;
        // tile 4 (24..30 vs clamped 24..27) and tiles 5, 6 are computed.
        assert_eq!(computed, vec![4, 5, 6]);

        let cold = TiledMatrix::build_segments(&vals, &P, tile_rows, 1);
        assert_eq!(grown, cold, "pure tile append must be bit-identical");
    }

    #[test]
    fn damaged_fault_in_degrades_to_recompute() {
        let segs = corpus(19);
        let vals = values(&segs);
        let good = TiledMatrix::build_segments(&vals, &P, 5, 1);
        let mut recomputed = 0;
        let warm = TiledMatrix::build_with(
            &vals,
            &P,
            5,
            1,
            |t, _span| {
                let tile = &good.tiles()[t];
                let mut data = tile.data().to_vec();
                if t == 1 {
                    data[0] += 1.0; // corrupt one entry; checksum now stale
                }
                Some(MatrixTile {
                    rows: tile.rows(),
                    data,
                    checksum: tile.checksum(),
                })
            },
            |_, _, computed| {
                if computed {
                    recomputed += 1;
                }
            },
        );
        assert_eq!(recomputed, 1, "only the damaged tile is recomputed");
        assert_eq!(warm, good);
    }

    #[test]
    fn from_parts_validates_shape_and_checksum() {
        let segs = corpus(12);
        let vals = values(&segs);
        let tiled = TiledMatrix::build_segments(&vals, &P, 4, 1);
        let tile = &tiled.tiles()[1];
        let ok = MatrixTile::from_parts(tile.rows(), tile.data().to_vec(), tile.checksum());
        assert_eq!(ok.as_ref(), Some(tile));
        // Wrong length.
        assert!(MatrixTile::from_parts(tile.rows(), vec![0.0; 3], tile.checksum()).is_none());
        // Wrong checksum.
        assert!(
            MatrixTile::from_parts(tile.rows(), tile.data().to_vec(), tile.checksum() ^ 1)
                .is_none()
        );
    }

    #[test]
    fn from_tiles_validates_coverage() {
        let segs = corpus(10);
        let vals = values(&segs);
        let tiled = TiledMatrix::build_segments(&vals, &P, 4, 1);
        let tiles = tiled.tiles().to_vec();
        assert!(TiledMatrix::from_tiles(10, 4, tiles.clone()).is_some());
        assert!(TiledMatrix::from_tiles(10, 3, tiles.clone()).is_none());
        assert!(TiledMatrix::from_tiles(11, 4, tiles.clone()).is_none());
        let mut missing = tiles;
        missing.pop();
        assert!(TiledMatrix::from_tiles(10, 4, missing).is_none());
    }

    #[test]
    fn knn_table_matches_matrix_knn() {
        let segs = corpus(37);
        let vals = values(&segs);
        let mono = CondensedMatrix::build_segments(&vals, &P, 1);
        let tiled = TiledMatrix::build_segments(&vals, &P, 5, 2);
        for threads in [1usize, 4] {
            let table = tiled.knn_table(6, threads);
            for k in 1..=6usize {
                let want = mono.knn_dissimilarities(k);
                let got = table.knn_dissimilarities(k);
                assert_eq!(want.len(), got.len());
                for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "threads = {threads}, k = {k}, item {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_accumulator_order_independent() {
        // Pushing in any order and merging partials yields the same
        // k-smallest lists.
        let ds = [0.9, 0.1, 0.5, 0.5, 0.2, 0.8, 0.0, 0.3];
        let mut serial = KnnAccumulator::new(1, 3);
        for &d in &ds {
            serial.push(0, d);
        }
        let mut a = KnnAccumulator::new(1, 3);
        let mut b = KnnAccumulator::new(1, 3);
        for (t, &d) in ds.iter().rev().enumerate() {
            if t % 2 == 0 {
                a.push(0, d);
            } else {
                b.push(0, d);
            }
        }
        a.merge(&b);
        let sa = serial.finish();
        let sb = a.finish();
        for k in 1..=3 {
            assert_eq!(sa.kth(0, k).to_bits(), sb.kth(0, k).to_bits(), "k = {k}");
        }
    }

    #[test]
    fn knn_table_pads_with_infinity() {
        // 3 items, k_max = 5 > n - 1: entries beyond the pair count stay
        // infinite.
        let segs = corpus(3);
        let vals = values(&segs);
        let tiled = TiledMatrix::build_segments(&vals, &P, 2, 1);
        let table = tiled.knn_table(5, 1);
        for i in 0..3 {
            assert!(table.kth(i, 3).is_finite() || table.kth(i, 3).is_infinite());
            assert!(table.kth(i, 4).is_infinite());
            assert!(table.kth(i, 5).is_infinite());
        }
    }

    #[test]
    fn streaming_build_sees_every_tile_once() {
        let segs = corpus(23);
        let vals = values(&segs);
        let mut seen = Vec::new();
        TiledMatrix::stream_segments(
            &vals,
            &P,
            4,
            1,
            |_, _| None,
            |t, tile, computed| {
                assert!(computed);
                seen.push((t, tile.rows()));
            },
        );
        assert_eq!(seen.len(), TiledMatrix::tile_count(23, 4));
        for (t, span) in &seen {
            assert_eq!(*span, TiledMatrix::tile_span(23, 4, *t));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = TiledMatrix::build_segments(&[], &P, 4, 2);
        assert!(empty.is_empty());
        assert!(empty.tiles().is_empty());
        assert_eq!(empty.assemble().len(), 0);
        let one = TiledMatrix::build_segments(&[b"ab".as_slice()], &P, 4, 2);
        assert_eq!(one.len(), 1);
        assert_eq!(one.assemble().len(), 1);
    }
}
