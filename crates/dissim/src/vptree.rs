//! Vantage-point forest over segments: triangle-inequality-pruned
//! ε-range and k-NN queries without materializing the O(u²) condensed
//! triangle.
//!
//! # Metricity and the exact fallback
//!
//! Pruning a metric tree is only sound when the dissimilarity satisfies
//! the triangle inequality. The plain Canberra distance does (Lance &
//! Williams, 1966), and dividing by a constant preserves it — so when
//! **every segment has the same length** the pipeline's dissimilarity
//! reduces to `canberra_sum / len` and is a true metric. The
//! mixed-length sliding-window variant with its `length_penalty` is
//! **not**: two maximally dissimilar equal-length segments can both sit
//! within `penalty / 2`-reach of a common shorter segment (see the
//! counterexample pinned in `dissim/tests/metric_property.rs`), which
//! breaks the triangle whenever `penalty < D(a, b)`. [`VpProvider`]
//! therefore checks eligibility up front ([`metric_eligible`]): uniform
//! lengths run the pruned tree search, anything else degrades to an
//! exact linear scan per query — still O(u) memory, never a wrong
//! neighbor.
//!
//! # Bit-identity
//!
//! Candidate distances are always computed exactly through
//! [`dissimilarity_kernel`] (pinned bit-identical to the scalar
//! reference), and inclusion is decided on the exact value — pruning
//! only decides which *subtrees* are visited. Pruning bounds carry a
//! conservative [`PRUNE_SLACK`] pad so floating-point roundoff in the
//! triangle argument can never drop a true neighbor. Results are sorted
//! by `(dissimilarity, index)`, matching [`crate::NeighborIndex::range`]
//! emission exactly, so DBSCAN's order-sensitive border assignment
//! agrees with the oracle backend bit for bit.
//!
//! # Chunked forest and persistence
//!
//! Mirroring the tiled matrix, the forest is **chunked**: tree `t`
//! covers items `t·C .. min((t+1)·C, n)` and is built only from the
//! items of its chunk, so a tree's content is a pure function of that
//! item range. Growing the trace reuses every complete chunk's tree
//! verbatim (same chained cache key) and rebuilds only the clamped
//! boundary chunk — the same warm-start + growth-append contract the
//! tiles have, persisted through `crates/store` under `Kind::VPTREE`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;

use crate::canberra::DissimParams;
use crate::kernel::{dissimilarity_kernel, dissimilarity_swar, CanberraLut, QueryDist};
use crate::provider::{NeighborProvider, SendSlotPtr, BATCH_MIN_CHUNK};

/// Sentinel child index: no subtree.
pub const NO_NODE: u32 = u32::MAX;

/// Default items per chunk tree.
pub const DEFAULT_CHUNK: usize = 1024;

/// Conservative pad on every pruning bound: a subtree is only skipped
/// when the triangle argument rules it out by more than this margin, so
/// accumulated f64 roundoff (≲ len · 2⁻⁵³ per distance, orders of
/// magnitude below 1e-9 for any realistic segment) can never hide a
/// true neighbor.
pub const PRUNE_SLACK: f64 = 1e-9;

/// FNV-1a 64 over a little-endian byte stream — the same checksum
/// primitive the tiles and the artifact store use.
pub(crate) struct Fnv64(pub(crate) u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn eat(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x100_0000_01b3;
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }
}

/// One node of a vantage-point tree: the vantage item, the median
/// distance splitting its remaining items, and the two subtrees.
#[derive(Debug, Clone, PartialEq)]
pub struct VpNode {
    /// Global item index of the vantage point.
    pub item: u32,
    /// Median vantage distance: the inside subtree holds items with
    /// `d(vantage, x) <= threshold`, the outside subtree items with
    /// `d(vantage, x) >= threshold` (ties at the median may land on
    /// either side of the rank split).
    pub threshold: f64,
    /// Node index of the inside subtree, or [`NO_NODE`].
    pub inside: u32,
    /// Node index of the outside subtree, or [`NO_NODE`].
    pub outside: u32,
}

/// A deterministic vantage-point tree over one contiguous item chunk.
///
/// Construction is fully deterministic — the vantage is always the
/// lowest-index item of its sublist and the rank-median split breaks
/// distance ties by index — so the same item prefix always produces the
/// same tree (and the same persisted bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct VpTree {
    span: Range<usize>,
    root: u32,
    nodes: Vec<VpNode>,
    checksum: u64,
}

impl VpTree {
    /// Builds the tree for the items `span` of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `span` exceeds `values` or the item count exceeds
    /// `u32::MAX`.
    pub fn build(values: &[&[u8]], span: Range<usize>, params: &DissimParams) -> Self {
        assert!(span.start <= span.end && span.end <= values.len());
        assert!(values.len() <= NO_NODE as usize, "too many items for u32");
        let lut = CanberraLut::global();
        let mut nodes = Vec::with_capacity(span.len());
        let items: Vec<u32> = (span.start..span.end).map(|i| i as u32).collect();
        let root = build_rec(values, params, lut, items, &mut nodes);
        let mut tree = Self {
            span,
            root,
            nodes,
            checksum: 0,
        };
        tree.checksum = tree.compute_checksum();
        tree
    }

    /// Reassembles a tree from persisted parts: `None` unless the node
    /// count matches the span, every node is reachable exactly once
    /// from the root with in-span items and NaN-free thresholds, and
    /// the checksum verifies. A damaged store entry must degrade to a
    /// cache miss, never a wrong (or looping) search.
    pub fn from_parts(
        span: Range<usize>,
        root: u32,
        nodes: Vec<VpNode>,
        checksum: u64,
    ) -> Option<Self> {
        if span.start > span.end || nodes.len() != span.len() {
            return None;
        }
        if span.is_empty() {
            if root != NO_NODE {
                return None;
            }
        } else {
            let mut seen = vec![false; nodes.len()];
            let mut items = vec![false; span.len()];
            let mut stack = vec![root];
            let mut visited = 0usize;
            while let Some(ni) = stack.pop() {
                if ni == NO_NODE {
                    continue;
                }
                let ni = ni as usize;
                if ni >= nodes.len() || seen[ni] {
                    return None;
                }
                seen[ni] = true;
                visited += 1;
                let node = &nodes[ni];
                let item = node.item as usize;
                if !span.contains(&item) || node.threshold.is_nan() {
                    return None;
                }
                let off = item - span.start;
                if items[off] {
                    return None;
                }
                items[off] = true;
                stack.push(node.inside);
                stack.push(node.outside);
            }
            if visited != nodes.len() {
                return None;
            }
        }
        let tree = Self {
            span,
            root,
            nodes,
            checksum,
        };
        (tree.compute_checksum() == checksum).then_some(tree)
    }

    /// The item range this tree covers.
    pub fn span(&self) -> Range<usize> {
        self.span.clone()
    }

    /// Root node index, [`NO_NODE`] for an empty span.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The nodes, in construction (preorder, inside-first) order.
    pub fn nodes(&self) -> &[VpNode] {
        &self.nodes
    }

    /// FNV-64 checksum over span, root, and node bits.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum and compares it to the stored one.
    pub fn verify(&self) -> bool {
        self.compute_checksum() == self.checksum
    }

    fn compute_checksum(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat(&(self.span.start as u64).to_le_bytes());
        h.eat(&(self.span.end as u64).to_le_bytes());
        h.eat(&self.root.to_le_bytes());
        for node in &self.nodes {
            h.eat(&node.item.to_le_bytes());
            h.eat(&node.threshold.to_le_bytes());
            h.eat(&node.inside.to_le_bytes());
            h.eat(&node.outside.to_le_bytes());
        }
        h.0
    }
}

/// Recursive deterministic construction: vantage = lowest index,
/// rank-median split with `(distance, index)` tie-breaks, children
/// built inside-first.
fn build_rec(
    values: &[&[u8]],
    params: &DissimParams,
    lut: &CanberraLut,
    mut items: Vec<u32>,
    nodes: &mut Vec<VpNode>,
) -> u32 {
    if items.is_empty() {
        return NO_NODE;
    }
    let vantage = items.remove(0);
    let slot = nodes.len();
    nodes.push(VpNode {
        item: vantage,
        threshold: 0.0,
        inside: NO_NODE,
        outside: NO_NODE,
    });
    if items.is_empty() {
        return slot as u32;
    }
    let mut dists: Vec<(f64, u32)> = items
        .iter()
        .map(|&j| {
            (
                dissimilarity_kernel(values[vantage as usize], values[j as usize], params, lut),
                j,
            )
        })
        .collect();
    dists.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("dissimilarities are not NaN")
            .then_with(|| a.1.cmp(&b.1))
    });
    // Rank-median split keeps the tree balanced regardless of duplicate
    // distances, so depth stays O(log chunk).
    let mid = (dists.len() - 1) / 2;
    let threshold = dists[mid].0;
    let inside_items: Vec<u32> = dists[..=mid].iter().map(|&(_, j)| j).collect();
    let outside_items: Vec<u32> = dists[mid + 1..].iter().map(|&(_, j)| j).collect();
    let inside = build_rec(values, params, lut, inside_items, nodes);
    let outside = build_rec(values, params, lut, outside_items, nodes);
    nodes[slot].threshold = threshold;
    nodes[slot].inside = inside;
    nodes[slot].outside = outside;
    slot as u32
}

/// A sequence of chunk trees covering `0..n`, mirroring the tiled
/// matrix's geometry and warm-start contract.
#[derive(Debug, Clone, PartialEq)]
pub struct VpForest {
    n: usize,
    chunk: usize,
    trees: Vec<VpTree>,
}

impl VpForest {
    /// Number of chunk trees covering `n` items at `chunk` items each.
    pub fn chunk_count(n: usize, chunk: usize) -> usize {
        n.div_ceil(chunk.max(1))
    }

    /// Item span of chunk `t`.
    pub fn chunk_span(n: usize, chunk: usize, t: usize) -> Range<usize> {
        let chunk = chunk.max(1);
        (t * chunk).min(n)..((t + 1) * chunk).min(n)
    }

    /// Builds all chunk trees in memory (no store interaction).
    pub fn build(values: &[&[u8]], params: &DissimParams, chunk: usize) -> Self {
        Self::build_with(values, params, chunk, |_, _| None, |_, _, _| {})
    }

    /// Builds the forest, probing `fault_in` before building each chunk
    /// tree and reporting every finished tree to `persist`.
    ///
    /// `fault_in(t, span)` may return a previously persisted tree; it
    /// is used only if its span matches and its checksum verifies, so a
    /// stale or damaged store degrades to a rebuild. `persist(t, tree,
    /// built)` sees every tree in order with `built` telling a fresh
    /// build apart from a cache hit.
    pub fn build_with(
        values: &[&[u8]],
        params: &DissimParams,
        chunk: usize,
        mut fault_in: impl FnMut(usize, &Range<usize>) -> Option<VpTree>,
        mut persist: impl FnMut(usize, &VpTree, bool),
    ) -> Self {
        let n = values.len();
        let chunk = chunk.max(1);
        let mut trees = Vec::with_capacity(Self::chunk_count(n, chunk));
        for t in 0..Self::chunk_count(n, chunk) {
            let span = Self::chunk_span(n, chunk, t);
            let (tree, built) = match fault_in(t, &span) {
                Some(tree) if tree.span() == span && tree.verify() => (tree, false),
                _ => (VpTree::build(values, span, params), true),
            };
            persist(t, &tree, built);
            trees.push(tree);
        }
        Self { n, chunk, trees }
    }

    /// Reassembles a forest from previously persisted trees: `None`
    /// unless the trees exactly cover `n` items in order at the given
    /// geometry.
    pub fn from_trees(n: usize, chunk: usize, trees: Vec<VpTree>) -> Option<Self> {
        let chunk = chunk.max(1);
        if trees.len() != Self::chunk_count(n, chunk) {
            return None;
        }
        for (t, tree) in trees.iter().enumerate() {
            if tree.span() != Self::chunk_span(n, chunk, t) {
                return None;
            }
        }
        Some(Self { n, chunk, trees })
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the forest covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Items per chunk.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The chunk trees, in item order.
    pub fn trees(&self) -> &[VpTree] {
        &self.trees
    }
}

/// Whether the pruned (metric) search mode is sound for `values`: true
/// exactly when every segment has the same length, making the
/// dissimilarity `canberra_sum / len` — a true metric. Vacuously true
/// for fewer than two segments.
pub fn metric_eligible(values: &[&[u8]]) -> bool {
    match values.first() {
        None => true,
        Some(first) => values.iter().all(|v| v.len() == first.len()),
    }
}

/// A non-NaN f64 with a total order, for the bounded k-NN max-heap.
#[derive(PartialEq)]
pub(crate) struct Cand(pub(crate) f64);

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("dissimilarities are not NaN")
    }
}

/// The [`NeighborProvider`] over a [`VpForest`]: pruned metric search
/// when [`metric_eligible`] holds, exact linear-scan fallback otherwise.
/// Either way, O(u) memory per query and bit-identical answers to the
/// matrix oracle.
#[derive(Debug, Clone, Copy)]
pub struct VpProvider<'a> {
    values: &'a [&'a [u8]],
    params: DissimParams,
    forest: &'a VpForest,
    lut: &'static CanberraLut,
    prunable: bool,
    swar: bool,
}

impl<'a> VpProvider<'a> {
    /// Pairs segment `values` with their forest.
    ///
    /// # Panics
    ///
    /// Panics if the forest covers a different item count.
    pub fn new(values: &'a [&'a [u8]], params: &DissimParams, forest: &'a VpForest) -> Self {
        assert_eq!(
            values.len(),
            forest.len(),
            "forest and values must cover the same items"
        );
        Self {
            values,
            params: *params,
            forest,
            lut: CanberraLut::global(),
            prunable: metric_eligible(values),
            swar: false,
        }
    }

    /// Toggles the opt-in SWAR kernel fast path for distance
    /// evaluations (bit-identical to the default kernel; see
    /// [`dissimilarity_swar`]).
    pub fn with_swar(mut self, swar: bool) -> Self {
        self.swar = swar;
        self
    }

    /// Whether queries run the pruned metric search (uniform segment
    /// lengths) rather than the exact linear-scan fallback.
    pub fn prunable(&self) -> bool {
        self.prunable
    }

    #[inline]
    fn dist(&self, i: usize, j: usize) -> f64 {
        if self.swar {
            dissimilarity_swar(self.values[i], self.values[j], &self.params, self.lut)
        } else {
            dissimilarity_kernel(self.values[i], self.values[j], &self.params, self.lut)
        }
    }

    /// Collects all in-range items of one tree via triangle pruning.
    /// `stack` is caller-provided traversal scratch (cleared here) so
    /// batched queries can reuse one allocation across thousands of
    /// tree walks.
    fn range_tree(
        &self,
        tree: &VpTree,
        q: usize,
        eps: f64,
        out: &mut Vec<(f64, u32)>,
        stack: &mut Vec<u32>,
    ) {
        stack.clear();
        stack.push(tree.root());
        while let Some(ni) = stack.pop() {
            if ni == NO_NODE {
                continue;
            }
            let node = &tree.nodes()[ni as usize];
            let d = self.dist(q, node.item as usize);
            if d <= eps && node.item as usize != q {
                out.push((d, node.item));
            }
            if node.inside == NO_NODE && node.outside == NO_NODE {
                continue;
            }
            // Inside items x have d(v, x) <= threshold; a hit needs
            // d(v, x) >= d - eps by the triangle inequality.
            if d - eps <= node.threshold + PRUNE_SLACK {
                stack.push(node.inside);
            }
            // Outside items have d(v, x) >= threshold and a hit needs
            // d(v, x) <= d + eps.
            if d + eps >= node.threshold - PRUNE_SLACK {
                stack.push(node.outside);
            }
        }
    }

    /// Folds one tree into the bounded k-NN max-heap, pruning with the
    /// current k-th-best bound. `stack` is caller-provided traversal
    /// scratch, cleared here.
    fn knn_tree(
        &self,
        tree: &VpTree,
        q: usize,
        k: usize,
        heap: &mut BinaryHeap<Cand>,
        stack: &mut Vec<u32>,
    ) {
        stack.clear();
        stack.push(tree.root());
        while let Some(ni) = stack.pop() {
            if ni == NO_NODE {
                continue;
            }
            let node = &tree.nodes()[ni as usize];
            let d = self.dist(q, node.item as usize);
            if node.item as usize != q {
                if heap.len() < k {
                    heap.push(Cand(d));
                } else if d < heap.peek().expect("heap is non-empty").0 {
                    heap.push(Cand(d));
                    heap.pop();
                }
            }
            if node.inside == NO_NODE && node.outside == NO_NODE {
                continue;
            }
            // The bound only shrinks as better candidates arrive, so
            // reading it after the candidate update is conservative.
            let tau = if heap.len() == k {
                heap.peek().expect("heap is non-empty").0
            } else {
                f64::INFINITY
            };
            if d - tau <= node.threshold + PRUNE_SLACK {
                stack.push(node.inside);
            }
            if d + tau >= node.threshold - PRUNE_SLACK {
                stack.push(node.outside);
            }
        }
    }

    /// One full ε-range query — all chunk trees when prunable, the
    /// exact linear fallback otherwise — writing the sorted result into
    /// `out` and borrowing the traversal `stack`.
    fn range_query(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>, stack: &mut Vec<u32>) {
        out.clear();
        if self.prunable {
            for tree in self.forest.trees() {
                self.range_tree(tree, i, eps, out, stack);
            }
        } else {
            // Hoist the per-query kernel setup (penalty, LUT row keys)
            // out of the candidate loop; `QueryDist::dist` is
            // bit-identical to the per-pair kernel call.
            let qd = QueryDist::new(self.values[i], &self.params, self.swar);
            for (j, v) in self.values.iter().enumerate() {
                if j == i {
                    continue;
                }
                let d = qd.dist(v);
                if d <= eps {
                    out.push((d, j as u32));
                }
            }
        }
        // Match the oracle's (dissimilarity, index) emission order.
        out.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("dissimilarities are not NaN")
                .then_with(|| a.1.cmp(&b.1))
        });
    }

    /// One full k-NN query with caller-provided scratch; `k` must
    /// already be clamped to `[1, n − 1]` with `n >= 2`.
    fn knn_query(
        &self,
        i: usize,
        k: usize,
        heap: &mut BinaryHeap<Cand>,
        stack: &mut Vec<u32>,
    ) -> f64 {
        if self.prunable {
            heap.clear();
            for tree in self.forest.trees() {
                self.knn_tree(tree, i, k, heap, stack);
            }
            heap.peek().expect("k >= 1 and n >= 2").0
        } else {
            let qd = QueryDist::new(self.values[i], &self.params, self.swar);
            let mut dists: Vec<f64> = self
                .values
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| qd.dist(v))
                .collect();
            let (_, kth, _) = dists.select_nth_unstable_by(k - 1, |a, b| {
                a.partial_cmp(b).expect("dissimilarities are not NaN")
            });
            *kth
        }
    }
}

impl NeighborProvider for VpProvider<'_> {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn neighbors_within(&self, i: usize, eps: f64, out: &mut Vec<(f64, u32)>) {
        let mut stack = Vec::new();
        self.range_query(i, eps, out, &mut stack);
    }

    fn knn(&self, i: usize, k: usize) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return f64::INFINITY;
        }
        let k = k.clamp(1, n - 1);
        let mut heap = BinaryHeap::with_capacity(k + 1);
        let mut stack = Vec::new();
        self.knn_query(i, k, &mut heap, &mut stack)
    }

    fn pair(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.dist(i, j)
    }

    /// Native batch override: queries fan out over the `parkit` pool
    /// with one traversal stack per worker chunk, so a batched range
    /// sweep performs zero per-query allocations on the hot path.
    /// Bit-identical to per-point calls (disjoint result slots, and the
    /// scratch is cleared per query).
    fn neighbors_within_batch(
        &self,
        queries: &[usize],
        eps: f64,
        threads: usize,
    ) -> Vec<Vec<(f64, u32)>>
    where
        Self: Sync,
    {
        let mut results: Vec<Vec<(f64, u32)>> = vec![Vec::new(); queries.len()];
        if threads <= 1 || queries.len() < 2 {
            let mut stack = Vec::new();
            for (slot, &q) in results.iter_mut().zip(queries) {
                self.range_query(q, eps, slot, &mut stack);
            }
            return results;
        }
        let slots = SendSlotPtr(results.as_mut_ptr());
        parkit::for_each_chunk(threads, queries.len(), BATCH_MIN_CHUNK, |chunk| {
            let slots = &slots;
            let mut stack = Vec::new();
            for qi in chunk {
                // SAFETY: slot `qi` belongs to query `qi` alone and the
                // scheduler hands out each query exactly once.
                let out = unsafe { &mut *slots.0.add(qi) };
                self.range_query(queries[qi], eps, out, &mut stack);
            }
        });
        results
    }

    /// Native batch override: per-worker reusable candidate heap and
    /// traversal stack.
    fn knn_batch(&self, queries: &[usize], k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        let n = self.values.len();
        if n < 2 {
            return vec![f64::INFINITY; queries.len()];
        }
        let k = k.clamp(1, n - 1);
        let mut results = vec![0.0f64; queries.len()];
        if threads <= 1 || queries.len() < 2 {
            let mut heap = BinaryHeap::with_capacity(k + 1);
            let mut stack = Vec::new();
            for (slot, &q) in results.iter_mut().zip(queries) {
                *slot = self.knn_query(q, k, &mut heap, &mut stack);
            }
            return results;
        }
        let slots = SendSlotPtr(results.as_mut_ptr());
        parkit::for_each_chunk(threads, queries.len(), BATCH_MIN_CHUNK, |chunk| {
            let slots = &slots;
            let mut heap = BinaryHeap::with_capacity(k + 1);
            let mut stack = Vec::new();
            for qi in chunk {
                // SAFETY: disjoint slots, each handed out exactly once.
                unsafe {
                    *slots.0.add(qi) = self.knn_query(queries[qi], k, &mut heap, &mut stack);
                }
            }
        });
        results
    }

    fn knn_dissimilarities_parallel(&self, k: usize, threads: usize) -> Vec<f64>
    where
        Self: Sync,
    {
        let queries: Vec<usize> = (0..self.len()).collect();
        self.knn_batch(&queries, k, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CondensedMatrix;
    use crate::neighbor::NeighborIndex;
    use crate::provider::IndexedProvider;

    const P: DissimParams = DissimParams {
        length_penalty: 0.59,
    };

    /// Uniform-length corpus (metric-eligible): clustered 8-byte
    /// segments with noise.
    fn uniform_corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let base = (i % 5) * 40;
                (0..8)
                    .map(|k| ((base + k * 3 + (i * 7) % 4) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    /// Mixed-length corpus (fallback mode).
    fn mixed_corpus(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let len = [0usize, 1, 2, 3, 4, 4, 7, 8, 12][i % 9];
                (0..len)
                    .map(|k| ((i * 31 + k * 17 + i * k) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn vals(segs: &[Vec<u8>]) -> Vec<&[u8]> {
        segs.iter().map(|s| &s[..]).collect()
    }

    fn oracle(values: &[&[u8]]) -> (CondensedMatrix, NeighborIndex) {
        let m = CondensedMatrix::build_segments(values, &P, 1);
        let idx = NeighborIndex::build(&m);
        (m, idx)
    }

    fn assert_matches_oracle(values: &[&[u8]], provider: &VpProvider<'_>, label: &str) {
        let (m, idx) = oracle(values);
        let ip = IndexedProvider::new(&m, &idx);
        let n = values.len();
        let mut got = Vec::new();
        let mut want = Vec::new();
        let epss = [0.0, 0.05, 0.2, 0.45, 0.8, 2.0];
        for i in 0..n {
            for &eps in &epss {
                provider.neighbors_within(i, eps, &mut got);
                ip.neighbors_within(i, eps, &mut want);
                assert_eq!(got.len(), want.len(), "{label}: item {i}, eps {eps}");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "{label}: item {i}, eps {eps}");
                    assert_eq!(a.1, b.1, "{label}: item {i}, eps {eps}");
                }
            }
            for k in [1usize, 2, 5, n.saturating_sub(1).max(1), n + 3] {
                assert_eq!(
                    provider.knn(i, k).to_bits(),
                    ip.knn(i, k).to_bits(),
                    "{label}: item {i}, k {k}"
                );
            }
            for j in 0..n {
                assert_eq!(
                    provider.pair(i, j).to_bits(),
                    ip.pair(i, j).to_bits(),
                    "{label}: pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn pruned_search_matches_oracle_bitwise() {
        let segs = uniform_corpus(120);
        let values = vals(&segs);
        assert!(metric_eligible(&values));
        for chunk in [7usize, 32, 120, 500] {
            let forest = VpForest::build(&values, &P, chunk);
            let provider = VpProvider::new(&values, &P, &forest);
            assert!(provider.prunable());
            assert_matches_oracle(&values, &provider, &format!("chunk {chunk}"));
        }
    }

    #[test]
    fn fallback_mode_matches_oracle_bitwise() {
        let segs = mixed_corpus(60);
        let values = vals(&segs);
        assert!(!metric_eligible(&values));
        let forest = VpForest::build(&values, &P, 16);
        let provider = VpProvider::new(&values, &P, &forest);
        assert!(!provider.prunable());
        assert_matches_oracle(&values, &provider, "fallback");
    }

    #[test]
    fn swar_path_matches_oracle_bitwise() {
        let segs = uniform_corpus(80);
        let values = vals(&segs);
        let forest = VpForest::build(&values, &P, 25);
        let provider = VpProvider::new(&values, &P, &forest).with_swar(true);
        assert_matches_oracle(&values, &provider, "swar");
    }

    #[test]
    fn duplicate_heavy_corpus_matches_oracle() {
        // Many identical segments: zero-distance ties everywhere.
        let segs: Vec<Vec<u8>> = (0..40).map(|i| vec![(i % 3) as u8 * 100; 6]).collect();
        let values = vals(&segs);
        let forest = VpForest::build(&values, &P, 8);
        let provider = VpProvider::new(&values, &P, &forest);
        assert!(provider.prunable());
        assert_matches_oracle(&values, &provider, "duplicates");
    }

    #[test]
    fn batch_queries_match_scalar_bitwise() {
        for (label, segs) in [("uniform", uniform_corpus(90)), ("mixed", mixed_corpus(45))] {
            let values = vals(&segs);
            let forest = VpForest::build(&values, &P, 16);
            for swar in [false, true] {
                let p = VpProvider::new(&values, &P, &forest).with_swar(swar);
                let queries: Vec<usize> = (0..values.len()).rev().chain([0, 7, 7]).collect();
                for threads in [1usize, 4] {
                    let tag = format!("{label}, swar {swar}, threads {threads}");
                    for eps in [0.0, 0.2, 0.8] {
                        let regions = p.neighbors_within_batch(&queries, eps, threads);
                        let mut want = Vec::new();
                        for (&q, got) in queries.iter().zip(&regions) {
                            p.neighbors_within(q, eps, &mut want);
                            assert_eq!(got.len(), want.len(), "{tag}, query {q}, eps {eps}");
                            for (a, b) in got.iter().zip(&want) {
                                assert_eq!(a.0.to_bits(), b.0.to_bits(), "{tag}, query {q}");
                                assert_eq!(a.1, b.1, "{tag}, query {q}");
                            }
                        }
                    }
                    for k in [1usize, 4, values.len() - 1] {
                        let got = p.knn_batch(&queries, k, threads);
                        for (&q, d) in queries.iter().zip(&got) {
                            assert_eq!(
                                d.to_bits(),
                                p.knn(q, k).to_bits(),
                                "{tag}, query {q}, k {k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forest_geometry_is_exhaustive_and_disjoint() {
        for n in [0usize, 1, 2, 7, 20, 100] {
            for chunk in [1usize, 3, 7, 25] {
                let count = VpForest::chunk_count(n, chunk);
                let mut next = 0;
                for t in 0..count {
                    let span = VpForest::chunk_span(n, chunk, t);
                    assert_eq!(span.start, next, "n = {n}, chunk = {chunk}");
                    assert!(!span.is_empty());
                    next = span.end;
                }
                assert_eq!(next, n, "n = {n}, chunk = {chunk}");
            }
        }
    }

    #[test]
    fn growth_reuses_complete_chunk_trees() {
        let segs = uniform_corpus(41);
        let values = vals(&segs);
        let chunk = 6;
        let old_n = 27; // boundary inside chunk 4 (items 24..27 clamped)
        let old = VpForest::build(&values[..old_n], &P, chunk);

        let mut built = Vec::new();
        let grown = VpForest::build_with(
            &values,
            &P,
            chunk,
            |t, span| {
                old.trees()
                    .get(t)
                    .filter(|tree| tree.span() == *span)
                    .cloned()
            },
            |t, _tree, was_built| {
                if was_built {
                    built.push(t);
                }
            },
        );
        assert_eq!(built, vec![4, 5, 6]);
        let cold = VpForest::build(&values, &P, chunk);
        assert_eq!(grown, cold, "chunk append must be bit-identical");
    }

    #[test]
    fn damaged_fault_in_degrades_to_rebuild() {
        let segs = uniform_corpus(19);
        let values = vals(&segs);
        let good = VpForest::build(&values, &P, 5);
        let mut rebuilt = 0;
        let warm = VpForest::build_with(
            &values,
            &P,
            5,
            |t, _span| {
                let tree = &good.trees()[t];
                let mut nodes = tree.nodes().to_vec();
                if t == 1 {
                    nodes[0].threshold += 1.0; // corrupt; checksum now stale
                }
                Some(VpTree {
                    span: tree.span(),
                    root: tree.root(),
                    nodes,
                    checksum: tree.checksum(),
                })
            },
            |_, _, built| {
                if built {
                    rebuilt += 1;
                }
            },
        );
        assert_eq!(rebuilt, 1, "only the damaged tree is rebuilt");
        assert_eq!(warm, good);
    }

    #[test]
    fn from_parts_validates_structure_and_checksum() {
        let segs = uniform_corpus(12);
        let values = vals(&segs);
        let forest = VpForest::build(&values, &P, 5);
        let tree = &forest.trees()[1];
        let ok = VpTree::from_parts(
            tree.span(),
            tree.root(),
            tree.nodes().to_vec(),
            tree.checksum(),
        );
        assert_eq!(ok.as_ref(), Some(tree));
        // Wrong node count.
        assert!(
            VpTree::from_parts(tree.span(), tree.root(), Vec::new(), tree.checksum()).is_none()
        );
        // Wrong checksum.
        assert!(VpTree::from_parts(
            tree.span(),
            tree.root(),
            tree.nodes().to_vec(),
            tree.checksum() ^ 1
        )
        .is_none());
        // Out-of-bounds child pointer.
        let mut bad = tree.nodes().to_vec();
        bad[0].inside = 99;
        assert!(VpTree::from_parts(tree.span(), tree.root(), bad, tree.checksum()).is_none());
        // Cyclic child pointer must be rejected, not looped on.
        let mut cyc = tree.nodes().to_vec();
        cyc[0].inside = tree.root();
        assert!(VpTree::from_parts(tree.span(), tree.root(), cyc, tree.checksum()).is_none());
    }

    #[test]
    fn from_trees_validates_coverage() {
        let segs = uniform_corpus(10);
        let values = vals(&segs);
        let forest = VpForest::build(&values, &P, 4);
        let trees = forest.trees().to_vec();
        assert!(VpForest::from_trees(10, 4, trees.clone()).is_some());
        assert!(VpForest::from_trees(10, 3, trees.clone()).is_none());
        assert!(VpForest::from_trees(11, 4, trees.clone()).is_none());
        let mut missing = trees;
        missing.pop();
        assert!(VpForest::from_trees(10, 4, missing).is_none());
    }

    #[test]
    fn tiny_inputs() {
        let empty = VpForest::build(&[], &P, 4);
        assert!(empty.is_empty());
        assert!(empty.trees().is_empty());
        let one_seg: Vec<&[u8]> = vec![b"abcd"];
        let one = VpForest::build(&one_seg, &P, 4);
        assert_eq!(one.len(), 1);
        let provider = VpProvider::new(&one_seg, &P, &one);
        assert_eq!(provider.knn(0, 1), f64::INFINITY);
        let mut out = vec![(0.0, 0u32)];
        provider.neighbors_within(0, 10.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn metric_eligibility() {
        let a: Vec<&[u8]> = vec![b"abcd", b"efgh", b"ijkl"];
        assert!(metric_eligible(&a));
        let b: Vec<&[u8]> = vec![b"abcd", b"efg"];
        assert!(!metric_eligible(&b));
        assert!(metric_eligible(&[]));
        assert!(metric_eligible(&[b"".as_slice(), b""]));
    }
}
