//! Property-based tests for the length-stratified neighbor backend:
//! the penalty-derived lower bound never exceeds the true
//! dissimilarity (the soundness condition that makes stratum skipping
//! exact), and stratified range / k-NN answers equal a brute-force
//! linear scan bit for bit on arbitrary mixed-length corpora and
//! arbitrary penalties.

use dissim::{
    dissimilarity, length_lower_bound, DissimParams, NeighborProvider, StrataIndex,
    StratifiedProvider,
};
use proptest::prelude::*;

/// A random mixed-length segment set: up to 24 values, lengths 0..12,
/// arbitrary bytes.
fn segment_set() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 4..24)
}

/// A random valid length penalty. The pipeline default is 1.0;
/// anything non-negative and finite is admissible.
fn penalty() -> impl Strategy<Value = f64> {
    (0u8..3, 0.0f64..4.0).prop_map(|(tag, x)| match tag {
        0 => 0.0,
        1 => 1.0,
        _ => x,
    })
}

/// The brute-force range answer: every exact dissimilarity within
/// `eps`, sorted by `(dissimilarity, index)` — the contract every
/// backend is pinned against.
fn linear_range(values: &[Vec<u8>], params: &DissimParams, i: usize, eps: f64) -> Vec<(f64, u32)> {
    let mut out: Vec<(f64, u32)> = values
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(j, v)| (dissimilarity(&values[i], v, params), j as u32))
        .filter(|&(d, _)| d <= eps)
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    out
}

/// The brute-force k-th nearest dissimilarity.
fn linear_knn(values: &[Vec<u8>], params: &DissimParams, i: usize, k: usize) -> f64 {
    let n = values.len();
    if n < 2 {
        return f64::INFINITY;
    }
    let mut ds: Vec<f64> = (0..n)
        .filter(|&j| j != i)
        .map(|j| dissimilarity(&values[i], &values[j], params))
        .collect();
    ds.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    ds[k.clamp(1, n - 1) - 1]
}

proptest! {
    /// Soundness of the cross-stratum bound: for every pair of values
    /// the penalty-derived lower bound on their length gap never
    /// exceeds the exact dissimilarity — bitwise `lb <= d`, no slack
    /// needed, because the bound reuses the kernel's own rounded
    /// penalty sub-expression.
    #[test]
    fn length_bound_is_a_true_lower_bound(
        values in segment_set(),
        length_penalty in penalty(),
    ) {
        let params = DissimParams { length_penalty };
        for a in &values {
            for b in &values {
                let lb = length_lower_bound(a.len(), b.len(), &params);
                let d = dissimilarity(a, b, &params);
                prop_assert!(
                    lb <= d,
                    "lb({}, {}) = {lb} > d = {d} at penalty {length_penalty}",
                    a.len(),
                    b.len(),
                );
            }
        }
    }

    /// Stratified ε-range queries equal the brute-force linear scan
    /// bit for bit — every emitted distance, every index, the order.
    #[test]
    fn stratified_range_equals_linear_scan(
        values in segment_set(),
        length_penalty in penalty(),
        eps in 0.0f64..1.5,
    ) {
        let params = DissimParams { length_penalty };
        let refs: Vec<&[u8]> = values.iter().map(|v| &v[..]).collect();
        let index = StrataIndex::build(&refs, &params, 8);
        let provider = StratifiedProvider::new(&refs, &params, &index);
        let mut out = Vec::new();
        for i in 0..values.len() {
            provider.neighbors_within(i, eps, &mut out);
            let expected = linear_range(&values, &params, i, eps);
            prop_assert_eq!(out.len(), expected.len(), "query {}", i);
            for (got, want) in out.iter().zip(&expected) {
                prop_assert_eq!(got.0.to_bits(), want.0.to_bits(), "query {}", i);
                prop_assert_eq!(got.1, want.1, "query {}", i);
            }
        }
    }

    /// Stratified k-NN queries equal the brute-force k-th order
    /// statistic bit for bit, across every admissible k.
    #[test]
    fn stratified_knn_equals_linear_scan(
        values in segment_set(),
        length_penalty in penalty(),
    ) {
        let params = DissimParams { length_penalty };
        let refs: Vec<&[u8]> = values.iter().map(|v| &v[..]).collect();
        let index = StrataIndex::build(&refs, &params, 8);
        let provider = StratifiedProvider::new(&refs, &params, &index);
        let n = values.len();
        for k in [1, 2, n / 2, n - 1, n + 5] {
            for i in 0..n {
                let got = provider.knn(i, k);
                let want = linear_knn(&values, &params, i, k);
                prop_assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "query {} k {}: {} vs {}",
                    i, k, got, want
                );
            }
        }
    }
}
