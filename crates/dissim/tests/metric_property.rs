//! Metricity guard for the vantage-point backend: establishes the
//! triangle inequality for plain Canberra (and for the uniform-length
//! dissimilarity the pruned search actually runs on), and pins the
//! exact failure mode of the length-penalized mixed-length variant —
//! the property `dissim::vptree::metric_eligible` gates on.

use dissim::vptree::{metric_eligible, VpForest, VpProvider};
use dissim::{canberra_distance, dissimilarity, DissimParams, NeighborProvider};
use proptest::prelude::*;

/// Slack for accumulated f64 roundoff in the triangle comparison: the
/// real-arithmetic inequality is exact, and per-byte terms are in
/// [0, 1], so rounding across ≤ 40 terms sits orders of magnitude below
/// this. `VpProvider` pads its pruning bounds with the same margin
/// (`dissim::vptree::PRUNE_SLACK`).
const FP_SLACK: f64 = 1e-9;

fn equal_len_triple() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u8>)> {
    (1usize..40).prop_flat_map(|len| {
        (
            prop::collection::vec(any::<u8>(), len),
            prop::collection::vec(any::<u8>(), len),
            prop::collection::vec(any::<u8>(), len),
        )
    })
}

fn mixed_triple() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u8>)> {
    let seg = || prop::collection::vec(any::<u8>(), 0..16);
    (seg(), seg(), seg())
}

proptest! {
    /// Plain Canberra on equal-length vectors is a metric (Lance &
    /// Williams, 1966): the per-byte term |x−y|/(x+y) satisfies the
    /// triangle inequality pointwise and sums preserve it.
    #[test]
    fn plain_canberra_satisfies_triangle_inequality((a, b, c) in equal_len_triple()) {
        let ab = canberra_distance(&a, &b);
        let bc = canberra_distance(&b, &c);
        let ac = canberra_distance(&a, &c);
        prop_assert!(ac <= ab + bc + FP_SLACK, "ac = {} > ab + bc = {}", ac, ab + bc);
    }

    /// On a uniform-length segment set the pipeline dissimilarity
    /// reduces to the plain Canberra distance, so it inherits the
    /// metric property — this is exactly the configuration
    /// `metric_eligible` admits to the pruned vantage-point search.
    #[test]
    fn uniform_length_dissimilarity_is_metric((a, b, c) in equal_len_triple()) {
        let p = DissimParams::default();
        let vals: Vec<&[u8]> = vec![&a, &b, &c];
        prop_assert!(metric_eligible(&vals));
        let ab = dissimilarity(&a, &b, &p);
        let bc = dissimilarity(&b, &c, &p);
        let ac = dissimilarity(&a, &c, &p);
        // Reduces to Canberra bit-for-bit…
        prop_assert_eq!(ab.to_bits(), canberra_distance(&a, &b).to_bits());
        // …and therefore satisfies the triangle inequality.
        prop_assert!(ac <= ab + bc + FP_SLACK, "ac = {} > ab + bc = {}", ac, ab + bc);
        // Symmetry and self-identity round out the metric axioms.
        prop_assert_eq!(ab.to_bits(), dissimilarity(&b, &a, &p).to_bits());
        prop_assert_eq!(dissimilarity(&a, &a, &p), 0.0);
    }

    /// Every triangle violation of the mixed-length variant involves
    /// mixed lengths — so the eligibility gate (uniform lengths) admits
    /// no violating configuration to the pruned search.
    #[test]
    fn triangle_violations_imply_mixed_lengths((a, b, c) in mixed_triple()) {
        let p = DissimParams::default();
        let ab = dissimilarity(&a, &b, &p);
        let bc = dissimilarity(&b, &c, &p);
        let ac = dissimilarity(&a, &c, &p);
        if ac > ab + bc + FP_SLACK {
            let vals: Vec<&[u8]> = vec![&a, &b, &c];
            prop_assert!(
                !metric_eligible(&vals),
                "triangle violated on a uniform-length triple: ac = {}, ab + bc = {}",
                ac,
                ab + bc
            );
        }
    }

    /// The failure mechanism, extracted as a family: embed a short
    /// segment `c` in two equal-length segments `a = c‖pad_a` and
    /// `b = pad_b‖c`. Both window distances to `c` are 0, so
    /// D(a,c) + D(c,b) is bounded by the pure penalty term — with
    /// `length_penalty = 0` it is exactly 0, and the triangle
    /// inequality `D(a,b) <= D(a,c) + D(c,b)` is violated **whenever
    /// `a != b`**. For positive penalties the same violation appears as
    /// soon as D(a,b) exceeds the penalty bound.
    #[test]
    fn embedded_segment_family_breaks_the_penalized_triangle(
        c in prop::collection::vec(any::<u8>(), 2..8),
        pad_a in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut pad_b = pad_a.clone();
        pad_b.reverse();
        let mut a = c.clone();
        a.extend_from_slice(&pad_a);
        let mut b = pad_b;
        b.extend_from_slice(&c);
        let p = DissimParams { length_penalty: 0.0 };
        let sum = dissimilarity(&a, &c, &p) + dissimilarity(&c, &b, &p);
        prop_assert_eq!(sum, 0.0, "both embeddings must be free under zero penalty");
        let ab = dissimilarity(&a, &b, &p);
        if ab > 0.0 {
            // A genuine triangle violation: route through c is free while
            // the direct distance is not.
            let vals: Vec<&[u8]> = vec![&a, &b, &c];
            prop_assert!(!metric_eligible(&vals));
        }
    }
}

/// The pinned minimal counterexample (documented in `vptree`'s module
/// docs): `a = [255, 0]`, `b = [0, 255]` are maximally dissimilar
/// (D = 1), yet `c = [255]` slides to a zero-cost window in both, so
/// D(a,c) = D(c,b) = penalty/2 = 0.295 and the triangle fails by
/// 1 − 0.59 = 0.41. This is why `length_penalty` segments are never
/// admitted to the pruned search.
#[test]
fn pinned_counterexample_breaks_triangle_and_is_gated() {
    let p = DissimParams::default(); // length_penalty = 0.59
    let a: &[u8] = &[255, 0];
    let b: &[u8] = &[0, 255];
    let c: &[u8] = &[255];
    let ab = dissimilarity(a, b, &p);
    let ac = dissimilarity(a, c, &p);
    let cb = dissimilarity(c, b, &p);
    assert_eq!(ab, 1.0);
    assert_eq!(ac, 0.59 / 2.0);
    assert_eq!(cb, 0.59 / 2.0);
    assert!(ab > ac + cb, "triangle must fail: {ab} > {ac} + {cb}");

    // The eligibility gate rejects the configuration…
    let vals: Vec<&[u8]> = vec![a, b, c];
    assert!(!metric_eligible(&vals));

    // …and the vantage-point provider falls back to the exact scan,
    // still answering correctly on the violating triple.
    let forest = VpForest::build(&vals, &p, 2);
    let provider = VpProvider::new(&vals, &p, &forest);
    assert!(!provider.prunable());
    let mut out = Vec::new();
    provider.neighbors_within(0, 0.3, &mut out);
    assert_eq!(out, vec![(0.295, 2)]);
    assert_eq!(provider.knn(0, 1), 0.295);
    assert_eq!(provider.pair(0, 1), 1.0);
}
