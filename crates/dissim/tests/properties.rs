//! Property-based tests for the Canberra dissimilarity and matrices.

use dissim::kernel::{canberra_distance_lut, dissimilarity_kernel, dissimilarity_lut};
use dissim::{
    canberra_distance, dissimilarity, CanberraLut, CondensedMatrix, DissimParams, IndexedProvider,
    NeighborIndex, NeighborProvider, VpForest, VpProvider,
};
use proptest::prelude::*;

/// Asserts one backend's batched answers are bit-identical, in query
/// order, to the scalar calls the defaults are specified against.
fn assert_batch_matches_scalar<P: NeighborProvider + Sync>(
    provider: &P,
    queries: &[usize],
    eps: f64,
    k: usize,
    threads: usize,
) -> Result<(), TestCaseError> {
    let lists = provider.neighbors_within_batch(queries, eps, threads);
    prop_assert_eq!(lists.len(), queries.len());
    let mut want = Vec::new();
    for (&q, got) in queries.iter().zip(&lists) {
        provider.neighbors_within(q, eps, &mut want);
        prop_assert_eq!(got, &want, "range query {} (threads {})", q, threads);
    }
    let knns = provider.knn_batch(queries, k, threads);
    for (&q, d) in queries.iter().zip(&knns) {
        prop_assert_eq!(
            d.to_bits(),
            provider.knn(q, k).to_bits(),
            "knn query {} (k {}, threads {})",
            q,
            k,
            threads
        );
    }
    let parallel: Vec<u64> = provider
        .knn_dissimilarities_parallel(k, threads)
        .iter()
        .map(|d| d.to_bits())
        .collect();
    let scalar: Vec<u64> = provider
        .knn_dissimilarities(k)
        .iter()
        .map(|d| d.to_bits())
        .collect();
    prop_assert_eq!(parallel, scalar, "knn_dissimilarities (k {})", k);
    Ok(())
}

fn seg() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..40)
}

/// Segment sets stressing the kernel's bucket paths: lengths collide
/// often, and empty and 1-byte segments occur regularly.
fn seg_set() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..10), 0..24)
}

proptest! {
    #[test]
    fn dissimilarity_is_symmetric(a in seg(), b in seg()) {
        let p = DissimParams::default();
        prop_assert_eq!(dissimilarity(&a, &b, &p), dissimilarity(&b, &a, &p));
    }

    #[test]
    fn dissimilarity_is_bounded(a in seg(), b in seg()) {
        let p = DissimParams::default();
        let d = dissimilarity(&a, &b, &p);
        prop_assert!((0.0..=1.0).contains(&d), "d = {}", d);
    }

    #[test]
    fn self_dissimilarity_is_zero(a in seg()) {
        let p = DissimParams::default();
        prop_assert_eq!(dissimilarity(&a, &a, &p), 0.0);
    }

    #[test]
    fn equal_length_matches_canberra(a in prop::collection::vec(any::<u8>(), 1..30)) {
        let mut b = a.clone();
        b.reverse();
        let p = DissimParams::default();
        prop_assert_eq!(dissimilarity(&a, &b, &p), canberra_distance(&a, &b));
    }

    #[test]
    fn substring_beats_random_window(
        needle in prop::collection::vec(any::<u8>(), 2..10),
        pad in prop::collection::vec(any::<u8>(), 1..10),
    ) {
        // A segment embedded in a longer one can never be more dissimilar
        // than the pure penalty bound.
        let mut hay = pad.clone();
        hay.extend_from_slice(&needle);
        let p = DissimParams::default();
        let d = dissimilarity(&needle, &hay, &p);
        let bound = (pad.len() as f64 * p.length_penalty) / hay.len() as f64;
        prop_assert!(d <= bound + 1e-12, "d = {} > bound {}", d, bound);
    }

    #[test]
    fn zero_penalty_ignores_length_for_embedded(
        needle in prop::collection::vec(any::<u8>(), 2..8),
        pad in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut hay = pad.clone();
        hay.extend_from_slice(&needle);
        let p = DissimParams { length_penalty: 0.0 };
        prop_assert_eq!(dissimilarity(&needle, &hay, &p), 0.0);
    }

    #[test]
    fn matrix_is_consistent_with_function(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..12), 2..20),
    ) {
        let p = DissimParams::default();
        let m = CondensedMatrix::build_parallel(segs.len(), 4, |i, j| {
            dissimilarity(&segs[i], &segs[j], &p)
        });
        for i in 0..segs.len() {
            for j in 0..segs.len() {
                let expect = if i == j { 0.0 } else { dissimilarity(&segs[i], &segs[j], &p) };
                prop_assert_eq!(m.get(i, j), expect);
            }
        }
    }

    #[test]
    fn knn_is_monotone_in_k(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 4..16),
    ) {
        let p = DissimParams::default();
        let m = CondensedMatrix::build(segs.len(), |i, j| dissimilarity(&segs[i], &segs[j], &p));
        let k1 = m.knn_dissimilarities(1);
        let k2 = m.knn_dissimilarities(2);
        let k3 = m.knn_dissimilarities(3);
        for i in 0..segs.len() {
            prop_assert!(k1[i] <= k2[i]);
            prop_assert!(k2[i] <= k3[i]);
        }
    }

    #[test]
    fn neighbor_index_range_matches_matrix_scan(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 2..24),
        eps in 0.0f64..1.05,
        threads in 1usize..5,
    ) {
        let p = DissimParams::default();
        let m = CondensedMatrix::build(segs.len(), |i, j| dissimilarity(&segs[i], &segs[j], &p));
        let index = NeighborIndex::build_parallel(&m, threads);
        for i in 0..segs.len() {
            let region = index.range(i, eps);
            // Sorted by dissimilarity, nearest first.
            prop_assert!(region.windows(2).all(|w| w[0].0 <= w[1].0));
            // Entries carry the true matrix dissimilarity.
            for &(d, j) in region {
                prop_assert_eq!(d, m.get(i, j as usize));
            }
            // Same membership as a brute-force row scan.
            let mut members: Vec<usize> = region.iter().map(|&(_, j)| j as usize).collect();
            members.sort_unstable();
            let brute: Vec<usize> = (0..segs.len())
                .filter(|&j| j != i && m.get(i, j) <= eps)
                .collect();
            prop_assert_eq!(members, brute, "item {}, eps {}", i, eps);
        }
    }

    #[test]
    fn kernel_pair_functions_are_bit_identical(
        a in seg(),
        b in seg(),
        penalty in 0.0f64..1.0,
    ) {
        let p = DissimParams { length_penalty: penalty };
        let lut = CanberraLut::global();
        let want = dissimilarity(&a, &b, &p).to_bits();
        prop_assert_eq!(dissimilarity_lut(&a, &b, &p, lut).to_bits(), want);
        prop_assert_eq!(dissimilarity_kernel(&a, &b, &p, lut).to_bits(), want);
        if a.len() == b.len() {
            prop_assert_eq!(
                canberra_distance_lut(&a, &b, lut).to_bits(),
                canberra_distance(&a, &b).to_bits()
            );
        }
    }

    #[test]
    fn build_segments_is_bit_identical_to_naive_build(
        segs in seg_set(),
        threads in 1usize..5,
        penalty in 0.0f64..1.0,
    ) {
        let p = DissimParams { length_penalty: penalty };
        let refs: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let naive = CondensedMatrix::build(refs.len(), |i, j| {
            dissimilarity(refs[i], refs[j], &p)
        });
        // `PartialEq` on CondensedMatrix compares every condensed f64;
        // entries are never NaN and never -0.0, so == is bit equality.
        prop_assert_eq!(CondensedMatrix::build_segments(&refs, &p, threads), naive);
    }

    #[test]
    fn build_segments_handles_uniform_length_sets(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 4), 2..16),
        threads in 1usize..4,
    ) {
        // All segments equal-length: every pair takes the direct-Canberra
        // bucket path.
        let p = DissimParams::default();
        let refs: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let naive = CondensedMatrix::build(refs.len(), |i, j| {
            dissimilarity(refs[i], refs[j], &p)
        });
        prop_assert_eq!(CondensedMatrix::build_segments(&refs, &p, threads), naive);
    }

    #[test]
    fn row_into_matches_per_element_scan(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 2..20),
    ) {
        let p = DissimParams::default();
        let m = CondensedMatrix::build(segs.len(), |i, j| dissimilarity(&segs[i], &segs[j], &p));
        let mut buf = Vec::new();
        for i in 0..segs.len() {
            m.row_into(i, &mut buf);
            let reference: Vec<f64> =
                (0..segs.len()).filter(|&j| j != i).map(|j| m.get(i, j)).collect();
            prop_assert_eq!(&buf, &reference, "row {}", i);
        }
    }

    #[test]
    fn batch_queries_match_scalar_across_backends(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 2..24),
        eps in 0.0f64..1.05,
        k in 1usize..4,
        four_threads in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let p = DissimParams::default();
        let refs: Vec<&[u8]> = segs.iter().map(|s| &s[..]).collect();
        let m = CondensedMatrix::build_segments(&refs, &p, 1);
        let index = NeighborIndex::build(&m);
        // Small chunk so multi-chunk forests occur even at these sizes.
        let forest = VpForest::build(&refs, &p, 7);
        // Reversed order plus duplicates: scheduling must not reorder
        // or conflate answers.
        let queries: Vec<usize> = (0..refs.len()).rev().chain([0, 0]).collect();
        assert_batch_matches_scalar(&IndexedProvider::new(&m, &index), &queries, eps, k, threads)?;
        assert_batch_matches_scalar(&VpProvider::new(&refs, &p, &forest), &queries, eps, k, threads)?;
        assert_batch_matches_scalar(
            &VpProvider::new(&refs, &p, &forest).with_swar(true),
            &queries,
            eps,
            k,
            threads,
        )?;
    }

    #[test]
    fn neighbor_index_knn_matches_matrix(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..10), 4..16),
        k in 1usize..4,
    ) {
        let p = DissimParams::default();
        let m = CondensedMatrix::build(segs.len(), |i, j| dissimilarity(&segs[i], &segs[j], &p));
        let index = NeighborIndex::build(&m);
        prop_assert_eq!(index.knn_dissimilarities(k), m.knn_dissimilarities(k));
    }
}
