//! Additional clustering quality indices: the Adjusted Rand Index and
//! the entropy-based homogeneity / completeness / V-measure family.
//!
//! The paper reports pairwise precision/recall/F¼ (see the crate root);
//! these standard indices complement them in the benchmark output so
//! results can be compared against other clustering literature.

use std::collections::HashMap;
use std::hash::Hash;

/// A contingency table between predicted clusters and true classes.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// `counts[cluster][class]` occurrence counts.
    counts: Vec<HashMap<usize, u64>>,
    /// Total items per cluster.
    cluster_totals: Vec<u64>,
    /// Total items per class (indexed densely).
    class_totals: Vec<u64>,
    /// Overall item count.
    n: u64,
}

impl Contingency {
    /// Builds the table from clusters of labels. Noise can be modelled
    /// as singleton clusters by the caller (or excluded).
    pub fn from_clusters<L: Eq + Hash + Clone>(clusters: &[Vec<L>]) -> Self {
        let mut class_ids: HashMap<L, usize> = HashMap::new();
        let mut counts: Vec<HashMap<usize, u64>> = Vec::with_capacity(clusters.len());
        let mut cluster_totals = Vec::with_capacity(clusters.len());
        let mut class_totals: Vec<u64> = Vec::new();
        let mut n = 0u64;
        for members in clusters {
            let mut row: HashMap<usize, u64> = HashMap::new();
            for l in members {
                let next_id = class_ids.len();
                let id = *class_ids.entry(l.clone()).or_insert(next_id);
                if id == class_totals.len() {
                    class_totals.push(0);
                }
                *row.entry(id).or_insert(0) += 1;
                class_totals[id] += 1;
                n += 1;
            }
            cluster_totals.push(members.len() as u64);
            counts.push(row);
        }
        Self {
            counts,
            cluster_totals,
            class_totals,
            n,
        }
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The Adjusted Rand Index in `[-1, 1]`; 1 for a perfect match,
    /// ~0 for random assignments. Returns 1.0 for degenerate inputs
    /// (fewer than two items).
    pub fn adjusted_rand_index(&self) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let choose2 = |x: u64| (x * x.saturating_sub(1) / 2) as f64;
        let sum_ij: f64 = self
            .counts
            .iter()
            .flat_map(|row| row.values())
            .map(|&c| choose2(c))
            .sum();
        let sum_a: f64 = self.cluster_totals.iter().map(|&c| choose2(c)).sum();
        let sum_b: f64 = self.class_totals.iter().map(|&c| choose2(c)).sum();
        let total = choose2(self.n);
        let expected = sum_a * sum_b / total;
        let max_index = (sum_a + sum_b) / 2.0;
        if (max_index - expected).abs() < 1e-12 {
            1.0
        } else {
            (sum_ij - expected) / (max_index - expected)
        }
    }

    /// Homogeneity in `[0, 1]`: each cluster contains only members of a
    /// single class. 1.0 for degenerate inputs.
    pub fn homogeneity(&self) -> f64 {
        let h_c_given_k = self.conditional_entropy_class_given_cluster();
        let h_c = entropy(&self.class_totals, self.n);
        if h_c == 0.0 {
            1.0
        } else {
            // Clamp away float error (H(C|K) <= H(C) mathematically).
            (1.0 - h_c_given_k / h_c).clamp(0.0, 1.0)
        }
    }

    /// Completeness in `[0, 1]`: all members of a class are assigned to
    /// the same cluster. 1.0 for degenerate inputs.
    pub fn completeness(&self) -> f64 {
        // Symmetric to homogeneity with clusters and classes swapped.
        let mut h_k_given_c = 0.0;
        let n = self.n as f64;
        // Build class -> cluster counts.
        let mut per_class: HashMap<usize, Vec<u64>> = HashMap::new();
        for (cluster, row) in self.counts.iter().enumerate() {
            for (&class, &c) in row {
                let v = per_class.entry(class).or_default();
                if v.len() <= cluster {
                    v.resize(cluster + 1, 0);
                }
                v[cluster] += c;
            }
        }
        for (class, cluster_counts) in &per_class {
            let class_total = self.class_totals[*class] as f64;
            for &c in cluster_counts {
                if c > 0 {
                    let c = c as f64;
                    h_k_given_c -= c / n * (c / class_total).log2();
                }
            }
        }
        let h_k = entropy(&self.cluster_totals, self.n);
        if h_k == 0.0 {
            1.0
        } else {
            (1.0 - h_k_given_c / h_k).clamp(0.0, 1.0)
        }
    }

    /// The V-measure: harmonic mean of homogeneity and completeness.
    pub fn v_measure(&self) -> f64 {
        let h = self.homogeneity();
        let c = self.completeness();
        if h + c == 0.0 {
            0.0
        } else {
            2.0 * h * c / (h + c)
        }
    }

    /// Mutual information between the cluster and class partitions, in
    /// nats. 0.0 for degenerate inputs.
    pub fn mutual_information(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut mi = 0.0;
        for (cluster, row) in self.counts.iter().enumerate() {
            let a = self.cluster_totals[cluster] as f64;
            for (&class, &c) in row {
                if c > 0 {
                    let b = self.class_totals[class] as f64;
                    let c = c as f64;
                    mi += c / n * (n * c / (a * b)).ln();
                }
            }
        }
        mi.max(0.0)
    }

    /// The Adjusted Mutual Information with arithmetic-mean
    /// normalization: `(MI − E[MI]) / (mean(H(U), H(V)) − E[MI])`,
    /// where the expectation is taken over the hypergeometric model of
    /// random label permutations with both marginals fixed. 1 for a
    /// perfect match, ~0 for independent partitions. Degenerate inputs
    /// (fewer than two items, or both partitions trivial) score 1.0;
    /// one trivial side against a non-trivial one scores 0.0.
    pub fn adjusted_mutual_information(&self) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let clusters = self.cluster_totals.iter().filter(|&&t| t > 0).count();
        let classes = self.class_totals.iter().filter(|&&t| t > 0).count();
        if clusters <= 1 && classes <= 1 {
            return 1.0;
        }
        let mi = self.mutual_information();
        let emi = self.expected_mutual_information();
        let h_u = entropy_nats(&self.cluster_totals, self.n);
        let h_v = entropy_nats(&self.class_totals, self.n);
        let normalizer = (h_u + h_v) / 2.0;
        let denominator = normalizer - emi;
        // One trivial partition: MI = EMI = 0, so the ratio is 0/H —
        // defined, and exactly the "no information" answer.
        if denominator.abs() < 1e-15 {
            return 0.0;
        }
        ((mi - emi) / denominator).min(1.0)
    }

    /// `E[MI]` under the permutation (hypergeometric) model: for each
    /// (cluster, class) pair the joint count `nij` ranges over its
    /// feasible support and each value is weighted by its
    /// hypergeometric probability, computed in log space via a
    /// log-factorial table.
    fn expected_mutual_information(&self) -> f64 {
        let n = self.n;
        let nf = n as f64;
        // lnfact[k] = ln(k!), built once as a running sum.
        let mut lnfact = vec![0.0f64; (n + 1) as usize];
        for k in 1..=n as usize {
            lnfact[k] = lnfact[k - 1] + (k as f64).ln();
        }
        let mut emi = 0.0;
        for &a in self.cluster_totals.iter().filter(|&&a| a > 0) {
            for &b in self.class_totals.iter().filter(|&&b| b > 0) {
                let lo = 1.max((a + b).saturating_sub(n));
                let hi = a.min(b);
                for nij in lo..=hi {
                    let term = nij as f64 / nf * (nf * nij as f64 / (a as f64 * b as f64)).ln();
                    let ln_p = lnfact[a as usize]
                        + lnfact[b as usize]
                        + lnfact[(n - a) as usize]
                        + lnfact[(n - b) as usize]
                        - lnfact[n as usize]
                        - lnfact[nij as usize]
                        - lnfact[(a - nij) as usize]
                        - lnfact[(b - nij) as usize]
                        - lnfact[(n + nij - a - b) as usize];
                    emi += term * ln_p.exp();
                }
            }
        }
        emi
    }

    fn conditional_entropy_class_given_cluster(&self) -> f64 {
        let n = self.n as f64;
        let mut h = 0.0;
        for (cluster, row) in self.counts.iter().enumerate() {
            let cluster_total = self.cluster_totals[cluster] as f64;
            for &c in row.values() {
                if c > 0 {
                    let c = c as f64;
                    h -= c / n * (c / cluster_total).log2();
                }
            }
        }
        h
    }
}

fn entropy(totals: &[u64], n: u64) -> f64 {
    let n = n as f64;
    totals
        .iter()
        .filter(|&&t| t > 0)
        .map(|&t| {
            let p = t as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy in nats (the base [`Contingency::mutual_information`] and
/// its expectation share, so the AMI normalizer is consistent).
fn entropy_nats(totals: &[u64], n: u64) -> f64 {
    let n = n as f64;
    totals
        .iter()
        .filter(|&&t| t > 0)
        .map(|&t| {
            let p = t as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let clusters = vec![vec!["a"; 4], vec!["b"; 6]];
        let t = Contingency::from_clusters(&clusters);
        assert!((t.adjusted_rand_index() - 1.0).abs() < 1e-12);
        assert!((t.homogeneity() - 1.0).abs() < 1e-12);
        assert!((t.completeness() - 1.0).abs() < 1e-12);
        assert!((t.v_measure() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_big_cluster_is_complete_but_not_homogeneous() {
        let clusters = vec![vec!["a", "a", "b", "b"]];
        let t = Contingency::from_clusters(&clusters);
        assert!((t.completeness() - 1.0).abs() < 1e-12);
        assert!(t.homogeneity() < 0.5);
        assert!(t.adjusted_rand_index() < 0.5);
    }

    #[test]
    fn singletons_are_homogeneous_but_incomplete() {
        let clusters = vec![vec!["a"], vec!["a"], vec!["b"], vec!["b"]];
        let t = Contingency::from_clusters(&clusters);
        assert!((t.homogeneity() - 1.0).abs() < 1e-12);
        // H(K|C) = 1 bit, H(K) = 2 bits -> completeness = 0.5 exactly.
        assert!((t.completeness() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ari_matches_hand_computed_example() {
        // Classic example: clusters {a,a,b} and {a,b,b}.
        let clusters = vec![vec!["a", "a", "b"], vec!["a", "b", "b"]];
        let t = Contingency::from_clusters(&clusters);
        // sum_ij = C(2,2)+C(1,2)+C(1,2)+C(2,2) = 1+0+0+1 = 2
        // sum_a = 2*C(3,2) = 6, sum_b = 2*C(3,2) = 6, total = C(6,2) = 15
        // expected = 36/15 = 2.4, max = 6 -> ARI = (2-2.4)/(6-2.4) = -1/9
        assert!((t.adjusted_rand_index() - (-1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<Vec<&str>> = vec![];
        let t = Contingency::from_clusters(&empty);
        assert!(t.is_empty());
        assert_eq!(t.adjusted_rand_index(), 1.0);
        assert_eq!(t.v_measure(), 1.0);

        let single = Contingency::from_clusters(&[vec!["x"]]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.adjusted_rand_index(), 1.0);
    }

    /// Builds the contingency from two parallel label vectors: items
    /// are grouped by their `u` label, members carry their `v` label.
    fn from_labels(u: &[usize], v: &[usize]) -> Contingency {
        assert_eq!(u.len(), v.len());
        let max_u = u.iter().copied().max().map_or(0, |m| m + 1);
        let mut clusters = vec![Vec::new(); max_u];
        for (i, &cu) in u.iter().enumerate() {
            clusters[cu].push(v[i]);
        }
        Contingency::from_clusters(&clusters)
    }

    #[test]
    fn ami_is_one_for_identical_partitions() {
        let u = [0, 0, 1, 1, 2, 2];
        let t = from_labels(&u, &u);
        assert!((t.adjusted_mutual_information() - 1.0).abs() < 1e-12);
        // Renaming labels must not matter.
        let renamed = [2, 2, 0, 0, 1, 1];
        let t = from_labels(&u, &renamed);
        assert!((t.adjusted_mutual_information() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ami_degenerate_cases() {
        // Both trivial (one cluster, one class): perfect agreement.
        let t = from_labels(&[0, 0, 0], &[0, 0, 0]);
        assert_eq!(t.adjusted_mutual_information(), 1.0);
        // Fewer than two items.
        let t = from_labels(&[0], &[0]);
        assert_eq!(t.adjusted_mutual_information(), 1.0);
        let empty: Vec<Vec<usize>> = vec![];
        assert_eq!(
            Contingency::from_clusters(&empty).adjusted_mutual_information(),
            1.0
        );
        // One trivial side against structure: no information, AMI = 0.
        let t = from_labels(&[0, 0, 0, 0], &[0, 0, 1, 1]);
        assert!(t.adjusted_mutual_information().abs() < 1e-12);
        let t = from_labels(&[0, 1, 2, 3], &[0, 0, 0, 0]);
        assert!(t.adjusted_mutual_information().abs() < 1e-12);
    }

    #[test]
    fn ami_is_symmetric() {
        let u = [0, 0, 1, 1, 2];
        let v = [0, 1, 1, 2, 2];
        let a = from_labels(&u, &v).adjusted_mutual_information();
        let b = from_labels(&v, &u).adjusted_mutual_information();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        assert!(a < 1.0);
    }

    /// Pins the closed-form E[MI] against its definition: the mean
    /// mutual information over *every* permutation of one labeling
    /// (both marginals fixed). Exact enumeration at n = 5.
    #[test]
    fn expected_mi_matches_permutation_enumeration() {
        let u = [0usize, 0, 1, 1, 2];
        let v = [0usize, 1, 1, 2, 2];
        let n = u.len();
        // Heap's-algorithm-free enumeration: index permutations by
        // factorial number system.
        let mut total = 0.0;
        let mut count = 0usize;
        let mut perm: Vec<usize> = (0..n).collect();
        loop {
            let shuffled: Vec<usize> = perm.iter().map(|&i| v[i]).collect();
            total += from_labels(&u, &shuffled).mutual_information();
            count += 1;
            // Next lexicographic permutation.
            let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
                break;
            };
            let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).unwrap();
            perm.swap(i, j);
            perm[i + 1..].reverse();
        }
        assert_eq!(count, 120);
        let empirical = total / count as f64;
        let closed_form = from_labels(&u, &v).expected_mutual_information();
        assert!(
            (empirical - closed_form).abs() < 1e-10,
            "enumerated {empirical} vs closed-form {closed_form}"
        );
    }

    #[test]
    fn ami_punishes_independent_partitions() {
        // A balanced 2×2 product structure: knowing u says nothing
        // about v, so MI = 0 — *below* the permutation-model mean, so
        // the adjusted index goes negative (chance-level or worse),
        // while staying bounded.
        let u = [0, 0, 1, 1, 0, 0, 1, 1];
        let v = [0, 1, 0, 1, 0, 1, 0, 1];
        let t = from_labels(&u, &v);
        assert!(t.mutual_information().abs() < 1e-12);
        let ami = t.adjusted_mutual_information();
        assert!(ami < 0.0, "ami = {ami}");
        assert!(ami > -1.5, "ami = {ami}");
        // A partial agreement stays strictly between chance and 1.
        let v2 = [0, 0, 0, 1, 0, 0, 1, 1];
        let ami = from_labels(&u, &v2).adjusted_mutual_information();
        assert!(ami > 0.0 && ami < 1.0, "ami = {ami}");
    }

    #[test]
    fn v_measure_between_h_and_c() {
        let clusters = vec![vec!["a", "a", "b"], vec!["b", "b"], vec!["c", "c", "a"]];
        let t = Contingency::from_clusters(&clusters);
        let (h, c, v) = (t.homogeneity(), t.completeness(), t.v_measure());
        assert!(v >= h.min(c) - 1e-12 && v <= h.max(c) + 1e-12);
        assert!((0.0..=1.0).contains(&v));
    }
}
