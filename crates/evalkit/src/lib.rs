#![warn(missing_docs)]
//! Clustering evaluation metrics (paper §IV-A).
//!
//! Precision and recall of a clustering against true labels are defined
//! combinatorially over pairwise assignments (Manning et al.): a true
//! positive is a same-type pair placed in the same cluster, a false
//! positive a cross-type pair placed together, and false negatives are
//! same-type pairs separated across clusters *or* lost to noise. The
//! overall score is `F_β` with `β = ¼`, weighting precision four times
//! recall — precise clusters matter more than complete ones for data
//! type analysis. Coverage is the fraction of message bytes the
//! inference says anything about.
//!
//! # Examples
//!
//! ```
//! use evalkit::{pair_counts, ClusterMetrics};
//!
//! // Two clusters: one pure, one mixed; one noise item.
//! let clusters = vec![vec!["ts", "ts", "ts"], vec!["id", "chars"]];
//! let noise = vec!["ts"];
//! let counts = pair_counts(&clusters, &noise);
//! let m = ClusterMetrics::from_counts(&counts);
//! assert!(m.precision > 0.7 && m.precision < 0.8); // 3 of 4 pairs correct
//! ```

pub mod indices;

pub use indices::Contingency;

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Pairwise assignment counts of a clustering against true labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PairCounts {
    /// Same-type pairs correctly placed in the same cluster.
    pub tp: u64,
    /// Cross-type pairs wrongly placed in the same cluster.
    pub fp: u64,
    /// Same-type pairs separated (across clusters or into noise),
    /// counted in halves internally and rounded here.
    pub fn_: u64,
    /// Cross-type pairs correctly separated.
    pub tn: u64,
}

/// Computes [`PairCounts`] from clusters and noise, following the
/// paper's combinatorial definitions (including both false-negative
/// kinds: cross-cluster splits and noise assignments).
pub fn pair_counts<L: Eq + Hash + Clone>(clusters: &[Vec<L>], noise: &[L]) -> PairCounts {
    // Per-cluster and per-noise type histograms.
    let histogram = |items: &[L]| -> HashMap<L, u64> {
        let mut h = HashMap::new();
        for l in items {
            *h.entry(l.clone()).or_insert(0u64) += 1;
        }
        h
    };
    let cluster_hists: Vec<HashMap<L, u64>> = clusters.iter().map(|c| histogram(c)).collect();
    let noise_hist = histogram(noise);

    // Totals per type over clusters AND noise.
    let mut totals: HashMap<L, u64> = HashMap::new();
    for h in cluster_hists.iter().chain(std::iter::once(&noise_hist)) {
        for (l, c) in h {
            *totals.entry(l.clone()).or_insert(0) += c;
        }
    }

    let choose2 = |x: u64| x * x.saturating_sub(1) / 2;

    // Positives: pairs within clusters.
    let mut tp = 0u64;
    let mut positives = 0u64;
    for (members, hist) in clusters.iter().zip(&cluster_hists) {
        positives += choose2(members.len() as u64);
        for c in hist.values() {
            tp += choose2(*c);
        }
    }
    let fp = positives - tp;

    // False negatives (×2 to avoid halves, divided at the end):
    //   (a) same-type pairs split across different clusters,
    //   (b) same-type pairs within the noise,
    //   (c) same-type pairs between noise and anything else.
    let mut fn2 = 0u64;
    for hist in &cluster_hists {
        for (l, &t_il) in hist {
            let t_l = totals[l];
            fn2 += (t_l - t_il) * t_il;
        }
    }
    for (l, &t_nl) in &noise_hist {
        let t_l = totals[l];
        fn2 += 2 * choose2(t_nl);
        fn2 += (t_l - t_nl) * t_nl;
    }
    let fn_ = fn2 / 2;

    // Negatives: all cross-assigned pairs; TN is the remainder.
    let n_items: u64 = clusters.iter().map(|c| c.len() as u64).sum::<u64>() + noise.len() as u64;
    let all_pairs = choose2(n_items);
    let tn = all_pairs - positives - fn_;
    PairCounts { tp, fp, fn_, tn }
}

/// Precision, recall and the paper's `F_¼` score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Pairwise precision `TP / (TP + FP)`; 1.0 for zero positives.
    pub precision: f64,
    /// Pairwise recall `TP / (TP + FN)`; 1.0 for zero true pairs.
    pub recall: f64,
    /// `F_β` with β = ¼ (precision-weighted harmonic mean).
    pub f_score: f64,
}

/// The precision weight the paper uses for its F-score.
pub const PAPER_BETA: f64 = 0.25;

impl ClusterMetrics {
    /// Derives the metrics from pair counts.
    pub fn from_counts(counts: &PairCounts) -> Self {
        let precision = if counts.tp + counts.fp == 0 {
            1.0
        } else {
            counts.tp as f64 / (counts.tp + counts.fp) as f64
        };
        let recall = if counts.tp + counts.fn_ == 0 {
            1.0
        } else {
            counts.tp as f64 / (counts.tp + counts.fn_) as f64
        };
        Self {
            precision,
            recall,
            f_score: f_beta(precision, recall, PAPER_BETA),
        }
    }
}

/// The `F_β` score: `(1 + β²) · P · R / (β² · P + R)`; 0 when both are 0.
pub fn f_beta(precision: f64, recall: f64, beta: f64) -> f64 {
    let b2 = beta * beta;
    let denom = b2 * precision + recall;
    if denom == 0.0 {
        0.0
    } else {
        (1.0 + b2) * precision * recall / denom
    }
}

/// Byte coverage of an inference over a trace (paper §IV-A: "the ratio
/// between the number of inferred bytes and all bytes of all messages").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Coverage {
    /// Bytes the inference assigned to some cluster/type.
    pub covered_bytes: u64,
    /// All payload bytes in the trace.
    pub total_bytes: u64,
}

impl Coverage {
    /// The coverage ratio in `[0, 1]`; 0 for an empty trace.
    pub fn ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.covered_bytes as f64 / self.total_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: enumerate all pairs explicitly.
    fn brute_force<L: Eq + Hash + Clone>(clusters: &[Vec<L>], noise: &[L]) -> PairCounts {
        #[derive(Clone)]
        struct Item<L> {
            label: L,
            cluster: Option<usize>,
        }
        let mut items: Vec<Item<L>> = Vec::new();
        for (ci, c) in clusters.iter().enumerate() {
            for l in c {
                items.push(Item {
                    label: l.clone(),
                    cluster: Some(ci),
                });
            }
        }
        for l in noise {
            items.push(Item {
                label: l.clone(),
                cluster: None,
            });
        }
        let mut counts = PairCounts::default();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let same_type = items[i].label == items[j].label;
                let same_cluster =
                    items[i].cluster.is_some() && items[i].cluster == items[j].cluster;
                match (same_type, same_cluster) {
                    (true, true) => counts.tp += 1,
                    (false, true) => counts.fp += 1,
                    (true, false) => counts.fn_ += 1,
                    (false, false) => counts.tn += 1,
                }
            }
        }
        counts
    }

    #[test]
    fn perfect_clustering() {
        let clusters = vec![vec!["a"; 5], vec!["b"; 3]];
        let counts = pair_counts(&clusters, &[] as &[&str]);
        assert_eq!(
            counts,
            PairCounts {
                tp: 13,
                fp: 0,
                fn_: 0,
                tn: 15
            }
        );
        let m = ClusterMetrics::from_counts(&counts);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f_score, 1.0);
    }

    #[test]
    fn matches_brute_force_on_mixed_cases() {
        let cases: Vec<(Vec<Vec<&str>>, Vec<&str>)> = vec![
            (
                vec![vec!["a", "a", "b"], vec!["b", "b"], vec!["c"]],
                vec!["a", "c"],
            ),
            (vec![], vec!["a", "a", "b"]),
            (vec![vec!["x"]], vec![]),
            (vec![vec!["a", "b", "c", "d"]], vec!["a", "b"]),
            (
                vec![
                    vec!["t", "t", "t", "s"],
                    vec!["t", "s", "s"],
                    vec!["u", "u"],
                ],
                vec!["t", "u", "v"],
            ),
        ];
        for (clusters, noise) in cases {
            let fast = pair_counts(&clusters, &noise);
            let slow = brute_force(&clusters, &noise);
            assert_eq!(fast, slow, "clusters: {clusters:?}, noise: {noise:?}");
        }
    }

    #[test]
    fn noise_only_counts_as_missed_pairs() {
        let counts = pair_counts::<&str>(&[], &["a", "a", "a"]);
        assert_eq!(counts.tp, 0);
        assert_eq!(counts.fn_, 3);
        let m = ClusterMetrics::from_counts(&counts);
        assert_eq!(m.precision, 1.0); // nothing asserted, nothing wrong
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn f_beta_weighting() {
        // With β = ¼, precision dominates.
        let high_p = f_beta(1.0, 0.5, PAPER_BETA);
        let high_r = f_beta(0.5, 1.0, PAPER_BETA);
        assert!(high_p > high_r);
        assert!(high_p > 0.9);
        assert_eq!(f_beta(0.0, 0.0, PAPER_BETA), 0.0);
        // β = 1 is the harmonic mean.
        assert!((f_beta(0.5, 1.0, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_ratio() {
        let c = Coverage {
            covered_bytes: 87,
            total_bytes: 100,
        };
        assert!((c.ratio() - 0.87).abs() < 1e-12);
        assert_eq!(Coverage::default().ratio(), 0.0);
    }

    #[test]
    fn empty_inputs_are_perfect() {
        let counts = pair_counts::<&str>(&[], &[]);
        let m = ClusterMetrics::from_counts(&counts);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
    }
}
