//! Property-based tests for the pairwise clustering metrics.

use evalkit::{f_beta, pair_counts, ClusterMetrics, PairCounts};
use proptest::prelude::*;

fn labels() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..5, 0..15)
}

/// Brute-force pair enumeration used as the oracle.
fn brute_force(clusters: &[Vec<u8>], noise: &[u8]) -> PairCounts {
    let mut items: Vec<(u8, Option<usize>)> = Vec::new();
    for (ci, c) in clusters.iter().enumerate() {
        for &l in c {
            items.push((l, Some(ci)));
        }
    }
    for &l in noise {
        items.push((l, None));
    }
    let mut out = PairCounts::default();
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let same_type = items[i].0 == items[j].0;
            let same_cluster = items[i].1.is_some() && items[i].1 == items[j].1;
            match (same_type, same_cluster) {
                (true, true) => out.tp += 1,
                (false, true) => out.fp += 1,
                (true, false) => out.fn_ += 1,
                (false, false) => out.tn += 1,
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn closed_form_matches_brute_force(
        clusters in prop::collection::vec(labels(), 0..5),
        noise in labels(),
    ) {
        prop_assert_eq!(pair_counts(&clusters, &noise), brute_force(&clusters, &noise));
    }

    #[test]
    fn counts_partition_all_pairs(
        clusters in prop::collection::vec(labels(), 0..5),
        noise in labels(),
    ) {
        let counts = pair_counts(&clusters, &noise);
        let n: u64 = clusters.iter().map(|c| c.len() as u64).sum::<u64>() + noise.len() as u64;
        prop_assert_eq!(counts.tp + counts.fp + counts.fn_ + counts.tn, n * n.saturating_sub(1) / 2);
    }

    #[test]
    fn metrics_are_bounded(
        clusters in prop::collection::vec(labels(), 0..5),
        noise in labels(),
    ) {
        let m = ClusterMetrics::from_counts(&pair_counts(&clusters, &noise));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&m.f_score));
    }

    #[test]
    fn f_beta_between_p_and_r(p in 0.01f64..1.0, r in 0.01f64..1.0, beta in 0.1f64..4.0) {
        let f = f_beta(p, r, beta);
        let lo = p.min(r) - 1e-12;
        let hi = p.max(r) + 1e-12;
        prop_assert!(f >= lo && f <= hi, "f = {} outside [{}, {}]", f, lo, hi);
    }
}

mod indices_properties {
    use evalkit::Contingency;
    use proptest::prelude::*;

    fn labelled_clusters() -> impl Strategy<Value = Vec<Vec<u8>>> {
        prop::collection::vec(prop::collection::vec(0u8..4, 1..10), 1..6)
    }

    proptest! {
        #[test]
        fn indices_are_bounded(clusters in labelled_clusters()) {
            let t = Contingency::from_clusters(&clusters);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&t.adjusted_rand_index()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&t.homogeneity()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&t.completeness()));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&t.v_measure()));
        }

        #[test]
        fn perfect_match_scores_one(sizes in prop::collection::vec(1usize..8, 1..5)) {
            // Each cluster holds exactly one distinct class.
            let clusters: Vec<Vec<usize>> = sizes
                .iter()
                .enumerate()
                .map(|(class, &n)| vec![class; n])
                .collect();
            let t = Contingency::from_clusters(&clusters);
            prop_assert!((t.homogeneity() - 1.0).abs() < 1e-9);
            prop_assert!((t.completeness() - 1.0).abs() < 1e-9);
            prop_assert!((t.adjusted_rand_index() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn merging_all_clusters_keeps_completeness(clusters in labelled_clusters()) {
            let merged: Vec<Vec<u8>> = vec![clusters.concat()];
            let t = Contingency::from_clusters(&merged);
            prop_assert!((t.completeness() - 1.0).abs() < 1e-9);
        }
    }
}
