//! Artifact-store integration: cache keys and persistence codecs for
//! the session's stage artifacts.
//!
//! The [`store`](::store) crate moves opaque `Persist` payloads in and
//! out of checksummed files; *this* module decides what those payloads
//! are and which inputs their keys must cover. The keying rule
//! (DESIGN.md §"Artifact store"): a key digests **every input that can
//! change the artifact's bits, and nothing else** — so thread counts
//! never appear in a key (they cannot change bits; every parallel build
//! is pinned bit-identical to serial), while every dissimilarity,
//! auto-configuration and refinement parameter does.
//!
//! Key schema, per stage:
//!
//! | artifact | key inputs |
//! |---|---|
//! | segmentation | trace content, segmenter fingerprint |
//! | segment store | trace content + cuts, `min_segment_len` |
//! | dissimilarity | chained unique-value digest, dissim params |
//! | selection / clustering / refined | trace content + cuts, full config |
//!
//! The dissimilarity key is special: it is a **chained** digest over the
//! unique segment values in first-occurrence order, snapshotted per
//! prefix length. Because deduplication preserves first-occurrence
//! order, the unique values of a *grown* trace start with the unique
//! values of the original trace — so the session can recognize a cached
//! matrix for a prefix of its segment set (via the per-family manifest)
//! and extend it incrementally instead of rebuilding from scratch.

use crate::pipeline::{EpsilonSource, FieldTypeClusterer};
use crate::segments::{SegmentInstance, SegmentStore, UniqueSegment};
use cluster::autoconf::{AutoConfig, SelectedParams};
use cluster::dbscan::Clustering;
use cluster::refine::RefineParams;
use dissim::{DissimParams, TiledMatrix, VpForest};
use segment::TraceSegmentation;
use store::{Key, KeyDigest, Kind, Persist, Reader, Writer};
use trace::Trace;

// ----- key derivation -----

/// Key for a cached segmentation of `trace` by the segmenter with the
/// given configuration fingerprint.
pub(crate) fn segmentation_key(trace: &Trace, fingerprint: &str) -> Key {
    let mut d = KeyDigest::new(Kind::SEGMENTATION);
    digest_trace(&mut d, trace);
    d.str(fingerprint);
    d.finish()
}

/// Digest of the full session input: trace content plus segmentation
/// cuts. Every downstream stage artifact is a pure function of this
/// digest and configuration parameters.
pub(crate) fn input_key(trace: &Trace, seg: &TraceSegmentation) -> Key {
    let mut d = KeyDigest::new(Kind::SEGMENTATION);
    digest_trace(&mut d, trace);
    d.usize(seg.messages.len());
    for msg in &seg.messages {
        let cuts = msg.cuts();
        d.usize(cuts.len());
        for c in cuts {
            d.usize(c);
        }
    }
    d.finish()
}

/// Key for the deduplicated segment store.
pub(crate) fn segment_store_key(input: &Key, min_segment_len: usize) -> Key {
    let mut d = KeyDigest::new(Kind::SEGMENT_STORE);
    d.key(input);
    d.usize(min_segment_len);
    d.finish()
}

/// Keys of the dissimilarity artifact over each prefix `values[..u]`,
/// one per requested `u` (ascending), all from a single pass: the
/// digest is chained over the values, snapshotted at every requested
/// prefix length.
pub(crate) fn dissim_keys_at(values: &[&[u8]], params: &DissimParams, at: &[usize]) -> Vec<Key> {
    debug_assert!(at.windows(2).all(|w| w[0] < w[1]), "prefixes must ascend");
    debug_assert!(at.last().is_none_or(|&u| u <= values.len()));
    let mut d = KeyDigest::new(Kind::DISSIM);
    digest_dissim_params(&mut d, params);
    let mut keys = Vec::with_capacity(at.len());
    let mut fed = 0usize;
    for &u in at {
        for v in &values[fed..u] {
            d.frame(v);
        }
        fed = u;
        let mut snap = d.clone();
        snap.usize(u);
        keys.push(snap.finish());
    }
    keys
}

/// Key of the dissimilarity artifact over all of `values`.
pub(crate) fn dissim_key(values: &[&[u8]], params: &DissimParams) -> Key {
    dissim_keys_at(values, params, &[values.len()])
        .pop()
        .expect("one prefix requested")
}

/// Keys of every tile of the tiled dissimilarity build, in tile order,
/// from a single chained pass. A tile covering rows `s..e` is a pure
/// function of `values[..e]` and the parameters — independent of the
/// total segment count — so its key digests exactly that prefix plus
/// the row bounds. Complete tiles of a *grown* trace therefore keep
/// their keys, and a warm run faults them straight back in while only
/// the appended (and formerly partial) tiles recompute.
pub(crate) fn tile_keys(values: &[&[u8]], params: &DissimParams, tile_rows: usize) -> Vec<Key> {
    let n = values.len();
    let count = TiledMatrix::tile_count(n, tile_rows);
    let mut d = KeyDigest::new(Kind::TILE);
    digest_dissim_params(&mut d, params);
    let mut keys = Vec::with_capacity(count);
    let mut fed = 0usize;
    for t in 0..count {
        let span = TiledMatrix::tile_span(n, tile_rows, t);
        for v in &values[fed..span.end] {
            d.frame(v);
        }
        fed = span.end;
        let mut snap = d.clone();
        snap.usize(span.start);
        snap.usize(span.end);
        keys.push(snap.finish());
    }
    keys
}

/// Keys of every chunk tree of the vantage-point forest, in chunk
/// order, from a single chained pass — the vptree analog of
/// [`tile_keys`]. A chunk tree covering items `s..e` is a pure function
/// of `values[..e]` and the parameters, so complete chunk trees of a
/// *grown* trace keep their keys and fault straight back in while only
/// the appended (and formerly partial) chunks rebuild.
pub(crate) fn vptree_keys(values: &[&[u8]], params: &DissimParams, chunk: usize) -> Vec<Key> {
    let n = values.len();
    let count = VpForest::chunk_count(n, chunk);
    let mut d = KeyDigest::new(Kind::VPTREE);
    digest_dissim_params(&mut d, params);
    let mut keys = Vec::with_capacity(count);
    let mut fed = 0usize;
    for t in 0..count {
        let span = VpForest::chunk_span(n, chunk, t);
        for v in &values[fed..span.end] {
            d.frame(v);
        }
        fed = span.end;
        let mut snap = d.clone();
        snap.usize(span.start);
        snap.usize(span.end);
        keys.push(snap.finish());
    }
    keys
}

/// Keys of the whole length-stratified index over each prefix
/// `values[..u]`, one per requested `u` (ascending), from a single
/// chained pass — the strata analog of [`dissim_keys_at`]. Unlike the
/// per-chunk tile and vptree keys, the index is persisted as one
/// artifact (its strata partition the whole prefix, so no part is a
/// pure function of a shorter prefix); growth reuse happens inside
/// `StrataIndex::extend_from` after the longest matching prefix is
/// faulted in through the family manifest.
pub(crate) fn strata_keys_at(
    values: &[&[u8]],
    params: &DissimParams,
    chunk: usize,
    at: &[usize],
) -> Vec<Key> {
    debug_assert!(at.windows(2).all(|w| w[0] < w[1]), "prefixes must ascend");
    debug_assert!(at.last().is_none_or(|&u| u <= values.len()));
    let mut d = KeyDigest::new(Kind::STRATA);
    digest_dissim_params(&mut d, params);
    d.usize(chunk);
    let mut keys = Vec::with_capacity(at.len());
    let mut fed = 0usize;
    for &u in at {
        for v in &values[fed..u] {
            d.frame(v);
        }
        fed = u;
        let mut snap = d.clone();
        snap.usize(u);
        keys.push(snap.finish());
    }
    keys
}

/// Key of the length-stratified index over all of `values`.
pub(crate) fn strata_key(values: &[&[u8]], params: &DissimParams, chunk: usize) -> Key {
    strata_keys_at(values, params, chunk, &[values.len()])
        .pop()
        .expect("one prefix requested")
}

/// Manifest family for stratified indexes: like [`vptree_family_key`]
/// but tagged for strata, so the artifact families never mix.
pub(crate) fn strata_family_key(values: &[&[u8]], params: &DissimParams) -> Key {
    let mut d = KeyDigest::new(Kind::MANIFEST);
    d.u64(u64::from(Kind::STRATA.tag()));
    digest_dissim_params(&mut d, params);
    for v in values.iter().take(4) {
        d.frame(v);
    }
    d.finish()
}

/// Manifest family for vantage-point chunk trees: like
/// [`tile_family_key`] but tagged for vptrees, so the three artifact
/// families never mix.
pub(crate) fn vptree_family_key(values: &[&[u8]], params: &DissimParams) -> Key {
    let mut d = KeyDigest::new(Kind::MANIFEST);
    d.u64(u64::from(Kind::VPTREE.tag()));
    digest_dissim_params(&mut d, params);
    for v in values.iter().take(4) {
        d.frame(v);
    }
    d.finish()
}

/// Manifest family for tile artifacts: like
/// [`dissim_family_key`] but tagged for tiles, so tile manifests and
/// monolithic-matrix manifests never mix.
pub(crate) fn tile_family_key(values: &[&[u8]], params: &DissimParams) -> Key {
    let mut d = KeyDigest::new(Kind::MANIFEST);
    d.u64(u64::from(Kind::TILE.tag()));
    digest_dissim_params(&mut d, params);
    for v in values.iter().take(4) {
        d.frame(v);
    }
    d.finish()
}

/// Manifest family for dissimilarity artifacts: one parameter set plus
/// a stream identity (the first few unique values), so the manifest
/// stays small and scoped to traces that could actually share a prefix.
pub(crate) fn dissim_family_key(values: &[&[u8]], params: &DissimParams) -> Key {
    let mut d = KeyDigest::new(Kind::MANIFEST);
    d.u64(u64::from(Kind::DISSIM.tag()));
    digest_dissim_params(&mut d, params);
    for v in values.iter().take(4) {
        d.frame(v);
    }
    d.finish()
}

/// Key for a configuration-dependent stage artifact (selection, cluster
/// stage, refined clustering) over the session input.
pub(crate) fn stage_key(kind: Kind, input: &Key, config: &FieldTypeClusterer) -> Key {
    let mut d = KeyDigest::new(kind);
    d.key(input);
    digest_config(&mut d, config);
    d.finish()
}

/// Key for the inferred protocol state machine. Digests everything the
/// machine is a pure function of: the session input (payloads + cuts),
/// the message-clustering parameters (dissim, gap penalty, autoconf)
/// that produce the msgtype labels, the merge thresholds, and — because
/// `input_key` covers payloads and cuts but *not* endpoints or
/// timestamps — the flow partition itself (per-flow message index
/// lists), so re-pairing the same payloads into different flows moves
/// the key.
pub(crate) fn fsm_key(
    input: &Key,
    trace: &Trace,
    params: &DissimParams,
    config: &crate::fsm::StateMachineConfig,
) -> Key {
    let mut d = KeyDigest::new(Kind::FSM);
    d.key(input);
    digest_dissim_params(&mut d, params);
    d.f64(config.msgtype.gap_penalty);
    digest_autoconf(&mut d, &config.msgtype.autoconf);
    d.f64(config.fsm.alpha);
    d.u64(config.fsm.min_evidence);
    let flows = trace.flows();
    d.usize(flows.len());
    for flow in &flows {
        d.usize(flow.len());
        for &i in flow {
            d.usize(i);
        }
    }
    d.finish()
}

/// Key for the message-alignment dissimilarity artifact (gap penalty on
/// top of the segment dissimilarities over the full store).
pub(crate) fn message_dissim_key(input: &Key, params: &DissimParams, gap_penalty: f64) -> Key {
    let mut d = KeyDigest::new(Kind::DISSIM);
    d.str("message-alignment");
    d.key(input);
    digest_dissim_params(&mut d, params);
    d.f64(gap_penalty);
    d.finish()
}

fn digest_trace(d: &mut KeyDigest, trace: &Trace) {
    d.usize(trace.len());
    for msg in trace.iter() {
        d.frame(msg.payload());
    }
}

fn digest_dissim_params(d: &mut KeyDigest, p: &DissimParams) {
    d.f64(p.length_penalty);
}

fn digest_autoconf(d: &mut KeyDigest, a: &AutoConfig) {
    d.f64(a.sensitivity);
    d.usize(a.smoothing_knots);
    d.usize(a.grid_points);
    d.opt_f64(a.max_dissimilarity);
}

fn digest_refine(d: &mut KeyDigest, r: &RefineParams) {
    d.f64(r.eps_rho_threshold);
    d.f64(r.neighbor_density_threshold);
    d.f64(r.split_percent_rank);
    d.usize(r.max_merge_rounds);
}

fn digest_config(d: &mut KeyDigest, c: &FieldTypeClusterer) {
    // `threads`, `tile_rows`, `max_memory`, `neighbor_backend` and
    // `swar` are deliberately absent: every parallel build, tile
    // geometry, neighbor backend and kernel fast path is pinned
    // bit-identical, so none of them can change artifact bits.
    digest_dissim_params(d, &c.dissim);
    digest_autoconf(d, &c.autoconf);
    digest_refine(d, &c.refine);
    d.usize(c.min_segment_len);
    d.f64(c.large_cluster_fraction);
}

// ----- persistence codecs for fieldclust-local artifacts -----

impl Persist for SegmentStore {
    const KIND: Kind = Kind::SEGMENT_STORE;

    fn encode(&self, w: &mut Writer) {
        encode_unique_segments(w, &self.segments);
        encode_unique_segments(w, &self.excluded);
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let segments = decode_unique_segments(r)?;
        let excluded = decode_unique_segments(r)?;
        Some(SegmentStore { segments, excluded })
    }
}

fn encode_unique_segments(w: &mut Writer, segments: &[UniqueSegment]) {
    w.usize(segments.len());
    for s in segments {
        w.bytes(&s.value);
        w.usize(s.instances.len());
        for inst in &s.instances {
            w.usize(inst.message);
            w.usize(inst.range.start);
            w.usize(inst.range.end);
        }
    }
}

fn decode_unique_segments(r: &mut Reader) -> Option<Vec<UniqueSegment>> {
    let n = r.count(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let value = r.bytes()?.to_vec();
        let n_inst = r.count(24)?;
        let mut instances = Vec::with_capacity(n_inst);
        for _ in 0..n_inst {
            let message = r.usize()?;
            let start = r.usize()?;
            let end = r.usize()?;
            if end < start || end - start != value.len() {
                return None;
            }
            instances.push(SegmentInstance {
                message,
                range: start..end,
            });
        }
        out.push(UniqueSegment { value, instances });
    }
    Some(out)
}

fn encode_epsilon_source(w: &mut Writer, s: EpsilonSource) {
    w.u8(match s {
        EpsilonSource::Knee => 0,
        EpsilonSource::TrimmedKnee => 1,
        EpsilonSource::MeanFallback => 2,
    });
}

fn decode_epsilon_source(r: &mut Reader) -> Option<EpsilonSource> {
    match r.u8()? {
        0 => Some(EpsilonSource::Knee),
        1 => Some(EpsilonSource::TrimmedKnee),
        2 => Some(EpsilonSource::MeanFallback),
        _ => None,
    }
}

/// The auto-configuration stage artifact: selected parameters plus
/// where ε came from.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SelectionArtifact {
    pub params: SelectedParams,
    pub source: EpsilonSource,
}

impl Persist for SelectionArtifact {
    const KIND: Kind = Kind::SELECTION;

    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        encode_epsilon_source(w, self.source);
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let params = SelectedParams::decode(r)?;
        let source = decode_epsilon_source(r)?;
        Some(Self { params, source })
    }
}

/// The clustering stage artifact: the labels together with the
/// (possibly §III-E re-configured) parameters that produced them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClusterStageArtifact {
    pub params: SelectedParams,
    pub source: EpsilonSource,
    pub clustering: Clustering,
}

impl Persist for ClusterStageArtifact {
    const KIND: Kind = Kind::CLUSTER_STAGE;

    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        encode_epsilon_source(w, self.source);
        self.clustering.encode(w);
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        let params = SelectedParams::decode(r)?;
        let source = decode_epsilon_source(r)?;
        let clustering = Clustering::decode(r)?;
        Some(Self {
            params,
            source,
            clustering,
        })
    }
}

/// The refined clustering (post merge/split).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RefinedArtifact(pub Clustering);

impl Persist for RefinedArtifact {
    const KIND: Kind = Kind::REFINED;

    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }

    fn decode(r: &mut Reader) -> Option<Self> {
        Some(Self(Clustering::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::dbscan::Label;
    use store::{decode_payload, encode_payload};

    #[test]
    fn segment_store_roundtrip() {
        let s = SegmentStore {
            segments: vec![UniqueSegment {
                value: b"\x01\x02".to_vec(),
                instances: vec![
                    SegmentInstance {
                        message: 0,
                        range: 0..2,
                    },
                    SegmentInstance {
                        message: 3,
                        range: 4..6,
                    },
                ],
            }],
            excluded: vec![UniqueSegment {
                value: b"\x09".to_vec(),
                instances: vec![SegmentInstance {
                    message: 1,
                    range: 4..5,
                }],
            }],
        };
        let back: SegmentStore = decode_payload(&encode_payload(&s)).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn segment_store_range_value_mismatch_is_a_miss() {
        // An instance range whose width disagrees with the value length
        // is structurally impossible; the decoder must reject it.
        let mut w = Writer::new();
        w.usize(1); // one segment
        w.bytes(b"\x01\x02");
        w.usize(1); // one instance
        w.usize(0); // message
        w.usize(0); // start
        w.usize(5); // end: width 5 != value len 2
        w.usize(0); // no excluded
        assert!(decode_payload::<SegmentStore>(&w.into_inner()).is_none());
    }

    #[test]
    fn selection_and_stage_artifacts_roundtrip() {
        let params = SelectedParams {
            epsilon: 0.25,
            min_samples: 5,
            k: 2,
            ecdf_values: vec![0.1, 0.2],
            smoothed_curve: vec![(0.0, 0.0), (1.0, 1.0)],
        };
        let sel = SelectionArtifact {
            params: params.clone(),
            source: EpsilonSource::TrimmedKnee,
        };
        let back: SelectionArtifact = decode_payload(&encode_payload(&sel)).expect("sel");
        assert_eq!(back, sel);

        let stage = ClusterStageArtifact {
            params,
            source: EpsilonSource::MeanFallback,
            clustering: Clustering::from_labels(vec![Label::Cluster(0), Label::Noise]),
        };
        let back: ClusterStageArtifact = decode_payload(&encode_payload(&stage)).expect("stage");
        assert_eq!(back, stage);

        let refined = RefinedArtifact(stage.clustering.clone());
        let back: RefinedArtifact = decode_payload(&encode_payload(&refined)).expect("refined");
        assert_eq!(back, refined);
    }

    #[test]
    fn bad_epsilon_source_tag_is_a_miss() {
        let mut w = Writer::new();
        let params = SelectedParams {
            epsilon: 0.1,
            min_samples: 2,
            k: 1,
            ecdf_values: vec![],
            smoothed_curve: vec![],
        };
        params.encode(&mut w);
        w.u8(9); // no such EpsilonSource
        assert!(decode_payload::<SelectionArtifact>(&w.into_inner()).is_none());
    }

    #[test]
    fn dissim_prefix_keys_chain() {
        let values: Vec<&[u8]> = vec![b"aa", b"bb", b"cc", b"dd", b"ee"];
        let params = DissimParams::default();
        let keys = dissim_keys_at(&values, &params, &[2, 4, 5]);
        // Snapshot keys equal the from-scratch key of each prefix.
        assert_eq!(keys[0], dissim_key(&values[..2], &params));
        assert_eq!(keys[1], dissim_key(&values[..4], &params));
        assert_eq!(keys[2], dissim_key(&values, &params));
        // And a different value stream diverges.
        let other: Vec<&[u8]> = vec![b"aa", b"xx"];
        assert_ne!(keys[0], dissim_key(&other, &params));
    }

    #[test]
    fn tile_keys_are_prefix_stable() {
        let values: Vec<&[u8]> = vec![b"aa", b"bb", b"cc", b"dd", b"ee", b"ff", b"gg"];
        let params = DissimParams::default();
        let keys = tile_keys(&values, &params, 3); // spans 0..3, 3..6, 6..7
        assert_eq!(keys.len(), 3);
        // Complete tiles keep their keys when the segment set grows.
        let grown_keys = tile_keys(&values[..5], &params, 3); // spans 0..3, 3..5
        assert_eq!(keys[0], grown_keys[0]);
        // A formerly partial tile (span changed 3..5 → 3..6) does not.
        assert_ne!(keys[1], grown_keys[1]);
        // Different geometry, parameters, or values move every key.
        assert_ne!(tile_keys(&values, &params, 4)[0], keys[0]);
        let other = DissimParams {
            length_penalty: params.length_penalty + 0.25,
        };
        assert_ne!(tile_keys(&values, &other, 3)[0], keys[0]);
        // And the tile family is distinct from the monolithic family.
        assert_ne!(
            tile_family_key(&values, &params),
            dissim_family_key(&values, &params)
        );
    }

    #[test]
    fn vptree_keys_are_prefix_stable() {
        let values: Vec<&[u8]> = vec![b"aa", b"bb", b"cc", b"dd", b"ee", b"ff", b"gg"];
        let params = DissimParams::default();
        let keys = vptree_keys(&values, &params, 3); // spans 0..3, 3..6, 6..7
        assert_eq!(keys.len(), 3);
        // Complete chunk trees keep their keys when the segment set grows.
        let earlier = vptree_keys(&values[..5], &params, 3); // spans 0..3, 3..5
        assert_eq!(keys[0], earlier[0]);
        // A formerly partial chunk (span changed 3..5 → 3..6) does not.
        assert_ne!(keys[1], earlier[1]);
        // Different geometry, parameters, or values move every key.
        assert_ne!(vptree_keys(&values, &params, 4)[0], keys[0]);
        let other = DissimParams {
            length_penalty: params.length_penalty + 0.25,
        };
        assert_ne!(vptree_keys(&values, &other, 3)[0], keys[0]);
        // Vptree keys and families never collide with the tile ones at
        // the same geometry.
        assert_ne!(keys[0], tile_keys(&values, &params, 3)[0]);
        assert_ne!(
            vptree_family_key(&values, &params),
            tile_family_key(&values, &params)
        );
    }

    #[test]
    fn strata_prefix_keys_chain() {
        let values: Vec<&[u8]> = vec![b"a", b"bb", b"cc", b"ddd", b"ee", b"f", b"ggg"];
        let params = DissimParams::default();
        let keys = strata_keys_at(&values, &params, 3, &[2, 5, 7]);
        // Snapshot keys equal the from-scratch key of each prefix.
        assert_eq!(keys[0], strata_key(&values[..2], &params, 3));
        assert_eq!(keys[1], strata_key(&values[..5], &params, 3));
        assert_eq!(keys[2], strata_key(&values, &params, 3));
        // Different geometry, parameters, or values move the key.
        assert_ne!(strata_key(&values, &params, 4), keys[2]);
        let other = DissimParams {
            length_penalty: params.length_penalty + 0.25,
        };
        assert_ne!(strata_key(&values, &other, 3), keys[2]);
        let shuffled: Vec<&[u8]> = vec![b"a", b"bb", b"cc", b"ddd", b"ee", b"f", b"xxx"];
        assert_ne!(strata_key(&shuffled, &params, 3), keys[2]);
        // Strata keys and families never collide with the vptree ones.
        assert_ne!(keys[0], vptree_keys(&values, &params, 3)[0]);
        assert_ne!(
            strata_family_key(&values, &params),
            vptree_family_key(&values, &params)
        );
    }

    #[test]
    fn config_changes_move_stage_keys() {
        let input = Key([7; 16]);
        let base = FieldTypeClusterer::default();
        let k0 = stage_key(Kind::SELECTION, &input, &base);
        // Thread count must NOT move the key (bits are pinned across
        // thread counts)...
        let mut threaded = base.clone();
        threaded.threads = base.threads + 3;
        assert_eq!(k0, stage_key(Kind::SELECTION, &input, &threaded));
        // ...nor tile geometry or a memory budget — the tiled build is
        // pinned bit-identical to the monolithic one.
        let mut tiled = base.clone();
        tiled.tile_rows = Some(64);
        tiled.max_memory = Some(1 << 20);
        assert_eq!(k0, stage_key(Kind::SELECTION, &input, &tiled));
        // ...nor the neighbor backend or the SWAR fast path — both are
        // pinned bit-identical to the matrix oracle.
        let mut vptree = base.clone();
        vptree.neighbor_backend = crate::pipeline::NeighborBackend::Vptree;
        vptree.swar = true;
        assert_eq!(k0, stage_key(Kind::SELECTION, &input, &vptree));
        let mut stratified = base.clone();
        stratified.neighbor_backend = crate::pipeline::NeighborBackend::Stratified;
        assert_eq!(k0, stage_key(Kind::SELECTION, &input, &stratified));
        // ...while every bit-affecting parameter must.
        let mut other = base.clone();
        other.autoconf.sensitivity += 0.5;
        assert_ne!(k0, stage_key(Kind::SELECTION, &input, &other));
        let mut other = base.clone();
        other.refine.max_merge_rounds += 1;
        assert_ne!(k0, stage_key(Kind::SELECTION, &input, &other));
        let mut other = base;
        other.dissim.length_penalty = 0.25;
        assert_ne!(k0, stage_key(Kind::SELECTION, &input, &other));
    }
}
