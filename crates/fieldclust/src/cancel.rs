//! Cooperative cancellation for staged analysis runs.
//!
//! A long-running [`AnalysisSession`](crate::AnalysisSession) is built
//! from coarse stages (segment → dedup → matrix → autoconf → cluster →
//! refine), each of which can take seconds on a large trace. The
//! serving daemon needs to abandon a job when its client cancels it or
//! its deadline passes — without poisoning shared state and without
//! preemption. [`CancelToken`] is the handshake: the owner hands a
//! clone to the session, the session polls it *between* stages (never
//! inside a kernel), and a tripped token surfaces as
//! [`PipelineError::Cancelled`](crate::PipelineError::Cancelled) /
//! [`MessageTypeError::Cancelled`](crate::msgtype::MessageTypeError::Cancelled).
//! Artifacts computed before the trip stay cached, so a retried job
//! resumes where the cancelled one stopped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle checked between pipeline stages.
///
/// Trips either explicitly ([`cancel`](Self::cancel)) or implicitly
/// when a construction-time deadline passes. Clones share state, so
/// any holder can cancel every other holder's view.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Trips the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether this trip was caused by the deadline rather than an
    /// explicit cancel (used for reporting; both read as cancelled).
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.deadline_expired(), "no deadline was set");
    }

    #[test]
    fn deadline_trips_without_an_explicit_cancel() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        assert!(token.deadline_expired());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }
}
