//! Comparing two pseudo-data-type clusterings: protocol drift detection.
//!
//! Analysts rarely look at one capture in isolation: a firmware update,
//! a new client version or an attack changes the traffic. Comparing the
//! pseudo data types of two captures shows what stayed, what vanished
//! and what is new — without ever knowing the protocol. Clusters are
//! matched greedily by Jaccard overlap of their unique segment values.

use crate::pipeline::PseudoTypeClustering;
use std::collections::HashSet;

/// A matched pair of clusters across two clusterings.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMatch {
    /// Cluster id in the first clustering.
    pub left: usize,
    /// Cluster id in the second clustering.
    pub right: usize,
    /// Jaccard similarity of the two clusters' value sets.
    pub jaccard: f64,
    /// Values present on both sides.
    pub shared_values: usize,
}

/// The comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringDiff {
    /// Matched cluster pairs, best matches first.
    pub matches: Vec<ClusterMatch>,
    /// Cluster ids of the first clustering with no counterpart.
    pub only_left: Vec<usize>,
    /// Cluster ids of the second clustering with no counterpart.
    pub only_right: Vec<usize>,
    /// Fraction of the first clustering's values found anywhere in the
    /// second (drift indicator: 1.0 = nothing vanished).
    pub left_value_retention: f64,
}

/// Minimum Jaccard similarity for two clusters to count as matched.
pub const DEFAULT_MATCH_THRESHOLD: f64 = 0.1;

/// Compares two clusterings by value overlap.
///
/// `threshold` is the minimum Jaccard similarity for a match (see
/// [`DEFAULT_MATCH_THRESHOLD`]).
pub fn compare_clusterings(
    left: &PseudoTypeClustering,
    right: &PseudoTypeClustering,
    threshold: f64,
) -> ClusteringDiff {
    let value_sets = |c: &PseudoTypeClustering| -> Vec<HashSet<Vec<u8>>> {
        c.clustering
            .clusters()
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|&m| c.store.segments[m].value.clone())
                    .collect()
            })
            .collect()
    };
    let left_sets = value_sets(left);
    let right_sets = value_sets(right);

    // All candidate pairs with their Jaccard similarity, best first.
    let mut candidates: Vec<ClusterMatch> = Vec::new();
    for (i, ls) in left_sets.iter().enumerate() {
        for (j, rs) in right_sets.iter().enumerate() {
            let shared = ls.intersection(rs).count();
            if shared == 0 {
                continue;
            }
            let union = ls.len() + rs.len() - shared;
            let jaccard = shared as f64 / union as f64;
            if jaccard >= threshold {
                candidates.push(ClusterMatch {
                    left: i,
                    right: j,
                    jaccard,
                    shared_values: shared,
                });
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.jaccard
            .partial_cmp(&a.jaccard)
            .expect("jaccard is finite")
    });

    // Greedy one-to-one matching.
    let mut left_used = vec![false; left_sets.len()];
    let mut right_used = vec![false; right_sets.len()];
    let mut matches = Vec::new();
    for c in candidates {
        if !left_used[c.left] && !right_used[c.right] {
            left_used[c.left] = true;
            right_used[c.right] = true;
            matches.push(c);
        }
    }
    let only_left = (0..left_sets.len()).filter(|&i| !left_used[i]).collect();
    let only_right = (0..right_sets.len()).filter(|&j| !right_used[j]).collect();

    // Value retention: of all left values, how many exist anywhere right?
    let all_right: HashSet<&Vec<u8>> = right.store.segments.iter().map(|s| &s.value).collect();
    let left_total = left.store.segments.len();
    let retained = left
        .store
        .segments
        .iter()
        .filter(|s| all_right.contains(&s.value))
        .count();
    let left_value_retention = if left_total == 0 {
        1.0
    } else {
        retained as f64 / left_total as f64
    };

    ClusteringDiff {
        matches,
        only_left,
        only_right,
        left_value_retention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::truth_segmentation;
    use crate::FieldTypeClusterer;
    use protocols::{corpus, Protocol};

    fn run(protocol: Protocol, n: usize, seed: u64) -> PseudoTypeClustering {
        let trace = corpus::build_trace(protocol, n, seed);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap()
    }

    #[test]
    fn identical_captures_match_fully() {
        let a = run(Protocol::Ntp, 50, 1);
        let b = run(Protocol::Ntp, 50, 1);
        let diff = compare_clusterings(&a, &b, DEFAULT_MATCH_THRESHOLD);
        assert_eq!(diff.matches.len(), a.clustering.n_clusters() as usize);
        assert!(diff.only_left.is_empty());
        assert!(diff.only_right.is_empty());
        assert_eq!(diff.left_value_retention, 1.0);
        assert!(diff.matches.iter().all(|m| (m.jaccard - 1.0).abs() < 1e-12));
    }

    #[test]
    fn same_protocol_different_seeds_mostly_match() {
        let a = run(Protocol::Dns, 60, 2);
        let b = run(Protocol::Dns, 60, 3);
        let diff = compare_clusterings(&a, &b, DEFAULT_MATCH_THRESHOLD);
        // Shared constants/enums guarantee several matched types.
        assert!(
            diff.matches.len() * 2 >= a.clustering.n_clusters() as usize,
            "{} of {} matched",
            diff.matches.len(),
            a.clustering.n_clusters()
        );
    }

    #[test]
    fn different_protocols_barely_match() {
        let a = run(Protocol::Ntp, 50, 4);
        let b = run(Protocol::Dns, 50, 4);
        let diff = compare_clusterings(&a, &b, DEFAULT_MATCH_THRESHOLD);
        assert!(
            diff.matches.len() <= 2,
            "unexpected matches across protocols: {:?}",
            diff.matches
        );
        assert!(diff.left_value_retention < 0.5);
    }

    #[test]
    fn matching_is_one_to_one() {
        let a = run(Protocol::Smb, 48, 5);
        let b = run(Protocol::Smb, 48, 6);
        let diff = compare_clusterings(&a, &b, 0.01);
        let lefts: HashSet<usize> = diff.matches.iter().map(|m| m.left).collect();
        let rights: HashSet<usize> = diff.matches.iter().map(|m| m.right).collect();
        assert_eq!(lefts.len(), diff.matches.len());
        assert_eq!(rights.len(), diff.matches.len());
    }
}
