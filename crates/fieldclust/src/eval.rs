//! Evaluation of a pseudo-data-type clustering against ground truth
//! (paper §IV).

use crate::pipeline::PseudoTypeClustering;
use crate::truth::label_store;
use cluster::dbscan::Label;
use evalkit::{pair_counts, ClusterMetrics, Contingency, Coverage, PairCounts};
use protocols::{FieldKind, TrueField};
use trace::Trace;

/// Re-export: labels every clustered unique segment with its dominant
/// true kind (see [`crate::truth::label_store`]).
pub use crate::truth::label_store as label_segments;

/// The full evaluation record for one clustering run — one cell of the
/// paper's Tables I/II.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Pairwise precision/recall/F¼.
    pub metrics: ClusterMetrics,
    /// The raw pair counts behind the metrics.
    pub counts: PairCounts,
    /// Byte coverage over the trace.
    pub coverage: Coverage,
    /// Number of clusters after refinement.
    pub n_clusters: u32,
    /// Number of unique segments labelled noise.
    pub n_noise: usize,
    /// Number of unique segments that were clustered (the paper's
    /// "fields" column counts unique fields similarly).
    pub n_segments: usize,
    /// The auto-configured ε.
    pub epsilon: f64,
    /// Adjusted Rand Index (noise items counted as singleton clusters).
    pub ari: f64,
    /// V-measure (harmonic mean of homogeneity and completeness).
    pub v_measure: f64,
}

/// Evaluates a clustering against the trace's ground truth.
///
/// Every unique segment is labelled with its dominant true
/// [`FieldKind`]; clusters are then scored with the combinatorial
/// pairwise metrics of §IV-A.
pub fn evaluate(
    result: &PseudoTypeClustering,
    trace: &Trace,
    ground_truth: &[Vec<TrueField>],
) -> Evaluation {
    let labels: Vec<FieldKind> = label_store(&result.store, ground_truth);

    let clusters_members = result.clustering.clusters();
    let clusters: Vec<Vec<FieldKind>> = clusters_members
        .iter()
        .map(|members| members.iter().map(|&i| labels[i]).collect())
        .collect();
    let noise: Vec<FieldKind> = result
        .clustering
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == Label::Noise)
        .map(|(i, _)| labels[i])
        .collect();

    let counts = pair_counts(&clusters, &noise);

    // ARI / V-measure treat each noise item as its own singleton cluster
    // (the usual convention when scoring DBSCAN against labels).
    let mut with_noise = clusters.clone();
    with_noise.extend(noise.iter().map(|&l| vec![l]));
    let contingency = Contingency::from_clusters(&with_noise);

    Evaluation {
        metrics: ClusterMetrics::from_counts(&counts),
        counts,
        coverage: result.coverage(trace),
        n_clusters: result.clustering.n_clusters(),
        n_noise: noise.len(),
        n_segments: result.store.segments.len(),
        epsilon: result.params.epsilon,
        ari: contingency.adjusted_rand_index(),
        v_measure: contingency.v_measure(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FieldTypeClusterer;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, Protocol};

    #[test]
    fn evaluation_fields_are_consistent() {
        let trace = corpus::build_trace(Protocol::Ntp, 60, 9);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let eval = evaluate(&result, &trace, &gt);

        assert_eq!(eval.n_segments, result.store.segments.len());
        assert_eq!(eval.n_clusters, result.clustering.n_clusters());
        assert!(eval.metrics.precision > 0.0);
        assert!((0.0..=1.0).contains(&eval.coverage.ratio()));
        assert_eq!(eval.epsilon, result.params.epsilon);
        assert!((-1.0..=1.0).contains(&eval.ari));
        assert!((0.0..=1.0).contains(&eval.v_measure));
    }

    #[test]
    fn ground_truth_clustering_scores_reasonably() {
        // From true NTP fields, the method should score well (Table I
        // reports F ≈ 1.0 for NTP).
        let trace = corpus::build_trace(Protocol::Ntp, 100, 10);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let eval = evaluate(&result, &trace, &gt);
        assert!(
            eval.metrics.precision > 0.5,
            "precision = {} (clusters = {}, noise = {})",
            eval.metrics.precision,
            eval.n_clusters,
            eval.n_noise
        );
    }
}
