//! Session-level protocol state-machine inference (the glue between
//! message typing and the [`statemachine`] crate).
//!
//! The pipeline clusters messages into pseudo message types
//! ([`crate::msgtype`]); this module turns those labels into the
//! symbols of a protocol state machine: noise maps to symbol 0
//! (`"noise"`), cluster `c` maps to symbol `c + 1` (`"type{c}"`), and
//! [`AnalysisSession::state_machine`](crate::AnalysisSession::state_machine)
//! feeds the per-flow symbol sequences through [`statemachine::infer`].
//! The machine is persisted under a key that covers the flow partition
//! as well as the clustering inputs (`cache::fsm_key`), so warm runs
//! serve the artifact without re-clustering anything.

use crate::msgtype::MessageTypeConfig;
use cluster::dbscan::{Clustering, Label};
use statemachine::FsmConfig;

/// Configuration of [`AnalysisSession::state_machine`]
/// (crate::AnalysisSession::state_machine): the message-type clustering
/// that produces the symbols plus the merge thresholds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateMachineConfig {
    /// How messages are clustered into the machine's symbols.
    pub msgtype: MessageTypeConfig,
    /// Alergia-style merge thresholds.
    pub fsm: FsmConfig,
}

/// Maps a message-type clustering to per-message symbol ids plus the
/// symbol table: noise is symbol 0 (`"noise"`), cluster `c` is symbol
/// `c + 1` (`"type{c}"`).
pub fn symbol_labels(clustering: &Clustering) -> (Vec<u32>, Vec<String>) {
    let labels = clustering
        .labels()
        .iter()
        .map(|l| match l {
            Label::Noise => 0,
            Label::Cluster(c) => c + 1,
        })
        .collect();
    let mut symbols = Vec::with_capacity(clustering.n_clusters() as usize + 1);
    symbols.push("noise".to_string());
    symbols.extend((0..clustering.n_clusters()).map(|c| format!("type{c}")));
    (labels, symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_table_line_up() {
        let clustering = Clustering::from_labels(vec![
            Label::Cluster(1),
            Label::Noise,
            Label::Cluster(0),
            Label::Cluster(1),
        ]);
        let (labels, symbols) = symbol_labels(&clustering);
        // `from_labels` renumbers clusters by first occurrence, so the
        // cluster first seen becomes type0 / symbol 1.
        assert_eq!(labels, vec![1, 0, 2, 1]);
        assert_eq!(symbols, vec!["noise", "type0", "type1"]);
        // Every label indexes the table.
        assert!(labels.iter().all(|&l| (l as usize) < symbols.len()));
    }

    #[test]
    fn default_config_is_consistent() {
        let c = StateMachineConfig::default();
        assert_eq!(c.msgtype, MessageTypeConfig::default());
        assert_eq!(c.fsm, FsmConfig::default());
    }
}
