//! Value generation and misbehavior scoring from cluster contents.
//!
//! The paper's §V proposes to "automatically learn value generation
//! rules from the cluster contents using LSTM or similar machine
//! learning methods to predict probable field values for fuzzing and
//! misbehavior detection". This module implements that idea with an
//! interpretable substitute for the LSTM (documented in DESIGN.md §4):
//! a per-cluster [`ValueModel`] combining the empirical length
//! distribution, per-position byte ranges and an order-1 byte Markov
//! chain with Laplace smoothing. The model both *generates* plausible
//! new field values (fuzzing) and *scores* observed values
//! (misbehavior detection).
//!
//! The [`StateAwareFuzzer`] closes the loop with the inferred protocol
//! state machine ([`statemachine`]): instead of sampling message types
//! independently, it walks the machine's count-weighted transitions, so
//! the symbol sequences it emits follow the protocol's actual session
//! structure and reach deep states a stateless i.i.d. sampler
//! practically never hits. Responses are scored with the existing
//! [`MisbehaviorDetector`].

use crate::pipeline::PseudoTypeClustering;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statemachine::StateMachine;
use std::collections::BTreeSet;

/// A generative model of one pseudo data type's value domain.
#[derive(Debug, Clone)]
pub struct ValueModel {
    /// Observed value lengths and their occurrence counts.
    lengths: Vec<(usize, usize)>,
    /// Start-byte histogram.
    start: Box<[u32; 256]>,
    /// First-order transition counts `transitions[prev][next]`.
    transitions: Vec<[u32; 256]>,
    /// Which previous bytes have any transition mass.
    total_values: usize,
}

impl ValueModel {
    /// Learns a model from the (weighted) values of one cluster.
    ///
    /// `values` are `(bytes, occurrence count)` pairs; occurrence counts
    /// weight the statistics the same way duplicates would.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains an empty value.
    pub fn learn(values: &[(&[u8], usize)]) -> Self {
        assert!(!values.is_empty(), "cannot learn from an empty cluster");
        let mut lengths: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut start = Box::new([0u32; 256]);
        let mut transitions: Vec<[u32; 256]> = vec![[0u32; 256]; 256];
        let mut total = 0usize;
        for &(bytes, weight) in values {
            assert!(!bytes.is_empty(), "values must be non-empty");
            let w = weight.max(1) as u32;
            *lengths.entry(bytes.len()).or_insert(0) += weight.max(1);
            start[bytes[0] as usize] += w;
            for pair in bytes.windows(2) {
                transitions[pair[0] as usize][pair[1] as usize] += w;
            }
            total += weight.max(1);
        }
        Self {
            lengths: lengths.into_iter().collect(),
            start,
            transitions,
            total_values: total,
        }
    }

    /// Learns one model per cluster of a pseudo-data-type clustering.
    pub fn per_cluster(result: &PseudoTypeClustering) -> Vec<ValueModel> {
        result
            .clustering
            .clusters()
            .iter()
            .map(|members| {
                let values: Vec<(&[u8], usize)> = members
                    .iter()
                    .map(|&m| {
                        let seg = &result.store.segments[m];
                        (&seg.value[..], seg.occurrences())
                    })
                    .collect();
                ValueModel::learn(&values)
            })
            .collect()
    }

    /// The observed value lengths (ascending) with their weights.
    pub fn lengths(&self) -> &[(usize, usize)] {
        &self.lengths
    }

    /// Samples a plausible new value: length from the empirical
    /// distribution, bytes from the smoothed Markov chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let len = self.sample_length(rng);
        let mut out = Vec::with_capacity(len);
        let first = sample_histogram(&self.start, rng);
        out.push(first);
        while out.len() < len {
            let prev = *out.last().expect("non-empty");
            let next = sample_histogram(&self.transitions[prev as usize], rng);
            out.push(next);
        }
        out
    }

    fn sample_length<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: usize = self.lengths.iter().map(|&(_, c)| c).sum();
        let mut pick = rng.gen_range(0..total);
        for &(len, c) in &self.lengths {
            if pick < c {
                return len;
            }
            pick -= c;
        }
        self.lengths.last().expect("non-empty lengths").0
    }

    /// Average per-byte log₂-likelihood of `value` under the model
    /// (Laplace-smoothed). Higher is more plausible; values from a
    /// different data type score distinctly lower.
    ///
    /// Returns `f64::NEG_INFINITY` for an empty value.
    pub fn log_likelihood(&self, value: &[u8]) -> f64 {
        if value.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut ll = 0.0;
        let start_total: u64 = self.start.iter().map(|&c| u64::from(c)).sum();
        ll += smoothed_log2(self.start[value[0] as usize], start_total);
        for pair in value.windows(2) {
            let row = &self.transitions[pair[0] as usize];
            let row_total: u64 = row.iter().map(|&c| u64::from(c)).sum();
            ll += smoothed_log2(row[pair[1] as usize], row_total);
        }
        // Length plausibility: unseen lengths are penalized.
        let len_total: usize = self.lengths.iter().map(|&(_, c)| c).sum();
        let len_count = self
            .lengths
            .iter()
            .find(|&&(l, _)| l == value.len())
            .map(|&(_, c)| c)
            .unwrap_or(0);
        ll += smoothed_log2(len_count as u32, len_total as u64);
        ll / (value.len() as f64 + 1.0)
    }

    /// Number of training values (instance-weighted).
    pub fn training_weight(&self) -> usize {
        self.total_values
    }
}

fn smoothed_log2(count: u32, total: u64) -> f64 {
    ((u64::from(count) + 1) as f64 / (total + 256) as f64).log2()
}

/// Samples a byte from a count histogram. Observed bytes are weighted
/// 16× against the uniform smoothing mass, so candidates mostly stay
/// inside the learned domain while occasionally probing beyond it —
/// which is what a fuzzer wants.
fn sample_histogram<R: Rng + ?Sized>(hist: &[u32; 256], rng: &mut R) -> u8 {
    let total: u64 = hist.iter().map(|&c| u64::from(c) * 16 + 1).sum();
    let mut pick = rng.gen_range(0..total);
    for (b, &c) in hist.iter().enumerate() {
        let mass = u64::from(c) * 16 + 1;
        if pick < mass {
            return b as u8;
        }
        pick -= mass;
    }
    255
}

/// Misbehavior detector: scores segments of new messages against the
/// learned pseudo-data-type models; values unlike any known data type
/// stand out with low scores.
#[derive(Debug, Clone)]
pub struct MisbehaviorDetector {
    models: Vec<ValueModel>,
}

impl MisbehaviorDetector {
    /// Builds a detector from a clustering result.
    ///
    /// # Panics
    ///
    /// Panics if the clustering has no clusters.
    pub fn from_clustering(result: &PseudoTypeClustering) -> Self {
        let models = ValueModel::per_cluster(result);
        assert!(
            !models.is_empty(),
            "need at least one cluster to detect against"
        );
        Self { models }
    }

    /// The best (highest) log-likelihood of `value` under any model.
    pub fn score_value(&self, value: &[u8]) -> f64 {
        self.models
            .iter()
            .map(|m| m.log_likelihood(value))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean best-model score over a message's segments: low values flag
    /// messages whose fields fit no known data type.
    pub fn score_message(&self, payload: &[u8], segments: &segment::MessageSegments) -> f64 {
        let scores: Vec<f64> = segments
            .ranges()
            .iter()
            .filter(|r| r.len() >= 2)
            .map(|r| self.score_value(&payload[r.clone()]))
            .collect();
        if scores.is_empty() {
            return f64::NEG_INFINITY;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Number of models (clusters) the detector scores against.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }
}

/// A state-aware fuzzing driver: seeded weighted random walks over an
/// inferred [`StateMachine`], choosing each step in proportion to the
/// observed transition counts (and stopping in proportion to the
/// observed termination counts). The emitted symbol sequence names the
/// message type to mutate at every step; the visited states are the
/// fuzzer's coverage.
#[derive(Debug)]
pub struct StateAwareFuzzer<'m> {
    machine: &'m StateMachine,
    rng: StdRng,
    max_depth: usize,
}

impl<'m> StateAwareFuzzer<'m> {
    /// A fuzzer over `machine`, deterministic per `seed`.
    pub fn new(machine: &'m StateMachine, seed: u64) -> Self {
        Self {
            machine,
            rng: StdRng::seed_from_u64(seed),
            max_depth: 64,
        }
    }

    /// Caps the walk length (default 64 symbols) — a guard against
    /// machines whose loops rarely terminate.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// The machine being walked.
    pub fn machine(&self) -> &StateMachine {
        self.machine
    }

    /// One walk from the initial state: returns the emitted symbols and
    /// the visited states (starting with state 0, one longer than the
    /// symbols). At every state the walk stops with probability
    /// `terminations / visits` and otherwise follows an outgoing
    /// transition in proportion to its count.
    pub fn walk(&mut self) -> (Vec<u32>, Vec<u32>) {
        let mut at = 0u32;
        let mut symbols = Vec::new();
        let mut states = vec![at];
        while symbols.len() < self.max_depth {
            let term = self.machine.terminations[at as usize];
            let out = self.machine.emissions(at);
            let total = term + out.iter().map(|&(_, _, c)| c).sum::<u64>();
            if total == 0 {
                break;
            }
            let mut pick = self.rng.gen_range(0..total);
            if pick < term {
                break;
            }
            pick -= term;
            let step = out
                .into_iter()
                .find(|&(_, _, count)| {
                    if pick < count {
                        true
                    } else {
                        pick -= count;
                        false
                    }
                })
                .expect("pick < total - term = sum of counts");
            symbols.push(step.0);
            states.push(step.1);
            at = step.1;
        }
        (symbols, states)
    }

    /// Distinct states visited across `walks` walks — the coverage a
    /// stateless sampler lacks on deep protocols.
    pub fn coverage(&mut self, walks: usize) -> BTreeSet<u32> {
        let mut seen = BTreeSet::from([0u32]);
        for _ in 0..walks {
            seen.extend(self.walk().1);
        }
        seen
    }

    /// Scores a peer response observed after a fuzzed message with the
    /// per-data-type models: low scores flag responses whose fields fit
    /// no known data type (misbehavior).
    pub fn score_response(
        &self,
        detector: &MisbehaviorDetector,
        payload: &[u8],
        segments: &segment::MessageSegments,
    ) -> f64 {
        detector.score_message(payload, segments)
    }
}

/// The stateless baseline the state-aware fuzzer is measured against:
/// each symbol is drawn i.i.d. from the machine's aggregate symbol
/// frequency (ignoring the current state) and the sequence is replayed
/// on the machine. Returns the distinct states reached across `walks`
/// sequences of length `depth`.
pub fn stateless_coverage(
    machine: &StateMachine,
    seed: u64,
    walks: usize,
    depth: usize,
) -> BTreeSet<u32> {
    let mut hist: Vec<(u32, u64)> = Vec::new();
    for t in &machine.transitions {
        match hist.iter_mut().find(|(s, _)| *s == t.symbol) {
            Some((_, c)) => *c += t.count,
            None => hist.push((t.symbol, t.count)),
        }
    }
    let mut seen = BTreeSet::from([0u32]);
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return seen;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..walks {
        let seq: Vec<u32> = (0..depth)
            .map(|_| {
                let mut pick = rng.gen_range(0..total);
                hist.iter()
                    .find(|&&(_, c)| {
                        if pick < c {
                            true
                        } else {
                            pick -= c;
                            false
                        }
                    })
                    .expect("pick < total")
                    .0
            })
            .collect();
        seen.extend(machine.run_sequence(&seq));
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FieldTypeClusterer;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, Protocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use segment::nemesys::Nemesys;

    fn ntp_clustering() -> (trace::Trace, PseudoTypeClustering) {
        let trace = corpus::build_trace(Protocol::Ntp, 80, 3);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        (trace, result)
    }

    #[test]
    fn learn_and_sample_lengths_match_training() {
        let values: Vec<(&[u8], usize)> = vec![
            (b"\xD2\x3D\x19\x01", 3),
            (b"\xD2\x3D\x19\x02", 1),
            (b"\xD2\x3D\x20\x05", 2),
        ];
        let model = ValueModel::learn(&values);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = model.sample(&mut rng);
            assert_eq!(v.len(), 4, "only length 4 was observed");
        }
        assert_eq!(model.training_weight(), 6);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let values: Vec<(&[u8], usize)> = vec![(b"hello", 1), (b"hopla", 1), (b"haaae", 1)];
        let model = ValueModel::learn(&values);
        let a: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn in_domain_values_score_higher_than_noise() {
        let training: Vec<Vec<u8>> = (0..50u32)
            .map(|i| {
                let mut v = vec![0xD2, 0x3D, 0x19];
                v.extend_from_slice(&i.to_be_bytes());
                v
            })
            .collect();
        let refs: Vec<(&[u8], usize)> = training.iter().map(|v| (&v[..], 1)).collect();
        let model = ValueModel::learn(&refs);
        let in_domain = model.log_likelihood(&[0xD2, 0x3D, 0x19, 0, 0, 0, 42]);
        let noise = model.log_likelihood(b"zzzzzzz");
        assert!(in_domain > noise + 1.0, "{in_domain} vs {noise}");
    }

    #[test]
    fn per_cluster_models_cover_all_clusters() {
        let (_, result) = ntp_clustering();
        let models = ValueModel::per_cluster(&result);
        assert_eq!(models.len(), result.clustering.n_clusters() as usize);
    }

    #[test]
    fn detector_flags_foreign_messages() {
        let (trace, result) = ntp_clustering();
        let detector = MisbehaviorDetector::from_clustering(&result);
        // Genuine NTP messages score clearly higher than random bytes of
        // the same shape.
        let nem = Nemesys::default();
        let genuine = &trace.messages()[0];
        let genuine_seg = nem.segment_message(genuine.payload());
        let genuine_score = detector.score_message(genuine.payload(), &genuine_seg);

        let mut rng = StdRng::seed_from_u64(9);
        let random: Vec<u8> = (0..48).map(|_| rng.gen()).collect();
        let random_seg = nem.segment_message(&random);
        let random_score = detector.score_message(&random, &random_seg);
        assert!(
            genuine_score > random_score,
            "genuine {genuine_score} vs random {random_score}"
        );
    }

    #[test]
    fn fuzz_candidates_resemble_the_domain() {
        let (_, result) = ntp_clustering();
        let models = ValueModel::per_cluster(&result);
        let mut rng = StdRng::seed_from_u64(11);
        for model in &models {
            let sample = model.sample(&mut rng);
            // Sampled lengths come from the observed length set.
            assert!(model.lengths().iter().any(|&(l, _)| l == sample.len()));
            // And score at least as well as pure noise of equal length.
            let noise: Vec<u8> = (0..sample.len()).map(|_| rng.gen()).collect();
            let s_sample = model.log_likelihood(&sample);
            let s_noise = model.log_likelihood(&noise);
            assert!(s_sample >= s_noise - 2.0, "{s_sample} vs {s_noise}");
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn learn_rejects_empty_input() {
        ValueModel::learn(&[]);
    }

    /// A deep handshake chain: hello → auth → open → use → close →
    /// bye. Every observed flow runs the full chain, so the inferred
    /// machine is a 7-state corridor whose last state is only reachable
    /// via the exact 6-symbol prefix.
    fn corridor_machine() -> StateMachine {
        let seqs: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4, 5]; 30];
        let names: Vec<String> = ["hello", "auth", "open", "use", "close", "bye"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        statemachine::infer(&seqs, names, &statemachine::FsmConfig::default())
    }

    #[test]
    fn state_aware_walks_reach_states_the_stateless_sampler_misses() {
        let machine = corridor_machine();
        assert_eq!(machine.n_states, 7, "the corridor must not collapse");
        let deep = machine.run_sequence(&[0, 1, 2, 3, 4, 5]);
        let deepest = *deep.last().expect("non-empty");

        // The stateless i.i.d. sampler has a (1/6)^6 chance per walk of
        // producing the exact prefix; across 200 walks (seeded) it
        // never reaches the deep end of the corridor.
        let stateless = stateless_coverage(&machine, 42, 200, 8);
        assert!(
            !stateless.contains(&deepest),
            "stateless sampler reached the deep state by luck; pick another seed"
        );

        // The state-aware walker follows the machine's transitions, so
        // a handful of walks cover the whole corridor.
        let mut fuzzer = StateAwareFuzzer::new(&machine, 42);
        let covered = fuzzer.coverage(5);
        assert!(
            covered.contains(&deepest),
            "walker must reach the deep state"
        );
        assert_eq!(covered.len(), machine.n_states as usize, "full coverage");
        assert!(
            covered.len() > stateless.len(),
            "state-aware coverage {} must beat stateless {}",
            covered.len(),
            stateless.len()
        );
    }

    #[test]
    fn walks_are_deterministic_per_seed_and_respect_the_machine() {
        let machine = corridor_machine();
        let a: Vec<_> = {
            let mut f = StateAwareFuzzer::new(&machine, 7);
            (0..5).map(|_| f.walk()).collect()
        };
        let b: Vec<_> = {
            let mut f = StateAwareFuzzer::new(&machine, 7);
            (0..5).map(|_| f.walk()).collect()
        };
        assert_eq!(a, b);
        for (symbols, states) in a {
            assert_eq!(states.len(), symbols.len() + 1);
            assert_eq!(states[0], 0);
            // Every step is a real transition of the machine.
            for (i, &s) in symbols.iter().enumerate() {
                assert_eq!(machine.step(states[i], s), Some(states[i + 1]));
            }
        }
    }

    #[test]
    fn max_depth_caps_looping_walks() {
        // A machine that loops forever (no terminations observed at the
        // loop state would mean infinite walks without the cap).
        let seqs: Vec<Vec<u32>> = (1..5)
            .flat_map(|reps| std::iter::repeat_n(vec![0u32; reps], 8))
            .collect();
        let machine = statemachine::infer(
            &seqs,
            vec!["ping".into()],
            &statemachine::FsmConfig::default(),
        );
        let mut fuzzer = StateAwareFuzzer::new(&machine, 3).with_max_depth(4);
        for _ in 0..20 {
            let (symbols, _) = fuzzer.walk();
            assert!(symbols.len() <= 4);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn training_set() -> impl Strategy<Value = Vec<(Vec<u8>, usize)>> {
        prop::collection::vec((prop::collection::vec(any::<u8>(), 1..16), 1usize..5), 1..8)
    }

    proptest! {
        /// Sampled values always take a length observed in training —
        /// the model never invents lengths.
        #[test]
        fn sample_lengths_come_from_training(values in training_set(), seed in any::<u64>()) {
            let refs: Vec<(&[u8], usize)> =
                values.iter().map(|(v, w)| (&v[..], *w)).collect();
            let model = ValueModel::learn(&refs);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..8 {
                let sample = model.sample(&mut rng);
                prop_assert!(
                    model.lengths().iter().any(|&(l, _)| l == sample.len()),
                    "sampled length {} not in {:?}",
                    sample.len(),
                    model.lengths()
                );
            }
        }

        /// The likelihood of any non-empty byte slice is finite
        /// (Laplace smoothing leaves no zero-probability event), and
        /// only the empty slice scores negative infinity.
        #[test]
        fn log_likelihood_is_finite_on_arbitrary_input(
            values in training_set(),
            probe in prop::collection::vec(any::<u8>(), 1..64),
        ) {
            let refs: Vec<(&[u8], usize)> =
                values.iter().map(|(v, w)| (&v[..], *w)).collect();
            let model = ValueModel::learn(&refs);
            let ll = model.log_likelihood(&probe);
            prop_assert!(ll.is_finite(), "ll = {ll} for {probe:?}");
            prop_assert!(ll < 0.0, "smoothed likelihoods are strictly below certainty");
            prop_assert_eq!(model.log_likelihood(&[]), f64::NEG_INFINITY);
        }
    }
}
