//! Value generation and misbehavior scoring from cluster contents.
//!
//! The paper's §V proposes to "automatically learn value generation
//! rules from the cluster contents using LSTM or similar machine
//! learning methods to predict probable field values for fuzzing and
//! misbehavior detection". This module implements that idea with an
//! interpretable substitute for the LSTM (documented in DESIGN.md §4):
//! a per-cluster [`ValueModel`] combining the empirical length
//! distribution, per-position byte ranges and an order-1 byte Markov
//! chain with Laplace smoothing. The model both *generates* plausible
//! new field values (fuzzing) and *scores* observed values
//! (misbehavior detection).

use crate::pipeline::PseudoTypeClustering;
use rand::Rng;

/// A generative model of one pseudo data type's value domain.
#[derive(Debug, Clone)]
pub struct ValueModel {
    /// Observed value lengths and their occurrence counts.
    lengths: Vec<(usize, usize)>,
    /// Start-byte histogram.
    start: Box<[u32; 256]>,
    /// First-order transition counts `transitions[prev][next]`.
    transitions: Vec<[u32; 256]>,
    /// Which previous bytes have any transition mass.
    total_values: usize,
}

impl ValueModel {
    /// Learns a model from the (weighted) values of one cluster.
    ///
    /// `values` are `(bytes, occurrence count)` pairs; occurrence counts
    /// weight the statistics the same way duplicates would.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains an empty value.
    pub fn learn(values: &[(&[u8], usize)]) -> Self {
        assert!(!values.is_empty(), "cannot learn from an empty cluster");
        let mut lengths: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut start = Box::new([0u32; 256]);
        let mut transitions: Vec<[u32; 256]> = vec![[0u32; 256]; 256];
        let mut total = 0usize;
        for &(bytes, weight) in values {
            assert!(!bytes.is_empty(), "values must be non-empty");
            let w = weight.max(1) as u32;
            *lengths.entry(bytes.len()).or_insert(0) += weight.max(1);
            start[bytes[0] as usize] += w;
            for pair in bytes.windows(2) {
                transitions[pair[0] as usize][pair[1] as usize] += w;
            }
            total += weight.max(1);
        }
        Self {
            lengths: lengths.into_iter().collect(),
            start,
            transitions,
            total_values: total,
        }
    }

    /// Learns one model per cluster of a pseudo-data-type clustering.
    pub fn per_cluster(result: &PseudoTypeClustering) -> Vec<ValueModel> {
        result
            .clustering
            .clusters()
            .iter()
            .map(|members| {
                let values: Vec<(&[u8], usize)> = members
                    .iter()
                    .map(|&m| {
                        let seg = &result.store.segments[m];
                        (&seg.value[..], seg.occurrences())
                    })
                    .collect();
                ValueModel::learn(&values)
            })
            .collect()
    }

    /// The observed value lengths (ascending) with their weights.
    pub fn lengths(&self) -> &[(usize, usize)] {
        &self.lengths
    }

    /// Samples a plausible new value: length from the empirical
    /// distribution, bytes from the smoothed Markov chain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u8> {
        let len = self.sample_length(rng);
        let mut out = Vec::with_capacity(len);
        let first = sample_histogram(&self.start, rng);
        out.push(first);
        while out.len() < len {
            let prev = *out.last().expect("non-empty");
            let next = sample_histogram(&self.transitions[prev as usize], rng);
            out.push(next);
        }
        out
    }

    fn sample_length<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: usize = self.lengths.iter().map(|&(_, c)| c).sum();
        let mut pick = rng.gen_range(0..total);
        for &(len, c) in &self.lengths {
            if pick < c {
                return len;
            }
            pick -= c;
        }
        self.lengths.last().expect("non-empty lengths").0
    }

    /// Average per-byte log₂-likelihood of `value` under the model
    /// (Laplace-smoothed). Higher is more plausible; values from a
    /// different data type score distinctly lower.
    ///
    /// Returns `f64::NEG_INFINITY` for an empty value.
    pub fn log_likelihood(&self, value: &[u8]) -> f64 {
        if value.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut ll = 0.0;
        let start_total: u64 = self.start.iter().map(|&c| u64::from(c)).sum();
        ll += smoothed_log2(self.start[value[0] as usize], start_total);
        for pair in value.windows(2) {
            let row = &self.transitions[pair[0] as usize];
            let row_total: u64 = row.iter().map(|&c| u64::from(c)).sum();
            ll += smoothed_log2(row[pair[1] as usize], row_total);
        }
        // Length plausibility: unseen lengths are penalized.
        let len_total: usize = self.lengths.iter().map(|&(_, c)| c).sum();
        let len_count = self
            .lengths
            .iter()
            .find(|&&(l, _)| l == value.len())
            .map(|&(_, c)| c)
            .unwrap_or(0);
        ll += smoothed_log2(len_count as u32, len_total as u64);
        ll / (value.len() as f64 + 1.0)
    }

    /// Number of training values (instance-weighted).
    pub fn training_weight(&self) -> usize {
        self.total_values
    }
}

fn smoothed_log2(count: u32, total: u64) -> f64 {
    ((u64::from(count) + 1) as f64 / (total + 256) as f64).log2()
}

/// Samples a byte from a count histogram. Observed bytes are weighted
/// 16× against the uniform smoothing mass, so candidates mostly stay
/// inside the learned domain while occasionally probing beyond it —
/// which is what a fuzzer wants.
fn sample_histogram<R: Rng + ?Sized>(hist: &[u32; 256], rng: &mut R) -> u8 {
    let total: u64 = hist.iter().map(|&c| u64::from(c) * 16 + 1).sum();
    let mut pick = rng.gen_range(0..total);
    for (b, &c) in hist.iter().enumerate() {
        let mass = u64::from(c) * 16 + 1;
        if pick < mass {
            return b as u8;
        }
        pick -= mass;
    }
    255
}

/// Misbehavior detector: scores segments of new messages against the
/// learned pseudo-data-type models; values unlike any known data type
/// stand out with low scores.
#[derive(Debug, Clone)]
pub struct MisbehaviorDetector {
    models: Vec<ValueModel>,
}

impl MisbehaviorDetector {
    /// Builds a detector from a clustering result.
    ///
    /// # Panics
    ///
    /// Panics if the clustering has no clusters.
    pub fn from_clustering(result: &PseudoTypeClustering) -> Self {
        let models = ValueModel::per_cluster(result);
        assert!(
            !models.is_empty(),
            "need at least one cluster to detect against"
        );
        Self { models }
    }

    /// The best (highest) log-likelihood of `value` under any model.
    pub fn score_value(&self, value: &[u8]) -> f64 {
        self.models
            .iter()
            .map(|m| m.log_likelihood(value))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean best-model score over a message's segments: low values flag
    /// messages whose fields fit no known data type.
    pub fn score_message(&self, payload: &[u8], segments: &segment::MessageSegments) -> f64 {
        let scores: Vec<f64> = segments
            .ranges()
            .iter()
            .filter(|r| r.len() >= 2)
            .map(|r| self.score_value(&payload[r.clone()]))
            .collect();
        if scores.is_empty() {
            return f64::NEG_INFINITY;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    /// Number of models (clusters) the detector scores against.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FieldTypeClusterer;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, Protocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use segment::nemesys::Nemesys;

    fn ntp_clustering() -> (trace::Trace, PseudoTypeClustering) {
        let trace = corpus::build_trace(Protocol::Ntp, 80, 3);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        (trace, result)
    }

    #[test]
    fn learn_and_sample_lengths_match_training() {
        let values: Vec<(&[u8], usize)> = vec![
            (b"\xD2\x3D\x19\x01", 3),
            (b"\xD2\x3D\x19\x02", 1),
            (b"\xD2\x3D\x20\x05", 2),
        ];
        let model = ValueModel::learn(&values);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = model.sample(&mut rng);
            assert_eq!(v.len(), 4, "only length 4 was observed");
        }
        assert_eq!(model.training_weight(), 6);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let values: Vec<(&[u8], usize)> = vec![(b"hello", 1), (b"hopla", 1), (b"haaae", 1)];
        let model = ValueModel::learn(&values);
        let a: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| model.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn in_domain_values_score_higher_than_noise() {
        let training: Vec<Vec<u8>> = (0..50u32)
            .map(|i| {
                let mut v = vec![0xD2, 0x3D, 0x19];
                v.extend_from_slice(&i.to_be_bytes());
                v
            })
            .collect();
        let refs: Vec<(&[u8], usize)> = training.iter().map(|v| (&v[..], 1)).collect();
        let model = ValueModel::learn(&refs);
        let in_domain = model.log_likelihood(&[0xD2, 0x3D, 0x19, 0, 0, 0, 42]);
        let noise = model.log_likelihood(b"zzzzzzz");
        assert!(in_domain > noise + 1.0, "{in_domain} vs {noise}");
    }

    #[test]
    fn per_cluster_models_cover_all_clusters() {
        let (_, result) = ntp_clustering();
        let models = ValueModel::per_cluster(&result);
        assert_eq!(models.len(), result.clustering.n_clusters() as usize);
    }

    #[test]
    fn detector_flags_foreign_messages() {
        let (trace, result) = ntp_clustering();
        let detector = MisbehaviorDetector::from_clustering(&result);
        // Genuine NTP messages score clearly higher than random bytes of
        // the same shape.
        let nem = Nemesys::default();
        let genuine = &trace.messages()[0];
        let genuine_seg = nem.segment_message(genuine.payload());
        let genuine_score = detector.score_message(genuine.payload(), &genuine_seg);

        let mut rng = StdRng::seed_from_u64(9);
        let random: Vec<u8> = (0..48).map(|_| rng.gen()).collect();
        let random_seg = nem.segment_message(&random);
        let random_score = detector.score_message(&random, &random_seg);
        assert!(
            genuine_score > random_score,
            "genuine {genuine_score} vs random {random_score}"
        );
    }

    #[test]
    fn fuzz_candidates_resemble_the_domain() {
        let (_, result) = ntp_clustering();
        let models = ValueModel::per_cluster(&result);
        let mut rng = StdRng::seed_from_u64(11);
        for model in &models {
            let sample = model.sample(&mut rng);
            // Sampled lengths come from the observed length set.
            assert!(model.lengths().iter().any(|&(l, _)| l == sample.len()));
            // And score at least as well as pure noise of equal length.
            let noise: Vec<u8> = (0..sample.len()).map(|_| rng.gen()).collect();
            let s_sample = model.log_likelihood(&sample);
            let s_noise = model.log_likelihood(&noise);
            assert!(s_sample >= s_noise - 2.0, "{s_sample} vs {s_noise}");
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn learn_rejects_empty_input() {
        ValueModel::learn(&[]);
    }
}
