#![warn(missing_docs)]
//! Field data type clustering for reverse engineering of unknown binary
//! protocols — a from-scratch implementation of Kleber, Kargl, Stute &
//! Hollick, *"Network Message Field Type Clustering for Reverse
//! Engineering of Unknown Binary Protocols"*, IEEE DSN-W 2022.
//!
//! Given a trace of messages of one (unknown) protocol and a
//! segmentation — heuristic or ground truth — the pipeline groups
//! message segments into **pseudo data types**: clusters of segments
//! that, by the similarity of their byte values, plausibly carry the
//! same field data type. No per-type heuristics are involved, so the
//! method also covers data representations nobody anticipated.
//!
//! The pipeline (paper §III, [`FieldTypeClusterer`]):
//!
//! 1. **Preprocess** the trace ([`trace::Preprocessor`]): filter,
//!    de-duplicate, truncate.
//! 2. **Segment** messages ([`segment`]): NEMESYS, Netzob-style, CSP, or
//!    the ground-truth adapter in [`truth`].
//! 3. **Dissimilarity**: pairwise Canberra dissimilarity between unique
//!    segments of at least two bytes ([`dissim`]).
//! 4. **Auto-configure** DBSCAN from the k-NN dissimilarity ECDF's knee
//!    ([`cluster::autoconf`]).
//! 5. **Cluster** with DBSCAN; re-configure on a trimmed ECDF when one
//!    cluster swallows more than 60 % of the segments.
//! 6. **Refine**: merge over-classified clusters, split clusters with
//!    polarized value occurrences.
//!
//! The stages are driven by the staged [`AnalysisSession`], which caches
//! each stage's artifact (segmentation, deduplicated [`SegmentStore`],
//! shared dissimilarity matrix + neighbor index, selected parameters,
//! clustering) so that downstream consumers — including
//! [`msgtype`] message typing — reuse instead of recompute.
//! [`FieldTypeClusterer::cluster_trace`] is the one-call wrapper.
//!
//! # Examples
//!
//! End-to-end on a synthetic NTP trace with ground-truth segmentation:
//!
//! ```
//! use fieldclust::{FieldTypeClusterer, truth};
//! use protocols::{corpus, Protocol};
//!
//! let trace = corpus::build_trace(Protocol::Ntp, 60, 7);
//! let gt = corpus::ground_truth(Protocol::Ntp, &trace);
//! let segmentation = truth::truth_segmentation(&trace, &gt);
//!
//! let result = FieldTypeClusterer::default().cluster_trace(&trace, &segmentation)?;
//! assert!(result.clustering.n_clusters() > 0);
//! # Ok::<(), fieldclust::PipelineError>(())
//! ```

pub(crate) mod cache;
pub mod cancel;
pub mod compare;
pub mod eval;
pub mod fsm;
pub mod fuzzgen;
pub mod msgtype;
pub mod pipeline;
pub mod report;
pub mod segments;
pub mod semantics;
pub mod session;
pub mod truth;

pub use cancel::CancelToken;
pub use compare::{compare_clusterings, ClusteringDiff};
pub use eval::{evaluate, label_segments, Evaluation};
pub use fsm::{symbol_labels, StateMachineConfig};
pub use msgtype::{identify_message_types, MessageTypeConfig, MessageTypes};
pub use pipeline::{
    EpsilonSource, FieldTypeClusterer, NeighborBackend, PipelineError, PseudoTypeClustering,
};
pub use segments::{SegmentInstance, SegmentStore, UniqueSegment};
pub use semantics::{interpret, ClusterSemantics, SemanticHypothesis, SemanticsConfig};
pub use session::AnalysisSession;
pub use store::{ArtifactStore, StoreStats};
