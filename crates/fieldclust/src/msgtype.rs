//! Message type identification via continuous segment similarity.
//!
//! The paper deliberately does *not* cluster whole messages — prior work
//! covers that, in particular the authors' own NEMETYL (Kleber et al.,
//! INFOCOM 2020, the paper's reference \[10\], which also introduced the
//! Canberra dissimilarity reused here). This module implements that
//! companion analysis on top of the same machinery: messages are
//! sequences of segments; two messages are compared by aligning their
//! segment sequences with dynamic programming, using the precomputed
//! segment dissimilarity matrix as substitution cost; the resulting
//! message dissimilarity matrix is clustered with the same
//! auto-configured DBSCAN. Together with the field type clustering this
//! completes the inference stack: message types × field types.

use crate::segments::SegmentStore;
use crate::session::AnalysisSession;
use crate::FieldTypeClusterer;
use cluster::autoconf::AutoConfig;
use cluster::dbscan::Clustering;
use dissim::CondensedMatrix;
use segment::TraceSegmentation;
use trace::Trace;

/// Configuration of the message type identifier. Segment dissimilarity
/// parameters and thread counts come from the owning session's
/// [`FieldTypeClusterer`] config.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageTypeConfig {
    /// ε auto-configuration for the message-level DBSCAN.
    pub autoconf: AutoConfig,
    /// Alignment gap penalty (cost of leaving a segment unmatched),
    /// in dissimilarity units.
    pub gap_penalty: f64,
}

impl Default for MessageTypeConfig {
    fn default() -> Self {
        Self {
            autoconf: AutoConfig::default(),
            gap_penalty: 0.8,
        }
    }
}

/// The result: one cluster id (or noise) per message of the trace.
#[derive(Debug, Clone)]
pub struct MessageTypes {
    /// Clustering over the trace's messages.
    pub clustering: Clustering,
    /// The auto-configured ε for the message matrix.
    pub epsilon: f64,
    /// `min_samples` used.
    pub min_samples: usize,
}

/// Error from [`identify_message_types`].
#[derive(Debug, Clone, PartialEq)]
pub enum MessageTypeError {
    /// Fewer than four messages.
    TooFewMessages {
        /// Messages available.
        n: usize,
    },
    /// The owning [`AnalysisSession`] has no segmentation installed yet.
    MissingSegmentation,
    /// The session's [`CancelToken`](crate::CancelToken) tripped
    /// between stages.
    Cancelled,
}

impl std::fmt::Display for MessageTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageTypeError::TooFewMessages { n } => {
                write!(f, "too few messages for type identification ({n} < 4)")
            }
            MessageTypeError::MissingSegmentation => {
                write!(f, "no segmentation installed (run the segment stage first)")
            }
            MessageTypeError::Cancelled => {
                write!(f, "analysis cancelled (token tripped or deadline passed)")
            }
        }
    }
}

impl std::error::Error for MessageTypeError {}

/// Clusters the trace's messages into message types.
///
/// This is a convenience wrapper over [`AnalysisSession::message_types`]
/// with a default session config; use a session directly to share the
/// segment dissimilarity matrix with the field type analysis.
///
/// # Errors
///
/// Returns [`MessageTypeError::TooFewMessages`] for traces with fewer
/// than four messages.
pub fn identify_message_types(
    trace: &Trace,
    segmentation: &TraceSegmentation,
    config: &MessageTypeConfig,
) -> Result<MessageTypes, MessageTypeError> {
    let mut session = AnalysisSession::new(trace, FieldTypeClusterer::default());
    session.set_segmentation(segmentation.clone());
    session.message_types(config)
}

/// Each message as a sequence of unique-segment ids. Instances are
/// recorded per segment, so sort them back into per-message offset
/// order.
pub(crate) fn segment_sequences(n: usize, store: &SegmentStore) -> Vec<Vec<usize>> {
    let mut with_offsets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (id, seg) in store.segments.iter().enumerate() {
        for inst in &seg.instances {
            with_offsets[inst.message].push((inst.range.start, id));
        }
    }
    with_offsets
        .into_iter()
        .map(|mut v| {
            v.sort_unstable();
            v.into_iter().map(|(_, id)| id).collect()
        })
        .collect()
}

/// Normalized global alignment cost of two segment-id sequences:
/// substitution costs come from the segment dissimilarity matrix, gaps
/// cost `gap`; the total is normalized by the longer sequence length so
/// results live in `[0, ~1]`.
pub(crate) fn align_cost(a: &[usize], b: &[usize], seg_matrix: &CondensedMatrix, gap: f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let (rows, cols) = (a.len() + 1, b.len() + 1);
    let mut dp = vec![0.0f64; rows * cols];
    for i in 1..rows {
        dp[i * cols] = i as f64 * gap;
    }
    for (j, cell) in dp.iter_mut().enumerate().take(cols).skip(1) {
        *cell = j as f64 * gap;
    }
    for i in 1..rows {
        for j in 1..cols {
            let sub = dp[(i - 1) * cols + (j - 1)] + seg_matrix.get(a[i - 1], b[j - 1]);
            let del = dp[(i - 1) * cols + j] + gap;
            let ins = dp[i * cols + (j - 1)] + gap;
            dp[i * cols + j] = sub.min(del).min(ins);
        }
    }
    dp[rows * cols - 1] / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::truth_segmentation;
    use evalkit::{pair_counts, ClusterMetrics};
    use protocols::{corpus, Protocol, ProtocolSpec};

    fn run(protocol: Protocol, n: usize) -> (Vec<&'static str>, MessageTypes) {
        let trace = corpus::build_trace(protocol, n, 3);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let types: Vec<&'static str> = trace
            .iter()
            .map(|m| {
                protocol
                    .message_type(m.payload())
                    .expect("corpus messages parse")
            })
            .collect();
        let result = identify_message_types(&trace, &seg, &MessageTypeConfig::default())
            .expect("enough messages");
        (types, result)
    }

    fn metrics(types: &[&'static str], result: &MessageTypes) -> ClusterMetrics {
        let clusters: Vec<Vec<&str>> = result
            .clustering
            .clusters()
            .iter()
            .map(|members| members.iter().map(|&m| types[m]).collect())
            .collect();
        let noise: Vec<&str> = result
            .clustering
            .noise()
            .iter()
            .map(|&m| types[m])
            .collect();
        ClusterMetrics::from_counts(&pair_counts(&clusters, &noise))
    }

    #[test]
    fn dns_queries_and_responses_separate() {
        let (types, result) = run(Protocol::Dns, 60);
        let m = metrics(&types, &result);
        assert!(
            m.precision > 0.8,
            "precision = {} ({:?} clusters)",
            m.precision,
            result.clustering.n_clusters()
        );
        assert!(result.clustering.n_clusters() >= 2);
    }

    #[test]
    fn ntp_modes_separate() {
        let (types, result) = run(Protocol::Ntp, 60);
        let m = metrics(&types, &result);
        assert!(m.precision > 0.8, "precision = {}", m.precision);
    }

    #[test]
    fn alignment_cost_properties() {
        let seg_matrix = CondensedMatrix::build(3, |i, j| if i == j { 0.0 } else { 0.5 });
        // Identical sequences cost nothing.
        assert_eq!(align_cost(&[0, 1, 2], &[0, 1, 2], &seg_matrix, 0.8), 0.0);
        // Symmetry.
        let ab = align_cost(&[0, 1], &[1, 2, 0], &seg_matrix, 0.8);
        let ba = align_cost(&[1, 2, 0], &[0, 1], &seg_matrix, 0.8);
        assert_eq!(ab, ba);
        // Empty vs non-empty is maximal.
        assert_eq!(align_cost(&[], &[0], &seg_matrix, 0.8), 1.0);
        assert_eq!(align_cost(&[], &[], &seg_matrix, 0.8), 0.0);
    }

    #[test]
    fn too_few_messages_is_an_error() {
        let trace = corpus::build_trace(Protocol::Ntp, 3, 1);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        assert!(matches!(
            identify_message_types(&trace, &seg, &MessageTypeConfig::default()),
            Err(MessageTypeError::TooFewMessages { n: 3 })
        ));
    }

    #[test]
    fn every_message_is_labelled() {
        let (_, result) = run(Protocol::Smb, 40);
        assert_eq!(result.clustering.len(), 40);
        assert!(result.epsilon > 0.0);
    }
}
