//! The end-to-end field data type clustering pipeline (paper §III).

use crate::segments::SegmentStore;
use crate::session::AnalysisSession;
use cluster::autoconf::{AutoConfig, SelectedParams};
use cluster::dbscan::{Clustering, Label};
use cluster::refine::RefineParams;
use dissim::DissimParams;
use evalkit::Coverage;
use segment::TraceSegmentation;
use std::str::FromStr;
use trace::Trace;

/// Tile height used when the tiled backend is requested explicitly but
/// neither [`tile_rows`](FieldTypeClusterer::tile_rows) nor
/// [`max_memory`](FieldTypeClusterer::max_memory) pins a geometry.
pub const DEFAULT_TILE_ROWS: usize = 256;

/// How ε-region and k-NN queries are answered during clustering.
///
/// Every backend is pinned bit-identical on the final report, so the
/// choice trades memory and wall time only; it never enters cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborBackend {
    /// Pick per trace: the tiled matrix when a tile geometry is
    /// configured ([`tile_rows`](FieldTypeClusterer::tile_rows) or
    /// [`max_memory`](FieldTypeClusterer::max_memory)), the
    /// length-stratified index when segment lengths are mixed, the
    /// monolithic matrix otherwise.
    #[default]
    Auto,
    /// The monolithic in-memory condensed matrix plus a sorted
    /// neighbor index (O(u²) memory).
    Matrix,
    /// The row-block tiled matrix build (bounded peak memory during the
    /// build; the assembled matrix is still O(u²)).
    Tiled,
    /// A vantage-point tree forest answering queries directly from
    /// segment values — no condensed matrix is ever materialized
    /// (O(u) memory). On mixed-length corpora the metric pruning is
    /// unsound and queries fall back to exact linear scans.
    Vptree,
    /// Length-stratified search: per-length vantage-point forests plus
    /// penalty-aware lower bounds and LAESA pivots across strata —
    /// pruned queries on mixed-length corpora, still O(u) memory.
    Stratified,
}

impl NeighborBackend {
    /// All selectable backends, for usage strings and error messages.
    pub const NAMES: &'static [&'static str] = &["auto", "matrix", "tiled", "vptree", "stratified"];
}

impl FromStr for NeighborBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "matrix" => Ok(Self::Matrix),
            "tiled" => Ok(Self::Tiled),
            "vptree" => Ok(Self::Vptree),
            "stratified" => Ok(Self::Stratified),
            other => Err(format!(
                "unknown neighbor backend '{other}' (expected one of: {})",
                Self::NAMES.join(", ")
            )),
        }
    }
}

impl std::fmt::Display for NeighborBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Auto => "auto",
            Self::Matrix => "matrix",
            Self::Tiled => "tiled",
            Self::Vptree => "vptree",
            Self::Stratified => "stratified",
        })
    }
}

/// How the DBSCAN ε was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsilonSource {
    /// Knee of the k-NN ECDF (Algorithm 1).
    Knee,
    /// Knee of the ECDF trimmed below the first knee (§III-E multi-knee
    /// fallback, triggered by a dominating cluster).
    TrimmedKnee,
    /// Auto-configuration found no knee; half the mean dissimilarity was
    /// used instead (robustness fallback, not part of the paper).
    MeanFallback,
}

/// The complete pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldTypeClusterer {
    /// Canberra dissimilarity parameters.
    pub dissim: DissimParams,
    /// ε auto-configuration parameters.
    pub autoconf: AutoConfig,
    /// Refinement thresholds.
    pub refine: RefineParams,
    /// Minimum segment length admitted to clustering (the paper excludes
    /// one-byte segments).
    pub min_segment_len: usize,
    /// Threads used for the pairwise dissimilarity matrix.
    pub threads: usize,
    /// A single cluster holding more than this fraction of non-noise
    /// segments triggers the trimmed-ECDF fallback.
    pub large_cluster_fraction: f64,
    /// Row-block height of the tiled dissimilarity build. `Some(r)`
    /// switches the session to the tiled path (tile-granular caching,
    /// per-tile k-NN partials); `None` defers to [`max_memory`]
    /// (`Self::max_memory`), and the monolithic in-memory build when
    /// that is unset too. Tile geometry never changes results (pinned
    /// bit-identical) and never enters cache keys.
    pub tile_rows: Option<usize>,
    /// Approximate peak-memory budget in bytes for the dissimilarity
    /// build. Translated into a tile height of `max(1, bytes / (8·n))`
    /// rows when [`tile_rows`](Self::tile_rows) is unset.
    pub max_memory: Option<u64>,
    /// How neighbor queries are answered during clustering. Never
    /// changes results (pinned bit-identical) and never enters cache
    /// keys.
    pub neighbor_backend: NeighborBackend,
    /// Opt-in SWAR kernel fast path for vantage-point tree distance
    /// evaluations (bit-identical to the scalar kernel). Ignored by the
    /// matrix and tiled backends; never enters cache keys.
    pub swar: bool,
}

impl Default for FieldTypeClusterer {
    fn default() -> Self {
        Self {
            dissim: DissimParams::default(),
            autoconf: AutoConfig::default(),
            refine: RefineParams::default(),
            min_segment_len: 2,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            large_cluster_fraction: 0.6,
            tile_rows: None,
            max_memory: None,
            neighbor_backend: NeighborBackend::default(),
            swar: false,
        }
    }
}

/// The pipeline result: pseudo data types over unique segments.
#[derive(Debug, Clone)]
pub struct PseudoTypeClustering {
    /// The unique segments that were clustered (item `i` of the
    /// clustering is `store.segments[i]`).
    pub store: SegmentStore,
    /// Final cluster labels after refinement.
    pub clustering: Clustering,
    /// The auto-configured DBSCAN parameters that produced the result.
    pub params: SelectedParams,
    /// Where ε came from.
    pub epsilon_source: EpsilonSource,
}

impl PseudoTypeClustering {
    /// Byte coverage over the trace: bytes of all instances of segments
    /// that ended up in a cluster (noise and excluded short segments do
    /// not count as inferred).
    pub fn coverage(&self, trace: &Trace) -> Coverage {
        let mut covered = 0u64;
        for (seg, label) in self.store.segments.iter().zip(self.clustering.labels()) {
            if matches!(label, Label::Cluster(_)) {
                covered += seg
                    .instances
                    .iter()
                    .map(|i| i.range.len() as u64)
                    .sum::<u64>();
            }
        }
        Coverage {
            covered_bytes: covered,
            total_bytes: trace.total_payload_bytes() as u64,
        }
    }

    /// The values grouped per cluster, for inspection and reporting.
    pub fn cluster_values(&self) -> Vec<Vec<&[u8]>> {
        self.clustering
            .clusters()
            .into_iter()
            .map(|members| {
                members
                    .into_iter()
                    .map(|i| &self.store.segments[i].value[..])
                    .collect()
            })
            .collect()
    }
}

/// Error from [`FieldTypeClusterer::cluster_trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Too few clusterable unique segments to analyze.
    TooFewSegments {
        /// How many unique segments of sufficient length were found.
        n: usize,
    },
    /// A staged [`AnalysisSession`] was asked for a post-segmentation
    /// artifact before a segmentation was installed.
    MissingSegmentation,
    /// The session's [`CancelToken`](crate::CancelToken) tripped
    /// (explicit cancel or deadline) between stages. Artifacts computed
    /// before the trip stay cached; re-driving the session resumes from
    /// them.
    Cancelled,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::TooFewSegments { n } => {
                write!(f, "too few unique segments for clustering ({n} < 4)")
            }
            PipelineError::MissingSegmentation => {
                write!(f, "no segmentation installed (run the segment stage first)")
            }
            PipelineError::Cancelled => {
                write!(f, "analysis cancelled (token tripped or deadline passed)")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl FieldTypeClusterer {
    /// Runs the pipeline on a preprocessed trace and its segmentation.
    ///
    /// This is a convenience wrapper that drives a staged
    /// [`AnalysisSession`] through all remaining stages; use a session
    /// directly to inspect or reuse intermediate artifacts (the
    /// dissimilarity matrix, the neighbor index, the pre-refinement
    /// clustering, …).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::TooFewSegments`] when fewer than four
    /// unique segments of sufficient length exist.
    pub fn cluster_trace(
        &self,
        trace: &Trace,
        segmentation: &TraceSegmentation,
    ) -> Result<PseudoTypeClustering, PipelineError> {
        let mut session = AnalysisSession::new(trace, self.clone());
        session.set_segmentation(segmentation.clone());
        session.finish()
    }

    /// The tile height of the tiled dissimilarity build over `n`
    /// unique segments, or `None` for the monolithic in-memory build.
    /// An explicit [`tile_rows`](Self::tile_rows) wins; otherwise a
    /// [`max_memory`](Self::max_memory) budget buys `bytes / (8·n)`
    /// rows (a bottom-of-triangle tile holds at most `rows·n` f64
    /// entries), clamped to at least one row per tile.
    pub fn effective_tile_rows(&self, n: usize) -> Option<usize> {
        if let Some(rows) = self.tile_rows {
            return Some(rows.max(1));
        }
        let budget = self.max_memory?;
        let per_row = 8 * n.max(1) as u64;
        Some(((budget / per_row) as usize).max(1))
    }

    /// Resolves [`neighbor_backend`](Self::neighbor_backend) for a trace
    /// of `n` unique segments: `Auto` becomes `Tiled` when a tile
    /// geometry is configured and `Matrix` otherwise; explicit choices
    /// pass through. Never returns [`NeighborBackend::Auto`].
    ///
    /// This length-agnostic form resolves `Auto` as if segment lengths
    /// were uniform; callers that know whether the corpus is
    /// mixed-length should use
    /// [`resolved_backend_mixed`](Self::resolved_backend_mixed).
    pub fn resolved_backend(&self, n: usize) -> NeighborBackend {
        self.resolved_backend_mixed(n, false)
    }

    /// Resolves [`neighbor_backend`](Self::neighbor_backend) with the
    /// corpus's length profile in hand: `Auto` becomes `Tiled` when a
    /// tile geometry is configured, else `Stratified` when `mixed` (the
    /// segments vary in length, so the plain vp-forest would degrade to
    /// linear scans), else `Matrix`. Explicit choices pass through.
    /// Never returns [`NeighborBackend::Auto`].
    pub fn resolved_backend_mixed(&self, n: usize, mixed: bool) -> NeighborBackend {
        match self.neighbor_backend {
            NeighborBackend::Auto => {
                if self.effective_tile_rows(n).is_some() {
                    NeighborBackend::Tiled
                } else if mixed {
                    NeighborBackend::Stratified
                } else {
                    NeighborBackend::Matrix
                }
            }
            explicit => explicit,
        }
    }

    /// The tile height of the dissimilarity build under the resolved
    /// backend: `Some(rows)` exactly when the resolved backend is
    /// [`NeighborBackend::Tiled`], falling back to
    /// [`DEFAULT_TILE_ROWS`] when the backend was forced without a
    /// configured geometry. `None` for the matrix and vptree backends.
    pub(crate) fn tiled_rows(&self, n: usize) -> Option<usize> {
        match self.resolved_backend(n) {
            NeighborBackend::Tiled => {
                Some(self.effective_tile_rows(n).unwrap_or(DEFAULT_TILE_ROWS))
            }
            _ => None,
        }
    }

    /// Checks for a cluster holding more than `large_cluster_fraction`
    /// of the non-noise segments — occurrence-weighted, consistent with
    /// the multiset view.
    pub(crate) fn has_dominating_cluster(
        &self,
        clustering: &Clustering,
        weights: &[usize],
    ) -> bool {
        let clusters = clustering.clusters();
        let cluster_weight = |c: &[usize]| -> usize { c.iter().map(|&i| weights[i]).sum() };
        let non_noise: usize = clusters.iter().map(|c| cluster_weight(c)).sum();
        if non_noise == 0 {
            return false;
        }
        clusters
            .iter()
            .any(|c| cluster_weight(c) as f64 > self.large_cluster_fraction * non_noise as f64)
    }

    /// Fallback parameters when no knee exists: half the mean pairwise
    /// dissimilarity, `min_samples = round(ln n)`. The caller supplies
    /// the mean from whatever backend it has on hand —
    /// `CondensedMatrix::mean` and `kernel::pairwise_mean` are pinned
    /// bit-identical.
    pub(crate) fn mean_fallback(&self, mean: Option<f64>, n: usize) -> SelectedParams {
        let epsilon = mean.unwrap_or(0.0) / 2.0;
        SelectedParams {
            epsilon,
            min_samples: ((n as f64).ln().round() as usize).max(2),
            k: 2,
            ecdf_values: Vec::new(),
            smoothed_curve: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, Protocol};
    use segment::nemesys::Nemesys;
    use segment::Segmenter;

    fn run(protocol: Protocol, n: usize, seed: u64) -> (Trace, PseudoTypeClustering) {
        let trace = corpus::build_trace(protocol, n, seed);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        (trace, result)
    }

    #[test]
    fn ntp_pipeline_produces_clusters() {
        let (trace, result) = run(Protocol::Ntp, 60, 1);
        assert!(
            result.clustering.n_clusters() >= 2,
            "n = {}",
            result.clustering.n_clusters()
        );
        let cov = result.coverage(&trace);
        assert!(cov.ratio() > 0.3, "coverage = {}", cov.ratio());
        assert!(result.params.epsilon > 0.0);
    }

    #[test]
    fn heuristic_segmentation_also_works() {
        let trace = corpus::build_trace(Protocol::Dns, 60, 2);
        let seg = Nemesys::default().segment_trace(&trace).unwrap();
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        assert!(result.clustering.n_clusters() >= 1);
    }

    #[test]
    fn too_few_segments_is_an_error() {
        let trace = corpus::build_trace(Protocol::Ntp, 60, 3);
        // Absurd minimum length excludes everything.
        let clusterer = FieldTypeClusterer {
            min_segment_len: 1000,
            ..FieldTypeClusterer::default()
        };
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        assert!(matches!(
            clusterer.cluster_trace(&trace, &seg),
            Err(PipelineError::TooFewSegments { .. })
        ));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let (_, a) = run(Protocol::Dns, 40, 4);
        let (_, b) = run(Protocol::Dns, 40, 4);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.params.epsilon, b.params.epsilon);
    }

    #[test]
    fn cluster_values_expose_member_bytes() {
        let (_, result) = run(Protocol::Ntp, 50, 5);
        let values = result.cluster_values();
        assert_eq!(values.len(), result.clustering.n_clusters() as usize);
        for members in &values {
            assert!(!members.is_empty());
        }
    }

    #[test]
    fn max_memory_derives_tile_rows() {
        let mut c = FieldTypeClusterer::default();
        assert_eq!(c.effective_tile_rows(100), None);
        c.max_memory = Some(8 * 100 * 16);
        assert_eq!(c.effective_tile_rows(100), Some(16));
        c.max_memory = Some(1); // below one row: clamp, never zero
        assert_eq!(c.effective_tile_rows(100), Some(1));
        c.tile_rows = Some(0); // explicit setting wins, clamped
        assert_eq!(c.effective_tile_rows(100), Some(1));
        c.tile_rows = Some(64);
        assert_eq!(c.effective_tile_rows(100), Some(64));
    }

    #[test]
    fn neighbor_backend_parses_and_displays() {
        for name in NeighborBackend::NAMES {
            let parsed: NeighborBackend = name.parse().unwrap();
            assert_eq!(parsed.to_string(), *name);
        }
        assert!("vp-tree".parse::<NeighborBackend>().is_err());
        assert_eq!(NeighborBackend::default(), NeighborBackend::Auto);
    }

    #[test]
    fn auto_backend_follows_tile_geometry() {
        let mut c = FieldTypeClusterer::default();
        assert_eq!(c.resolved_backend(100), NeighborBackend::Matrix);
        assert_eq!(c.tiled_rows(100), None);
        c.tile_rows = Some(16);
        assert_eq!(c.resolved_backend(100), NeighborBackend::Tiled);
        assert_eq!(c.tiled_rows(100), Some(16));
        // Explicit choices win over geometry.
        c.neighbor_backend = NeighborBackend::Vptree;
        assert_eq!(c.resolved_backend(100), NeighborBackend::Vptree);
        assert_eq!(c.tiled_rows(100), None);
        c.neighbor_backend = NeighborBackend::Matrix;
        assert_eq!(c.resolved_backend(100), NeighborBackend::Matrix);
        // Forced tiled without a geometry gets the default tile height.
        c.neighbor_backend = NeighborBackend::Tiled;
        c.tile_rows = None;
        assert_eq!(c.tiled_rows(100), Some(DEFAULT_TILE_ROWS));
    }

    #[test]
    fn auto_backend_follows_length_profile() {
        let mut c = FieldTypeClusterer::default();
        // Uniform lengths keep the monolithic matrix default.
        assert_eq!(
            c.resolved_backend_mixed(100, false),
            NeighborBackend::Matrix
        );
        // Mixed lengths pick the stratified index.
        assert_eq!(
            c.resolved_backend_mixed(100, true),
            NeighborBackend::Stratified
        );
        // A configured tile geometry still wins over the length profile.
        c.tile_rows = Some(16);
        assert_eq!(c.resolved_backend_mixed(100, true), NeighborBackend::Tiled);
        // Explicit choices pass through regardless of lengths.
        c.tile_rows = None;
        c.neighbor_backend = NeighborBackend::Stratified;
        assert_eq!(
            c.resolved_backend_mixed(100, false),
            NeighborBackend::Stratified
        );
        assert_eq!(c.tiled_rows(100), None);
        c.neighbor_backend = NeighborBackend::Vptree;
        assert_eq!(c.resolved_backend_mixed(100, true), NeighborBackend::Vptree);
    }

    #[test]
    fn coverage_excludes_noise_and_short_segments() {
        let (trace, result) = run(Protocol::Ntp, 50, 6);
        let cov = result.coverage(&trace);
        assert!(cov.covered_bytes <= cov.total_bytes);
        // NTP has four 1-byte header fields per message that can never be
        // covered.
        assert!(cov.ratio() < 1.0);
    }
}
