//! Markdown report generation: one human-readable document per
//! analysis, combining pseudo data types, semantics, message types and
//! value-domain summaries — the artifact an analyst hands around.

use crate::fuzzgen::ValueModel;
use crate::msgtype::{MessageTypeConfig, MessageTypeError, MessageTypes};
use crate::pipeline::{PipelineError, PseudoTypeClustering};
use crate::semantics::{interpret, ClusterSemantics, SemanticsConfig};
use crate::session::AnalysisSession;
use trace::Trace;

/// Inputs of a report; optional sections are skipped when absent.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportOptions {
    /// Number of example values listed per cluster.
    pub examples_per_cluster: usize,
    /// Include the value-domain (fuzzing) section.
    pub include_value_models: bool,
}

/// Drives `session` through every remaining stage and renders the
/// canonical full report: default semantics, default message typing
/// (skipped if it fails), three examples per cluster, value models.
///
/// This is the *single* rendering path shared by the offline CLI
/// (`fieldclust analyze --report`) and the `ftcd` daemon, so a
/// daemon-produced report is byte-identical to the offline run on the
/// same trace — pinned by the serve crate's loopback e2e test and the
/// check.sh daemon smoke test.
///
/// # Errors
///
/// Propagates the session's [`PipelineError`]; a failed message-type
/// analysis only omits that section. A tripped
/// [`CancelToken`](crate::CancelToken) surfaces as
/// [`PipelineError::Cancelled`] even from the message-type stage, so a
/// cancelled report job never renders a partial document.
pub fn standard_report(
    trace: &Trace,
    session: &mut AnalysisSession<'_>,
) -> Result<String, PipelineError> {
    let result = session.finish()?;
    let semantics = interpret(&result, trace, &SemanticsConfig::default());
    let message_types = match session.message_types(&MessageTypeConfig::default()) {
        Ok(t) => Some(t),
        Err(MessageTypeError::Cancelled) => return Err(PipelineError::Cancelled),
        Err(_) => None,
    };
    Ok(render_markdown(
        trace,
        &result,
        &semantics,
        message_types.as_ref(),
        &ReportOptions {
            examples_per_cluster: 3,
            include_value_models: true,
        },
    ))
}

/// Renders a complete analysis report as Markdown.
///
/// `semantics` must be parallel to the clustering's cluster ids (as
/// produced by [`crate::semantics::interpret`]); `message_types` is
/// optional.
pub fn render_markdown(
    trace: &Trace,
    result: &PseudoTypeClustering,
    semantics: &[ClusterSemantics],
    message_types: Option<&MessageTypes>,
    options: &ReportOptions,
) -> String {
    let examples = options.examples_per_cluster.max(1);
    let coverage = result.coverage(trace);
    let mut out = String::with_capacity(4096);

    out.push_str(&format!("# Field type analysis: `{}`\n\n", trace.name()));
    out.push_str("## Summary\n\n");
    out.push_str(&format!(
        "| messages | payload bytes | unique segments | pseudo data types | noise segments | coverage | ε |\n\
         |---|---|---|---|---|---|---|\n\
         | {} | {} | {} | {} | {} | {:.1}% | {:.3} |\n\n",
        trace.len(),
        trace.total_payload_bytes(),
        result.store.segments.len(),
        result.clustering.n_clusters(),
        result.clustering.noise().len(),
        coverage.ratio() * 100.0,
        result.params.epsilon,
    ));

    out.push_str("## Pseudo data types\n\n");
    out.push_str("| id | hypothesis | confidence | values | occurrences | evidence | examples |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for (id, members) in result.clustering.clusters().iter().enumerate() {
        let occurrences: usize = members
            .iter()
            .map(|&m| result.store.segments[m].occurrences())
            .sum();
        let sample: Vec<String> = members
            .iter()
            .take(examples)
            .map(|&m| format!("`{}`", hex(&result.store.segments[m].value, 10)))
            .collect();
        let (hyp, conf, evidence) = semantics
            .get(id)
            .map(|s| (s.hypothesis.label(), s.confidence, s.evidence.as_str()))
            .unwrap_or(("?", 0.0, ""));
        out.push_str(&format!(
            "| {id} | {hyp} | {:.0}% | {} | {occurrences} | {} | {} |\n",
            conf * 100.0,
            members.len(),
            evidence,
            sample.join(" "),
        ));
    }
    out.push('\n');

    if let Some(mt) = message_types {
        out.push_str("## Message types\n\n");
        out.push_str(&format!(
            "{} message types over {} messages (ε = {:.3}, {} noise)\n\n",
            mt.clustering.n_clusters(),
            mt.clustering.len(),
            mt.epsilon,
            mt.clustering.noise().len()
        ));
        out.push_str("| type | messages | example (first 12 bytes) |\n|---|---|---|\n");
        for (id, members) in mt.clustering.clusters().iter().enumerate() {
            let sample = &trace.messages()[members[0]];
            out.push_str(&format!(
                "| {id} | {} | `{}` |\n",
                members.len(),
                hex(sample.payload(), 12)
            ));
        }
        out.push('\n');
    }

    if options.include_value_models {
        out.push_str("## Value domains (fuzzing input)\n\n");
        out.push_str("| type | training weight | observed lengths |\n|---|---|---|\n");
        for (id, model) in ValueModel::per_cluster(result).iter().enumerate() {
            let lens: Vec<String> = model
                .lengths()
                .iter()
                .map(|(l, c)| format!("{l}B×{c}"))
                .collect();
            out.push_str(&format!(
                "| {id} | {} | {} |\n",
                model.training_weight(),
                lens.join(", ")
            ));
        }
        out.push('\n');
    }

    out.push_str("---\n*generated by fieldclust*\n");
    out
}

fn hex(bytes: &[u8], max: usize) -> String {
    let mut s: String = bytes.iter().take(max).map(|b| format!("{b:02x}")).collect();
    if bytes.len() > max {
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgtype::{identify_message_types, MessageTypeConfig};
    use crate::semantics::{interpret, SemanticsConfig};
    use crate::truth::truth_segmentation;
    use crate::FieldTypeClusterer;
    use protocols::{corpus, Protocol};

    fn full_report() -> String {
        let trace = corpus::build_trace(Protocol::Ntp, 40, 13);
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let semantics = interpret(&result, &trace, &SemanticsConfig::default());
        let mt = identify_message_types(&trace, &seg, &MessageTypeConfig::default()).unwrap();
        render_markdown(
            &trace,
            &result,
            &semantics,
            Some(&mt),
            &ReportOptions {
                examples_per_cluster: 2,
                include_value_models: true,
            },
        )
    }

    #[test]
    fn report_contains_all_sections() {
        let md = full_report();
        for heading in [
            "# Field type analysis",
            "## Summary",
            "## Pseudo data types",
            "## Message types",
            "## Value domains",
        ] {
            assert!(md.contains(heading), "missing {heading}:\n{md}");
        }
    }

    #[test]
    fn report_row_per_cluster() {
        let trace = corpus::build_trace(Protocol::Dns, 40, 14);
        let gt = corpus::ground_truth(Protocol::Dns, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let semantics = interpret(&result, &trace, &SemanticsConfig::default());
        let md = render_markdown(&trace, &result, &semantics, None, &ReportOptions::default());
        // One table row per cluster: rows start with "| <id> |".
        for id in 0..result.clustering.n_clusters() {
            assert!(md.contains(&format!("| {id} | ")), "row {id} missing");
        }
        assert!(!md.contains("## Message types"));
        assert!(!md.contains("## Value domains"));
    }

    #[test]
    fn hex_helper_truncates() {
        assert_eq!(hex(&[0xAB], 4), "ab");
        assert_eq!(hex(&[1, 2, 3], 2), "0102…");
    }
}
