//! Unique-segment bookkeeping between segmentation and clustering.
//!
//! The clustering operates on *unique* segment values (paper §III-C:
//! "duplicate segment values [are considered] only once since they
//! increase the computational load without adding new information") and
//! excludes one-byte segments, whose coincidental similarity would
//! drown the analysis. This module collects segment instances from a
//! segmentation, groups them by value, and remembers where each value
//! occurred so that results can be mapped back onto messages.

use segment::TraceSegmentation;
use std::collections::HashMap;
use std::ops::Range;
use trace::Trace;

/// One occurrence of a segment value in a message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SegmentInstance {
    /// Index of the message within the trace.
    pub message: usize,
    /// Byte range within that message's payload.
    pub range: Range<usize>,
}

/// A unique segment value and all places it occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueSegment {
    /// The byte value.
    pub value: Vec<u8>,
    /// All occurrences, in trace order.
    pub instances: Vec<SegmentInstance>,
}

impl UniqueSegment {
    /// Number of occurrences (the occurrence count used by the cluster
    /// split heuristic).
    pub fn occurrences(&self) -> usize {
        self.instances.len()
    }
}

/// The deduplicated segments of a trace, split into clusterable segments
/// (length ≥ `min_len`) and excluded short ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentStore {
    /// Unique segments that participate in clustering, in first-
    /// occurrence order (clustering item `i` is `segments[i]`).
    pub segments: Vec<UniqueSegment>,
    /// Unique segments excluded for being shorter than `min_len`; the
    /// paper re-incorporates these via separate analyses later.
    pub excluded: Vec<UniqueSegment>,
}

impl SegmentStore {
    /// Collects unique segments from a segmentation of `trace`,
    /// excluding values shorter than `min_len` from clustering.
    ///
    /// # Panics
    ///
    /// Panics if the segmentation does not match the trace (different
    /// message counts — a programming error upstream).
    pub fn collect(trace: &Trace, segmentation: &TraceSegmentation, min_len: usize) -> Self {
        assert_eq!(
            trace.len(),
            segmentation.messages.len(),
            "segmentation must cover the trace"
        );
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut all: Vec<UniqueSegment> = Vec::new();
        for (mi, (msg, segs)) in trace.iter().zip(&segmentation.messages).enumerate() {
            for r in segs.ranges() {
                let value = msg.payload()[r.clone()].to_vec();
                let entry = index.entry(value.clone()).or_insert_with(|| {
                    all.push(UniqueSegment {
                        value,
                        instances: Vec::new(),
                    });
                    all.len() - 1
                });
                all[*entry].instances.push(SegmentInstance {
                    message: mi,
                    range: r.clone(),
                });
            }
        }
        let (segments, excluded) = all.into_iter().partition(|s| s.value.len() >= min_len);
        Self { segments, excluded }
    }

    /// Occurrence counts of the clusterable segments, parallel to
    /// `segments`.
    pub fn occurrence_counts(&self) -> Vec<usize> {
        self.segments
            .iter()
            .map(UniqueSegment::occurrences)
            .collect()
    }

    /// Total bytes covered by the clusterable segments' instances.
    pub fn clusterable_instance_bytes(&self) -> u64 {
        self.segments
            .iter()
            .flat_map(|s| s.instances.iter())
            .map(|i| i.range.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use segment::MessageSegments;
    use trace::Message;

    fn setup() -> (Trace, TraceSegmentation) {
        let msgs = vec![
            Message::builder(Bytes::from_static(b"\x01\x02AB\x01\x02")).build(),
            Message::builder(Bytes::from_static(b"\x01\x02CD\x09")).build(),
        ];
        let trace = Trace::new("t", msgs);
        let seg = TraceSegmentation {
            messages: vec![
                MessageSegments::from_cuts(6, &[2, 4]), // 0102 | AB | 0102
                MessageSegments::from_cuts(5, &[2, 4]), // 0102 | CD | 09
            ],
        };
        (trace, seg)
    }

    #[test]
    fn deduplicates_values() {
        let (trace, seg) = setup();
        let store = SegmentStore::collect(&trace, &seg, 2);
        // Unique clusterable values: 0102 (x3), AB, CD.
        assert_eq!(store.segments.len(), 3);
        let v0102 = store
            .segments
            .iter()
            .find(|s| s.value == b"\x01\x02")
            .unwrap();
        assert_eq!(v0102.occurrences(), 3);
    }

    #[test]
    fn excludes_short_segments() {
        let (trace, seg) = setup();
        let store = SegmentStore::collect(&trace, &seg, 2);
        assert_eq!(store.excluded.len(), 1);
        assert_eq!(store.excluded[0].value, b"\x09");
    }

    #[test]
    fn instances_point_back_into_messages() {
        let (trace, seg) = setup();
        let store = SegmentStore::collect(&trace, &seg, 2);
        for s in &store.segments {
            for inst in &s.instances {
                let payload = trace.messages()[inst.message].payload();
                assert_eq!(&payload[inst.range.clone()], &s.value[..]);
            }
        }
    }

    #[test]
    fn occurrence_counts_parallel_segments() {
        let (trace, seg) = setup();
        let store = SegmentStore::collect(&trace, &seg, 2);
        let counts = store.occurrence_counts();
        assert_eq!(counts.len(), store.segments.len());
        assert_eq!(counts.iter().sum::<usize>(), 5); // 3 + 1 + 1 instances
    }

    #[test]
    fn instance_bytes() {
        let (trace, seg) = setup();
        let store = SegmentStore::collect(&trace, &seg, 2);
        // 0102 x3 = 6 bytes, AB = 2, CD = 2 -> 10.
        assert_eq!(store.clusterable_instance_bytes(), 10);
    }

    #[test]
    #[should_panic(expected = "segmentation must cover")]
    fn mismatched_segmentation_panics() {
        let (trace, _) = setup();
        let seg = TraceSegmentation { messages: vec![] };
        SegmentStore::collect(&trace, &seg, 2);
    }
}
