//! Semantic interpretation of pseudo data types (the paper's §V future
//! work: "combine our data type clustering with the deduction of intra-
//! and inter-message semantics similar to FieldHunter — this would
//! enable the interpretation of, e.g., length fields and message counter
//! fields").
//!
//! Each cluster is examined as a whole: because a pseudo data type
//! aggregates *all* segments of one field type, statistics that are
//! meaningless for a single segment (value-vs-length correlation,
//! monotonicity over capture time, endpoint-address equality) become
//! robust at the cluster level. The result is a [`SemanticHypothesis`]
//! per cluster with supporting evidence — exactly the artifact an
//! analyst starts from.

use crate::pipeline::PseudoTypeClustering;
use mathkit::stats;
use trace::{Addr, Trace};

/// A semantic hypothesis for one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticHypothesis {
    /// A single distinct value: magic numbers, version constants, fill.
    Constant,
    /// Values are all zero bytes.
    PaddingLike,
    /// Values correlate with the containing message's length.
    Length,
    /// Values increase over capture time.
    Counter,
    /// Wide fields whose numeric value advances with capture time while
    /// sharing high-order bytes: wall-clock-like.
    Timestamp,
    /// Values match an endpoint address of their own message.
    Address,
    /// Predominantly printable characters.
    Text,
    /// Few distinct values spread over many messages.
    Enumeration,
    /// Many distinct, high-entropy values: identifiers, nonces, hashes.
    Identifier,
    /// Nothing matched with confidence.
    Unknown,
}

impl SemanticHypothesis {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SemanticHypothesis::Constant => "constant",
            SemanticHypothesis::PaddingLike => "padding",
            SemanticHypothesis::Length => "length",
            SemanticHypothesis::Counter => "counter",
            SemanticHypothesis::Timestamp => "timestamp",
            SemanticHypothesis::Address => "address",
            SemanticHypothesis::Text => "text",
            SemanticHypothesis::Enumeration => "enumeration",
            SemanticHypothesis::Identifier => "identifier",
            SemanticHypothesis::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for SemanticHypothesis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The semantic report for one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSemantics {
    /// Cluster id within the clustering.
    pub cluster: usize,
    /// Best hypothesis.
    pub hypothesis: SemanticHypothesis,
    /// Score of the winning rule in `[0, 1]`.
    pub confidence: f64,
    /// Human-readable evidence, e.g. `"r = 0.97 with message length"`.
    pub evidence: String,
}

/// Thresholds of the semantic rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticsConfig {
    /// Minimum |Pearson r| between value and message length for
    /// [`SemanticHypothesis::Length`].
    pub length_correlation: f64,
    /// Minimum fraction of non-decreasing time-ordered steps for
    /// counters/timestamps.
    pub monotone_fraction: f64,
    /// Minimum fraction of printable bytes for text. DNS-style encoded
    /// names carry ~1 framing byte per label, so the default leaves
    /// room for them.
    pub printable_fraction: f64,
    /// Maximum distinct/instances ratio for an enumeration.
    pub enum_diversity: f64,
    /// Minimum normalized value entropy for identifiers.
    pub id_entropy: f64,
}

impl Default for SemanticsConfig {
    fn default() -> Self {
        Self {
            length_correlation: 0.9,
            monotone_fraction: 0.95,
            printable_fraction: 0.75,
            enum_diversity: 0.1,
            id_entropy: 0.9,
        }
    }
}

/// Interprets every cluster of a pseudo-data-type clustering.
pub fn interpret(
    result: &PseudoTypeClustering,
    trace: &Trace,
    config: &SemanticsConfig,
) -> Vec<ClusterSemantics> {
    result
        .clustering
        .clusters()
        .iter()
        .enumerate()
        .map(|(id, members)| interpret_cluster(id, members, result, trace, config))
        .collect()
}

/// All `(timestamp, numeric value, message index, value bytes)` samples
/// of a cluster, in capture order.
struct ClusterSamples<'a> {
    rows: Vec<(u64, u128, usize, &'a [u8])>,
    distinct: usize,
    total_instances: usize,
}

fn collect<'a>(
    members: &[usize],
    result: &'a PseudoTypeClustering,
    trace: &Trace,
) -> ClusterSamples<'a> {
    let mut rows = Vec::new();
    let mut total = 0;
    for &m in members {
        let seg = &result.store.segments[m];
        for inst in &seg.instances {
            let msg = &trace.messages()[inst.message];
            let value = be_value(&seg.value);
            rows.push((msg.timestamp_micros(), value, inst.message, &seg.value[..]));
            total += 1;
        }
    }
    rows.sort_by_key(|&(t, _, _, _)| t);
    ClusterSamples {
        rows,
        distinct: members.len(),
        total_instances: total,
    }
}

fn be_value(bytes: &[u8]) -> u128 {
    bytes
        .iter()
        .take(16)
        .fold(0u128, |acc, &b| acc << 8 | u128::from(b))
}

fn le_value(bytes: &[u8]) -> u128 {
    bytes
        .iter()
        .take(16)
        .rev()
        .fold(0u128, |acc, &b| acc << 8 | u128::from(b))
}

fn interpret_cluster(
    id: usize,
    members: &[usize],
    result: &PseudoTypeClustering,
    trace: &Trace,
    config: &SemanticsConfig,
) -> ClusterSemantics {
    let samples = collect(members, result, trace);
    let report = |hypothesis, confidence: f64, evidence: String| ClusterSemantics {
        cluster: id,
        hypothesis,
        // Entropy/correlation estimates can exceed 1 by float error.
        confidence: confidence.clamp(0.0, 1.0),
        evidence,
    };

    // Constant / padding first: they trivially satisfy later rules.
    if samples.distinct == 1 {
        let value = samples.rows[0].3;
        if value.iter().all(|&b| b == 0) {
            return report(
                SemanticHypothesis::PaddingLike,
                1.0,
                format!("single all-zero value of {} bytes", value.len()),
            );
        }
        return report(
            SemanticHypothesis::Constant,
            1.0,
            format!(
                "single value across {} occurrences",
                samples.total_instances
            ),
        );
    }

    // Address: values equal an endpoint address of their own message.
    let addr_hits = samples
        .rows
        .iter()
        .filter(|&&(_, _, mi, bytes)| {
            let msg = &trace.messages()[mi];
            [msg.source().addr, msg.destination().addr]
                .iter()
                .any(|a| match a {
                    Addr::Ipv4(ip) => bytes == &ip[..],
                    Addr::Mac(mac) => bytes == &mac[..],
                })
        })
        .count();
    let addr_fraction = addr_hits as f64 / samples.total_instances as f64;
    if addr_fraction >= 0.5 {
        return report(
            SemanticHypothesis::Address,
            addr_fraction,
            format!(
                "{addr_hits} of {} values equal an endpoint address",
                samples.total_instances
            ),
        );
    }

    // Length: numeric value correlates with the message length (try both
    // byte orders).
    let lens: Vec<f64> = samples
        .rows
        .iter()
        .map(|&(_, _, mi, _)| trace.messages()[mi].payload().len() as f64)
        .collect();
    for (endian, vals) in [
        (
            "big-endian",
            samples
                .rows
                .iter()
                .map(|r| be_value(r.3) as f64)
                .collect::<Vec<_>>(),
        ),
        (
            "little-endian",
            samples
                .rows
                .iter()
                .map(|r| le_value(r.3) as f64)
                .collect::<Vec<_>>(),
        ),
    ] {
        if let Some(r) = stats::pearson(&vals, &lens) {
            if r >= config.length_correlation {
                return report(
                    SemanticHypothesis::Length,
                    r,
                    format!("{endian} value correlates with message length (r = {r:.2})"),
                );
            }
        }
    }

    // Text: printable bytes dominate.
    let (printable, bytes_total) = samples.rows.iter().fold((0usize, 0usize), |(p, t), r| {
        let printable = r.3.iter().filter(|&&b| (0x20..0x7F).contains(&b)).count();
        (p + printable, t + r.3.len())
    });
    let printable_fraction = printable as f64 / bytes_total.max(1) as f64;
    if printable_fraction >= config.printable_fraction {
        return report(
            SemanticHypothesis::Text,
            printable_fraction,
            format!("{:.0}% printable characters", printable_fraction * 100.0),
        );
    }

    // Counter / timestamp: values advance with capture time. A message
    // may carry several instances of the type (e.g. NTP's reference/
    // receive/transmit timestamps), so compare one representative (the
    // maximum) per capture instant; stray segments of other widths (an
    // occasionally absorbed digest or fragment) are ignored by filtering
    // to the dominant width.
    let mut width_counts: std::collections::HashMap<usize, usize> = Default::default();
    for r in &samples.rows {
        *width_counts.entry(r.3.len()).or_insert(0) += 1;
    }
    if let Some((&modal_width, &modal_count)) = width_counts.iter().max_by_key(|&(_, c)| *c) {
        if modal_count * 2 >= samples.total_instances {
            for endian in ["big-endian", "little-endian"] {
                let read = |bytes: &[u8]| {
                    if endian == "big-endian" {
                        be_value(bytes)
                    } else {
                        le_value(bytes)
                    }
                };
                let mut series: Vec<(u64, u128)> = Vec::new();
                for &(t, _, _, bytes) in &samples.rows {
                    if bytes.len() != modal_width {
                        continue;
                    }
                    match series.last_mut() {
                        Some((lt, lv)) if *lt == t => *lv = (*lv).max(read(bytes)),
                        _ => series.push((t, read(bytes))),
                    }
                }
                let steps = series.len().saturating_sub(1);
                if steps < 4 {
                    break;
                }
                let non_decreasing = series.windows(2).filter(|w| w[1].1 >= w[0].1).count();
                let fraction = non_decreasing as f64 / steps as f64;
                if fraction >= config.monotone_fraction {
                    let hypothesis = if modal_width >= 4 {
                        SemanticHypothesis::Timestamp
                    } else {
                        SemanticHypothesis::Counter
                    };
                    return report(
                        hypothesis,
                        fraction,
                        format!(
                            "{endian} values non-decreasing over time ({non_decreasing}/{steps} steps)"
                        ),
                    );
                }
            }
        }
    }

    // Enumeration vs identifier: value diversity.
    let diversity = samples.distinct as f64 / samples.total_instances as f64;
    if diversity <= config.enum_diversity && samples.distinct <= 32 {
        return report(
            SemanticHypothesis::Enumeration,
            1.0 - diversity,
            format!(
                "{} distinct values over {} occurrences",
                samples.distinct, samples.total_instances
            ),
        );
    }
    let values: Vec<&[u8]> = samples.rows.iter().map(|r| r.3).collect();
    let entropy = stats::normalized_value_entropy(&values);
    if entropy >= config.id_entropy {
        return report(
            SemanticHypothesis::Identifier,
            entropy,
            format!("normalized value entropy {entropy:.2}"),
        );
    }

    report(
        SemanticHypothesis::Unknown,
        0.0,
        "no rule matched".to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FieldTypeClusterer;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, FieldKind, Protocol};

    fn semantics_for(
        protocol: Protocol,
        n: usize,
    ) -> (Vec<ClusterSemantics>, Vec<Option<FieldKind>>) {
        let trace = corpus::build_trace(protocol, n, 5);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let result = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let sems = interpret(&result, &trace, &SemanticsConfig::default());
        // Dominant true kind per cluster, for checking hypotheses.
        let labels = crate::truth::label_store(&result.store, &gt);
        let kinds: Vec<Option<FieldKind>> = result
            .clustering
            .clusters()
            .iter()
            .map(|members| {
                let mut counts: std::collections::HashMap<FieldKind, usize> = Default::default();
                for &m in members {
                    *counts.entry(labels[m]).or_insert(0) += 1;
                }
                counts.into_iter().max_by_key(|&(_, c)| c).map(|(k, _)| k)
            })
            .collect();
        (sems, kinds)
    }

    #[test]
    fn ntp_timestamp_cluster_is_recognized() {
        let (sems, kinds) = semantics_for(Protocol::Ntp, 80);
        let ts_clusters: Vec<_> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == Some(FieldKind::Timestamp))
            .map(|(i, _)| i)
            .collect();
        assert!(!ts_clusters.is_empty(), "no timestamp-dominated cluster");
        let hit = ts_clusters.iter().any(|&c| {
            matches!(
                sems[c].hypothesis,
                SemanticHypothesis::Timestamp | SemanticHypothesis::Counter
            )
        });
        assert!(hit, "semantics: {:?}", sems);
    }

    #[test]
    fn au_trace_yields_interpretable_clusters() {
        // AU's per-session sequence resets, so global monotonicity need
        // not hold; but the trace must still yield meaningful labels:
        // padding/constants plus either a time-like or an enumeration/
        // identifier cluster.
        let (sems, _) = semantics_for(Protocol::Au, 12);
        assert!(
            sems.iter().any(|s| matches!(
                s.hypothesis,
                SemanticHypothesis::Counter
                    | SemanticHypothesis::Timestamp
                    | SemanticHypothesis::Enumeration
                    | SemanticHypothesis::Identifier
            )),
            "{sems:?}"
        );
        assert!(sems
            .iter()
            .all(|s| s.hypothesis != SemanticHypothesis::Unknown || s.confidence == 0.0));
    }

    #[test]
    fn dns_names_are_text_like() {
        let (sems, kinds) = semantics_for(Protocol::Dns, 80);
        let name_clusters: Vec<_> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == Some(FieldKind::DomainName))
            .map(|(i, _)| i)
            .collect();
        // DNS-encoded names are length-prefixed labels: mostly printable.
        if !name_clusters.is_empty() {
            let hit = name_clusters
                .iter()
                .any(|&c| sems[c].hypothesis == SemanticHypothesis::Text);
            assert!(
                hit,
                "{:?}",
                name_clusters.iter().map(|&c| &sems[c]).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn every_cluster_gets_a_report() {
        for protocol in [Protocol::Ntp, Protocol::Dhcp] {
            let (sems, kinds) = semantics_for(protocol, 60);
            assert_eq!(sems.len(), kinds.len());
            for (i, s) in sems.iter().enumerate() {
                assert_eq!(s.cluster, i);
                assert!((0.0..=1.0).contains(&s.confidence));
                assert!(!s.evidence.is_empty());
            }
        }
    }

    #[test]
    fn hypothesis_labels_are_stable() {
        assert_eq!(SemanticHypothesis::Length.label(), "length");
        assert_eq!(SemanticHypothesis::PaddingLike.to_string(), "padding");
    }
}
