//! The staged analysis session: one trace, one set of cached artifacts.
//!
//! [`FieldTypeClusterer::cluster_trace`] runs the whole §III pipeline in
//! one shot, which is right for batch evaluation but wasteful for
//! everything else: diagnostics want the dissimilarity matrix *and* the
//! clustering, reports want field types *and* message types, and every
//! one of those consumers used to rebuild the O(n²) matrix from scratch.
//!
//! [`AnalysisSession`] decomposes the pipeline into explicit stages —
//!
//! ```text
//! preprocess → segment → dedup → matrix → neighbors → autoconf → cluster → refine
//! ```
//!
//! — each of which computes its artifact at most once and caches it for
//! every later stage and every external consumer. The dissimilarity
//! stage produces a shared [`DissimArtifact`] (the condensed matrix);
//! the neighbors stage ([`AnalysisSession::ensure_neighbors`]) builds
//! the acceleration structure of the resolved
//! [`NeighborBackend`] — a sorted [`NeighborIndex`] over the matrix, or
//! under [`NeighborBackend::Vptree`] a vantage-point tree forest that
//! answers ε-region and k-NN queries straight from the segment values,
//! skipping the matrix stage (and its O(u²) memory) entirely. The
//! autoconf, cluster, and refine stages consume neighbors only through
//! the [`NeighborProvider`] abstraction, so every backend is pinned
//! bit-identical. With a tile height configured
//! ([`FieldTypeClusterer::tile_rows`] or
//! [`FieldTypeClusterer::max_memory`]) the matrix stage instead
//! computes, persists, and faults in fixed-height row tiles and merges
//! per-tile k-NN partials into the table that serves ε
//! auto-configuration — bit-identical to the monolithic build either
//! way. Message type identification
//! ([`AnalysisSession::message_types`]) rides on the same session and
//! reuses its segment dissimilarities rather than building its own.
//!
//! Stages are driven on demand: asking for a late artifact (say
//! [`refine`](AnalysisSession::refine)) runs every missing earlier
//! stage. Replacing the segmentation invalidates all downstream
//! artifacts.
//!
//! # Examples
//!
//! ```
//! use fieldclust::{AnalysisSession, FieldTypeClusterer, truth};
//! use protocols::{corpus, Protocol};
//!
//! let trace = corpus::build_trace(Protocol::Ntp, 60, 7);
//! let gt = corpus::ground_truth(Protocol::Ntp, &trace);
//!
//! let mut session = AnalysisSession::new(&trace, FieldTypeClusterer::default());
//! session.set_segmentation(truth::truth_segmentation(&trace, &gt));
//!
//! // Stages run once, on demand, and are cached:
//! let n_unique = session.store()?.segments.len();
//! assert_eq!(session.matrix()?.len(), n_unique);
//! let eps = session.autoconf()?.epsilon;
//!
//! let result = session.finish()?;
//! assert_eq!(result.params.epsilon, eps);
//! # Ok::<(), fieldclust::PipelineError>(())
//! ```

use std::borrow::Cow;
use std::path::Path;
use std::sync::Arc;

use crate::cache::{self, ClusterStageArtifact, RefinedArtifact, SelectionArtifact};
use crate::cancel::CancelToken;
use crate::fsm::{self, StateMachineConfig};
use crate::msgtype::{self, MessageTypeConfig, MessageTypeError, MessageTypes};
use crate::pipeline::{
    EpsilonSource, FieldTypeClusterer, NeighborBackend, PipelineError, PseudoTypeClustering,
};
use crate::segments::SegmentStore;
use cluster::autoconf::{
    auto_configure, auto_configure_parallel, auto_configure_with_knn, required_k_max,
    AutoConfError, AutoConfig, SelectedParams,
};
use cluster::dbscan::{dbscan, dbscan_weighted_parallel_with_provider, Clustering};
use cluster::refine::{merge_clusters_parallel, merge_clusters_with_provider, split_clusters};
use dissim::kernel::pairwise_mean;
use dissim::{
    CondensedMatrix, DissimArtifact, IndexedProvider, KnnTable, MatrixTile, NeighborIndex,
    NeighborProvider, QueryCounters, StrataIndex, StratifiedProvider, TiledMatrix, VpForest,
    VpProvider, VpTree,
};
use segment::{SegmentError, Segmenter, TraceSegmentation};
use store::{ArtifactStore, Key, Kind, StoreStats};
use trace::{Preprocessor, Trace};

/// A staged run of the analysis pipeline over one trace.
///
/// See the [module docs](self) for the stage graph and an example.
#[derive(Debug, Clone)]
pub struct AnalysisSession<'t> {
    config: FieldTypeClusterer,
    trace: Cow<'t, Trace>,
    // Stage artifacts, in dependency order. `None` = not yet computed.
    segmentation: Option<TraceSegmentation>,
    store: Option<SegmentStore>,
    dissim: Option<DissimArtifact>,
    // Per-tile k-NN partials merged at the build barrier; present only
    // when the tiled build ran (`effective_tile_rows` is `Some`). Feeds
    // the autoconf ECDFs without re-scanning the matrix.
    knn: Option<KnnTable>,
    // The vantage-point tree forest; present only when the vptree
    // backend is resolved. Replaces the matrix + index entirely: no
    // O(u²) structure is built on this path.
    vpforest: Option<VpForest>,
    // The length-stratified neighbor index; present only when the
    // stratified backend is resolved. Like the forest it replaces the
    // matrix + index: per-length VP forests plus LAESA pivot tables,
    // O(u) memory.
    strata: Option<StrataIndex>,
    // Cumulative neighbor-query counters (kernel evaluations, pruned
    // candidates, skipped strata), shared with every stratified
    // provider the session builds. Clones of the session share the
    // same counters.
    neighbor_counters: Arc<QueryCounters>,
    selection: Option<(SelectedParams, EpsilonSource)>,
    clustering: Option<Clustering>,
    refined: Option<Clustering>,
    // Message-type artifacts (share the trace and segmentation; the
    // store differs because message typing keeps 1-byte segments).
    full_store: Option<SegmentStore>,
    full_dissim: Option<DissimArtifact>,
    msg_dissim: Option<(f64, DissimArtifact)>,
    // Optional on-disk artifact cache; `None` keeps every stage purely
    // in-memory. The memoized input key covers trace + segmentation.
    cache: Option<ArtifactStore>,
    input_key: Option<Key>,
    // Cooperative cancellation, polled between stages; `None` never
    // cancels. See [`Self::set_cancel_token`].
    cancel: Option<CancelToken>,
}

impl<'t> AnalysisSession<'t> {
    /// Starts a session over an already-preprocessed trace.
    pub fn new(trace: &'t Trace, config: FieldTypeClusterer) -> Self {
        Self::from_cow(Cow::Borrowed(trace), config)
    }

    /// Stage 1: preprocesses a raw trace (filter, de-duplicate,
    /// truncate) and starts a session over the result.
    pub fn preprocess(
        raw: &Trace,
        pre: &Preprocessor,
        config: FieldTypeClusterer,
    ) -> AnalysisSession<'static> {
        AnalysisSession::from_owned(pre.apply(raw), config)
    }

    /// Starts a session that owns its trace.
    pub fn from_owned(trace: Trace, config: FieldTypeClusterer) -> AnalysisSession<'static> {
        AnalysisSession::from_cow(Cow::Owned(trace), config)
    }

    fn from_cow(trace: Cow<'t, Trace>, config: FieldTypeClusterer) -> Self {
        Self {
            config,
            trace,
            segmentation: None,
            store: None,
            dissim: None,
            knn: None,
            vpforest: None,
            strata: None,
            neighbor_counters: Arc::new(QueryCounters::new()),
            selection: None,
            clustering: None,
            refined: None,
            full_store: None,
            full_dissim: None,
            msg_dissim: None,
            cache: None,
            input_key: None,
            cancel: None,
        }
    }

    /// Attaches an on-disk artifact store rooted at `dir` (builder
    /// form). Every stage then probes the store before computing and
    /// writes its artifact back after; cached artifacts are
    /// bit-identical to computed ones, and a damaged cache degrades to
    /// cold compute — it never changes results or fails the analysis.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the cache directory cannot be
    /// created.
    pub fn with_store(mut self, dir: impl AsRef<Path>) -> std::io::Result<Self> {
        self.cache = Some(ArtifactStore::open(dir.as_ref())?);
        Ok(self)
    }

    /// Attaches an already-opened artifact store (e.g. one shared with
    /// other sessions; clones share hit/miss statistics).
    pub fn set_store(&mut self, store: ArtifactStore) {
        self.cache = Some(store);
    }

    /// The attached artifact store, if any.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.cache.as_ref()
    }

    /// Cache hit/miss/write statistics, if a store is attached.
    pub fn cache_stats(&self) -> Option<StoreStats> {
        self.cache.as_ref().map(ArtifactStore::stats)
    }

    /// Attaches a cooperative [`CancelToken`], polled at every stage
    /// boundary (`ensure_*` entry): once the token trips — explicitly
    /// or by deadline — the next stage transition returns
    /// [`PipelineError::Cancelled`] instead of computing. A stage
    /// already in flight runs to completion (stages are never preempted
    /// mid-kernel), and artifacts computed before the trip stay cached,
    /// so re-driving the session after a cancellation resumes from
    /// them.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// `Err(PipelineError::Cancelled)` once the attached token trips.
    fn check_cancelled(&self) -> Result<(), PipelineError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(PipelineError::Cancelled),
            _ => Ok(()),
        }
    }

    /// [`check_cancelled`](Self::check_cancelled) for the message-type
    /// stage surface.
    fn check_cancelled_msg(&self) -> Result<(), MessageTypeError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(MessageTypeError::Cancelled),
            _ => Ok(()),
        }
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &FieldTypeClusterer {
        &self.config
    }

    /// Stage 2: segments the trace with `segmenter`, replacing any
    /// previous segmentation (and invalidating downstream artifacts).
    ///
    /// # Errors
    ///
    /// Propagates the segmenter's [`SegmentError`].
    pub fn segment_with(
        &mut self,
        segmenter: &dyn Segmenter,
    ) -> Result<&TraceSegmentation, SegmentError> {
        if let Some(store) = self.cache.clone() {
            let key = cache::segmentation_key(&self.trace, &segmenter.cache_fingerprint());
            match store.get::<TraceSegmentation>(&key) {
                // Defensive shape check on top of the content key: a
                // cached segmentation must cover exactly this trace.
                Some(seg) if seg.messages.len() == self.trace.len() => {
                    self.set_segmentation(seg);
                    return Ok(self.segmentation.as_ref().expect("just set"));
                }
                _ => {
                    let seg = segmenter.segment_trace(&self.trace)?;
                    store.put(&key, &seg);
                    self.set_segmentation(seg);
                    return Ok(self.segmentation.as_ref().expect("just set"));
                }
            }
        }
        let seg = segmenter.segment_trace(&self.trace)?;
        self.set_segmentation(seg);
        Ok(self.segmentation.as_ref().expect("just set"))
    }

    /// Stage 2 (alternative): installs a segmentation computed outside
    /// the session, e.g. ground truth. Invalidates downstream artifacts.
    pub fn set_segmentation(&mut self, segmentation: TraceSegmentation) {
        self.segmentation = Some(segmentation);
        self.input_key = None;
        self.store = None;
        self.dissim = None;
        self.knn = None;
        self.vpforest = None;
        self.strata = None;
        self.selection = None;
        self.clustering = None;
        self.refined = None;
        self.full_store = None;
        self.full_dissim = None;
        self.msg_dissim = None;
    }

    /// The current segmentation, if stage 2 has run.
    pub fn segmentation(&self) -> Option<&TraceSegmentation> {
        self.segmentation.as_ref()
    }

    /// Stage 3 (dedup): the unique segments admitted to clustering
    /// (length ≥ `min_segment_len`, duplicates collapsed with their
    /// occurrence counts).
    ///
    /// # Errors
    ///
    /// [`PipelineError::MissingSegmentation`] before stage 2,
    /// [`PipelineError::TooFewSegments`] when fewer than four unique
    /// segments remain.
    pub fn store(&mut self) -> Result<&SegmentStore, PipelineError> {
        self.ensure_store()?;
        Ok(self.store.as_ref().expect("ensured"))
    }

    /// Stage 4 (matrix): the pairwise Canberra dissimilarity matrix over
    /// the unique segments of [`store`](Self::store).
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn matrix(&mut self) -> Result<&CondensedMatrix, PipelineError> {
        self.ensure_dissim()?;
        Ok(self.dissim.as_ref().expect("ensured").matrix())
    }

    /// The neighbor index over [`matrix`](Self::matrix), built (in
    /// parallel) on first use and cached. The matrix and tiled backends
    /// query it for every later stage; under the vptree backend it is
    /// built only when asked for explicitly (forcing the matrix too).
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn neighbors(&mut self) -> Result<&NeighborIndex, PipelineError> {
        self.ensure_dissim()?;
        self.ensure_index();
        Ok(self
            .dissim
            .as_ref()
            .expect("ensured")
            .neighbors_built()
            .expect("just built"))
    }

    /// Stage 4b (neighbors): builds the resolved backend's neighbor
    /// acceleration structure — the sorted [`NeighborIndex`] over the
    /// condensed matrix (matrix/tiled backends) or the vantage-point
    /// tree forest (vptree backend, which materializes no matrix at
    /// all). Later stages answer their ε-region and k-NN queries
    /// through it; all backends are pinned bit-identical.
    ///
    /// Runs implicitly before autoconf; calling it explicitly lets a
    /// driver time (or cancel between) the matrix and neighbor builds
    /// separately.
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn ensure_neighbors(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        self.ensure_store()?;
        match self.session_backend() {
            NeighborBackend::Vptree => self.ensure_vpforest(),
            NeighborBackend::Stratified => self.ensure_strata(),
            _ => {
                self.ensure_dissim()?;
                self.ensure_index();
                Ok(())
            }
        }
    }

    /// The neighbor backend this session resolves for its current
    /// segment store: [`FieldTypeClusterer::resolved_backend_mixed`]
    /// over the store's actual size and length profile (mixed-length
    /// corpora steer `auto` to the stratified backend). Only called
    /// with the store ensured.
    fn session_backend(&self) -> NeighborBackend {
        let store = self.store.as_ref().expect("ensured");
        let mut lens = store.segments.iter().map(|s| s.value.len());
        let mixed = match lens.next() {
            None => false,
            Some(first) => lens.any(|len| len != first),
        };
        self.config
            .resolved_backend_mixed(store.segments.len(), mixed)
    }

    /// The neighbor backend the session resolves for its deduplicated
    /// segment store, ensuring the store first. Unlike
    /// [`FieldTypeClusterer::resolved_backend`] this sees the corpus's
    /// actual length profile, so `auto` resolution is exact.
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn resolved_neighbor_backend(&mut self) -> Result<NeighborBackend, PipelineError> {
        self.ensure_store()?;
        Ok(self.session_backend())
    }

    /// The vantage-point tree forest, if the vptree backend has built
    /// one ([`ensure_neighbors`](Self::ensure_neighbors) under
    /// [`NeighborBackend::Vptree`]).
    pub fn vp_forest(&self) -> Option<&VpForest> {
        self.vpforest.as_ref()
    }

    /// The length-stratified neighbor index, if the stratified backend
    /// has built one ([`ensure_neighbors`](Self::ensure_neighbors)
    /// under [`NeighborBackend::Stratified`]).
    pub fn strata_index(&self) -> Option<&StrataIndex> {
        self.strata.as_ref()
    }

    /// Cumulative neighbor-query counters as `(kernel_evals,
    /// pruned_candidates, strata_skipped)`. Only the stratified backend
    /// moves them; every other backend leaves them at zero. The totals
    /// are deterministic for a given query sequence regardless of the
    /// thread count.
    pub fn neighbor_counters(&self) -> (u64, u64, u64) {
        self.neighbor_counters.snapshot()
    }

    /// The merged per-tile k-NN table, if the tiled dissimilarity build
    /// ran (the session's [`FieldTypeClusterer::effective_tile_rows`]
    /// is `Some`). Serves the autoconf stage's k-dist ECDFs; its values
    /// are bit-identical to the matrix scan.
    pub fn knn_table(&self) -> Option<&KnnTable> {
        self.knn.as_ref()
    }

    /// Stage 5 (autoconf): the DBSCAN parameters selected by Algorithm 1
    /// (with the mean-based robustness fallback), `min_samples` sized by
    /// the occurrence-weighted segment count.
    ///
    /// After [`cluster`](Self::cluster), the returned parameters reflect
    /// a §III-E trimmed-ECDF re-configuration if one was triggered.
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn autoconf(&mut self) -> Result<&SelectedParams, PipelineError> {
        self.ensure_selection()?;
        Ok(&self.selection.as_ref().expect("ensured").0)
    }

    /// Where the current ε came from, if stage 5 has run.
    pub fn epsilon_source(&self) -> Option<EpsilonSource> {
        self.selection.as_ref().map(|(_, s)| *s)
    }

    /// Stage 6 (cluster): occurrence-weighted DBSCAN at the
    /// auto-configured parameters, re-running on a trimmed ECDF when one
    /// cluster dominates (§III-E).
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn cluster(&mut self) -> Result<&Clustering, PipelineError> {
        self.ensure_clustering()?;
        Ok(self.clustering.as_ref().expect("ensured"))
    }

    /// Stage 7 (refine): the final clustering after merging
    /// over-classified clusters and splitting polarized ones (§III-F).
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn refine(&mut self) -> Result<&Clustering, PipelineError> {
        self.ensure_refined()?;
        Ok(self.refined.as_ref().expect("ensured"))
    }

    /// Runs all remaining stages and assembles the pipeline result.
    /// The session stays usable; its artifacts remain cached.
    ///
    /// # Errors
    ///
    /// See [`store`](Self::store).
    pub fn finish(&mut self) -> Result<PseudoTypeClustering, PipelineError> {
        self.ensure_refined()?;
        let (params, source) = self.selection.clone().expect("ensured");
        Ok(PseudoTypeClustering {
            store: self.store.clone().expect("ensured"),
            clustering: self.refined.clone().expect("ensured"),
            params,
            epsilon_source: source,
        })
    }

    // ----- message types (NEMETYL-style companion analysis) -----

    /// The dissimilarity matrix over *all* unique segments (including
    /// 1-byte ones), as used for message alignment. Cached separately
    /// from [`matrix`](Self::matrix), which excludes short segments.
    ///
    /// # Errors
    ///
    /// [`MessageTypeError::TooFewMessages`] /
    /// [`MessageTypeError::MissingSegmentation`].
    pub fn segment_matrix(&mut self) -> Result<&CondensedMatrix, MessageTypeError> {
        self.ensure_full_dissim()?;
        Ok(self.full_dissim.as_ref().expect("ensured").matrix())
    }

    /// The message dissimilarity matrix: normalized alignment cost of
    /// the segment-id sequences of every message pair, substitution
    /// costs taken from [`segment_matrix`](Self::segment_matrix).
    /// Cached per gap penalty.
    ///
    /// # Errors
    ///
    /// See [`segment_matrix`](Self::segment_matrix).
    pub fn message_matrix(
        &mut self,
        gap_penalty: f64,
    ) -> Result<&CondensedMatrix, MessageTypeError> {
        if self
            .msg_dissim
            .as_ref()
            .is_none_or(|(g, _)| *g != gap_penalty)
        {
            let n = self.trace.len();
            // Probe the cache first: a hit skips even the full-store
            // segment dissimilarity build. Gated on the same
            // preconditions the compute path errors on, so a hit can
            // never mask a MissingSegmentation/TooFewMessages error.
            let msg_key =
                (self.cache.is_some() && self.segmentation.is_some() && n >= 4).then(|| {
                    let input = self.session_input_key();
                    cache::message_dissim_key(&input, &self.config.dissim, gap_penalty)
                });
            let mut artifact = None;
            if let (Some(cache), Some(key)) = (self.cache.as_ref(), &msg_key) {
                if let Some(mut a) = cache.get::<DissimArtifact>(key) {
                    if a.len() == n {
                        a.set_threads(self.config.threads);
                        artifact = Some(a);
                    }
                }
            }
            let artifact = match artifact {
                Some(a) => a,
                None => {
                    self.ensure_full_dissim()?;
                    let computed = {
                        let store = self.full_store.as_ref().expect("ensured");
                        let seg_matrix = self.full_dissim.as_ref().expect("ensured").matrix();
                        let sequences = msgtype::segment_sequences(n, store);
                        DissimArtifact::compute(n, self.config.threads, |a, b| {
                            msgtype::align_cost(
                                &sequences[a],
                                &sequences[b],
                                seg_matrix,
                                gap_penalty,
                            )
                        })
                    };
                    if let (Some(cache), Some(key)) = (self.cache.as_ref(), &msg_key) {
                        cache.put(key, &computed);
                    }
                    computed
                }
            };
            self.msg_dissim = Some((gap_penalty, artifact));
        }
        Ok(self.msg_dissim.as_ref().expect("just built").1.matrix())
    }

    /// Clusters the trace's messages into message types with the same
    /// auto-configured DBSCAN, reusing the session's segment
    /// dissimilarities.
    ///
    /// # Errors
    ///
    /// See [`segment_matrix`](Self::segment_matrix).
    pub fn message_types(
        &mut self,
        config: &MessageTypeConfig,
    ) -> Result<MessageTypes, MessageTypeError> {
        let n = self.trace.len();
        let autoconf = config.autoconf;
        let matrix = self.message_matrix(config.gap_penalty)?;
        let min_samples = ((n as f64).ln().round() as usize).max(2);
        let epsilon = match auto_configure(matrix, &autoconf) {
            Ok(p) => p.epsilon,
            Err(_) => matrix.mean().unwrap_or(0.5) / 2.0,
        };
        let clustering = dbscan(matrix, epsilon, min_samples);
        Ok(MessageTypes {
            clustering,
            epsilon,
            min_samples,
        })
    }

    /// Infers the protocol state machine over msgtype-labelled flows:
    /// messages are clustered into message types
    /// ([`message_types`](Self::message_types)), grouped into flows
    /// ([`Trace::flows`]), and the per-flow label sequences are merged
    /// into a deterministic automaton ([`statemachine::infer`]).
    ///
    /// With a store attached the machine is probed *before* the
    /// message-type clustering runs (its key covers the clustering
    /// inputs and the flow partition), so a warm run serves the
    /// artifact without rebuilding anything — `misses=0 writes=0`.
    ///
    /// # Errors
    ///
    /// See [`segment_matrix`](Self::segment_matrix).
    pub fn state_machine(
        &mut self,
        config: &StateMachineConfig,
    ) -> Result<statemachine::StateMachine, MessageTypeError> {
        self.check_cancelled_msg()?;
        let n = self.trace.len();
        // Gated on the same preconditions the compute path errors on,
        // so a hit can never mask a MissingSegmentation/TooFewMessages
        // error (mirrors message_matrix).
        let fsm_key = (self.cache.is_some() && self.segmentation.is_some() && n >= 4).then(|| {
            let input = self.session_input_key();
            cache::fsm_key(&input, &self.trace, &self.config.dissim, config)
        });
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &fsm_key) {
            if let Some(machine) = cache.get::<statemachine::StateMachine>(key) {
                // Shape check on top of the content key: the machine
                // must cover exactly this trace's flows.
                if machine.flows == self.trace.flows().len() as u64 {
                    return Ok(machine);
                }
            }
        }
        let types = self.message_types(&config.msgtype)?;
        let (labels, symbols) = fsm::symbol_labels(&types.clustering);
        let sequences = statemachine::flow_sequences(&self.trace, &labels);
        let machine = statemachine::infer(&sequences, symbols, &config.fsm);
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &fsm_key) {
            cache.put(key, &machine);
        }
        Ok(machine)
    }

    // ----- stage internals -----

    /// The memoized content key over trace + segmentation that every
    /// configuration-dependent stage key builds on. Only called with a
    /// segmentation present.
    fn session_input_key(&mut self) -> Key {
        if let Some(k) = self.input_key {
            return k;
        }
        let seg = self.segmentation.as_ref().expect("segmentation present");
        let k = cache::input_key(&self.trace, seg);
        self.input_key = Some(k);
        k
    }

    /// Collects (or fetches from the cache) the deduplicated segment
    /// store at the given minimum length. Only called with a
    /// segmentation present.
    fn collect_store_cached(&mut self, min_len: usize) -> SegmentStore {
        let Some(cache) = self.cache.clone() else {
            let seg = self.segmentation.as_ref().expect("segmentation present");
            return SegmentStore::collect(&self.trace, seg, min_len);
        };
        let input = self.session_input_key();
        let key = cache::segment_store_key(&input, min_len);
        if let Some(store) = cache.get::<SegmentStore>(&key) {
            return store;
        }
        let seg = self.segmentation.as_ref().expect("segmentation present");
        let store = SegmentStore::collect(&self.trace, seg, min_len);
        cache.put(&key, &store);
        store
    }

    /// Builds (or fetches, or incrementally extends from a cached
    /// prefix) the dissimilarity artifact over `values`, dispatching on
    /// [`FieldTypeClusterer::effective_tile_rows`]: the tiled build
    /// when a tile height (or memory budget) is configured, the
    /// monolithic in-memory build otherwise. All paths are
    /// bit-identical; the monolithic incremental path finds the largest
    /// cached prefix of `values` through the per-family manifest and
    /// computes only the condensed entries that touch appended
    /// segments, while the tiled path reuses complete tiles verbatim.
    fn build_dissim_cached(&self, values: &[&[u8]]) -> DissimArtifact {
        match self.config.effective_tile_rows(values.len()) {
            Some(tile_rows) => self.build_dissim_tiled(values, tile_rows).0,
            None => self.build_dissim_monolithic(values),
        }
    }

    /// The monolithic build: one condensed matrix computed (or fetched,
    /// or extended from a cached prefix) in memory.
    fn build_dissim_monolithic(&self, values: &[&[u8]]) -> DissimArtifact {
        let params = &self.config.dissim;
        let threads = self.config.threads;
        let Some(cache) = self.cache.as_ref() else {
            return DissimArtifact::compute_segments(values, params, threads);
        };
        let n = values.len();
        let key = cache::dissim_key(values, params);
        if let Some(mut artifact) = cache.get::<DissimArtifact>(&key) {
            artifact.set_threads(threads);
            return artifact;
        }
        let family = cache::dissim_family_key(values, params);
        let artifact = self
            .extend_from_prefix(cache, &family, values, n)
            .unwrap_or_else(|| DissimArtifact::compute_segments(values, params, threads));
        // Persisted matrix-only at this point; the neighbors stage
        // (`ensure_index`) re-puts the artifact with its index once that
        // is built, so a warm run skips the O(n² log n) sort as well as
        // the O(n²) build while the matrix and neighbor build times stay
        // separately attributable.
        cache.put(&key, &artifact);
        cache.manifest_add(&family, n, &key);
        artifact
    }

    /// The incremental warm-start: the largest manifest entry whose
    /// recorded key matches the recomputed key of our own value prefix
    /// is a cached matrix over exactly `values[..u]`; splice it and
    /// compute only the new rows.
    fn extend_from_prefix(
        &self,
        cache: &ArtifactStore,
        family: &Key,
        values: &[&[u8]],
        n: usize,
    ) -> Option<DissimArtifact> {
        let params = &self.config.dissim;
        let entries = cache.manifest_entries(family);
        let mut candidates: Vec<usize> = entries
            .iter()
            .map(|&(u, _)| u)
            .filter(|&u| u >= 2 && u < n)
            .collect();
        candidates.dedup(); // entries are sorted by u
        let expected = cache::dissim_keys_at(values, params, &candidates);
        for (i, &u) in candidates.iter().enumerate().rev() {
            if !entries.iter().any(|&(eu, ek)| eu == u && ek == expected[i]) {
                continue;
            }
            let Some(prev) = cache.get_quiet::<DissimArtifact>(&expected[i]) else {
                continue;
            };
            let extended = prev
                .matrix()
                .extend_segments(values, params, self.config.threads);
            cache.record_extension();
            return Some(DissimArtifact::from_matrix(extended, self.config.threads));
        }
        None
    }

    /// The tiled build: fixed-height row tiles computed, checksummed,
    /// and (with a cache attached) persisted individually, with cached
    /// tiles faulted back in on warm runs — a damaged tile degrades to
    /// recompute. Growing the segment set is a pure tile-append:
    /// complete tiles keep their keys (`cache::tile_keys`), so only the
    /// appended and formerly partial tiles compute. The per-tile k-NN
    /// partials are merged into a [`KnnTable`] before the tiles are
    /// assembled into the session's condensed matrix; in tiled mode the
    /// monolithic artifact is *not* persisted — tiles are the unit of
    /// caching. Bit-identical to the monolithic path, pinned by
    /// tests/session_equivalence.rs.
    fn build_dissim_tiled(&self, values: &[&[u8]], tile_rows: usize) -> (DissimArtifact, KnnTable) {
        let params = &self.config.dissim;
        let threads = self.config.threads;
        let n = values.len();
        let tiled = match self.cache.as_ref() {
            None => TiledMatrix::build_segments(values, params, tile_rows, threads),
            Some(cache) => {
                let keys = cache::tile_keys(values, params, tile_rows);
                let family = cache::tile_family_key(values, params);
                TiledMatrix::build_with(
                    values,
                    params,
                    tile_rows,
                    threads,
                    |t, _rows| cache.get::<MatrixTile>(&keys[t]),
                    |t, tile, computed| {
                        if computed {
                            cache.put(&keys[t], tile);
                            cache.manifest_add(&family, tile.rows().end, &keys[t]);
                        }
                    },
                )
            }
        };
        let knn = tiled.knn_table(required_k_max(n), threads);
        // The neighbor index is built by the separate neighbors stage
        // (`ensure_index`), keeping matrix and neighbor build times
        // separately attributable.
        let artifact = DissimArtifact::from_matrix(tiled.assemble(), threads);
        (artifact, knn)
    }

    /// Builds (or fetches, or incrementally extends) the vantage-point
    /// tree forest over `values` — chunk trees computed, checksummed,
    /// and (with a cache attached) persisted individually, with cached
    /// trees faulted back in on warm runs; a damaged tree degrades to
    /// rebuild. Growing the segment set is a pure chunk-append:
    /// complete chunk trees keep their keys (`cache::vptree_keys`), so
    /// only the appended and formerly partial chunks rebuild.
    fn build_vpforest_cached(&self, values: &[&[u8]]) -> VpForest {
        let params = &self.config.dissim;
        let chunk = dissim::vptree::DEFAULT_CHUNK;
        let Some(cache) = self.cache.as_ref() else {
            return VpForest::build(values, params, chunk);
        };
        let keys = cache::vptree_keys(values, params, chunk);
        let family = cache::vptree_family_key(values, params);
        VpForest::build_with(
            values,
            params,
            chunk,
            |t, _span| cache.get::<VpTree>(&keys[t]),
            |t, tree, built| {
                if built {
                    cache.put(&keys[t], tree);
                    cache.manifest_add(&family, tree.span().end, &keys[t]);
                }
            },
        )
    }

    /// The vptree arm of the neighbors stage: builds (or faults in)
    /// the chunk forest. No matrix, index, or other O(u²) structure is
    /// touched.
    fn ensure_vpforest(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.vpforest.is_some() {
            return Ok(());
        }
        self.ensure_store()?;
        let forest = {
            let store = self.store.as_ref().expect("ensured");
            let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
            self.build_vpforest_cached(&values)
        };
        self.vpforest = Some(forest);
        Ok(())
    }

    /// Builds (or fetches, or incrementally extends from a cached
    /// prefix) the length-stratified neighbor index over `values`.
    /// The index is persisted whole under a chained-prefix key
    /// (`cache::strata_key`) — strata partition the entire prefix, so
    /// no stratum is a pure function of a shorter one; growth instead
    /// finds the largest cached prefix through the per-family manifest
    /// and extends it ([`StrataIndex::extend_from`] reuses complete
    /// chunk trees and pivot rows, bit-identical to a cold build). A
    /// damaged artifact degrades to recompute.
    fn build_strata_cached(&self, values: &[&[u8]]) -> StrataIndex {
        let params = &self.config.dissim;
        let chunk = dissim::vptree::DEFAULT_CHUNK;
        let Some(cache) = self.cache.as_ref() else {
            return StrataIndex::build(values, params, chunk);
        };
        let n = values.len();
        let key = cache::strata_key(values, params, chunk);
        if let Some(index) = cache.get::<StrataIndex>(&key) {
            if index.matches(values) {
                return index;
            }
        }
        let family = cache::strata_family_key(values, params);
        let index = self
            .extend_strata_from_prefix(cache, &family, values, chunk, n)
            .unwrap_or_else(|| StrataIndex::build(values, params, chunk));
        cache.put(&key, &index);
        cache.manifest_add(&family, n, &key);
        index
    }

    /// The stratified analogue of [`extend_from_prefix`]
    /// (Self::extend_from_prefix): the largest manifest entry whose
    /// recorded key matches the recomputed key of our own value prefix
    /// is a cached index over exactly `values[..u]`; extend it with the
    /// appended values.
    fn extend_strata_from_prefix(
        &self,
        cache: &ArtifactStore,
        family: &Key,
        values: &[&[u8]],
        chunk: usize,
        n: usize,
    ) -> Option<StrataIndex> {
        let params = &self.config.dissim;
        let entries = cache.manifest_entries(family);
        let mut candidates: Vec<usize> = entries
            .iter()
            .map(|&(u, _)| u)
            .filter(|&u| u >= 1 && u < n)
            .collect();
        candidates.dedup(); // entries are sorted by u
        let expected = cache::strata_keys_at(values, params, chunk, &candidates);
        for (i, &u) in candidates.iter().enumerate().rev() {
            if !entries.iter().any(|&(eu, ek)| eu == u && ek == expected[i]) {
                continue;
            }
            let Some(prev) = cache.get_quiet::<StrataIndex>(&expected[i]) else {
                continue;
            };
            if prev.chunk() != chunk || !prev.matches(&values[..u]) {
                continue;
            }
            cache.record_extension();
            return Some(StrataIndex::extend_from(&prev, values, params));
        }
        None
    }

    /// The stratified arm of the neighbors stage: builds (or faults
    /// in, or extends) the per-length forests and pivot tables. No
    /// matrix, index, or other O(u²) structure is touched.
    fn ensure_strata(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.strata.is_some() {
            return Ok(());
        }
        self.ensure_store()?;
        let index = {
            let store = self.store.as_ref().expect("ensured");
            let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
            self.build_strata_cached(&values)
        };
        self.strata = Some(index);
        Ok(())
    }

    /// The matrix-backed arm of the neighbors stage: builds the sorted
    /// [`NeighborIndex`] over the present dissimilarity artifact if it
    /// is missing, and re-persists monolithic artifacts with the index
    /// attached so a warm run skips the O(n² log n) sort too. Tiled
    /// sessions cache tiles, not the assembled artifact, so they only
    /// build. No-op when the index is already present (e.g. faulted in
    /// from a warm cache).
    fn ensure_index(&mut self) {
        if self
            .dissim
            .as_ref()
            .is_none_or(|a| a.neighbors_built().is_some())
        {
            return;
        }
        self.dissim.as_mut().expect("present").neighbors();
        let (Some(cache), Some(store)) = (self.cache.as_ref(), self.store.as_ref()) else {
            return;
        };
        if self.config.tiled_rows(store.segments.len()).is_some() {
            return;
        }
        let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
        let key = cache::dissim_key(&values, &self.config.dissim);
        cache.put(&key, self.dissim.as_ref().expect("present"));
    }

    /// The stage key for a configuration-dependent artifact, if a cache
    /// is attached. Only called with a segmentation present.
    fn stage_key(&mut self, kind: Kind) -> Option<Key> {
        self.cache.is_some().then(|| {
            let input = self.session_input_key();
            cache::stage_key(kind, &input, &self.config)
        })
    }

    fn ensure_store(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.store.is_some() {
            return Ok(());
        }
        if self.segmentation.is_none() {
            return Err(PipelineError::MissingSegmentation);
        }
        let store = self.collect_store_cached(self.config.min_segment_len);
        let n = store.segments.len();
        if n < 4 {
            return Err(PipelineError::TooFewSegments { n });
        }
        self.store = Some(store);
        Ok(())
    }

    fn ensure_dissim(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.dissim.is_some() {
            return Ok(());
        }
        self.ensure_store()?;
        // Structure-aware kernel build (LUT + early-abandon windows +
        // length buckets); bit-identical to the naive closure build,
        // pinned by tests/session_equivalence.rs — as are the cache's
        // warm and incremental paths, and the tiled build.
        let (artifact, knn) = {
            let store = self.store.as_ref().expect("ensured");
            let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
            match self.config.tiled_rows(values.len()) {
                Some(tile_rows) => {
                    let (artifact, knn) = self.build_dissim_tiled(&values, tile_rows);
                    (artifact, Some(knn))
                }
                None => (self.build_dissim_monolithic(&values), None),
            }
        };
        self.dissim = Some(artifact);
        self.knn = knn;
        Ok(())
    }

    fn ensure_selection(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.selection.is_some() {
            return Ok(());
        }
        self.ensure_store()?;
        let sel_key = self.stage_key(Kind::SELECTION);
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &sel_key) {
            if let Some(sel) = cache.get::<SelectionArtifact>(key) {
                self.selection = Some((sel.params, sel.source));
                return Ok(());
            }
        }
        self.ensure_neighbors()?;
        // The matrix covers *unique* values; clustering must behave as
        // if every duplicate segment were present, so occurrence counts
        // act as DBSCAN sample weights and min_samples is sized by the
        // trace's segment count (paper: "setting it to ln n", with n
        // the number of segments).
        let weights = self.store.as_ref().expect("ensured").occurrence_counts();
        let total_instances: usize = weights.iter().sum();
        let min_samples = ((total_instances as f64).ln().round() as usize).max(2);
        let n = weights.len();
        // Tiled sessions select ε from the merged per-tile k-NN table;
        // the vptree backend answers the k-dist queries straight from
        // its forest; otherwise the neighbor index serves them. All are
        // bit-identical to the matrix scan. The fallback mean likewise
        // comes from the matrix or (vptree) a pairwise kernel pass —
        // pinned bit-identical.
        let (selection, fallback_mean) = match self.session_backend() {
            NeighborBackend::Vptree => {
                let store = self.store.as_ref().expect("ensured");
                let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                let forest = self.vpforest.as_ref().expect("ensured");
                let provider = VpProvider::new(&values, &self.config.dissim, forest)
                    .with_swar(self.config.swar);
                let selection =
                    auto_configure_parallel(&provider, &self.config.autoconf, self.config.threads);
                let mean = selection
                    .is_err()
                    .then(|| pairwise_mean(&values, &self.config.dissim))
                    .flatten();
                (selection, mean)
            }
            NeighborBackend::Stratified => {
                let store = self.store.as_ref().expect("ensured");
                let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                let index = self.strata.as_ref().expect("ensured");
                let provider = StratifiedProvider::new(&values, &self.config.dissim, index)
                    .with_swar(self.config.swar)
                    .with_counters(Arc::clone(&self.neighbor_counters));
                let selection =
                    auto_configure_parallel(&provider, &self.config.autoconf, self.config.threads);
                let mean = selection
                    .is_err()
                    .then(|| pairwise_mean(&values, &self.config.dissim))
                    .flatten();
                (selection, mean)
            }
            _ => {
                let artifact = self.dissim.as_ref().expect("ensured");
                let index = artifact.neighbors_built().expect("ensured");
                let selection = match &self.knn {
                    Some(table) => auto_configure_with_knn(table, &self.config.autoconf),
                    None => auto_configure_parallel(
                        &IndexedProvider::new(artifact.matrix(), index),
                        &self.config.autoconf,
                        self.config.threads,
                    ),
                };
                let mean = selection
                    .is_err()
                    .then(|| artifact.matrix().mean())
                    .flatten();
                (selection, mean)
            }
        };
        let (mut selected, source) = match selection {
            Ok(p) => (p, EpsilonSource::Knee),
            Err(AutoConfError::TooFewSegments { n }) => {
                return Err(PipelineError::TooFewSegments { n })
            }
            Err(_) => (
                self.config.mean_fallback(fallback_mean, n),
                EpsilonSource::MeanFallback,
            ),
        };
        selected.min_samples = min_samples;
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &sel_key) {
            cache.put(
                key,
                &SelectionArtifact {
                    params: selected.clone(),
                    source,
                },
            );
        }
        self.selection = Some((selected, source));
        Ok(())
    }

    fn ensure_clustering(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.clustering.is_some() {
            return Ok(());
        }
        self.ensure_store()?;
        let stage_key = self.stage_key(Kind::CLUSTER_STAGE);
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &stage_key) {
            let n = self.store.as_ref().expect("ensured").segments.len();
            if let Some(stage) = cache.get::<ClusterStageArtifact>(key) {
                // Shape check on top of the content key: the labels
                // must cover exactly this segment set.
                if stage.clustering.len() == n {
                    self.selection = Some((stage.params, stage.source));
                    self.clustering = Some(stage.clustering);
                    return Ok(());
                }
            }
        }
        self.ensure_selection()?;
        self.ensure_neighbors()?;
        let weights = self.store.as_ref().expect("ensured").occurrence_counts();
        let (selected, _) = self.selection.clone().expect("ensured");
        let (clustering, reselected) = {
            let store = self.store.as_ref().expect("ensured");
            match self.session_backend() {
                NeighborBackend::Vptree => {
                    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                    let forest = self.vpforest.as_ref().expect("ensured");
                    let provider = VpProvider::new(&values, &self.config.dissim, forest)
                        .with_swar(self.config.swar);
                    cluster_with_provider(&self.config, &provider, None, &selected, &weights)
                }
                NeighborBackend::Stratified => {
                    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                    let index = self.strata.as_ref().expect("ensured");
                    let provider = StratifiedProvider::new(&values, &self.config.dissim, index)
                        .with_swar(self.config.swar)
                        .with_counters(Arc::clone(&self.neighbor_counters));
                    cluster_with_provider(&self.config, &provider, None, &selected, &weights)
                }
                _ => {
                    let artifact = self.dissim.as_ref().expect("ensured");
                    let index = artifact.neighbors_built().expect("ensured");
                    let provider = IndexedProvider::new(artifact.matrix(), index);
                    cluster_with_provider(
                        &self.config,
                        &provider,
                        self.knn.as_ref(),
                        &selected,
                        &weights,
                    )
                }
            }
        };
        if let Some(sel) = reselected {
            self.selection = Some(sel);
        }
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &stage_key) {
            let (params, source) = self.selection.as_ref().expect("ensured");
            cache.put(
                key,
                &ClusterStageArtifact {
                    params: params.clone(),
                    source: *source,
                    clustering: clustering.clone(),
                },
            );
        }
        self.clustering = Some(clustering);
        Ok(())
    }

    fn ensure_refined(&mut self) -> Result<(), PipelineError> {
        self.check_cancelled()?;
        if self.refined.is_some() {
            return Ok(());
        }
        self.ensure_clustering()?;
        let refined_key = self.stage_key(Kind::REFINED);
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &refined_key) {
            let n = self.clustering.as_ref().expect("ensured").len();
            if let Some(RefinedArtifact(refined)) = cache.get::<RefinedArtifact>(key) {
                if refined.len() == n {
                    self.refined = Some(refined);
                    return Ok(());
                }
            }
        }
        // The clustering stage may have been a cache hit that loaded no
        // neighbor structure; refinement itself needs one.
        self.ensure_neighbors()?;
        let weights = self.store.as_ref().expect("ensured").occurrence_counts();
        let refined = {
            let store = self.store.as_ref().expect("ensured");
            let clustering = self.clustering.as_ref().expect("ensured");
            let merged = match self.session_backend() {
                NeighborBackend::Vptree => {
                    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                    let forest = self.vpforest.as_ref().expect("ensured");
                    let provider = VpProvider::new(&values, &self.config.dissim, forest)
                        .with_swar(self.config.swar);
                    merge_clusters_with_provider(
                        clustering,
                        &provider,
                        &self.config.refine,
                        self.config.threads,
                    )
                }
                NeighborBackend::Stratified => {
                    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
                    let index = self.strata.as_ref().expect("ensured");
                    let provider = StratifiedProvider::new(&values, &self.config.dissim, index)
                        .with_swar(self.config.swar)
                        .with_counters(Arc::clone(&self.neighbor_counters));
                    merge_clusters_with_provider(
                        clustering,
                        &provider,
                        &self.config.refine,
                        self.config.threads,
                    )
                }
                _ => {
                    let artifact = self.dissim.as_ref().expect("ensured");
                    let index = artifact.neighbors_built().expect("ensured");
                    merge_clusters_parallel(
                        clustering,
                        artifact.matrix(),
                        index,
                        &self.config.refine,
                        self.config.threads,
                    )
                }
            };
            split_clusters(&merged, &weights, &self.config.refine)
        };
        if let (Some(cache), Some(key)) = (self.cache.as_ref(), &refined_key) {
            cache.put(key, &RefinedArtifact(refined.clone()));
        }
        self.refined = Some(refined);
        Ok(())
    }

    fn ensure_full_store(&mut self) -> Result<(), MessageTypeError> {
        self.check_cancelled_msg()?;
        let n = self.trace.len();
        if n < 4 {
            return Err(MessageTypeError::TooFewMessages { n });
        }
        if self.full_store.is_some() {
            return Ok(());
        }
        if self.segmentation.is_none() {
            return Err(MessageTypeError::MissingSegmentation);
        }
        // Message type identification keeps even 1-byte segments —
        // sequence context disambiguates them.
        self.full_store = Some(self.collect_store_cached(1));
        Ok(())
    }

    fn ensure_full_dissim(&mut self) -> Result<(), MessageTypeError> {
        self.check_cancelled_msg()?;
        if self.full_dissim.is_some() {
            return Ok(());
        }
        self.ensure_full_store()?;
        // Kernel build (see ensure_dissim); these entries feed the
        // message-alignment substitution costs of message_matrix.
        let artifact = {
            let store = self.full_store.as_ref().expect("ensured");
            let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
            self.build_dissim_cached(&values)
        };
        self.full_dissim = Some(artifact);
        Ok(())
    }
}

/// Occurrence-weighted DBSCAN at the selected parameters, plus the
/// §III-E dominating-cluster re-configuration on the trimmed ECDF —
/// over any neighbor backend. Returns the labels and, when the trimmed
/// rerun fired, the re-selected parameters. Tiled sessions pass their
/// merged `knn` table so the trimmed selection reuses it; every other
/// backend answers the k-dist queries through the provider. All paths
/// are pinned bit-identical.
fn cluster_with_provider<P: NeighborProvider + Sync>(
    config: &FieldTypeClusterer,
    provider: &P,
    knn: Option<&KnnTable>,
    selected: &SelectedParams,
    weights: &[usize],
) -> (Clustering, Option<(SelectedParams, EpsilonSource)>) {
    let min_samples = selected.min_samples;
    let threads = config.threads;
    let mut clustering = dbscan_weighted_parallel_with_provider(
        provider,
        selected.epsilon,
        min_samples,
        weights,
        threads,
    );
    let mut reselected = None;
    // §III-E: a single dominating cluster signals a too-large ε from a
    // multi-knee ECDF; re-configure on the trimmed distribution.
    if config.has_dominating_cluster(&clustering, weights) {
        let trimmed_config = AutoConfig {
            max_dissimilarity: Some(selected.epsilon),
            ..config.autoconf
        };
        let trimmed = match knn {
            Some(table) => auto_configure_with_knn(table, &trimmed_config),
            None => auto_configure_parallel(provider, &trimmed_config, threads),
        };
        if let Ok(p) = trimmed {
            if p.epsilon < selected.epsilon {
                clustering = dbscan_weighted_parallel_with_provider(
                    provider,
                    p.epsilon,
                    min_samples,
                    weights,
                    threads,
                );
                reselected = Some((
                    SelectedParams { min_samples, ..p },
                    EpsilonSource::TrimmedKnee,
                ));
            }
        }
    }
    (clustering, reselected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::truth_segmentation;
    use protocols::{corpus, Protocol};

    fn session_for(protocol: Protocol, n: usize, seed: u64) -> (Trace, AnalysisSession<'static>) {
        let trace = corpus::build_trace(protocol, n, seed);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let mut s = AnalysisSession::from_owned(trace.clone(), FieldTypeClusterer::default());
        s.set_segmentation(seg);
        (trace, s)
    }

    #[test]
    fn stages_run_on_demand_and_cache() {
        let (_, mut s) = session_for(Protocol::Ntp, 50, 1);
        assert!(s.segmentation().is_some());
        let n = s.store().unwrap().segments.len();
        let first = s.matrix().unwrap() as *const CondensedMatrix;
        assert_eq!(s.matrix().unwrap().len(), n);
        // Same allocation: the artifact was cached, not rebuilt.
        assert_eq!(first, s.matrix().unwrap() as *const CondensedMatrix);
        assert_eq!(s.neighbors().unwrap().len(), n);
        let eps = s.autoconf().unwrap().epsilon;
        assert!(eps > 0.0);
        let result = s.finish().unwrap();
        assert_eq!(result.params.epsilon, s.autoconf().unwrap().epsilon);
        assert_eq!(&result.clustering, s.refine().unwrap());
    }

    #[test]
    fn finish_matches_cluster_trace() {
        let trace = corpus::build_trace(Protocol::Dns, 50, 2);
        let gt = corpus::ground_truth(Protocol::Dns, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let wrapper = FieldTypeClusterer::default()
            .cluster_trace(&trace, &seg)
            .unwrap();
        let mut s = AnalysisSession::new(&trace, FieldTypeClusterer::default());
        s.set_segmentation(seg);
        let staged = s.finish().unwrap();
        assert_eq!(wrapper.clustering, staged.clustering);
        assert_eq!(wrapper.params.epsilon, staged.params.epsilon);
        assert_eq!(wrapper.epsilon_source, staged.epsilon_source);
    }

    #[test]
    fn missing_segmentation_is_an_error() {
        let trace = corpus::build_trace(Protocol::Ntp, 20, 3);
        let mut s = AnalysisSession::new(&trace, FieldTypeClusterer::default());
        assert!(matches!(s.store(), Err(PipelineError::MissingSegmentation)));
        assert!(matches!(
            s.finish(),
            Err(PipelineError::MissingSegmentation)
        ));
        assert!(matches!(
            s.message_types(&MessageTypeConfig::default()),
            Err(MessageTypeError::MissingSegmentation)
        ));
    }

    #[test]
    fn segment_stage_uses_a_segmenter() {
        use segment::nemesys::Nemesys;
        let trace = corpus::build_trace(Protocol::Dns, 40, 4);
        let mut s = AnalysisSession::new(&trace, FieldTypeClusterer::default());
        let total = s
            .segment_with(&Nemesys::default())
            .unwrap()
            .total_segments();
        assert!(total > 0);
        assert!(s.finish().unwrap().clustering.n_clusters() >= 1);
    }

    #[test]
    fn set_segmentation_invalidates_downstream() {
        use segment::fixed::FixedChunks;
        let (trace, mut s) = session_for(Protocol::Ntp, 40, 5);
        let eps_truth = s.autoconf().unwrap().epsilon;
        let n_truth = s.store().unwrap().segments.len();
        s.set_segmentation(FixedChunks { width: 4 }.segment_trace(&trace).unwrap());
        let n_fixed = s.store().unwrap().segments.len();
        assert!(n_fixed != n_truth || s.autoconf().unwrap().epsilon != eps_truth);
    }

    #[test]
    fn preprocess_stage_feeds_the_session() {
        let raw = corpus::build_trace(Protocol::Ntp, 30, 6);
        let mut s = AnalysisSession::preprocess(
            &raw,
            &Preprocessor::new().deduplicate(true),
            FieldTypeClusterer::default(),
        );
        assert!(s.trace().len() <= raw.len());
        let gt = corpus::ground_truth(Protocol::Ntp, s.trace());
        let seg = truth_segmentation(s.trace(), &gt);
        s.set_segmentation(seg);
        assert!(s.finish().unwrap().clustering.n_clusters() >= 1);
    }

    #[test]
    fn tripped_token_cancels_every_stage() {
        let (_, mut s) = session_for(Protocol::Ntp, 40, 8);
        let token = CancelToken::new();
        s.set_cancel_token(token.clone());
        token.cancel();
        assert!(matches!(s.store(), Err(PipelineError::Cancelled)));
        assert!(matches!(s.finish(), Err(PipelineError::Cancelled)));
        assert!(matches!(
            s.message_types(&MessageTypeConfig::default()),
            Err(MessageTypeError::Cancelled)
        ));
    }

    #[test]
    fn cached_artifacts_survive_a_cancel_and_resume() {
        let (_, mut s) = session_for(Protocol::Dns, 40, 9);
        // Drive through the matrix, then cancel: the cached artifacts stay.
        let n = s.matrix().unwrap().len();
        let token = CancelToken::new();
        s.set_cancel_token(token.clone());
        token.cancel();
        assert!(matches!(s.autoconf(), Err(PipelineError::Cancelled)));
        // A fresh token resumes from the cached matrix.
        s.set_cancel_token(CancelToken::new());
        assert_eq!(s.matrix().unwrap().len(), n);
        assert!(s.finish().unwrap().clustering.n_clusters() >= 1);
    }

    #[test]
    fn expired_deadline_cancels() {
        use std::time::Instant;
        let (_, mut s) = session_for(Protocol::Ntp, 40, 10);
        s.set_cancel_token(CancelToken::with_deadline(Instant::now()));
        assert!(matches!(s.finish(), Err(PipelineError::Cancelled)));
    }

    #[test]
    fn state_machine_infers_and_memoizes_through_the_store() {
        use crate::fsm::StateMachineConfig;
        let dir =
            std::env::temp_dir().join(format!("fieldclust-fsm-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StateMachineConfig::default();

        let (trace, mut cold) = session_for(Protocol::Ntp, 40, 12);
        cold.set_store(ArtifactStore::open(&dir).expect("open store"));
        let m1 = cold.state_machine(&config).unwrap();
        assert!(m1.n_states >= 1);
        assert_eq!(m1.flows as usize, trace.flows().len());

        // A fresh session over the same trace serves the machine from
        // the store without rebuilding anything: zero misses, zero
        // writes — and bit-identical exports.
        let gt = corpus::ground_truth(Protocol::Ntp, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let mut warm = AnalysisSession::from_owned(trace, FieldTypeClusterer::default());
        warm.set_segmentation(seg);
        warm.set_store(ArtifactStore::open(&dir).expect("open store"));
        let m2 = warm.state_machine(&config).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(m1.to_dot(), m2.to_dot());
        assert_eq!(m1.to_json(), m2.to_json());
        let stats = warm.cache_stats().expect("store attached");
        assert_eq!(stats.misses, 0, "warm run must rebuild nothing: {stats}");
        assert_eq!(stats.writes, 0, "warm run must write nothing: {stats}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn message_matrix_is_cached_per_gap_penalty() {
        let (_, mut s) = session_for(Protocol::Dns, 40, 7);
        let m8 = s.message_matrix(0.8).unwrap().clone();
        assert_eq!(&m8, s.message_matrix(0.8).unwrap());
        // A different penalty rebuilds with different alignment costs.
        assert_ne!(&m8, s.message_matrix(0.5).unwrap());
        let types = s.message_types(&MessageTypeConfig::default()).unwrap();
        assert_eq!(types.clustering.len(), s.trace().len());
    }
}
