//! Ground-truth adapters: dissector fields as a segmentation, and type
//! labels for arbitrary segments.
//!
//! The paper validates the clustering against "perfect segmentation from
//! Wireshark dissectors" (§IV-B); our [`protocols`] dissectors play that
//! role. For heuristic segments, whose boundaries rarely match true
//! fields exactly, a segment inherits the true type it overlaps the most
//! (weighted across all its instances).

use crate::segments::SegmentStore;
use protocols::{FieldKind, TrueField};
use segment::{MessageSegments, TraceSegmentation};
use trace::Trace;

/// Converts per-message ground-truth fields into a segmentation.
///
/// # Panics
///
/// Panics if `ground_truth` does not cover the trace or a message's
/// fields do not tile its payload — corpus traces always do.
pub fn truth_segmentation(trace: &Trace, ground_truth: &[Vec<TrueField>]) -> TraceSegmentation {
    assert_eq!(
        trace.len(),
        ground_truth.len(),
        "ground truth must cover the trace"
    );
    let messages = trace
        .iter()
        .zip(ground_truth)
        .map(|(msg, fields)| {
            let ranges = fields.iter().map(TrueField::range).collect();
            MessageSegments::from_ranges(msg.payload().len(), ranges)
        })
        .collect();
    TraceSegmentation { messages }
}

/// The dominant true [`FieldKind`] for one byte range of one message:
/// the kind whose fields overlap the range with the most bytes.
///
/// Returns `None` when the range overlaps no field (cannot happen for
/// tiling ground truth).
pub fn dominant_kind(fields: &[TrueField], range: &std::ops::Range<usize>) -> Option<FieldKind> {
    let mut best: Option<(FieldKind, usize)> = None;
    let mut acc: std::collections::HashMap<FieldKind, usize> = std::collections::HashMap::new();
    for f in fields {
        let overlap_start = f.offset.max(range.start);
        let overlap_end = (f.offset + f.len).min(range.end);
        if overlap_end > overlap_start {
            *acc.entry(f.kind).or_insert(0) += overlap_end - overlap_start;
        }
    }
    for (kind, bytes) in acc {
        if best.is_none_or(|(_, b)| bytes > b) {
            best = Some((kind, bytes));
        }
    }
    best.map(|(k, _)| k)
}

/// Labels every clusterable unique segment of a store with its dominant
/// true kind, majority-voted over all instances (byte-weighted).
///
/// # Panics
///
/// Panics if an instance references a message without ground truth.
pub fn label_store(store: &SegmentStore, ground_truth: &[Vec<TrueField>]) -> Vec<FieldKind> {
    store
        .segments
        .iter()
        .map(|seg| {
            let mut votes: std::collections::HashMap<FieldKind, usize> =
                std::collections::HashMap::new();
            for inst in &seg.instances {
                let fields = &ground_truth[inst.message];
                if let Some(kind) = dominant_kind(fields, &inst.range) {
                    *votes.entry(kind).or_insert(0) += inst.range.len();
                }
            }
            votes
                .into_iter()
                .max_by_key(|&(_, v)| v)
                .map(|(k, _)| k)
                .expect("every instance overlaps ground-truth fields")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{corpus, Protocol};

    #[test]
    fn truth_segmentation_matches_fields() {
        let t = corpus::build_trace(Protocol::Ntp, 20, 1);
        let gt = corpus::ground_truth(Protocol::Ntp, &t);
        let seg = truth_segmentation(&t, &gt);
        for (fields, segs) in gt.iter().zip(&seg.messages) {
            assert_eq!(fields.len(), segs.len());
            for (f, r) in fields.iter().zip(segs.ranges()) {
                assert_eq!(f.range(), *r);
            }
        }
    }

    #[test]
    fn dominant_kind_picks_majority_overlap() {
        let fields = vec![
            TrueField {
                offset: 0,
                len: 4,
                kind: FieldKind::Timestamp,
                name: "ts",
            },
            TrueField {
                offset: 4,
                len: 2,
                kind: FieldKind::UInt,
                name: "u",
            },
        ];
        // Range covering 3 timestamp bytes and 1 uint byte.
        assert_eq!(dominant_kind(&fields, &(1..5)), Some(FieldKind::Timestamp));
        // Range inside the uint.
        assert_eq!(dominant_kind(&fields, &(4..6)), Some(FieldKind::UInt));
        // Range beyond all fields.
        assert_eq!(dominant_kind(&fields, &(6..8)), None);
    }

    #[test]
    fn exact_segments_get_exact_labels() {
        let t = corpus::build_trace(Protocol::Ntp, 30, 2);
        let gt = corpus::ground_truth(Protocol::Ntp, &t);
        let seg = truth_segmentation(&t, &gt);
        let store = SegmentStore::collect(&t, &seg, 2);
        let labels = label_store(&store, &gt);
        assert_eq!(labels.len(), store.segments.len());
        // NTP ground truth contains timestamps; they must be labelled so.
        let has_ts = labels.contains(&FieldKind::Timestamp);
        assert!(has_ts);
    }

    #[test]
    #[should_panic(expected = "ground truth must cover")]
    fn mismatched_ground_truth_panics() {
        let t = corpus::build_trace(Protocol::Ntp, 5, 3);
        truth_segmentation(&t, &[]);
    }
}
