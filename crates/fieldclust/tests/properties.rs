//! Property-based invariants of the pipeline's bookkeeping layers.

use bytes::Bytes;
use fieldclust::SegmentStore;
use proptest::prelude::*;
use segment::{MessageSegments, TraceSegmentation};
use trace::{Message, Trace};

/// Random messages with random (valid) segmentations.
fn arb_trace_and_seg() -> impl Strategy<Value = (Trace, TraceSegmentation)> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 1..20).prop_flat_map(
        |payloads| {
            let cut_strategies: Vec<_> = payloads
                .iter()
                .map(|p| {
                    let len = p.len();
                    prop::collection::btree_set(1..len.max(2), 0..len.min(6)).prop_map(
                        move |cuts| {
                            let cuts: Vec<usize> = cuts.into_iter().filter(|&c| c < len).collect();
                            MessageSegments::from_cuts(len, &cuts)
                        },
                    )
                })
                .collect();
            (Just(payloads), cut_strategies).prop_map(|(payloads, segs)| {
                let msgs = payloads
                    .into_iter()
                    .map(|p| Message::builder(Bytes::from(p)).build())
                    .collect();
                (
                    Trace::new("prop", msgs),
                    TraceSegmentation { messages: segs },
                )
            })
        },
    )
}

proptest! {
    #[test]
    fn store_preserves_every_byte((trace, seg) in arb_trace_and_seg()) {
        let store = SegmentStore::collect(&trace, &seg, 2);
        // Every instance across clusterable + excluded must cover the
        // trace byte-exactly.
        let mut per_message: Vec<Vec<bool>> = trace
            .iter()
            .map(|m| vec![false; m.payload().len()])
            .collect();
        for seg in store.segments.iter().chain(&store.excluded) {
            for inst in &seg.instances {
                for b in inst.range.clone() {
                    prop_assert!(!per_message[inst.message][b], "byte covered twice");
                    per_message[inst.message][b] = true;
                }
            }
        }
        for (mi, covered) in per_message.iter().enumerate() {
            prop_assert!(covered.iter().all(|&c| c), "message {} has uncovered bytes", mi);
        }
    }

    #[test]
    fn store_values_are_unique((trace, seg) in arb_trace_and_seg()) {
        let store = SegmentStore::collect(&trace, &seg, 2);
        let mut seen = std::collections::HashSet::new();
        for s in store.segments.iter().chain(&store.excluded) {
            prop_assert!(seen.insert(s.value.clone()), "duplicate unique value");
            prop_assert!(!s.instances.is_empty());
        }
    }

    #[test]
    fn min_len_partitions_correctly(
        (trace, seg) in arb_trace_and_seg(),
        min_len in 1usize..5,
    ) {
        let store = SegmentStore::collect(&trace, &seg, min_len);
        for s in &store.segments {
            prop_assert!(s.value.len() >= min_len);
        }
        for s in &store.excluded {
            prop_assert!(s.value.len() < min_len);
        }
    }

    #[test]
    fn instances_readback_matches_value((trace, seg) in arb_trace_and_seg()) {
        let store = SegmentStore::collect(&trace, &seg, 1);
        for s in &store.segments {
            for inst in &s.instances {
                let payload = trace.messages()[inst.message].payload();
                prop_assert_eq!(&payload[inst.range.clone()], &s.value[..]);
            }
        }
    }
}
