//! The staged [`AnalysisSession`] must be byte-identical to the
//! monolithic pre-refactor pipeline.
//!
//! `reference_cluster_trace` below is a line-for-line transcription of
//! the original `FieldTypeClusterer::cluster_trace` body: serial matrix
//! build, matrix-scan auto-configuration, matrix-scan weighted DBSCAN,
//! matrix-scan merge refinement. The staged session replaces every one
//! of those query paths with the shared `DissimArtifact`'s neighbor
//! index; these tests pin down that the substitution is exact — same
//! clustering, same ε (bit-for-bit), same `min_samples`, same coverage —
//! on DNS and NTP fixtures under both ground-truth and heuristic
//! segmentations.

use cluster::autoconf::{auto_configure, AutoConfError, AutoConfig, SelectedParams};
use cluster::dbscan::{dbscan_weighted, Clustering};
use cluster::refine::{merge_clusters, split_clusters};
use dissim::{dissimilarity, CondensedMatrix};
use fieldclust::truth::truth_segmentation;
use fieldclust::{AnalysisSession, FieldTypeClusterer, SegmentStore};
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::{Segmenter, TraceSegmentation};
use trace::Trace;

/// The pre-refactor pipeline, inlined: every stage queries the matrix
/// directly. Returns (clustering, params, weights).
fn reference_cluster_trace(
    config: &FieldTypeClusterer,
    trace: &Trace,
    segmentation: &TraceSegmentation,
) -> (SegmentStore, Clustering, SelectedParams, CondensedMatrix) {
    let store = SegmentStore::collect(trace, segmentation, config.min_segment_len);
    let n = store.segments.len();
    assert!(n >= 4, "fixture must yield enough segments");

    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
    let matrix = CondensedMatrix::build(n, |i, j| {
        dissimilarity(values[i], values[j], &config.dissim)
    });

    let weights = store.occurrence_counts();
    let total_instances: usize = weights.iter().sum();
    let min_samples = ((total_instances as f64).ln().round() as usize).max(2);

    let mut selected = match auto_configure(&matrix, &config.autoconf) {
        Ok(p) => p,
        Err(AutoConfError::TooFewSegments { .. }) => unreachable!("n >= 4"),
        Err(_) => SelectedParams {
            epsilon: matrix.mean().unwrap_or(0.0) / 2.0,
            min_samples,
            k: 2,
            ecdf_values: Vec::new(),
            smoothed_curve: Vec::new(),
        },
    };
    selected.min_samples = min_samples;
    let mut clustering = dbscan_weighted(&matrix, selected.epsilon, min_samples, &weights);

    // §III-E dominating-cluster fallback.
    let clusters = clustering.clusters();
    let cluster_weight = |c: &[usize]| -> usize { c.iter().map(|&i| weights[i]).sum() };
    let non_noise: usize = clusters.iter().map(|c| cluster_weight(c)).sum();
    let dominating = non_noise > 0
        && clusters
            .iter()
            .any(|c| cluster_weight(c) as f64 > config.large_cluster_fraction * non_noise as f64);
    if dominating {
        let trimmed = AutoConfig {
            max_dissimilarity: Some(selected.epsilon),
            ..config.autoconf
        };
        if let Ok(p) = auto_configure(&matrix, &trimmed) {
            if p.epsilon < selected.epsilon {
                clustering = dbscan_weighted(&matrix, p.epsilon, min_samples, &weights);
                selected = SelectedParams { min_samples, ..p };
            }
        }
    }

    let merged = merge_clusters(&clustering, &matrix, &config.refine);
    let final_clustering = split_clusters(&merged, &weights, &config.refine);
    (store, final_clustering, selected, matrix)
}

fn assert_staged_matches_reference(trace: &Trace, segmentation: TraceSegmentation, label: &str) {
    let config = FieldTypeClusterer::default();
    let (ref_store, ref_clustering, ref_params, ref_matrix) =
        reference_cluster_trace(&config, trace, &segmentation);

    let mut session = AnalysisSession::new(trace, config);
    session.set_segmentation(segmentation);
    let staged = session.finish().expect("staged pipeline");

    // The kernel-layer matrix build (LUT + early-abandon windows +
    // length buckets) must be bit-identical to the naive serial build —
    // every condensed entry, not just the derived ε.
    let staged_matrix = session.matrix().expect("cached matrix");
    assert_eq!(
        staged_matrix.len(),
        ref_matrix.len(),
        "{label}: matrix size"
    );
    for (k, (a, b)) in staged_matrix
        .values()
        .iter()
        .zip(ref_matrix.values())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: matrix entry {k} differs ({a} vs {b})"
        );
    }

    assert_eq!(staged.store, ref_store, "{label}: segment stores differ");
    assert_eq!(
        staged.clustering, ref_clustering,
        "{label}: clusterings differ"
    );
    assert_eq!(
        staged.params.epsilon.to_bits(),
        ref_params.epsilon.to_bits(),
        "{label}: eps differs ({} vs {})",
        staged.params.epsilon,
        ref_params.epsilon
    );
    assert_eq!(
        staged.params.min_samples, ref_params.min_samples,
        "{label}: min_samples differs"
    );
    assert_eq!(staged.params.k, ref_params.k, "{label}: selected k differs");

    // Coverage is a pure function of store + clustering, so equality
    // above implies it — assert anyway to pin the reported number.
    let staged_cov = staged.coverage(trace);
    let reference = fieldclust::PseudoTypeClustering {
        store: ref_store,
        clustering: ref_clustering,
        params: ref_params,
        epsilon_source: staged.epsilon_source,
    };
    let ref_cov = reference.coverage(trace);
    assert_eq!(
        staged_cov.covered_bytes, ref_cov.covered_bytes,
        "{label}: coverage differs"
    );
    assert_eq!(
        staged_cov.total_bytes, ref_cov.total_bytes,
        "{label}: total bytes differ"
    );
}

#[test]
fn dns_ground_truth_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Dns, 120, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Dns, &trace);
    assert_staged_matches_reference(&trace, truth_segmentation(&trace, &gt), "dns/truth");
}

#[test]
fn ntp_ground_truth_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Ntp, 150, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    assert_staged_matches_reference(&trace, truth_segmentation(&trace, &gt), "ntp/truth");
}

#[test]
fn dns_heuristic_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Dns, 80, 11);
    let seg = Nemesys::default().segment_trace(&trace).expect("nemesys");
    assert_staged_matches_reference(&trace, seg, "dns/nemesys");
}

#[test]
fn ntp_heuristic_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Ntp, 80, 12);
    let seg = Nemesys::default().segment_trace(&trace).expect("nemesys");
    assert_staged_matches_reference(&trace, seg, "ntp/nemesys");
}
