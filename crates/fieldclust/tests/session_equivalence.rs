//! The staged [`AnalysisSession`] must be byte-identical to the
//! monolithic pre-refactor pipeline.
//!
//! `reference_cluster_trace` below is a line-for-line transcription of
//! the original `FieldTypeClusterer::cluster_trace` body: serial matrix
//! build, matrix-scan auto-configuration, matrix-scan weighted DBSCAN,
//! matrix-scan merge refinement. The staged session replaces every one
//! of those query paths with the shared `DissimArtifact`'s neighbor
//! index; these tests pin down that the substitution is exact — same
//! clustering, same ε (bit-for-bit), same `min_samples`, same coverage —
//! on DNS and NTP fixtures under both ground-truth and heuristic
//! segmentations.

use cluster::autoconf::{auto_configure, AutoConfError, AutoConfig, SelectedParams};
use cluster::dbscan::{dbscan_weighted, Clustering};
use cluster::refine::{merge_clusters, split_clusters};
use dissim::{dissimilarity, CondensedMatrix};
use fieldclust::truth::truth_segmentation;
use fieldclust::{AnalysisSession, FieldTypeClusterer, SegmentStore};
use protocols::{corpus, Protocol};
use segment::nemesys::Nemesys;
use segment::{Segmenter, TraceSegmentation};
use trace::Trace;

/// The pre-refactor pipeline, inlined: every stage queries the matrix
/// directly. Returns (clustering, params, weights).
fn reference_cluster_trace(
    config: &FieldTypeClusterer,
    trace: &Trace,
    segmentation: &TraceSegmentation,
) -> (SegmentStore, Clustering, SelectedParams, CondensedMatrix) {
    let store = SegmentStore::collect(trace, segmentation, config.min_segment_len);
    let n = store.segments.len();
    assert!(n >= 4, "fixture must yield enough segments");

    let values: Vec<&[u8]> = store.segments.iter().map(|s| &s.value[..]).collect();
    let matrix = CondensedMatrix::build(n, |i, j| {
        dissimilarity(values[i], values[j], &config.dissim)
    });

    let weights = store.occurrence_counts();
    let total_instances: usize = weights.iter().sum();
    let min_samples = ((total_instances as f64).ln().round() as usize).max(2);

    let mut selected = match auto_configure(&matrix, &config.autoconf) {
        Ok(p) => p,
        Err(AutoConfError::TooFewSegments { .. }) => unreachable!("n >= 4"),
        Err(_) => SelectedParams {
            epsilon: matrix.mean().unwrap_or(0.0) / 2.0,
            min_samples,
            k: 2,
            ecdf_values: Vec::new(),
            smoothed_curve: Vec::new(),
        },
    };
    selected.min_samples = min_samples;
    let mut clustering = dbscan_weighted(&matrix, selected.epsilon, min_samples, &weights);

    // §III-E dominating-cluster fallback.
    let clusters = clustering.clusters();
    let cluster_weight = |c: &[usize]| -> usize { c.iter().map(|&i| weights[i]).sum() };
    let non_noise: usize = clusters.iter().map(|c| cluster_weight(c)).sum();
    let dominating = non_noise > 0
        && clusters
            .iter()
            .any(|c| cluster_weight(c) as f64 > config.large_cluster_fraction * non_noise as f64);
    if dominating {
        let trimmed = AutoConfig {
            max_dissimilarity: Some(selected.epsilon),
            ..config.autoconf
        };
        if let Ok(p) = auto_configure(&matrix, &trimmed) {
            if p.epsilon < selected.epsilon {
                clustering = dbscan_weighted(&matrix, p.epsilon, min_samples, &weights);
                selected = SelectedParams { min_samples, ..p };
            }
        }
    }

    let merged = merge_clusters(&clustering, &matrix, &config.refine);
    let final_clustering = split_clusters(&merged, &weights, &config.refine);
    (store, final_clustering, selected, matrix)
}

fn assert_staged_matches_reference(
    trace: &Trace,
    segmentation: TraceSegmentation,
    config: FieldTypeClusterer,
    label: &str,
) {
    // The reference never consults the tile settings: it is always the
    // serial in-memory matrix-scan pipeline. A tiled/parallel config
    // must reproduce it bit for bit.
    let (ref_store, ref_clustering, ref_params, ref_matrix) =
        reference_cluster_trace(&config, trace, &segmentation);

    let mut session = AnalysisSession::new(trace, config);
    session.set_segmentation(segmentation);
    let staged = session.finish().expect("staged pipeline");
    let tiled = session
        .config()
        .effective_tile_rows(ref_store.segments.len())
        .is_some();
    assert_eq!(
        session.knn_table().is_some(),
        tiled,
        "{label}: tiled sessions keep their merged k-NN table, others don't"
    );

    // The kernel-layer matrix build (LUT + early-abandon windows +
    // length buckets) must be bit-identical to the naive serial build —
    // every condensed entry, not just the derived ε.
    let staged_matrix = session.matrix().expect("cached matrix");
    assert_eq!(
        staged_matrix.len(),
        ref_matrix.len(),
        "{label}: matrix size"
    );
    for (k, (a, b)) in staged_matrix
        .values()
        .iter()
        .zip(ref_matrix.values())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: matrix entry {k} differs ({a} vs {b})"
        );
    }

    assert_eq!(staged.store, ref_store, "{label}: segment stores differ");
    assert_eq!(
        staged.clustering, ref_clustering,
        "{label}: clusterings differ"
    );
    assert_eq!(
        staged.params.epsilon.to_bits(),
        ref_params.epsilon.to_bits(),
        "{label}: eps differs ({} vs {})",
        staged.params.epsilon,
        ref_params.epsilon
    );
    assert_eq!(
        staged.params.min_samples, ref_params.min_samples,
        "{label}: min_samples differs"
    );
    assert_eq!(staged.params.k, ref_params.k, "{label}: selected k differs");

    // Coverage is a pure function of store + clustering, so equality
    // above implies it — assert anyway to pin the reported number.
    let staged_cov = staged.coverage(trace);
    let reference = fieldclust::PseudoTypeClustering {
        store: ref_store,
        clustering: ref_clustering,
        params: ref_params,
        epsilon_source: staged.epsilon_source,
    };
    let ref_cov = reference.coverage(trace);
    assert_eq!(
        staged_cov.covered_bytes, ref_cov.covered_bytes,
        "{label}: coverage differs"
    );
    assert_eq!(
        staged_cov.total_bytes, ref_cov.total_bytes,
        "{label}: total bytes differ"
    );
}

#[test]
fn dns_ground_truth_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Dns, 120, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Dns, &trace);
    assert_staged_matches_reference(
        &trace,
        truth_segmentation(&trace, &gt),
        FieldTypeClusterer::default(),
        "dns/truth",
    );
}

#[test]
fn ntp_ground_truth_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Ntp, 150, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    assert_staged_matches_reference(
        &trace,
        truth_segmentation(&trace, &gt),
        FieldTypeClusterer::default(),
        "ntp/truth",
    );
}

#[test]
fn dns_heuristic_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Dns, 80, 11);
    let seg = Nemesys::default().segment_trace(&trace).expect("nemesys");
    assert_staged_matches_reference(&trace, seg, FieldTypeClusterer::default(), "dns/nemesys");
}

#[test]
fn ntp_heuristic_segmentation_is_equivalent() {
    let trace = corpus::build_trace(Protocol::Ntp, 80, 12);
    let seg = Nemesys::default().segment_trace(&trace).expect("nemesys");
    assert_staged_matches_reference(&trace, seg, FieldTypeClusterer::default(), "ntp/nemesys");
}

// ----- tiled + parallel equivalence -----
//
// The tiled out-of-core build, the merged per-tile k-NN table feeding ε
// auto-configuration, and the parallel DBSCAN/refinement entries must
// all reproduce the serial in-memory reference bit for bit, for any
// tile geometry and thread count. Tile height and thread count are
// performance knobs, never semantic ones.

#[test]
fn tiled_parallel_session_is_bit_identical_to_reference() {
    let trace = corpus::build_trace(Protocol::Dns, 120, corpus::DEFAULT_SEED);
    let gt = corpus::ground_truth(Protocol::Dns, &trace);
    let seg = truth_segmentation(&trace, &gt);
    for tile_rows in [7usize, 64] {
        for threads in [1usize, 4] {
            let config = FieldTypeClusterer {
                tile_rows: Some(tile_rows),
                threads,
                ..FieldTypeClusterer::default()
            };
            assert_staged_matches_reference(
                &trace,
                seg.clone(),
                config,
                &format!("dns/tiled-r{tile_rows}-t{threads}"),
            );
        }
    }
}

#[test]
fn max_memory_budget_is_bit_identical_to_reference() {
    // A byte budget that forces short tiles takes the same tiled path
    // as an explicit --tile-rows and must be just as exact.
    let trace = corpus::build_trace(Protocol::Ntp, 100, 13);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let config = FieldTypeClusterer {
        max_memory: Some(16 << 10),
        threads: 3,
        ..FieldTypeClusterer::default()
    };
    assert_staged_matches_reference(
        &trace,
        truth_segmentation(&trace, &gt),
        config,
        "ntp/max-memory",
    );
}

// ----- artifact-store equivalence: cold vs warm vs incremental -----
//
// The store's three paths — cold compute, warm full-hit, incremental
// prefix extension — must be indistinguishable in every produced bit:
// matrix entries, ε, min_samples, clustering labels.

fn cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fieldclust-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn truth_session(trace: &Trace) -> AnalysisSession<'_> {
    truth_session_with(trace, FieldTypeClusterer::default())
}

fn truth_session_with(trace: &Trace, config: FieldTypeClusterer) -> AnalysisSession<'_> {
    let gt = corpus::ground_truth(Protocol::Dns, trace);
    let mut s = AnalysisSession::new(trace, config);
    s.set_segmentation(truth_segmentation(trace, &gt));
    s
}

fn assert_sessions_bit_identical(a: &mut AnalysisSession, b: &mut AnalysisSession, label: &str) {
    let result_a = a.finish().expect("pipeline a");
    let result_b = b.finish().expect("pipeline b");
    assert_eq!(
        result_a.params.epsilon.to_bits(),
        result_b.params.epsilon.to_bits(),
        "{label}: eps differs"
    );
    assert_eq!(result_a.params.min_samples, result_b.params.min_samples);
    assert_eq!(result_a.params.k, result_b.params.k);
    assert_eq!(result_a.clustering, result_b.clustering, "{label}: labels");
    assert_eq!(result_a.epsilon_source, result_b.epsilon_source);
    assert_eq!(result_a.store, result_b.store, "{label}: segment stores");
    let ma = a.matrix().expect("matrix a");
    let mb = b.matrix().expect("matrix b");
    assert_eq!(ma.len(), mb.len(), "{label}: matrix size");
    for (k, (x, y)) in ma.values().iter().zip(mb.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: matrix entry {k} differs ({x} vs {y})"
        );
    }
}

#[test]
fn warm_session_is_bit_identical_to_cold() {
    let dir = cache_dir("warm");
    let trace = corpus::build_trace(Protocol::Dns, 100, 21);

    // Cold run populates the cache.
    let mut cold = truth_session(&trace).with_store(&dir).expect("open store");
    let cold_result = cold.finish().expect("cold pipeline");
    let cold_stats = cold.cache_stats().expect("stats");
    assert_eq!(cold_stats.hits, 0, "first run must not hit");
    assert!(cold_stats.writes > 0, "first run must populate the cache");

    // Warm run: every stage is a hit, nothing is written, and no
    // matrix is even loaded until explicitly asked for.
    let mut warm = truth_session(&trace).with_store(&dir).expect("open store");
    let warm_result = warm.finish().expect("warm pipeline");
    let stats = warm.cache_stats().expect("stats");
    assert_eq!(stats.misses, 0, "fully warm run must not miss: {stats}");
    assert_eq!(stats.writes, 0, "fully warm run must not write: {stats}");
    assert!(
        stats.hits >= 3,
        "store, stage, refined must all hit: {stats}"
    );
    assert_eq!(warm_result.clustering, cold_result.clustering);

    // Bit-level equality of everything, including the (cache-loaded)
    // matrix, against a cache-less session.
    let mut warm2 = truth_session(&trace).with_store(&dir).expect("open store");
    let mut no_cache = truth_session(&trace);
    assert_sessions_bit_identical(&mut warm2, &mut no_cache, "warm-vs-cold");
}

#[test]
fn incremental_extension_is_bit_identical_to_cold() {
    let dir = cache_dir("incr");
    let full = corpus::build_trace(Protocol::Dns, 120, 22);
    // The grown trace extends the prefix trace message-for-message, so
    // the deduplicated value list of `full` starts with that of
    // `prefix` (first-occurrence order) — the precondition for a
    // manifest prefix match.
    let prefix = Trace::new("prefix", full.messages()[..80].to_vec());

    // Analyze the prefix, populating the cache (including the matrix
    // and its manifest entry).
    let mut small = truth_session(&prefix).with_store(&dir).expect("open store");
    small.finish().expect("prefix pipeline");
    let small_n = small.matrix().expect("prefix matrix").len();

    // Analyze the grown trace against the same cache: the matrix must
    // be grown incrementally, not rebuilt.
    let mut grown = truth_session(&full).with_store(&dir).expect("open store");
    let grown_result = grown.finish().expect("grown pipeline");
    let stats = grown.cache_stats().expect("stats");
    assert_eq!(
        stats.extended, 1,
        "the matrix must come from a prefix extension: {stats}"
    );
    let grown_n = grown.matrix().expect("grown matrix").len();
    assert!(
        grown_n > small_n,
        "fixture must add unique segments ({grown_n} vs {small_n})"
    );

    // Every artifact of the incremental run must match a cold cache-less
    // run bit for bit.
    let mut grown2 = truth_session(&full).with_store(&dir).expect("open store");
    let mut no_cache = truth_session(&full);
    assert_sessions_bit_identical(&mut grown2, &mut no_cache, "incremental-vs-cold");
    let cold_result = no_cache.finish().expect("cold pipeline");
    assert_eq!(grown_result.clustering, cold_result.clustering);
    assert_eq!(
        grown_result.params.epsilon.to_bits(),
        cold_result.params.epsilon.to_bits()
    );
}

#[test]
fn corrupt_cache_degrades_to_cold_compute() {
    let dir = cache_dir("corrupt");
    let trace = corpus::build_trace(Protocol::Ntp, 90, 23);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let seg = truth_segmentation(&trace, &gt);

    let mut first = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    first.set_segmentation(seg.clone());
    let mut first = first.with_store(&dir).expect("open store");
    let reference = first.finish().expect("first pipeline");

    // Damage every cache file: flip one byte in the middle of each.
    for entry in std::fs::read_dir(&dir).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("read cache file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).expect("write damaged file");
    }

    let mut second = AnalysisSession::new(&trace, FieldTypeClusterer::default());
    second.set_segmentation(seg);
    let mut second = second.with_store(&dir).expect("open store");
    let recomputed = second.finish().expect("damaged cache must not fail");
    let stats = second.cache_stats().expect("stats");
    assert_eq!(stats.hits, 0, "every damaged file must miss: {stats}");
    assert!(stats.misses > 0);
    assert_eq!(recomputed.clustering, reference.clustering);
    assert_eq!(
        recomputed.params.epsilon.to_bits(),
        reference.params.epsilon.to_bits()
    );
}

// ----- tiled store: tiles are the unit of caching -----
//
// In tiled mode the monolithic matrix artifact is never persisted;
// fixed-height row-block tiles are. Warm runs fault every tile back in,
// growth re-uses every complete tile of the prefix, and a damaged tile
// is recomputed and re-persisted — all bit-identical to cold compute.

#[test]
fn tiled_warm_run_is_bit_identical_to_cold() {
    let dir = cache_dir("tiled-warm");
    let trace = corpus::build_trace(Protocol::Dns, 100, 24);
    let config = FieldTypeClusterer {
        tile_rows: Some(16),
        ..FieldTypeClusterer::default()
    };

    // Cold tiled run persists tiles + stage artifacts.
    let mut cold = truth_session_with(&trace, config.clone())
        .with_store(&dir)
        .expect("open store");
    let cold_result = cold.finish().expect("cold pipeline");
    cold.matrix().expect("cold matrix");
    let cold_stats = cold.cache_stats().expect("stats");
    assert_eq!(cold_stats.hits, 0, "first tiled run must not hit");
    assert!(cold_stats.writes > 0, "first tiled run must persist tiles");

    // Warm run: stage artifacts hit; asking for the matrix faults every
    // tile in from the store — no misses, no writes anywhere.
    let mut warm = truth_session_with(&trace, config.clone())
        .with_store(&dir)
        .expect("open store");
    let warm_result = warm.finish().expect("warm pipeline");
    warm.matrix().expect("warm matrix from tile faults");
    assert!(warm.knn_table().is_some(), "tiled warm run keeps its table");
    let stats = warm.cache_stats().expect("stats");
    assert_eq!(
        stats.misses, 0,
        "fully warm tiled run must not miss: {stats}"
    );
    assert_eq!(
        stats.writes, 0,
        "fully warm tiled run must not write: {stats}"
    );
    assert_eq!(warm_result.clustering, cold_result.clustering);

    // And the whole warm tiled session is bit-identical to a cache-less
    // monolithic session: tile geometry and caching are invisible.
    let mut warm2 = truth_session_with(&trace, config)
        .with_store(&dir)
        .expect("open store");
    let mut monolithic = truth_session(&trace);
    assert_sessions_bit_identical(&mut warm2, &mut monolithic, "tiled-warm-vs-monolithic");
}

#[test]
fn tiled_growth_reuses_complete_tiles() {
    let dir = cache_dir("tiled-grow");
    let full = corpus::build_trace(Protocol::Dns, 120, 26);
    let prefix = Trace::new("prefix", full.messages()[..80].to_vec());
    let config = FieldTypeClusterer {
        tile_rows: Some(8),
        ..FieldTypeClusterer::default()
    };

    // Tile keys digest only values[..span.end], so every complete tile
    // of the prefix keeps its key when the trace grows: growth is a
    // pure tile-append.
    let mut small = truth_session_with(&prefix, config.clone())
        .with_store(&dir)
        .expect("open store");
    small.matrix().expect("prefix matrix");

    let mut grown = truth_session_with(&full, config)
        .with_store(&dir)
        .expect("open store");
    grown.matrix().expect("grown matrix");
    let stats = grown.cache_stats().expect("stats");
    assert!(
        stats.hits > 0,
        "complete prefix tiles must fault in on growth: {stats}"
    );
    assert!(
        stats.writes > 0,
        "appended tiles must be persisted: {stats}"
    );

    // The grown tiled matrix equals a cold monolithic build bit for bit.
    let mut monolithic = truth_session(&full);
    let ref_matrix = monolithic.matrix().expect("cold matrix");
    let grown_matrix = grown.matrix().expect("grown matrix");
    assert_eq!(grown_matrix.len(), ref_matrix.len());
    for (k, (x, y)) in grown_matrix
        .values()
        .iter()
        .zip(ref_matrix.values())
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "grown matrix entry {k} differs ({x} vs {y})"
        );
    }
}

// ----- neighbor-backend equivalence: matrix vs tiled vs vptree -----
//
// The three neighbor backends answer the same ε-region and k-NN
// queries through different structures — sorted index over the
// monolithic matrix, tiled matrix + merged k-NN table, vantage-point
// tree forest over the raw values. Every derived artifact (ε bits,
// min_samples, k, labels, refined clusters) must be identical across
// them; the backend, like the tile geometry, is a performance knob
// only.

#[test]
fn all_neighbor_backends_are_bit_identical() {
    use fieldclust::NeighborBackend;
    for (protocol, n, seed) in [
        (Protocol::Dns, 120, corpus::DEFAULT_SEED),
        (Protocol::Ntp, 150, corpus::DEFAULT_SEED),
        (Protocol::Dns, 80, 31),
    ] {
        let trace = corpus::build_trace(protocol, n, seed);
        let gt = corpus::ground_truth(protocol, &trace);
        let seg = truth_segmentation(&trace, &gt);
        let label = format!("{protocol:?}/n{n}/s{seed}");

        let run = |config: FieldTypeClusterer| {
            let mut s = AnalysisSession::new(&trace, config);
            s.set_segmentation(seg.clone());
            (s.finish().expect("pipeline"), s)
        };
        let (reference, _) = run(FieldTypeClusterer {
            neighbor_backend: NeighborBackend::Matrix,
            ..FieldTypeClusterer::default()
        });
        let backends = [
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Tiled,
                tile_rows: Some(16),
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Vptree,
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Vptree,
                swar: true,
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Stratified,
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Stratified,
                swar: true,
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Stratified,
                threads: 1,
                ..FieldTypeClusterer::default()
            },
            FieldTypeClusterer {
                neighbor_backend: NeighborBackend::Stratified,
                threads: 4,
                ..FieldTypeClusterer::default()
            },
        ];
        for config in backends {
            let tag = format!(
                "{label}/{}{}/t{}",
                config.neighbor_backend,
                if config.swar { "+swar" } else { "" },
                config.threads,
            );
            let vptree = config.neighbor_backend == NeighborBackend::Vptree;
            let stratified = config.neighbor_backend == NeighborBackend::Stratified;
            let (result, session) = run(config);
            if vptree {
                assert!(
                    session.vp_forest().is_some(),
                    "{tag}: vptree backend must build its forest"
                );
                assert!(
                    session.knn_table().is_none(),
                    "{tag}: vptree backend must not build a k-NN table"
                );
            }
            if stratified {
                assert!(
                    session.strata_index().is_some(),
                    "{tag}: stratified backend must build its index"
                );
                assert!(
                    session.knn_table().is_none(),
                    "{tag}: stratified backend must not build a k-NN table"
                );
                let (evals, _, _) = session.neighbor_counters();
                assert!(evals > 0, "{tag}: stratified queries must count evals");
            }
            assert_eq!(
                result.params.epsilon.to_bits(),
                reference.params.epsilon.to_bits(),
                "{tag}: eps differs ({} vs {})",
                result.params.epsilon,
                reference.params.epsilon
            );
            assert_eq!(
                result.params.min_samples, reference.params.min_samples,
                "{tag}"
            );
            assert_eq!(result.params.k, reference.params.k, "{tag}");
            assert_eq!(result.epsilon_source, reference.epsilon_source, "{tag}");
            assert_eq!(result.store, reference.store, "{tag}: segment stores");
            assert_eq!(result.clustering, reference.clustering, "{tag}: labels");
        }
    }
}

#[test]
fn vptree_warm_run_faults_the_forest_back_in() {
    use fieldclust::NeighborBackend;
    let dir = cache_dir("vptree-warm");
    let trace = corpus::build_trace(Protocol::Dns, 100, 27);
    let config = FieldTypeClusterer {
        neighbor_backend: NeighborBackend::Vptree,
        ..FieldTypeClusterer::default()
    };

    // Cold vptree run persists chunk trees + stage artifacts — and no
    // monolithic dissimilarity artifact (the matrix is never built).
    let mut cold = truth_session_with(&trace, config.clone())
        .with_store(&dir)
        .expect("open store");
    let cold_result = cold.finish().expect("cold pipeline");
    let cold_stats = cold.cache_stats().expect("stats");
    assert_eq!(cold_stats.hits, 0, "first vptree run must not hit");
    assert!(cold_stats.writes > 0, "first vptree run must persist trees");
    let trees: Vec<_> = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().to_string())
        .filter(|name| name.starts_with("vptree-"))
        .collect();
    assert!(!trees.is_empty(), "chunk trees must be persisted on disk");
    assert!(
        !std::fs::read_dir(&dir)
            .expect("read cache dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().to_string())
            .any(|name| name.starts_with("dissim-")),
        "the vptree path must not persist a condensed matrix"
    );

    // Warm run: stage artifacts hit, and explicitly rebuilding the
    // neighbors stage faults the forest in — no misses, no writes.
    let mut warm = truth_session_with(&trace, config)
        .with_store(&dir)
        .expect("open store");
    let warm_result = warm.finish().expect("warm pipeline");
    warm.ensure_neighbors().expect("fault the forest in");
    assert!(warm.vp_forest().is_some());
    let stats = warm.cache_stats().expect("stats");
    assert_eq!(
        stats.misses, 0,
        "fully warm vptree run must not miss: {stats}"
    );
    assert_eq!(
        stats.writes, 0,
        "fully warm vptree run must not write: {stats}"
    );
    assert_eq!(warm_result.clustering, cold_result.clustering);
    assert_eq!(
        warm_result.params.epsilon.to_bits(),
        cold_result.params.epsilon.to_bits()
    );
}

#[test]
fn stratified_warm_and_grown_runs_reuse_the_index() {
    use fieldclust::NeighborBackend;
    let dir = cache_dir("strata-warm");
    let full = corpus::build_trace(Protocol::Dns, 120, 29);
    let prefix = Trace::new("prefix", full.messages()[..80].to_vec());
    let config = FieldTypeClusterer {
        neighbor_backend: NeighborBackend::Stratified,
        ..FieldTypeClusterer::default()
    };

    // Cold stratified run persists the index + stage artifacts — and
    // no condensed matrix (no O(u²) structure is ever built).
    let mut cold = truth_session_with(&prefix, config.clone())
        .with_store(&dir)
        .expect("open store");
    let cold_result = cold.finish().expect("cold pipeline");
    assert!(cold.strata_index().is_some());
    let names = || -> Vec<String> {
        std::fs::read_dir(&dir)
            .expect("read cache dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().to_string())
            .collect()
    };
    assert!(
        names().iter().any(|n| n.starts_with("strata-")),
        "the stratified index must be persisted on disk"
    );
    assert!(
        !names().iter().any(|n| n.starts_with("dissim-")),
        "the stratified path must not persist a condensed matrix"
    );

    // Fully warm rerun: stage artifacts hit; explicitly rebuilding the
    // neighbors stage faults the index in — no misses, no writes.
    let mut warm = truth_session_with(&prefix, config.clone())
        .with_store(&dir)
        .expect("open store");
    let warm_result = warm.finish().expect("warm pipeline");
    warm.ensure_neighbors().expect("fault the index in");
    assert!(warm.strata_index().is_some());
    let stats = warm.cache_stats().expect("stats");
    assert_eq!(
        stats.misses, 0,
        "fully warm stratified run must not miss: {stats}"
    );
    assert_eq!(
        stats.writes, 0,
        "fully warm stratified run must not write: {stats}"
    );
    assert_eq!(warm_result.clustering, cold_result.clustering);
    assert_eq!(
        warm_result.params.epsilon.to_bits(),
        cold_result.params.epsilon.to_bits()
    );

    // Growing the trace extends the cached prefix index instead of
    // rebuilding it — and the grown session equals a cache-less cold
    // one bit for bit.
    let mut grown = truth_session_with(&full, config.clone())
        .with_store(&dir)
        .expect("open store");
    let grown_result = grown.finish().expect("grown pipeline");
    let stats = grown.cache_stats().expect("stats");
    assert_eq!(
        stats.extended, 1,
        "the index must come from a prefix extension: {stats}"
    );
    let mut no_cache = truth_session_with(&full, config);
    let cold_full = no_cache.finish().expect("cold full pipeline");
    assert_eq!(grown_result.clustering, cold_full.clustering);
    assert_eq!(
        grown_result.params.epsilon.to_bits(),
        cold_full.params.epsilon.to_bits()
    );
    // Counter totals are thread-count independent for the same query
    // sequence.
    assert_eq!(
        grown.neighbor_counters(),
        no_cache.neighbor_counters(),
        "grown-vs-cold counter totals"
    );
}

// ----- mmap read-path equivalence: mapped vs heap warm reads -----
//
// The store's zero-copy mmap read path is an I/O strategy, never a
// semantic knob: a warm session served from memory-mapped artifacts
// must produce the same report bytes — and the same ε bits and labels —
// as one served from heap reads of the same files.

#[test]
fn mmap_and_heap_warm_sessions_produce_identical_reports() {
    use fieldclust::report::standard_report;
    let dir = cache_dir("mmap-eq");
    let trace = corpus::build_trace(Protocol::Dns, 100, 28);

    // Cold run populates the cache — through the full report path, so
    // the message-type artifacts are warm too and the two compared
    // runs read everything from the store.
    let mut cold = truth_session(&trace).with_store(&dir).expect("open store");
    standard_report(&trace, &mut cold).expect("cold report");

    let run_warm = |mmap_on: bool| {
        store::mmap::set_enabled(mmap_on);
        let mut warm = truth_session(&trace).with_store(&dir).expect("open store");
        let report = standard_report(&trace, &mut warm).expect("warm report");
        let result = warm.finish().expect("warm pipeline");
        let stats = warm.cache_stats().expect("stats");
        store::mmap::set_enabled(true);
        (report, result, stats)
    };
    let (report_mmap, result_mmap, stats_mmap) = run_warm(true);
    let (report_heap, result_heap, stats_heap) = run_warm(false);

    assert_eq!(
        report_mmap.as_bytes(),
        report_heap.as_bytes(),
        "warm report bytes must not depend on the read path"
    );
    assert_eq!(result_mmap.clustering, result_heap.clustering);
    assert_eq!(
        result_mmap.params.epsilon.to_bits(),
        result_heap.params.epsilon.to_bits()
    );
    assert_eq!(stats_mmap.hits, stats_heap.hits, "same artifacts served");
    assert_eq!(stats_mmap.misses, 0, "fully warm mapped run must not miss");
    assert_eq!(stats_heap.misses, 0, "fully warm heap run must not miss");
    assert_eq!(stats_heap.mmap_reads, 0, "disabled path must never map");

    // And both warm runs equal a cache-less cold session bit for bit.
    let mut warm2 = truth_session(&trace).with_store(&dir).expect("open store");
    let mut no_cache = truth_session(&trace);
    assert_sessions_bit_identical(&mut warm2, &mut no_cache, "mmap-warm-vs-cold");
}

#[test]
fn damaged_tile_degrades_to_recompute() {
    let dir = cache_dir("tiled-corrupt");
    let trace = corpus::build_trace(Protocol::Ntp, 90, 25);
    let gt = corpus::ground_truth(Protocol::Ntp, &trace);
    let seg = truth_segmentation(&trace, &gt);
    let config = FieldTypeClusterer {
        tile_rows: Some(8),
        ..FieldTypeClusterer::default()
    };

    let mut first = AnalysisSession::new(&trace, config.clone());
    first.set_segmentation(seg.clone());
    let mut first = first.with_store(&dir).expect("open store");
    let reference = first.finish().expect("first pipeline");
    let ref_matrix = first.matrix().expect("first matrix").clone();

    // Flip a byte in the middle of every persisted tile; stage
    // artifacts stay intact, so only the tile path is exercised.
    let mut damaged = 0usize;
    for entry in std::fs::read_dir(&dir).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("tile-") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("read tile");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).expect("write damaged tile");
        damaged += 1;
    }
    assert!(damaged > 0, "fixture must persist tiles");

    let mut second = AnalysisSession::new(&trace, config);
    second.set_segmentation(seg);
    let mut second = second.with_store(&dir).expect("open store");
    let recomputed = second.finish().expect("damaged tiles must not fail");
    let matrix = second.matrix().expect("recomputed matrix");
    assert_eq!(matrix.len(), ref_matrix.len());
    for (k, (x, y)) in matrix.values().iter().zip(ref_matrix.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "recomputed matrix entry {k} differs ({x} vs {y})"
        );
    }
    assert_eq!(recomputed.clustering, reference.clustering);
    assert_eq!(
        recomputed.params.epsilon.to_bits(),
        reference.params.epsilon.to_bits()
    );
    let stats = second.cache_stats().expect("stats");
    assert!(stats.misses > 0, "damaged tiles must miss: {stats}");
    assert!(
        stats.writes > 0,
        "recomputed tiles must be re-persisted: {stats}"
    );
}
