#![warn(missing_docs)]
//! FieldHunter baseline: rule-based inference of specific field types
//! (Bermudez et al., *Towards Automatic Protocol Field Inference*,
//! Computer Communications 2016).
//!
//! FieldHunter slides fixed-width n-gram candidates over the messages of
//! a trace and applies one heuristic per supported field type:
//! message type, message length, host identifier, session identifier,
//! transaction identifier and accumulator/counter. It is the
//! state-of-the-art the paper compares against (§II, §IV-D): typically
//! only "one or two fields per message" match any rule, yielding ~3 %
//! byte coverage on average — versus ~87 % for field type clustering.
//!
//! Crucially, most heuristics need *context*: flow endpoints, request/
//! response pairing, capture order. Protocols without IP encapsulation
//! (AWDL, AU) provide none, so analysis fails — exactly the limitation
//! the paper's clustering method removes.
//!
//! # Examples
//!
//! ```
//! use fieldhunter::{FieldHunter, InferredType};
//! use protocols::{Protocol, ProtocolSpec};
//!
//! let trace = Protocol::Dns.generate(200, 1);
//! let analysis = FieldHunter::default().analyze(&trace)?;
//! // DNS transaction IDs are found by the trans-id rule.
//! assert!(analysis.fields.iter().any(|f| f.field_type == InferredType::TransId));
//! # Ok::<(), fieldhunter::FieldHunterError>(())
//! ```

use mathkit::stats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trace::{Direction, Trace, Transport};

/// Byte order of a candidate field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endian {
    /// Big-endian (network order).
    Big,
    /// Little-endian.
    Little,
}

/// The field types FieldHunter's rules can identify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferredType {
    /// Low-cardinality code correlated between requests and responses.
    MsgType,
    /// Value correlated with the message length.
    MsgLen,
    /// Value constant per source host.
    HostId,
    /// Value constant per host pair (conversation).
    SessionId,
    /// High-entropy value echoed from request to response.
    TransId,
    /// Value non-decreasing over time within a flow.
    Accumulator,
}

impl InferredType {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InferredType::MsgType => "msg-type",
            InferredType::MsgLen => "msg-len",
            InferredType::HostId => "host-id",
            InferredType::SessionId => "session-id",
            InferredType::TransId => "trans-id",
            InferredType::Accumulator => "accumulator",
        }
    }
}

/// One field FieldHunter inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferredField {
    /// Byte offset within the message payload.
    pub offset: usize,
    /// Width in bytes.
    pub width: usize,
    /// Byte order under which the rule matched.
    pub endian: Endian,
    /// Which rule matched.
    pub field_type: InferredType,
}

/// The result of a FieldHunter run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// All inferred fields, sorted by offset.
    pub fields: Vec<InferredField>,
    /// Byte coverage: typed bytes over all payload bytes.
    pub coverage: evalkit::Coverage,
}

/// Error from [`FieldHunter::analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldHunterError {
    /// The trace lacks the transport context the heuristics require
    /// (link-layer protocols without addresses/ports, e.g. AWDL or AU).
    NoContext,
    /// The trace holds too few messages for statistical rules.
    TooFewMessages {
        /// Messages present.
        n: usize,
    },
}

impl std::fmt::Display for FieldHunterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldHunterError::NoContext => {
                write!(
                    f,
                    "trace lacks IP/transport context required by the heuristics"
                )
            }
            FieldHunterError::TooFewMessages { n } => {
                write!(f, "too few messages for statistical inference ({n} < 10)")
            }
        }
    }
}

impl std::error::Error for FieldHunterError {}

/// FieldHunter configuration; defaults follow the original's spirit.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldHunter {
    /// Candidate n-gram widths, widest first.
    pub widths: Vec<usize>,
    /// Minimum Pearson correlation for the msg-len rule.
    pub len_correlation: f64,
    /// Minimum fraction of request/response pairs echoing a value for
    /// the trans-id rule.
    pub echo_fraction: f64,
    /// Minimum normalized value entropy for the trans-id rule.
    pub min_id_entropy: f64,
    /// Cardinality range for the msg-type rule.
    pub msg_type_cardinality: (usize, usize),
    /// Minimum consistency of the request→response type mapping.
    pub msg_type_consistency: f64,
    /// Fraction of messages an offset must exist in to be a candidate.
    pub min_presence: f64,
}

impl Default for FieldHunter {
    fn default() -> Self {
        Self {
            widths: vec![4, 2],
            len_correlation: 0.9,
            echo_fraction: 0.9,
            min_id_entropy: 0.8,
            msg_type_cardinality: (2, 8),
            msg_type_consistency: 0.8,
            min_presence: 0.9,
        }
    }
}

/// Value of the candidate at (offset, width, endian) in one payload.
fn read_value(payload: &[u8], offset: usize, width: usize, endian: Endian) -> Option<u64> {
    let bytes = payload.get(offset..offset + width)?;
    let mut v = 0u64;
    match endian {
        Endian::Big => {
            for &b in bytes {
                v = v << 8 | u64::from(b);
            }
        }
        Endian::Little => {
            for &b in bytes.iter().rev() {
                v = v << 8 | u64::from(b);
            }
        }
    }
    Some(v)
}

impl FieldHunter {
    /// Runs all rules over the trace.
    ///
    /// # Errors
    ///
    /// [`FieldHunterError::NoContext`] when the trace is link-layer
    /// (no addresses/ports/directions to correlate against);
    /// [`FieldHunterError::TooFewMessages`] below 10 messages.
    pub fn analyze(&self, trace: &Trace) -> Result<Analysis, FieldHunterError> {
        if trace.iter().any(|m| m.transport() == Transport::Link) {
            return Err(FieldHunterError::NoContext);
        }
        if trace.len() < 10 {
            return Err(FieldHunterError::TooFewMessages { n: trace.len() });
        }

        // Request/response pairing per flow, in capture order.
        let pairs = self.pair_messages(trace);

        let mut fields: Vec<InferredField> = Vec::new();
        let mut claimed: Vec<(usize, usize)> = Vec::new(); // (offset, width)
                                                           // FieldHunter identifies *the* message-type field, *the* length
                                                           // field, and so on — not every offset that happens to satisfy a
                                                           // rule. Only accumulators may occur repeatedly (a protocol can
                                                           // carry several counters/timestamps).
        let mut found_types: std::collections::HashSet<InferredType> =
            std::collections::HashSet::new();

        let max_offset = trace.iter().map(|m| m.payload().len()).max().unwrap_or(0);

        for &width in &self.widths {
            for offset in 0..max_offset.saturating_sub(width - 1) {
                if claimed
                    .iter()
                    .any(|&(o, w)| offset < o + w && o < offset + width)
                {
                    continue;
                }
                let present = trace
                    .iter()
                    .filter(|m| m.payload().len() >= offset + width)
                    .count();
                if (present as f64) < self.min_presence * trace.len() as f64 {
                    continue;
                }
                if let Some(field) = self.classify(trace, &pairs, offset, width, &found_types) {
                    claimed.push((offset, width));
                    if field.field_type != InferredType::Accumulator {
                        found_types.insert(field.field_type);
                    }
                    fields.push(field);
                }
            }
        }
        fields.sort_by_key(|f| (f.offset, f.width));

        // Coverage: typed bytes across the messages where each field
        // exists.
        let mut covered = 0u64;
        for f in &fields {
            covered += trace
                .iter()
                .filter(|m| m.payload().len() >= f.offset + f.width)
                .count() as u64
                * f.width as u64;
        }
        Ok(Analysis {
            fields,
            coverage: evalkit::Coverage {
                covered_bytes: covered,
                total_bytes: trace.total_payload_bytes() as u64,
            },
        })
    }

    /// Pairs each request with the next response in the same flow.
    fn pair_messages(&self, trace: &Trace) -> Vec<(usize, usize)> {
        let mut pending: HashMap<_, usize> = HashMap::new();
        let mut pairs = Vec::new();
        for (i, m) in trace.iter().enumerate() {
            match m.direction() {
                Direction::Request => {
                    pending.insert(m.flow_key(), i);
                }
                Direction::Response => {
                    if let Some(req) = pending.remove(&m.flow_key()) {
                        pairs.push((req, i));
                    }
                }
                Direction::Unknown => {}
            }
        }
        pairs
    }

    /// Applies the rules to one candidate; first match wins, in the
    /// original's order of specificity.
    fn classify(
        &self,
        trace: &Trace,
        pairs: &[(usize, usize)],
        offset: usize,
        width: usize,
        found: &std::collections::HashSet<InferredType>,
    ) -> Option<InferredField> {
        for endian in [Endian::Big, Endian::Little] {
            let values: Vec<(usize, u64)> = trace
                .iter()
                .enumerate()
                .filter_map(|(i, m)| read_value(m.payload(), offset, width, endian).map(|v| (i, v)))
                .collect();
            if values.len() < 10 {
                continue;
            }
            let field = |field_type| InferredField {
                offset,
                width,
                endian,
                field_type,
            };

            if !found.contains(&InferredType::TransId)
                && self.is_trans_id(trace, pairs, offset, width, endian, &values)
            {
                return Some(field(InferredType::TransId));
            }
            if !found.contains(&InferredType::MsgLen) && self.is_msg_len(trace, &values) {
                return Some(field(InferredType::MsgLen));
            }
            if !found.contains(&InferredType::MsgType)
                && self.is_msg_type(trace, pairs, offset, width, endian, &values)
            {
                return Some(field(InferredType::MsgType));
            }
            if !found.contains(&InferredType::HostId) && self.is_host_id(trace, &values) {
                return Some(field(InferredType::HostId));
            }
            if !found.contains(&InferredType::SessionId) && self.is_session_id(trace, &values) {
                return Some(field(InferredType::SessionId));
            }
            if self.is_accumulator(trace, &values) {
                return Some(field(InferredType::Accumulator));
            }
        }
        None
    }

    fn is_msg_len(&self, trace: &Trace, values: &[(usize, u64)]) -> bool {
        let xs: Vec<f64> = values.iter().map(|&(_, v)| v as f64).collect();
        let ys: Vec<f64> = values
            .iter()
            .map(|&(i, _)| trace.messages()[i].payload().len() as f64)
            .collect();
        // Lengths must actually vary for the correlation to mean
        // anything.
        matches!(stats::pearson(&xs, &ys), Some(r) if r >= self.len_correlation)
    }

    fn is_msg_type(
        &self,
        trace: &Trace,
        pairs: &[(usize, usize)],
        offset: usize,
        width: usize,
        endian: Endian,
        values: &[(usize, u64)],
    ) -> bool {
        let distinct: std::collections::HashSet<u64> = values.iter().map(|&(_, v)| v).collect();
        let (lo, hi) = self.msg_type_cardinality;
        if distinct.len() < lo || distinct.len() > hi {
            return false;
        }
        if pairs.is_empty() {
            return false;
        }
        // Request value must (mostly) determine the response value.
        let mut mapping: HashMap<u64, HashMap<u64, usize>> = HashMap::new();
        let mut total = 0usize;
        for &(req, resp) in pairs {
            let (Some(rv), Some(sv)) = (
                read_value(trace.messages()[req].payload(), offset, width, endian),
                read_value(trace.messages()[resp].payload(), offset, width, endian),
            ) else {
                continue;
            };
            *mapping.entry(rv).or_default().entry(sv).or_insert(0) += 1;
            total += 1;
        }
        if total < 5 {
            return false;
        }
        let consistent: usize = mapping
            .values()
            .map(|m| m.values().max().copied().unwrap_or(0))
            .sum();
        consistent as f64 / total as f64 >= self.msg_type_consistency
    }

    fn is_trans_id(
        &self,
        trace: &Trace,
        pairs: &[(usize, usize)],
        offset: usize,
        width: usize,
        endian: Endian,
        values: &[(usize, u64)],
    ) -> bool {
        if pairs.len() < 5 {
            return false;
        }
        let mut echoed = 0usize;
        let mut total = 0usize;
        let mut req_values = Vec::new();
        for &(req, resp) in pairs {
            let (Some(rv), Some(sv)) = (
                read_value(trace.messages()[req].payload(), offset, width, endian),
                read_value(trace.messages()[resp].payload(), offset, width, endian),
            ) else {
                continue;
            };
            total += 1;
            if rv == sv {
                echoed += 1;
            }
            req_values.push(rv);
        }
        if total < 5 || (echoed as f64) < self.echo_fraction * total as f64 {
            return false;
        }
        // IDs must look random: high normalized entropy over requests.
        stats::normalized_value_entropy(&req_values) >= self.min_id_entropy
            && values
                .iter()
                .map(|&(_, v)| v)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
    }

    fn is_host_id(&self, trace: &Trace, values: &[(usize, u64)]) -> bool {
        let mut per_host: HashMap<_, std::collections::HashSet<u64>> = HashMap::new();
        for &(i, v) in values {
            per_host
                .entry(trace.messages()[i].source().addr)
                .or_default()
                .insert(v);
        }
        let distinct: std::collections::HashSet<u64> = values.iter().map(|&(_, v)| v).collect();
        // Identifiers discriminate hosts: most hosts carry their own value.
        per_host.len() >= 2
            && distinct.len() * 2 >= per_host.len()
            && distinct.len() >= 2
            && per_host.values().all(|vs| vs.len() == 1)
    }

    fn is_session_id(&self, trace: &Trace, values: &[(usize, u64)]) -> bool {
        let mut per_flow: HashMap<_, std::collections::HashSet<u64>> = HashMap::new();
        for &(i, v) in values {
            per_flow
                .entry(trace.messages()[i].flow_key())
                .or_default()
                .insert(v);
        }
        let distinct: std::collections::HashSet<u64> = values.iter().map(|&(_, v)| v).collect();
        // Session identifiers discriminate sessions.
        per_flow.len() >= 2
            && distinct.len() * 2 >= per_flow.len()
            && distinct.len() >= 2
            && per_flow.values().all(|vs| vs.len() == 1)
    }

    fn is_accumulator(&self, trace: &Trace, values: &[(usize, u64)]) -> bool {
        let mut per_flow: HashMap<_, Vec<(u64, u64)>> = HashMap::new();
        for &(i, v) in values {
            let m = &trace.messages()[i];
            per_flow
                .entry((m.source(), m.destination()))
                .or_default()
                .push((m.timestamp_micros(), v));
        }
        let mut steps = 0usize;
        let mut increasing = 0usize;
        let mut strict = 0usize;
        for series in per_flow.values_mut() {
            if series.len() < 5 {
                continue;
            }
            series.sort_by_key(|&(t, _)| t);
            for w in series.windows(2) {
                steps += 1;
                if w[1].1 >= w[0].1 {
                    increasing += 1;
                    if w[1].1 > w[0].1 {
                        strict += 1;
                    }
                }
            }
        }
        steps >= 10
            && increasing as f64 >= 0.98 * steps as f64
            && strict as f64 >= 0.5 * steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{Protocol, ProtocolSpec};

    #[test]
    fn read_value_endianness() {
        let p = [0x12, 0x34, 0x56, 0x78];
        assert_eq!(read_value(&p, 0, 2, Endian::Big), Some(0x1234));
        assert_eq!(read_value(&p, 0, 2, Endian::Little), Some(0x3412));
        assert_eq!(read_value(&p, 0, 4, Endian::Big), Some(0x1234_5678));
        assert_eq!(read_value(&p, 3, 2, Endian::Big), None);
    }

    #[test]
    fn finds_dns_transaction_id() {
        let t = Protocol::Dns.generate(200, 2);
        let a = FieldHunter::default().analyze(&t).unwrap();
        let tid = a
            .fields
            .iter()
            .find(|f| f.field_type == InferredType::TransId)
            .expect("DNS id field");
        assert_eq!(tid.offset, 0);
        assert_eq!(tid.width, 2);
    }

    #[test]
    fn finds_dhcp_xid_and_little_coverage() {
        let t = Protocol::Dhcp.generate(200, 3);
        let a = FieldHunter::default().analyze(&t).unwrap();
        assert!(
            a.fields
                .iter()
                .any(|f| f.field_type == InferredType::TransId && f.offset == 4),
            "xid at offset 4: {:?}",
            a.fields
        );
        // The paper's point: coverage stays tiny compared to clustering.
        assert!(
            a.coverage.ratio() < 0.2,
            "coverage = {}",
            a.coverage.ratio()
        );
    }

    #[test]
    fn link_layer_traces_are_rejected() {
        for p in [Protocol::Awdl, Protocol::Au] {
            let t = p.generate(50, 4);
            assert_eq!(
                FieldHunter::default().analyze(&t).unwrap_err(),
                FieldHunterError::NoContext
            );
        }
    }

    #[test]
    fn tiny_traces_are_rejected() {
        let t = Protocol::Dns.generate(5, 5);
        assert!(matches!(
            FieldHunter::default().analyze(&t),
            Err(FieldHunterError::TooFewMessages { n: 5 })
        ));
    }

    #[test]
    fn fields_never_overlap() {
        let t = Protocol::Smb.generate(120, 6);
        let a = FieldHunter::default().analyze(&t).unwrap();
        for (i, f) in a.fields.iter().enumerate() {
            for g in &a.fields[i + 1..] {
                let disjoint = f.offset + f.width <= g.offset || g.offset + g.width <= f.offset;
                assert!(disjoint, "{f:?} overlaps {g:?}");
            }
        }
    }

    #[test]
    fn coverage_is_bounded() {
        for p in [Protocol::Dns, Protocol::Ntp, Protocol::Smb] {
            let t = p.generate(100, 7);
            let a = FieldHunter::default().analyze(&t).unwrap();
            let r = a.coverage.ratio();
            assert!((0.0..=1.0).contains(&r), "{p}: {r}");
        }
    }
}
