//! Cluster-drift tracking across incremental re-clusterings.
//!
//! Each streamed batch re-clusters the admitted trace; the interesting
//! question is how the *partition* moved, not just what it is now. The
//! tracker keeps the previous clustering as a value → label snapshot
//! and, on every new clustering, computes agreement indices (ARI and
//! AMI via `evalkit`, over the segment values present in both
//! snapshots, with noise modelled as one special cluster) plus
//! structural events by overlap matching:
//!
//! - **birth**: a new cluster sharing no value with any previous
//!   cluster (all members are new values or were noise),
//! - **death**: a previous cluster sharing no value with any new
//!   cluster,
//! - **split**: a previous cluster that is the plurality origin of two
//!   or more new clusters,
//! - **merge**: a new cluster that is the plurality destination of two
//!   or more previous clusters.
//!
//! Plurality ties break toward the smaller cluster id, so every number
//! in a [`DriftRecord`] is deterministic and hand-pinnable — the unit
//! tests below fix them on constructed partitions, including the
//! degenerate one-cluster and all-noise cases.

use std::collections::HashMap;

use cluster::Label;
use evalkit::indices::Contingency;
use fieldclust::PseudoTypeClustering;
use store::codec::{Reader, Writer};

/// Label of a segment value in a snapshot: dense cluster id, or -1 for
/// noise. i64 keeps the noise sentinel out of the cluster id space.
type SnapLabel = i64;

const NOISE: SnapLabel = -1;

/// A value → cluster-label map taken from one clustering run.
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    labels: HashMap<Vec<u8>, SnapLabel>,
    n_clusters: u32,
}

impl ClusterSnapshot {
    /// Snapshots a finished pipeline result: every clustered unique
    /// segment value maps to its cluster id, noise values to -1.
    pub fn from_result(result: &PseudoTypeClustering) -> Self {
        let mut labels = HashMap::with_capacity(result.store.segments.len());
        for (seg, label) in result.store.segments.iter().zip(result.clustering.labels()) {
            let l = match label {
                Label::Cluster(id) => *id as SnapLabel,
                Label::Noise => NOISE,
            };
            labels.insert(seg.value.clone(), l);
        }
        ClusterSnapshot {
            labels,
            n_clusters: result.clustering.n_clusters(),
        }
    }

    /// Builds a snapshot from explicit (value, label) pairs; label -1
    /// is noise. Test/bench constructor.
    pub fn from_pairs(pairs: &[(&[u8], SnapLabel)]) -> Self {
        let mut labels = HashMap::with_capacity(pairs.len());
        let mut max_id = -1;
        for (v, l) in pairs {
            labels.insert(v.to_vec(), *l);
            max_id = max_id.max(*l);
        }
        ClusterSnapshot {
            labels,
            n_clusters: (max_id + 1) as u32,
        }
    }

    /// Number of distinct values in the snapshot.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the snapshot holds no values.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of proper clusters (noise excluded).
    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Number of values labelled noise.
    pub fn n_noise(&self) -> usize {
        self.labels.values().filter(|&&l| l == NOISE).count()
    }
}

/// Agreement and structural change between two consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDelta {
    /// Adjusted Rand index over values present in both snapshots
    /// (noise as one cluster); 1.0 when the intersection is empty or
    /// this is the first snapshot.
    pub ari: f64,
    /// Adjusted mutual information, same universe and conventions.
    pub ami: f64,
    /// New clusters with zero overlap with every previous cluster.
    pub births: u32,
    /// Previous clusters with zero overlap with every new cluster.
    pub deaths: u32,
    /// Previous clusters that are the plurality origin of ≥ 2 new
    /// clusters.
    pub splits: u32,
    /// New clusters that are the plurality destination of ≥ 2 previous
    /// clusters.
    pub merges: u32,
}

/// Compares two snapshots; `prev = None` means "first batch", which
/// reports perfect agreement and one birth per cluster.
pub fn drift_between(prev: Option<&ClusterSnapshot>, next: &ClusterSnapshot) -> DriftDelta {
    let Some(prev) = prev else {
        return DriftDelta {
            ari: 1.0,
            ami: 1.0,
            births: next.n_clusters(),
            deaths: 0,
            splits: 0,
            merges: 0,
        };
    };

    // Overlap counts over the intersection of value universes, proper
    // clusters only (noise handled separately for the indices).
    let mut overlap: HashMap<(SnapLabel, SnapLabel), u64> = HashMap::new();
    // Per-cluster totals *within the intersection*, including flows to
    // and from noise — a previous cluster whose values all became noise
    // overlaps nothing and counts as dead.
    let mut agreement: Vec<Vec<SnapLabel>> = Vec::new();
    let mut by_next: HashMap<SnapLabel, Vec<SnapLabel>> = HashMap::new();
    for (value, &p) in &prev.labels {
        let Some(&n) = next.labels.get(value) else {
            continue;
        };
        by_next.entry(n).or_default().push(p);
        if p != NOISE && n != NOISE {
            *overlap.entry((p, n)).or_insert(0) += 1;
        }
    }
    let (ari, ami) = if by_next.is_empty() {
        (1.0, 1.0)
    } else {
        // Deterministic grouping order does not matter for the indices,
        // but build it sorted anyway so debugging output is stable.
        let mut keys: Vec<SnapLabel> = by_next.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            agreement.push(by_next.remove(&k).expect("key from map"));
        }
        let c = Contingency::from_clusters(&agreement);
        (c.adjusted_rand_index(), c.adjusted_mutual_information())
    };

    // Plurality mappings in both directions, ties toward smaller id.
    let mut forward: HashMap<SnapLabel, (u64, SnapLabel)> = HashMap::new(); // prev -> best next
    let mut backward: HashMap<SnapLabel, (u64, SnapLabel)> = HashMap::new(); // next -> best prev
    for (&(p, n), &c) in &overlap {
        let f = forward.entry(p).or_insert((0, SnapLabel::MAX));
        if c > f.0 || (c == f.0 && n < f.1) {
            *f = (c, n);
        }
        let b = backward.entry(n).or_insert((0, SnapLabel::MAX));
        if c > b.0 || (c == b.0 && p < b.1) {
            *b = (c, p);
        }
    }

    let mut births = 0;
    let mut merges = 0;
    for n in 0..SnapLabel::from(next.n_clusters()) {
        match backward.get(&n) {
            None => births += 1,
            Some(_) => {
                let origins = forward.values().filter(|(_, tgt)| *tgt == n).count();
                if origins >= 2 {
                    merges += 1;
                }
            }
        }
    }
    let mut deaths = 0;
    let mut splits = 0;
    for p in 0..SnapLabel::from(prev.n_clusters()) {
        match forward.get(&p) {
            None => deaths += 1,
            Some(_) => {
                let descendants = backward.values().filter(|(_, src)| *src == p).count();
                if descendants >= 2 {
                    splits += 1;
                }
            }
        }
    }

    DriftDelta {
        ari,
        ami,
        births,
        deaths,
        splits,
        merges,
    }
}

/// One line of the drift log: what a single batch re-cluster did.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRecord {
    /// 0-based batch index.
    pub batch: u64,
    /// Messages admitted into the analysis after sampling.
    pub messages: u64,
    /// Messages observed on the source so far (≥ `messages` when
    /// sampling is on).
    pub seen: u64,
    /// Unique clusterable segment values in this batch's store.
    pub unique_segments: u64,
    /// Proper clusters in this batch's result.
    pub clusters: u64,
    /// Noise values in this batch's result.
    pub noise: u64,
    /// Agreement and structural change vs the previous batch.
    pub delta: DriftDelta,
    /// Per-stage wall clock for this batch, microseconds.
    pub stage_walls_us: Vec<(String, u64)>,
    /// Whole-batch wall clock, microseconds.
    pub wall_us: u64,
    /// Cumulative artifact-store hits after this batch (0 if no store).
    pub store_hits: u64,
    /// Cumulative artifact-store misses after this batch.
    pub store_misses: u64,
    /// State-machine drift vs the previous batch, when FSM tracking is
    /// enabled ([`StreamConfig::fsm`](crate::StreamConfig)); `None`
    /// when the batch did not infer a machine.
    pub fsm: Option<statemachine::FsmDelta>,
}

impl DriftRecord {
    /// Renders the record as one JSON object on a single line — the
    /// drift log is JSONL so `follow` output can be tailed and grepped.
    pub fn to_json_line(&self) -> String {
        let mut walls = String::new();
        for (i, (name, us)) in self.stage_walls_us.iter().enumerate() {
            if i > 0 {
                walls.push(',');
            }
            walls.push_str(&format!("\"{name}\":{us}"));
        }
        let fsm = match &self.fsm {
            None => String::new(),
            Some(d) => format!(
                ",\"fsm\":{{\"states\":{},\"transitions\":{},\
                 \"states_born\":{},\"states_died\":{},\
                 \"transitions_born\":{},\"transitions_died\":{}}}",
                d.states,
                d.transitions,
                d.states_born,
                d.states_died,
                d.transitions_born,
                d.transitions_died,
            ),
        };
        format!(
            "{{\"batch\":{},\"messages\":{},\"seen\":{},\"unique_segments\":{},\
             \"clusters\":{},\"noise\":{},\"ari\":{:.6},\"ami\":{:.6},\
             \"births\":{},\"deaths\":{},\"splits\":{},\"merges\":{},\
             \"stage_walls_us\":{{{walls}}},\"wall_us\":{},\
             \"store_hits\":{},\"store_misses\":{}{fsm}}}",
            self.batch,
            self.messages,
            self.seen,
            self.unique_segments,
            self.clusters,
            self.noise,
            self.delta.ari,
            self.delta.ami,
            self.delta.births,
            self.delta.deaths,
            self.delta.splits,
            self.delta.merges,
            self.wall_us,
            self.store_hits,
            self.store_misses,
        )
    }

    /// Serializes the record for the wire (`DriftHistory` responses).
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.batch);
        w.u64(self.messages);
        w.u64(self.seen);
        w.u64(self.unique_segments);
        w.u64(self.clusters);
        w.u64(self.noise);
        w.f64(self.delta.ari);
        w.f64(self.delta.ami);
        w.u32(self.delta.births);
        w.u32(self.delta.deaths);
        w.u32(self.delta.splits);
        w.u32(self.delta.merges);
        w.usize(self.stage_walls_us.len());
        for (name, us) in &self.stage_walls_us {
            w.bytes(name.as_bytes());
            w.u64(*us);
        }
        w.u64(self.wall_us);
        w.u64(self.store_hits);
        w.u64(self.store_misses);
        // Presence tag keeps old FSM-less records one byte longer, not
        // a new wire format.
        match &self.fsm {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                w.u32(d.states);
                w.u32(d.transitions);
                w.u32(d.states_born);
                w.u32(d.states_died);
                w.u32(d.transitions_born);
                w.u32(d.transitions_died);
            }
        }
    }

    /// Deserializes a record written by [`encode`](Self::encode).
    /// `None` when the buffer is truncated or malformed.
    pub fn decode(r: &mut Reader) -> Option<Self> {
        let batch = r.u64()?;
        let messages = r.u64()?;
        let seen = r.u64()?;
        let unique_segments = r.u64()?;
        let clusters = r.u64()?;
        let noise = r.u64()?;
        let ari = r.f64()?;
        let ami = r.f64()?;
        let births = r.u32()?;
        let deaths = r.u32()?;
        let splits = r.u32()?;
        let merges = r.u32()?;
        let n_walls = r.count(16)?; // 8-byte name length + 8-byte wall
        let mut stage_walls_us = Vec::with_capacity(n_walls);
        for _ in 0..n_walls {
            let name = String::from_utf8(r.bytes()?.to_vec()).ok()?;
            stage_walls_us.push((name, r.u64()?));
        }
        let wall_us = r.u64()?;
        let store_hits = r.u64()?;
        let store_misses = r.u64()?;
        let fsm = match r.u8()? {
            0 => None,
            1 => Some(statemachine::FsmDelta {
                states: r.u32()?,
                transitions: r.u32()?,
                states_born: r.u32()?,
                states_died: r.u32()?,
                transitions_born: r.u32()?,
                transitions_died: r.u32()?,
            }),
            _ => return None,
        };
        Some(DriftRecord {
            batch,
            messages,
            seen,
            unique_segments,
            clusters,
            noise,
            delta: DriftDelta {
                ari,
                ami,
                births,
                deaths,
                splits,
                merges,
            },
            stage_walls_us,
            wall_us,
            store_hits,
            store_misses,
            fsm,
        })
    }
}

/// Keeps the previous snapshot between batches and stamps each new
/// clustering into a [`DriftDelta`].
#[derive(Debug, Default)]
pub struct DriftTracker {
    prev: Option<ClusterSnapshot>,
    batches: u64,
}

impl DriftTracker {
    /// A tracker that has seen nothing.
    pub fn new() -> Self {
        DriftTracker::default()
    }

    /// Number of snapshots observed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Observes the next clustering and returns the delta vs the
    /// previous one (perfect-agreement semantics for the first).
    pub fn observe(&mut self, next: ClusterSnapshot) -> DriftDelta {
        let delta = drift_between(self.prev.as_ref(), &next);
        self.prev = Some(next);
        self.batches += 1;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&[u8], i64)]) -> ClusterSnapshot {
        ClusterSnapshot::from_pairs(pairs)
    }

    #[test]
    fn first_batch_is_all_births() {
        let mut t = DriftTracker::new();
        let d = t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 1), (b"n", -1)]));
        assert_eq!(
            d,
            DriftDelta {
                ari: 1.0,
                ami: 1.0,
                births: 2,
                deaths: 0,
                splits: 0,
                merges: 0
            }
        );
        assert_eq!(t.batches(), 1);
    }

    #[test]
    fn identical_partitions_do_not_drift() {
        let pairs: &[(&[u8], i64)] = &[(b"a", 0), (b"b", 0), (b"c", 1), (b"d", 1), (b"n", -1)];
        let mut t = DriftTracker::new();
        t.observe(snap(pairs));
        let d = t.observe(snap(pairs));
        assert_eq!(d.ari, 1.0);
        assert_eq!(d.ami, 1.0);
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 0, 0, 0));
    }

    #[test]
    fn relabelled_partition_is_still_identical() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 1), (b"d", 1)]));
        // Same partition, cluster ids swapped.
        let d = t.observe(snap(&[(b"a", 1), (b"b", 1), (b"c", 0), (b"d", 0)]));
        assert_eq!(d.ari, 1.0);
        assert_eq!(d.ami, 1.0);
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 0, 0, 0));
    }

    #[test]
    fn split_detected() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 0), (b"d", 0)]));
        // Cluster 0 breaks into two halves.
        let d = t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 1), (b"d", 1)]));
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 0, 1, 0));
        assert!(d.ari < 1.0);
    }

    #[test]
    fn merge_detected() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 1), (b"d", 1)]));
        let d = t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 0), (b"d", 0)]));
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 0, 0, 1));
        assert!(d.ari < 1.0);
    }

    #[test]
    fn birth_and_death_detected() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0), (b"x", 1), (b"y", 1)]));
        // Cluster 1's values go to noise (death); brand-new values form
        // cluster 1 (birth); cluster 0 persists.
        let d = t.observe(snap(&[
            (b"a", 0),
            (b"b", 0),
            (b"x", -1),
            (b"y", -1),
            (b"p", 1),
            (b"q", 1),
        ]));
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (1, 1, 0, 0));
    }

    #[test]
    fn one_cluster_to_all_noise_is_a_death() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0), (b"c", 0)]));
        let d = t.observe(snap(&[(b"a", -1), (b"b", -1), (b"c", -1)]));
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 1, 0, 0));
        // With noise modelled as one cluster, both sides are the same
        // trivial single-group partition, so the agreement indices read
        // 1.0 — the collapse is reported by the death event, not ARI.
        assert_eq!(d.ari, 1.0);
        assert_eq!(d.ami, 1.0);
    }

    #[test]
    fn all_noise_to_all_noise_is_quiet() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", -1), (b"b", -1)]));
        let d = t.observe(snap(&[(b"a", -1), (b"b", -1)]));
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (0, 0, 0, 0));
        assert_eq!(d.ari, 1.0);
        assert_eq!(d.ami, 1.0);
    }

    #[test]
    fn disjoint_universes_report_perfect_agreement() {
        let mut t = DriftTracker::new();
        t.observe(snap(&[(b"a", 0), (b"b", 0)]));
        let d = t.observe(snap(&[(b"p", 0), (b"q", 0)]));
        assert_eq!(d.ari, 1.0);
        assert_eq!(d.ami, 1.0);
        // Old cluster gone, new cluster unseen before.
        assert_eq!((d.births, d.deaths, d.splits, d.merges), (1, 1, 0, 0));
    }

    #[test]
    fn snapshot_counts() {
        let s = snap(&[(b"a", 0), (b"b", 2), (b"n", -1)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.n_clusters(), 3); // dense ids assumed: max id + 1
        assert_eq!(s.n_noise(), 1);
        assert!(!s.is_empty());
        assert!(snap(&[]).is_empty());
    }

    #[test]
    fn record_json_and_codec_roundtrip() {
        let mut rec = DriftRecord {
            batch: 2,
            messages: 120,
            seen: 400,
            unique_segments: 77,
            clusters: 9,
            noise: 4,
            delta: DriftDelta {
                ari: 0.875,
                ami: 0.75,
                births: 1,
                deaths: 0,
                splits: 2,
                merges: 0,
            },
            stage_walls_us: vec![("segment".into(), 1200), ("cluster".into(), 300)],
            wall_us: 2500,
            store_hits: 31,
            store_misses: 7,
            fsm: None,
        };
        let line = rec.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"batch\":2"));
        assert!(line.contains("\"ari\":0.875000"));
        assert!(line.contains("\"segment\":1200"));
        assert!(!line.contains("\"fsm\""), "absent tracker stays absent");
        assert!(!line.contains('\n'));

        let mut w = Writer::new();
        rec.encode(&mut w);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        let back = DriftRecord::decode(&mut r).unwrap();
        assert_eq!(back, rec);
        assert!(r.is_at_end());

        // Truncation fails cleanly.
        let mut short = Reader::new(&buf[..buf.len() - 1]);
        assert!(DriftRecord::decode(&mut short).is_none());

        // With the FSM delta present: JSON grows an `fsm` object and
        // the codec roundtrips the six counters.
        rec.fsm = Some(statemachine::FsmDelta {
            states: 5,
            transitions: 8,
            states_born: 2,
            states_died: 1,
            transitions_born: 3,
            transitions_died: 0,
        });
        let line = rec.to_json_line();
        assert!(line.ends_with('}') && !line.contains('\n'));
        assert!(line.contains("\"fsm\":{\"states\":5,\"transitions\":8"));
        assert!(line.contains("\"states_born\":2,\"states_died\":1"));

        let mut w = Writer::new();
        rec.encode(&mut w);
        let buf = w.into_inner();
        let mut r = Reader::new(&buf);
        let back = DriftRecord::decode(&mut r).unwrap();
        assert_eq!(back, rec);
        assert!(r.is_at_end());
        let mut short = Reader::new(&buf[..buf.len() - 1]);
        assert!(DriftRecord::decode(&mut short).is_none());
    }
}
