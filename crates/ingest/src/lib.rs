//! Continuous streaming ingestion for field type clustering.
//!
//! The paper analyzes a static trace; this crate closes the loop for
//! live traffic. Messages arrive from a capture source (a growing
//! capture file under [`source::FollowFile`], a loopback socket feed
//! under [`source::SocketFeed`], or chunked wire submission via the
//! `serve` daemon), are optionally capped by a deterministic
//! stratified reservoir ([`sample`]) so memory stays bounded, and each
//! bounded batch is re-clustered incrementally through a warm
//! `AnalysisSession` over the shared artifact store ([`stream`]). Every
//! batch yields a [`drift::DriftRecord`]: ARI/AMI agreement with the
//! previous clustering plus cluster births, deaths, splits and merges
//! by segment-overlap matching.
//!
//! The crate also owns the trace-preparation path ([`prep`]) shared by
//! the offline CLI, the daemon and the streaming pipeline — one loader,
//! so every frontend derives the identical trace (and hence identical
//! reports) from the same capture bytes.
//!
//! Layering: `ingest` sits on `fieldclust` (and friends) and knows
//! nothing about the wire protocol; `serve` depends on `ingest` to
//! drive streaming jobs and re-exports [`prep`] for compatibility.

pub mod drift;
pub mod prep;
pub mod sample;
pub mod source;
pub mod stream;

pub use drift::{drift_between, ClusterSnapshot, DriftDelta, DriftRecord, DriftTracker};
pub use prep::{build_segmenter, peak_rss_bytes, prepare_trace, preprocess, PrepareOpts};
pub use sample::{SampleConfig, StratifiedReservoir};
pub use source::{FollowFile, MessageSource, SocketFeed};
// The FSM drift counters a `DriftRecord` optionally carries; re-exported
// so consumers of the record need not name the statemachine crate.
pub use statemachine::FsmDelta;
pub use stream::{StreamConfig, StreamSession};
