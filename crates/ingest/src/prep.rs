//! The one trace-preparation and segmenter-construction path shared by
//! the offline CLI, the `ftcd` daemon, and the streaming ingestion
//! pipeline.
//!
//! Byte-identical reports across frontends hinge on all of them running
//! the *same* loader: sniffed pcap/pcapng parsing under the same trace
//! name (`capture`), the same optional NBSS reassembly, the same
//! preprocessor order (de-duplicate, port filter, truncate). The CLI's
//! `load_trace` delegates here (via `serve`'s re-export), the daemon
//! calls the same functions on submitted bytes, and the streaming
//! [`StreamSession`](crate::stream::StreamSession) re-runs them per
//! batch — so there is exactly one place where the answer to "what
//! trace does this capture produce?" lives.

use segment::csp::Csp;
use segment::fixed::FixedChunks;
use segment::nemesys::Nemesys;
use segment::netzob::Netzob;
use segment::Segmenter;
use trace::reassembly::{reassemble, NbssFramer, ReassemblyStats};
use trace::{pcapng, Preprocessor, Trace};

/// Preprocessing options applied to a raw capture, mirroring the CLI's
/// `--port`, `--max` and `--reassemble` flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepareOpts {
    /// Keep only messages with this source or destination port.
    pub port: Option<u16>,
    /// Truncate to this many messages after preprocessing.
    pub max: Option<usize>,
    /// Reassemble TCP streams with NBSS framing before preprocessing.
    pub reassemble: bool,
}

/// Parses and preprocesses capture bytes exactly like the offline CLI:
/// format sniffing, trace name `capture`, optional reassembly, then
/// de-duplication plus the optional port filter and truncation. Returns
/// the prepared trace and the reassembly statistics when reassembly
/// ran (the CLI prints them; the daemon drops them).
///
/// # Errors
///
/// A human-readable message when the capture does not parse or no
/// messages survive preprocessing.
pub fn prepare_trace(
    pcap: &[u8],
    opts: &PrepareOpts,
) -> Result<(Trace, Option<ReassemblyStats>), String> {
    let mut raw = pcapng::read_any(pcap, "capture").map_err(|e| format!("parsing capture: {e}"))?;
    let mut stats = None;
    if opts.reassemble {
        let (rebuilt, s) = reassemble(&raw, &NbssFramer);
        stats = Some(s);
        raw = rebuilt;
    }
    let trace = preprocess(&raw, opts)?;
    Ok((trace, stats))
}

/// The preprocessing half of [`prepare_trace`], for callers that
/// already hold parsed (and, if requested, reassembled) messages — the
/// daemon keeps the raw trace around so appends can re-preprocess the
/// concatenation without re-parsing capture bytes, and the streaming
/// pipeline re-runs it over the admitted message set after every batch.
///
/// # Errors
///
/// A human-readable message when no messages survive preprocessing.
pub fn preprocess(raw: &Trace, opts: &PrepareOpts) -> Result<Trace, String> {
    let mut pre = Preprocessor::new().deduplicate(true);
    if let Some(p) = opts.port {
        pre = pre.filter_port(p);
    }
    if let Some(n) = opts.max {
        pre = pre.truncate(n);
    }
    let trace = pre.apply(raw);
    if trace.is_empty() {
        return Err("no messages left after preprocessing".to_string());
    }
    Ok(trace)
}

/// Instantiates a segmenter from its CLI spec string. Default
/// configurations only — the spec is part of analysis identity (it
/// feeds cache keys via the segmenter's `cache_fingerprint`), so every
/// frontend must construct identically.
///
/// # Errors
///
/// A usage message listing the valid specs.
pub fn build_segmenter(spec: &str) -> Result<Box<dyn Segmenter>, String> {
    match spec {
        "nemesys" => Ok(Box::new(Nemesys::default())),
        "netzob" => Ok(Box::new(Netzob::default())),
        "csp" => Ok(Box::new(Csp::default())),
        "fixed" => Ok(Box::new(FixedChunks::default())),
        other => Err(format!(
            "unknown segmenter `{other}` (nemesys|netzob|csp|fixed)"
        )),
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{corpus, Protocol};
    use trace::pcap;

    fn capture_bytes(n: usize, seed: u64) -> Vec<u8> {
        pcap::write_to_vec(&corpus::build_trace(Protocol::Ntp, n, seed)).expect("write capture")
    }

    #[test]
    fn prepare_matches_manual_pipeline() {
        let bytes = capture_bytes(30, 3);
        let (prepared, stats) = prepare_trace(&bytes, &PrepareOpts::default()).unwrap();
        let raw = pcapng::read_any(&bytes, "capture").unwrap();
        let expected = Preprocessor::new().deduplicate(true).apply(&raw);
        assert_eq!(prepared.len(), expected.len());
        assert_eq!(prepared.name(), "capture");
        assert!(stats.is_none());
    }

    #[test]
    fn truncation_applies_after_dedup() {
        let bytes = capture_bytes(30, 4);
        let opts = PrepareOpts {
            max: Some(5),
            ..PrepareOpts::default()
        };
        let (prepared, _) = prepare_trace(&bytes, &opts).unwrap();
        assert_eq!(prepared.len(), 5);
    }

    #[test]
    fn empty_result_is_an_error() {
        let bytes = capture_bytes(10, 5);
        let opts = PrepareOpts {
            port: Some(1), // nothing uses port 1
            ..PrepareOpts::default()
        };
        assert!(prepare_trace(&bytes, &opts).is_err());
        assert!(prepare_trace(b"not a capture", &PrepareOpts::default()).is_err());
    }

    #[test]
    fn preprocess_matches_prepare_and_rejects_empty() {
        let bytes = capture_bytes(20, 6);
        let raw = pcapng::read_any(&bytes, "capture").unwrap();
        let opts = PrepareOpts::default();
        let direct = preprocess(&raw, &opts).unwrap();
        let (via_bytes, _) = prepare_trace(&bytes, &opts).unwrap();
        assert_eq!(direct.len(), via_bytes.len());
        let filtered = PrepareOpts {
            port: Some(1),
            ..PrepareOpts::default()
        };
        assert!(preprocess(&raw, &filtered).is_err());
    }

    #[test]
    fn segmenter_specs() {
        for spec in ["nemesys", "netzob", "csp", "fixed"] {
            assert_eq!(build_segmenter(spec).unwrap().name(), spec);
        }
        assert!(build_segmenter("magic").is_err());
    }

    #[test]
    fn rss_is_positive_on_linux() {
        assert!(peak_rss_bytes() > 0);
    }
}
