//! Deterministic stratified reservoir sampling for bounded-memory
//! streaming ingestion.
//!
//! A live capture can outgrow any analysis budget, so the streaming
//! pipeline admits at most `max` messages per analysis. A plain
//! reservoir would keep a uniform sample but let rare message lengths
//! vanish — and length is the strongest prior on message *type* in a
//! binary protocol — so the reservoir stratifies by payload-length
//! bucket (log₂ of the length) and allocates the cap across strata
//! proportionally, with every non-empty stratum guaranteed one slot
//! while slots last.
//!
//! Determinism matters more than randomness here: the acceptance
//! criteria pin that the same capture yields the same reservoir no
//! matter how its messages were interleaved across batches. A classic
//! Vitter reservoir is order-*dependent*, so instead each message gets
//! a priority from a seeded hash of its content, and each stratum keeps
//! its bottom-`k` by that priority. Priorities depend only on (seed,
//! message content), hence the kept *set* is invariant under input
//! permutation — the property `reservoir_is_order_invariant` pins.

use trace::Message;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Sampling policy for a streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleConfig {
    /// Hard cap on admitted messages; 0 disables sampling entirely
    /// (every message is kept and the reservoir is a passthrough).
    pub max: usize,
    /// Seed mixed into every priority hash. Two reservoirs with the
    /// same seed and the same observed multiset are identical.
    pub seed: u64,
}

/// splitmix64 finalizer: spreads the FNV hash so bottom-k selection is
/// unbiased across strata even for near-identical payloads.
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Seeded FNV-64 priority of a message: content-only, so it is the same
/// no matter when or in which batch the message arrived.
fn priority(seed: u64, msg: &Message) -> u64 {
    let mut h = FNV_OFFSET ^ avalanche(seed);
    for &b in msg.payload().as_slice() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    // Fold the timestamp in *after* the payload so duplicate payloads
    // (distinct observations) still get distinct priorities.
    for b in msg.timestamp_micros().to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    avalanche(h)
}

/// Stratum id: log₂ bucket of the payload length (0, 1, 2–3, 4–7, …).
/// At most 65 strata exist, which bounds reservoir memory at
/// `max × 65` candidates regardless of stream size.
fn stratum_of(msg: &Message) -> usize {
    let len = msg.payload().len();
    if len == 0 {
        0
    } else {
        (usize::BITS - len.leading_zeros()) as usize
    }
}

#[derive(Debug)]
struct Stratum {
    /// Stratum id (log₂ length bucket) — kept for quota ordering.
    id: usize,
    /// Messages seen in this stratum over the whole stream.
    seen: u64,
    /// Bottom-`max` candidates by (priority, timestamp, payload):
    /// enough to answer any quota ≤ `max` exactly.
    kept: Vec<(u64, Message)>,
}

impl Stratum {
    /// Total order on candidates that depends only on message content,
    /// never on arrival order.
    fn key(p: u64, m: &Message) -> (u64, u64, Vec<u8>) {
        (p, m.timestamp_micros(), m.payload().to_vec())
    }

    fn offer(&mut self, cap: usize, prio: u64, msg: Message) {
        self.seen += 1;
        self.kept.push((prio, msg));
        if self.kept.len() > cap {
            // Evict the max-key candidate; cap is small enough that a
            // linear scan beats maintaining a heap with owned payloads.
            let worst = self
                .kept
                .iter()
                .enumerate()
                .max_by_key(|(_, (p, m))| Self::key(*p, m))
                .map(|(i, _)| i)
                .expect("non-empty kept");
            self.kept.swap_remove(worst);
        }
    }
}

/// A deterministic, order-invariant stratified reservoir.
///
/// Feed every streamed message through [`offer`](Self::offer); read the
/// current sample back with [`sampled`](Self::sampled). With
/// `max == 0` the reservoir keeps everything.
#[derive(Debug)]
pub struct StratifiedReservoir {
    config: SampleConfig,
    strata: Vec<Stratum>,
    seen: u64,
}

impl StratifiedReservoir {
    /// Creates an empty reservoir under `config`.
    pub fn new(config: SampleConfig) -> Self {
        StratifiedReservoir {
            config,
            strata: Vec::new(),
            seen: 0,
        }
    }

    /// Whether a cap is in force (`max > 0`).
    pub fn is_sampling(&self) -> bool {
        self.config.max > 0
    }

    /// Messages observed over the lifetime of the reservoir.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Observes one message.
    pub fn offer(&mut self, msg: Message) {
        self.seen += 1;
        let sid = stratum_of(&msg);
        let cap = if self.config.max == 0 {
            usize::MAX
        } else {
            self.config.max
        };
        let prio = priority(self.config.seed, &msg);
        let stratum = match self.strata.iter_mut().find(|s| s.id == sid) {
            Some(s) => s,
            None => {
                self.strata.push(Stratum {
                    id: sid,
                    seen: 0,
                    kept: Vec::new(),
                });
                self.strata.sort_by_key(|s| s.id);
                self.strata
                    .iter_mut()
                    .find(|s| s.id == sid)
                    .expect("just inserted")
            }
        };
        stratum.offer(cap, prio, msg);
    }

    /// Per-stratum quotas for the current population: everything when
    /// under the cap; otherwise largest-remainder apportionment of the
    /// cap by stratum population, then one guaranteed slot for every
    /// non-empty stratum while the cap allows (taken from the largest
    /// quota). Quotas depend only on per-stratum counts, so they are
    /// invariant under input permutation.
    fn quotas(&self) -> Vec<(usize, usize)> {
        let total: u64 = self.strata.iter().map(|s| s.seen).sum();
        let max = self.config.max as u64;
        if max == 0 || total <= max {
            return self
                .strata
                .iter()
                .map(|s| (s.id, s.seen as usize))
                .collect();
        }
        let mut quota: Vec<u64> = Vec::with_capacity(self.strata.len());
        let mut rem: Vec<(usize, u64)> = Vec::with_capacity(self.strata.len());
        for (i, s) in self.strata.iter().enumerate() {
            let exact = s.seen * max; // numerator of seen/total × max
            quota.push(exact / total);
            rem.push((i, exact % total));
        }
        let assigned: u64 = quota.iter().sum();
        // Remainder ties broken by smaller stratum id: fully determined
        // by counts, never by arrival order. The floor quotas leave
        // `max - assigned` slots, one per largest remainder.
        rem.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(self.strata[a.0].id.cmp(&self.strata[b.0].id))
        });
        for (i, _) in rem.into_iter().take((max - assigned) as usize) {
            quota[i] += 1;
        }
        // Stratification guarantee: rare length buckets keep one slot,
        // funded by the fattest bucket, as long as strata fit the cap.
        if max >= self.strata.len() as u64 {
            for i in 0..quota.len() {
                if quota[i] == 0 {
                    let donor = (0..quota.len())
                        .max_by_key(|&j| (quota[j], std::cmp::Reverse(self.strata[j].id)))
                        .expect("strata non-empty here");
                    if quota[donor] > 1 {
                        quota[donor] -= 1;
                        quota[i] = 1;
                    }
                }
            }
        }
        self.strata
            .iter()
            .zip(quota)
            .map(|(s, q)| (s.id, q as usize))
            .collect()
    }

    /// The current sample: each stratum's bottom-quota candidates by
    /// priority, concatenated in ascending (stratum, key) order. The
    /// returned multiset — and its order — depend only on (seed,
    /// observed message multiset).
    pub fn sampled(&self) -> Vec<Message> {
        let quotas = self.quotas();
        let mut out = Vec::new();
        for (sid, quota) in quotas {
            let stratum = self
                .strata
                .iter()
                .find(|s| s.id == sid)
                .expect("quota for existing stratum");
            let mut kept: Vec<&(u64, Message)> = stratum.kept.iter().collect();
            kept.sort_by_key(|(p, m)| Stratum::key(*p, m));
            out.extend(kept.into_iter().take(quota).map(|(_, m)| m.clone()));
        }
        out
    }

    /// Number of messages the current sample would contain.
    pub fn sampled_len(&self) -> usize {
        self.quotas().iter().map(|(_, q)| *q).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trace::Message;

    fn msg(len: usize, fill: u8, ts: u64) -> Message {
        Message::builder(Bytes::from(vec![fill; len]))
            .timestamp_micros(ts)
            .build()
    }

    fn corpus() -> Vec<Message> {
        let mut v = Vec::new();
        for i in 0..40u64 {
            v.push(msg(4, i as u8, i));
            v.push(msg(16, i as u8, 1000 + i));
            v.push(msg(64, i as u8, 2000 + i));
        }
        for i in 0..3u64 {
            v.push(msg(300, 0xEE, 3000 + i)); // rare long stratum
        }
        v
    }

    fn digest(msgs: &[Message]) -> Vec<(u64, usize, u8)> {
        msgs.iter()
            .map(|m| {
                (
                    m.timestamp_micros(),
                    m.payload().len(),
                    m.payload().as_slice().first().copied().unwrap_or(0),
                )
            })
            .collect()
    }

    #[test]
    fn passthrough_without_cap() {
        let mut r = StratifiedReservoir::new(SampleConfig::default());
        for m in corpus() {
            r.offer(m);
        }
        assert!(!r.is_sampling());
        assert_eq!(r.seen(), 123);
        assert_eq!(r.sampled().len(), 123);
    }

    #[test]
    fn cap_is_respected_and_rare_strata_survive() {
        let mut r = StratifiedReservoir::new(SampleConfig { max: 24, seed: 7 });
        for m in corpus() {
            r.offer(m);
        }
        let sample = r.sampled();
        assert_eq!(sample.len(), 24);
        assert_eq!(r.sampled_len(), 24);
        // The 3-message long stratum must keep at least its guaranteed
        // slot despite being ~2% of the population.
        assert!(sample.iter().any(|m| m.payload().len() == 300));
    }

    #[test]
    fn reservoir_is_order_invariant() {
        let base = corpus();
        let mut forward = StratifiedReservoir::new(SampleConfig { max: 20, seed: 42 });
        for m in base.clone() {
            forward.offer(m);
        }
        // A deterministic "shuffle": reversed, then odd indices first.
        let mut permuted: Vec<Message> = base.iter().rev().cloned().collect();
        let odds: Vec<Message> = permuted.iter().skip(1).step_by(2).cloned().collect();
        let evens: Vec<Message> = permuted.iter().step_by(2).cloned().collect();
        permuted = odds.into_iter().chain(evens).collect();
        let mut shuffled = StratifiedReservoir::new(SampleConfig { max: 20, seed: 42 });
        for m in permuted {
            shuffled.offer(m);
        }
        assert_eq!(digest(&forward.sampled()), digest(&shuffled.sampled()));
    }

    #[test]
    fn seed_changes_the_sample() {
        let mut a = StratifiedReservoir::new(SampleConfig { max: 20, seed: 1 });
        let mut b = StratifiedReservoir::new(SampleConfig { max: 20, seed: 2 });
        for m in corpus() {
            a.offer(m.clone());
            b.offer(m);
        }
        assert_ne!(digest(&a.sampled()), digest(&b.sampled()));
        // Same seed twice: identical.
        let mut c = StratifiedReservoir::new(SampleConfig { max: 20, seed: 1 });
        for m in corpus() {
            c.offer(m);
        }
        assert_eq!(digest(&a.sampled()), digest(&c.sampled()));
    }

    #[test]
    fn quotas_are_proportional_under_pressure() {
        let mut r = StratifiedReservoir::new(SampleConfig { max: 10, seed: 3 });
        // 90 short + 10 long: proportional split of 10 slots is 9/1.
        for i in 0..90u64 {
            r.offer(msg(8, i as u8, i));
        }
        for i in 0..10u64 {
            r.offer(msg(128, i as u8, 500 + i));
        }
        let sample = r.sampled();
        let short = sample.iter().filter(|m| m.payload().len() == 8).count();
        let long = sample.iter().filter(|m| m.payload().len() == 128).count();
        assert_eq!((short, long), (9, 1));
    }

    #[test]
    fn tiny_cap_gives_each_stratum_at_most_one() {
        let mut r = StratifiedReservoir::new(SampleConfig { max: 2, seed: 9 });
        for m in corpus() {
            r.offer(m);
        }
        // Four non-empty strata but only two slots: exactly two kept,
        // deterministic which (ascending stratum id gets the floor).
        assert_eq!(r.sampled().len(), 2);
    }
}
