//! Capture sources for continuous ingestion.
//!
//! Two ways for messages to arrive:
//!
//! - [`FollowFile`] tails a growing capture file (pcap or pcapng) the
//!   way `tail -f` tails a log: each poll re-parses the file and
//!   delivers only the messages past the last watermark. A file caught
//!   mid-write simply parses short or not at all and delivers nothing —
//!   the next poll sees the completed write. Writers who cannot append
//!   atomically should write a new version beside the file and `mv` it
//!   into place.
//! - [`SocketFeed`] accepts loopback TCP connections carrying raw
//!   message payloads as `u32`-LE length-prefixed frames, for feeding
//!   live traffic without touching disk. Each frame becomes one UDP
//!   message with a monotonically increasing synthetic timestamp, so
//!   the resulting trace is deterministic in arrival order.
//!
//! Both implement [`MessageSource`]; `fieldclust follow` picks one from
//! its argument and the batching loop is source-agnostic.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

use bytes::Bytes;
use trace::{pcapng, Message};

/// Largest accepted socket frame: a single message payload, not a
/// capture, so 16 MiB is generous and bounds per-connection buffers.
pub const MAX_SOCKET_FRAME: usize = 16 << 20;

/// A pollable, non-blocking supplier of captured messages.
pub trait MessageSource {
    /// Returns messages that arrived since the previous poll (possibly
    /// none). Transient conditions (partial file write, no new socket
    /// data) yield an empty batch, not an error.
    ///
    /// # Errors
    ///
    /// A human-readable message for unrecoverable conditions (file
    /// deleted, listener broken).
    fn poll(&mut self) -> Result<Vec<Message>, String>;

    /// Short human-readable description of the source for log lines.
    fn describe(&self) -> String;
}

/// Follow mode over a growing capture file.
pub struct FollowFile {
    path: PathBuf,
    /// Messages already delivered; the watermark into the re-parse.
    delivered: usize,
    /// Whether the file has parsed successfully at least once.
    parsed_once: bool,
}

impl FollowFile {
    /// Tails `path`. The file may not exist yet; polls report nothing
    /// until it appears and parses.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FollowFile {
            path: path.into(),
            delivered: 0,
            parsed_once: false,
        }
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

impl MessageSource for FollowFile {
    fn poll(&mut self) -> Result<Vec<Message>, String> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            // Not-yet-created (or mid-rename) files are a normal
            // streaming condition; anything after a successful parse
            // disappearing is not.
            Err(_) if !self.parsed_once => return Ok(Vec::new()),
            Err(e) => return Err(format!("reading {}: {e}", self.path.display())),
        };
        let Ok(trace) = pcapng::read_any(&bytes, "capture") else {
            // Torn write: deliver nothing, try again next poll.
            return Ok(Vec::new());
        };
        self.parsed_once = true;
        let messages = trace.into_messages();
        if messages.len() <= self.delivered {
            return Ok(Vec::new());
        }
        let fresh = messages[self.delivered..].to_vec();
        self.delivered = messages.len();
        Ok(fresh)
    }

    fn describe(&self) -> String {
        format!("follow:{}", self.path.display())
    }
}

/// Loopback socket feed of length-framed raw message payloads.
pub struct SocketFeed {
    listener: TcpListener,
    addr: SocketAddr,
    conns: Vec<Conn>,
    /// Synthetic microsecond timestamp for the next message.
    next_ts: u64,
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    closed: bool,
}

impl SocketFeed {
    /// Binds a non-blocking listener on `addr` (e.g. `127.0.0.1:0` for
    /// an ephemeral port — read it back via [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// The bind error, stringified.
    pub fn bind(addr: &str) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("setting non-blocking: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        Ok(SocketFeed {
            listener,
            addr,
            conns: Vec::new(),
            next_ts: 0,
        })
    }

    /// The bound address (port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Parses complete frames out of a connection buffer into
    /// messages; leaves any trailing partial frame buffered.
    fn drain_frames(&mut self, idx: usize) -> Result<Vec<Message>, String> {
        let mut out = Vec::new();
        loop {
            let conn = &mut self.conns[idx];
            if conn.buf.len() < 4 {
                return Ok(out);
            }
            let len = u32::from_le_bytes(conn.buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_SOCKET_FRAME {
                return Err(format!("socket frame of {len} bytes exceeds cap"));
            }
            if conn.buf.len() < 4 + len {
                return Ok(out);
            }
            let payload: Vec<u8> = conn.buf[4..4 + len].to_vec();
            conn.buf.drain(..4 + len);
            let ts = self.next_ts;
            self.next_ts += 1;
            out.push(
                Message::builder(Bytes::from(payload))
                    .timestamp_micros(ts)
                    .build(),
            );
        }
    }
}

impl MessageSource for SocketFeed {
    fn poll(&mut self) -> Result<Vec<Message>, String> {
        // Admit any pending connections.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        self.conns.push(Conn {
                            stream,
                            buf: Vec::new(),
                            closed: false,
                        });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(format!("accepting connection: {e}")),
            }
        }
        // Pull whatever bytes are ready on each connection.
        let mut scratch = [0u8; 64 * 1024];
        for conn in &mut self.conns {
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.closed = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.buf.len() + n > MAX_SOCKET_FRAME + 4 {
                            conn.closed = true; // runaway frame; drop the peer
                            break;
                        }
                        conn.buf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
        }
        let mut out = Vec::new();
        for i in 0..self.conns.len() {
            out.extend(self.drain_frames(i)?);
        }
        self.conns.retain(|c| !c.closed);
        Ok(out)
    }

    fn describe(&self) -> String {
        format!("listen:{}", self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{corpus, Protocol};
    use std::io::Write;
    use trace::pcap;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ingest-src-{}-{tag}", std::process::id()))
    }

    #[test]
    fn follow_file_delivers_increments() {
        let path = temp_path("grow.pcap");
        let mut src = FollowFile::new(&path);
        assert!(src.poll().unwrap().is_empty()); // absent file: quiet

        let t40 = corpus::build_trace(Protocol::Ntp, 40, 9);
        std::fs::write(&path, pcap::write_to_vec(&t40).unwrap()).unwrap();
        assert_eq!(src.poll().unwrap().len(), 40);
        assert!(src.poll().unwrap().is_empty()); // no growth: quiet

        let t100 = corpus::build_trace(Protocol::Ntp, 100, 9);
        std::fs::write(&path, pcap::write_to_vec(&t100).unwrap()).unwrap();
        let fresh = src.poll().unwrap();
        assert_eq!(fresh.len(), 60);
        assert_eq!(src.delivered(), 100);
        // The generator is sequentially seeded, so the tail messages
        // match the big trace's tail exactly.
        assert_eq!(
            fresh[0].payload().as_slice(),
            t100.messages()[40].payload().as_slice()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn follow_file_tolerates_torn_writes() {
        let path = temp_path("torn.pcap");
        std::fs::write(&path, b"garbage that is not a capture").unwrap();
        let mut src = FollowFile::new(&path);
        assert!(src.poll().unwrap().is_empty());
        let t = corpus::build_trace(Protocol::Ntp, 10, 2);
        std::fs::write(&path, pcap::write_to_vec(&t).unwrap()).unwrap();
        assert_eq!(src.poll().unwrap().len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn socket_feed_frames_messages() {
        let mut feed = SocketFeed::bind("127.0.0.1:0").unwrap();
        let addr = feed.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        for payload in [&b"hello"[..], &b"world!"[..]] {
            client
                .write_all(&(payload.len() as u32).to_le_bytes())
                .unwrap();
            client.write_all(payload).unwrap();
        }
        client.flush().unwrap();
        // Nonblocking accept/read may need a couple of polls.
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(feed.poll().unwrap());
            if got.len() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload().as_slice(), b"hello");
        assert_eq!(got[1].payload().as_slice(), b"world!");
        assert_eq!(got[0].timestamp_micros(), 0);
        assert_eq!(got[1].timestamp_micros(), 1);

        // A partial frame stays buffered until completed.
        client.write_all(&5u32.to_le_bytes()).unwrap();
        client.write_all(b"ab").unwrap();
        client.flush().unwrap();
        for _ in 0..20 {
            assert!(feed.poll().unwrap().is_empty());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        client.write_all(b"cde").unwrap();
        client.flush().unwrap();
        let mut tail = Vec::new();
        for _ in 0..100 {
            tail.extend(feed.poll().unwrap());
            if !tail.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].payload().as_slice(), b"abcde");
    }
}
