//! The streaming analysis session: bounded batches of messages in,
//! drift records out.
//!
//! A [`StreamSession`] accumulates messages pushed from any
//! [`MessageSource`](crate::source::MessageSource) (or the wire), and
//! on every [`flush`](StreamSession::flush) re-clusters the *entire*
//! admitted set through a fresh staged `AnalysisSession` over the
//! shared [`ArtifactStore`]. That mirrors the daemon's append
//! semantics exactly: preprocessing (global de-duplication) must see
//! the full concatenation, and warmth comes from the store's
//! chained-prefix-digest keys — the matrix grows by tile-append and
//! the vptree forest by graft, never a cold rebuild. With sampling
//! off, the final batch's session state is therefore byte-identical to
//! a one-shot analysis of the merged capture, which is what makes
//! `fieldclust follow` equivalent to `fieldclust analyze` (pinned by
//! `tests/stream_equivalence.rs` and the check.sh streaming smoke).
//!
//! With sampling on, the admitted set is the deterministic stratified
//! reservoir of everything seen (see [`crate::sample`]), so memory
//! stays bounded no matter how long the stream runs.

use std::time::Instant;

use fieldclust::report::standard_report;
use fieldclust::session::AnalysisSession;
use fieldclust::{ArtifactStore, FieldTypeClusterer, NeighborBackend};
use trace::{Message, Trace};

use crate::drift::{ClusterSnapshot, DriftRecord, DriftTracker};
use crate::prep::{build_segmenter, preprocess, PrepareOpts};
use crate::sample::{SampleConfig, StratifiedReservoir};

/// Configuration of a streaming session.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Preprocessing applied to every batch's concatenated trace.
    pub prepare: PrepareOpts,
    /// Segmenter spec (`nemesys`|`netzob`|`csp`|`fixed`).
    pub segmenter: String,
    /// The pipeline configuration every batch re-clusters under.
    pub clusterer: FieldTypeClusterer,
    /// Sampling policy; `max == 0` admits everything.
    pub sample: SampleConfig,
    /// Infer a protocol state machine per batch and report its drift
    /// (states/transitions born and died) alongside ARI/AMI. Costs one
    /// msgtype + FSM inference per flush, so it is opt-in.
    pub fsm: bool,
}

/// A continuous analysis over an unbounded message stream.
pub struct StreamSession {
    config: StreamConfig,
    store: Option<ArtifactStore>,
    /// Admitted messages in arrival order (sampling off).
    kept: Vec<Message>,
    /// Bounded-memory sample of everything seen (sampling on).
    reservoir: StratifiedReservoir,
    /// Messages pushed since the last flush.
    pending: usize,
    tracker: DriftTracker,
    fsm_tracker: statemachine::FsmTracker,
    records: Vec<DriftRecord>,
    /// The last batch's warm session, kept for the final report.
    last: Option<AnalysisSession<'static>>,
}

impl StreamSession {
    /// Creates an idle session. `store` is the shared artifact store
    /// that carries warmth between batches; without one every batch is
    /// a cold run (correct, just slower).
    pub fn new(config: StreamConfig, store: Option<ArtifactStore>) -> Self {
        let reservoir = StratifiedReservoir::new(config.sample);
        StreamSession {
            config,
            store,
            kept: Vec::new(),
            reservoir,
            pending: 0,
            tracker: DriftTracker::new(),
            fsm_tracker: statemachine::FsmTracker::new(),
            records: Vec::new(),
            last: None,
        }
    }

    /// Whether a sampling cap is in force.
    pub fn is_sampling(&self) -> bool {
        self.config.sample.max > 0
    }

    /// Messages pushed since the last flush.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Messages observed over the life of the stream.
    pub fn seen(&self) -> u64 {
        if self.is_sampling() {
            self.reservoir.seen()
        } else {
            self.kept.len() as u64
        }
    }

    /// Drift records of every flushed batch, oldest first.
    pub fn records(&self) -> &[DriftRecord] {
        &self.records
    }

    /// Number of batches analyzed so far.
    pub fn batches(&self) -> u64 {
        self.records.len() as u64
    }

    /// Cumulative artifact-store statistics, when a store is attached.
    pub fn cache_stats(&self) -> Option<store::StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Accepts newly arrived messages into the pending batch.
    pub fn push(&mut self, messages: Vec<Message>) {
        self.pending += messages.len();
        if self.is_sampling() {
            for m in messages {
                self.reservoir.offer(m);
            }
        } else {
            self.kept.extend(messages);
        }
    }

    /// Re-clusters the admitted set and appends a drift record.
    /// Returns `None` without analyzing when nothing new arrived since
    /// the previous flush, or when nothing has arrived at all.
    ///
    /// # Errors
    ///
    /// A human-readable message when preprocessing or any pipeline
    /// stage fails; the session stays usable (the next flush retries
    /// over the then-current admitted set).
    pub fn flush(&mut self) -> Result<Option<DriftRecord>, String> {
        if self.pending == 0 {
            return Ok(None);
        }
        let admitted = if self.is_sampling() {
            self.reservoir.sampled()
        } else {
            self.kept.clone()
        };
        if admitted.is_empty() {
            return Ok(None);
        }
        let batch_start = Instant::now();
        let mut walls: Vec<(String, u64)> = Vec::new();
        let mut timed = |name: &str, start: Instant| {
            walls.push((name.to_string(), start.elapsed().as_micros() as u64));
        };

        let n_admitted = admitted.len() as u64;
        let t = Instant::now();
        let raw = Trace::new("capture", admitted);
        let prepared = preprocess(&raw, &self.config.prepare)?;
        timed("preprocess", t);

        let mut session = AnalysisSession::from_owned(prepared, self.config.clusterer.clone());
        if let Some(store) = &self.store {
            session.set_store(store.clone());
        }

        let err = |e: fieldclust::PipelineError| e.to_string();
        let t = Instant::now();
        let segmenter = build_segmenter(&self.config.segmenter)?;
        session
            .segment_with(segmenter.as_ref())
            .map_err(|e| format!("segmentation failed: {e}"))?;
        timed("segment", t);
        let t = Instant::now();
        session.store().map_err(err)?;
        timed("dedup", t);
        // Same bucket split as the daemon: under the vptree and
        // stratified backends no pairwise matrix exists, so that wall
        // stays empty and the build cost lands under "neighbors".
        let backend = session.resolved_neighbor_backend().map_err(err)?;
        if !matches!(
            backend,
            NeighborBackend::Vptree | NeighborBackend::Stratified
        ) {
            let t = Instant::now();
            session.matrix().map_err(err)?;
            timed("matrix", t);
        }
        let t = Instant::now();
        session.ensure_neighbors().map_err(err)?;
        timed("neighbors", t);
        let t = Instant::now();
        session.autoconf().map_err(err)?;
        timed("autoconf", t);
        let t = Instant::now();
        let result = session.finish().map_err(err)?;
        timed("cluster", t);

        // Optional state-machine drift: the machine rides on the
        // msgtype labels of the batch just clustered, so it is inferred
        // here (warm — segmentation and clustering are staged) and
        // compared by access-string signature against the previous
        // batch's machine.
        let fsm = if self.config.fsm {
            let t = Instant::now();
            let machine = session
                .state_machine(&fieldclust::StateMachineConfig::default())
                .map_err(|e| format!("state machine inference failed: {e}"))?;
            timed("fsm", t);
            Some(self.fsm_tracker.observe(&machine))
        } else {
            None
        };

        let delta = self.tracker.observe(ClusterSnapshot::from_result(&result));
        let stats = session.cache_stats();
        let record = DriftRecord {
            batch: self.records.len() as u64,
            messages: n_admitted,
            seen: self.seen(),
            unique_segments: result.store.segments.len() as u64,
            clusters: u64::from(result.clustering.n_clusters()),
            noise: result.clustering.noise().len() as u64,
            delta,
            stage_walls_us: walls,
            wall_us: batch_start.elapsed().as_micros() as u64,
            store_hits: stats.as_ref().map_or(0, |s| s.hits),
            store_misses: stats.as_ref().map_or(0, |s| s.misses),
            fsm,
        };
        self.last = Some(session);
        self.records.push(record.clone());
        self.pending = 0;
        Ok(Some(record))
    }

    /// Renders the canonical report from the last flushed batch — the
    /// same `standard_report` path the offline CLI and the daemon use,
    /// so with sampling off it is byte-identical to a one-shot
    /// `analyze` of the merged capture.
    ///
    /// # Errors
    ///
    /// When no batch has been flushed yet, or the report stage fails.
    pub fn final_report(&mut self) -> Result<String, String> {
        let session = self
            .last
            .as_mut()
            .ok_or_else(|| "no batch analyzed yet".to_string())?;
        // Clone the trace out so the report borrows don't fight the
        // session's `&mut` receiver methods.
        let trace = session.trace().clone();
        standard_report(&trace, session).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{corpus, Protocol};

    fn config(sample: SampleConfig) -> StreamConfig {
        StreamConfig {
            prepare: PrepareOpts::default(),
            segmenter: "nemesys".to_string(),
            clusterer: FieldTypeClusterer::default(),
            sample,
            fsm: false,
        }
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let mut s = StreamSession::new(config(SampleConfig::default()), None);
        assert!(s.flush().unwrap().is_none());
        assert_eq!(s.batches(), 0);
    }

    #[test]
    fn batches_accumulate_and_record_drift() {
        let trace = corpus::build_trace(Protocol::Ntp, 60, 5);
        let msgs = trace.messages().to_vec();
        let mut s = StreamSession::new(config(SampleConfig::default()), None);
        s.push(msgs[..30].to_vec());
        let r0 = s.flush().unwrap().expect("first batch");
        assert_eq!(r0.batch, 0);
        assert_eq!(r0.messages, 30);
        assert_eq!(r0.delta.ari, 1.0);
        assert!(r0.delta.births >= 1);
        assert!(r0.stage_walls_us.iter().any(|(n, _)| n == "segment"));
        assert!(r0.stage_walls_us.iter().any(|(n, _)| n == "cluster"));
        assert!(r0.fsm.is_none(), "FSM drift is opt-in");

        // No new messages: flush declines to re-analyze.
        assert!(s.flush().unwrap().is_none());

        s.push(msgs[30..].to_vec());
        let r1 = s.flush().unwrap().expect("second batch");
        assert_eq!(r1.batch, 1);
        assert_eq!(r1.messages, 60);
        assert_eq!(r1.seen, 60);
        assert_eq!(s.batches(), 2);
        assert!(s.final_report().unwrap().contains("Field type analysis"));
    }

    #[test]
    fn fsm_opt_in_reports_state_machine_drift() {
        let trace = corpus::build_trace(Protocol::Ntp, 60, 5);
        let msgs = trace.messages().to_vec();
        let mut cfg = config(SampleConfig::default());
        cfg.fsm = true;
        let mut s = StreamSession::new(cfg, None);
        s.push(msgs[..30].to_vec());
        let r0 = s.flush().unwrap().expect("first batch");
        let d0 = r0.fsm.expect("fsm delta present when opted in");
        assert!(d0.states >= 1);
        assert_eq!(d0.states_born, d0.states, "first machine: all born");
        assert_eq!(d0.states_died, 0);
        assert!(r0.stage_walls_us.iter().any(|(n, _)| n == "fsm"));
        assert!(r0.to_json_line().contains("\"fsm\":{"));

        s.push(msgs[30..].to_vec());
        let r1 = s.flush().unwrap().expect("second batch");
        let d1 = r1.fsm.expect("fsm delta on every opted-in batch");
        assert!(d1.states >= 1);
    }

    #[test]
    fn sampling_bounds_the_admitted_set() {
        let trace = corpus::build_trace(Protocol::Ntp, 120, 6);
        let mut s = StreamSession::new(config(SampleConfig { max: 40, seed: 13 }), None);
        s.push(trace.messages().to_vec());
        let r = s.flush().unwrap().expect("batch");
        assert!(r.messages <= 40);
        assert_eq!(r.seen, 120);
        assert!(s.is_sampling());
    }
}
