//! The streaming pipeline's core contract, end to end:
//!
//! * **Sampling off**: a `follow`-style run over N batches converges to
//!   the exact bytes a one-shot analysis of the merged capture renders,
//!   for every neighbor backend — warm incremental re-clustering is an
//!   optimization, never a result change.
//! * **Warmth**: with a shared artifact store, later batches reuse the
//!   earlier batches' artifacts (store hit counters strictly increase),
//!   so batches are tile-appends and grafts, not cold rebuilds.
//! * **Sampling on**: the admitted set is deterministic under a fixed
//!   seed, invariant to arrival order, and the whole pipeline stays
//!   inside a declared memory budget (checked against peak RSS).

use fieldclust::report::standard_report;
use fieldclust::session::AnalysisSession;
use fieldclust::{ArtifactStore, FieldTypeClusterer, NeighborBackend};
use ingest::{peak_rss_bytes, preprocess, PrepareOpts, SampleConfig, StreamConfig, StreamSession};
use protocols::{corpus, Protocol};
use trace::{Message, Trace};

fn clusterer(backend: NeighborBackend) -> FieldTypeClusterer {
    FieldTypeClusterer {
        neighbor_backend: backend,
        ..FieldTypeClusterer::default()
    }
}

fn stream_config(backend: NeighborBackend, sample: SampleConfig) -> StreamConfig {
    StreamConfig {
        prepare: PrepareOpts::default(),
        segmenter: "nemesys".to_string(),
        clusterer: clusterer(backend),
        sample,
        fsm: false,
    }
}

/// The one-shot reference: what `fieldclust analyze --report` renders
/// for these messages, via the shared prepare → segment → report path,
/// deliberately **cold** (no artifact store) so the comparison also
/// proves warmth never leaks into results.
fn one_shot_report(messages: &[Message], backend: NeighborBackend) -> String {
    let raw = Trace::new("capture", messages.to_vec());
    let prepared = preprocess(&raw, &PrepareOpts::default()).expect("preprocess");
    let mut session = AnalysisSession::from_owned(prepared, clusterer(backend));
    let seg = ingest::build_segmenter("nemesys").expect("segmenter");
    session.segment_with(seg.as_ref()).expect("segment");
    let trace = session.trace().clone();
    standard_report(&trace, &mut session).expect("report")
}

fn temp_store(tag: &str) -> (std::path::PathBuf, ArtifactStore) {
    let dir = std::env::temp_dir().join(format!("ingest-equiv-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("open store");
    (dir, store)
}

#[test]
fn follow_converges_to_one_shot_for_every_backend() {
    let trace = corpus::build_trace(Protocol::Ntp, 60, 41);
    let msgs = trace.messages().to_vec();
    for backend in [
        NeighborBackend::Matrix,
        NeighborBackend::Tiled,
        NeighborBackend::Vptree,
    ] {
        let expected = one_shot_report(&msgs, backend);
        let (dir, store) = temp_store(&format!("backend-{backend}"));
        let mut s =
            StreamSession::new(stream_config(backend, SampleConfig::default()), Some(store));
        for slice in msgs.chunks(20) {
            s.push(slice.to_vec());
            s.flush()
                .expect("flush")
                .expect("every slice grows the stream");
        }
        assert_eq!(s.batches(), 3, "{backend}: three batches analyzed");
        assert_eq!(
            s.final_report().expect("final report"),
            expected,
            "{backend}: streamed batches must converge to the one-shot report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn warm_batches_reuse_the_store_instead_of_rebuilding() {
    let trace = corpus::build_trace(Protocol::Ntp, 90, 42);
    let msgs = trace.messages().to_vec();
    // Matrix reuses via monolithic prefix extension; Tiled via re-read
    // complete tiles — 16-row tiles so complete tiles exist at this
    // scale. (Vptree's reuse unit is a 1024-value chunk tree, coarser
    // than any small-stream test; its byte-identity is pinned above.)
    let tiled_small = FieldTypeClusterer {
        neighbor_backend: NeighborBackend::Tiled,
        tile_rows: Some(16),
        ..FieldTypeClusterer::default()
    };
    for (tag, clusterer) in [
        ("matrix", clusterer(NeighborBackend::Matrix)),
        ("tiled-16", tiled_small),
    ] {
        let (dir, store) = temp_store(&format!("warmth-{tag}"));
        let mut s = StreamSession::new(
            StreamConfig {
                prepare: PrepareOpts::default(),
                segmenter: "nemesys".to_string(),
                clusterer,
                sample: SampleConfig::default(),
                fsm: false,
            },
            Some(store),
        );
        // The warm-reuse counter: exact-key fetches (`hits`, e.g. tiles
        // and grafted forests read back) plus prefix extensions
        // (`extended`, the monolithic matrix append). Every batch after
        // the first must bump it — growth is an append over cached
        // prefix artifacts, never a cold rebuild.
        let mut warm = Vec::new();
        for slice in msgs.chunks(30) {
            s.push(slice.to_vec());
            s.flush().expect("flush").expect("batch");
            let stats = s.cache_stats().expect("store attached");
            warm.push(stats.hits + stats.extended);
        }
        assert_eq!(s.batches(), 3);
        for (i, w) in warm.windows(2).enumerate() {
            assert!(
                w[1] > w[0],
                "{tag}: batch {} must reuse more warm artifacts than \
                 batch {i} ({} vs {})",
                i + 1,
                w[1],
                w[0]
            );
        }
        let stats = s.cache_stats().expect("store attached");
        assert!(stats.writes > 0, "{tag}: artifacts were persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sampled_follow_is_deterministic_and_order_invariant() {
    let trace = corpus::build_trace(Protocol::Dns, 80, 43);
    let msgs = trace.messages().to_vec();
    let sample = SampleConfig { max: 32, seed: 7 };

    // Same messages, three arrival orders: forward, reversed, and
    // shuffled by interleaving halves. The reservoir — and therefore
    // every downstream byte — must not care.
    let forward = msgs.clone();
    let mut reversed = msgs.clone();
    reversed.reverse();
    let (a, b) = msgs.split_at(msgs.len() / 2);
    let interleaved: Vec<Message> = a
        .iter()
        .zip(b.iter())
        .flat_map(|(x, y)| [x.clone(), y.clone()])
        .chain(msgs[2 * (msgs.len() / 2)..].iter().cloned())
        .collect();

    let mut reports = Vec::new();
    for (tag, order) in [("fwd", forward), ("rev", reversed), ("mix", interleaved)] {
        let (dir, store) = temp_store(&format!("order-{tag}"));
        let mut s = StreamSession::new(stream_config(NeighborBackend::Auto, sample), Some(store));
        for slice in order.chunks(27) {
            s.push(slice.to_vec());
            s.flush().expect("flush");
        }
        let r = s.records().last().expect("at least one batch").clone();
        assert!(r.messages <= 32, "cap respected");
        assert_eq!(r.seen, msgs.len() as u64);
        reports.push(s.final_report().expect("report"));
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(reports[0], reports[1], "reversed arrival changes nothing");
    assert_eq!(
        reports[0], reports[2],
        "interleaved arrival changes nothing"
    );
}

#[test]
fn sampled_follow_stays_within_the_declared_memory_budget() {
    // The declared budget for this workload: the reservoir admits at
    // most 48 messages per batch no matter how many arrive, so the
    // whole pipeline — reservoir, session, store — must stay far below
    // a generous whole-process ceiling. VmHWM is process-wide (and
    // test binaries share a process), so the ceiling is deliberately
    // loose; the point is that it is *bounded*, not that it is tiny.
    const BUDGET_BYTES: u64 = 2 << 30;
    let trace = corpus::build_trace(Protocol::Ntp, 400, 44);
    let msgs = trace.messages().to_vec();
    let mut s = StreamSession::new(
        stream_config(NeighborBackend::Auto, SampleConfig { max: 48, seed: 9 }),
        None,
    );
    for slice in msgs.chunks(100) {
        s.push(slice.to_vec());
        let r = s.flush().expect("flush").expect("batch");
        assert!(r.messages <= 48, "admitted set stays capped");
    }
    assert_eq!(s.seen(), 400);
    let rss = peak_rss_bytes();
    assert!(rss > 0, "VmHWM must be readable on Linux");
    assert!(
        rss < BUDGET_BYTES,
        "peak RSS {rss} exceeds the declared {BUDGET_BYTES} byte budget"
    );
}
