//! Empirical cumulative distribution functions.
//!
//! The ε auto-configuration of the clustering pipeline (paper §III-D) builds
//! the ECDF of the dissimilarities between each segment and its *k*-th
//! nearest neighbor, smooths it, and searches for the knee. [`Ecdf`] stores
//! the sorted sample and offers both the classic step-function evaluation
//! and the "curve" view (sorted sample values against cumulative fraction)
//! that the knee detection operates on.

/// An empirical cumulative distribution function over a fixed sample.
///
/// The ECDF is the step function jumping by `1/n` at each of the `n` sample
/// points. Construction sorts the sample once; evaluation is a binary
/// search.
///
/// # Examples
///
/// ```
/// use mathkit::Ecdf;
///
/// let e = Ecdf::new(vec![0.1, 0.2, 0.2, 0.4]).unwrap();
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(0.2), 0.75);
/// assert_eq!(e.eval(1.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// # Errors
    ///
    /// Returns [`EcdfError::Empty`] for an empty sample and
    /// [`EcdfError::NotFinite`] if the sample contains NaN or infinities.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, EcdfError> {
        if sample.is_empty() {
            return Err(EcdfError::Empty);
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(EcdfError::NotFinite);
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Self { sorted: sample })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed `Ecdf`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates the ECDF at `x`: the fraction of sample points `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The quantile function (generalized inverse): the smallest sample
    /// value `v` with `eval(v) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile level must be in (0, 1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The ECDF as a curve: pairs `(value, cumulative fraction)` with the
    /// fraction running from `1/n` to `1`.
    ///
    /// This is the representation the knee search operates on — x is the
    /// dissimilarity, y the fraction of segments with a k-NN dissimilarity
    /// at most x.
    pub fn curve(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.sorted.len();
        let ys = (1..=n).map(|i| i as f64 / n as f64).collect();
        (self.sorted.clone(), ys)
    }

    /// A new ECDF restricted to sample values strictly below `cutoff`, as
    /// used by the multi-knee fallback of §III-E (`Ê'_k = Ê_k({d < d_κ})`).
    ///
    /// Returns `None` when no sample value survives the cut.
    pub fn trimmed_below(&self, cutoff: f64) -> Option<Self> {
        let kept: Vec<f64> = self
            .sorted
            .iter()
            .copied()
            .filter(|&v| v < cutoff)
            .collect();
        if kept.is_empty() {
            None
        } else {
            Some(Self { sorted: kept })
        }
    }
}

/// Error constructing an [`Ecdf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdfError {
    /// The sample was empty.
    Empty,
    /// The sample contained NaN or infinite values.
    NotFinite,
}

impl std::fmt::Display for EcdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcdfError::Empty => write!(f, "empty sample"),
            EcdfError::NotFinite => write!(f, "sample contains non-finite values"),
        }
    }
}

impl std::error::Error for EcdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert_eq!(Ecdf::new(vec![]).unwrap_err(), EcdfError::Empty);
        assert_eq!(
            Ecdf::new(vec![1.0, f64::NAN]).unwrap_err(),
            EcdfError::NotFinite
        );
    }

    #[test]
    fn eval_is_step_function() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
    }

    #[test]
    fn quantile_inverts_eval() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_panics_out_of_range() {
        let e = Ecdf::new(vec![1.0]).unwrap();
        e.quantile(0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        let (xs, ys) = e.curve();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        assert!(ys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ys.last().unwrap(), 1.0);
    }

    #[test]
    fn trim_below_keeps_prefix() {
        let e = Ecdf::new(vec![0.1, 0.2, 0.3, 0.9]).unwrap();
        let t = e.trimmed_below(0.5).unwrap();
        assert_eq!(t.values(), &[0.1, 0.2, 0.3]);
        assert!(e.trimmed_below(0.05).is_none());
    }
}
