//! Kneedle knee-point detection (Satopää et al., ICDCSW 2011).
//!
//! The algorithm normalizes a smooth curve to the unit square, computes the
//! difference between the curve and the diagonal, and declares local maxima
//! of that difference to be knees when the difference subsequently falls
//! below a sensitivity-dependent threshold.
//!
//! The auto-configuration of the clustering pipeline (paper §III-D) feeds
//! the spline-smoothed k-NN dissimilarity ECDF — a concave, increasing
//! curve — into Kneedle and uses the *rightmost* knee's x position as
//! DBSCAN's ε.

/// A detected knee point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knee {
    /// x coordinate of the knee in the original (un-normalized) data.
    pub x: f64,
    /// y coordinate of the knee in the original data.
    pub y: f64,
    /// Index into the input arrays where the knee was found.
    pub index: usize,
}

/// Parameters for [`detect_knees`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneedleParams {
    /// Sensitivity `S`. Smaller values detect knees more aggressively;
    /// the Kneedle paper recommends `1.0` for offline use.
    pub sensitivity: f64,
}

impl Default for KneedleParams {
    fn default() -> Self {
        Self { sensitivity: 1.0 }
    }
}

/// Detects knees of a concave increasing curve given as parallel `xs`/`ys`
/// arrays (x strictly within a finite range, y typically a smoothed ECDF).
///
/// Returns all detected knees in left-to-right order; the caller picks the
/// one it needs (the pipeline uses the rightmost). Returns an empty vector
/// for degenerate inputs (fewer than three points, zero x- or y-range, or
/// non-finite values).
///
/// # Examples
///
/// ```
/// use mathkit::kneedle::{detect_knees, KneedleParams};
///
/// let xs: Vec<f64> = (0..200).map(|i| i as f64 / 199.0).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (5.0 * x).min(1.0)).collect();
/// let knees = detect_knees(&xs, &ys, &KneedleParams::default());
/// // The elbow of min(5x, 1) is at x = 0.2.
/// assert!((knees.last().unwrap().x - 0.2).abs() < 0.05);
/// ```
pub fn detect_knees(xs: &[f64], ys: &[f64], params: &KneedleParams) -> Vec<Knee> {
    let n = xs.len();
    if n != ys.len() || n < 3 {
        return Vec::new();
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return Vec::new();
    }
    let (x_min, x_max) = (xs[0], xs[n - 1]);
    let y_min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if x_max <= x_min || y_max <= y_min {
        return Vec::new();
    }

    // Normalize to the unit square and build the difference curve
    // y_d = y_n - x_n (concave increasing case).
    let xn: Vec<f64> = xs.iter().map(|&x| (x - x_min) / (x_max - x_min)).collect();
    let yd: Vec<f64> = ys
        .iter()
        .zip(&xn)
        .map(|(&y, &x)| (y - y_min) / (y_max - y_min) - x)
        .collect();

    // Mean spacing of normalized x, used in the threshold decay.
    let mean_dx = 1.0 / (n as f64 - 1.0);
    let s = params.sensitivity;

    let mut knees = Vec::new();
    let mut candidate: Option<usize> = None;
    let mut threshold = f64::NEG_INFINITY;
    for i in 1..n - 1 {
        let is_local_max = yd[i] > yd[i - 1] && yd[i] >= yd[i + 1];
        if is_local_max {
            candidate = Some(i);
            threshold = yd[i] - s * mean_dx;
        }
        if let Some(c) = candidate {
            if yd[i] < threshold {
                knees.push(Knee {
                    x: xs[c],
                    y: ys[c],
                    index: c,
                });
                candidate = None;
                threshold = f64::NEG_INFINITY;
            }
        }
    }
    // A trailing candidate whose difference curve has started to descend by
    // the end of the data still counts as a knee (the ECDF always ends at
    // its maximum, so the strict threshold crossing may fall off the end).
    if let Some(c) = candidate {
        if yd[n - 1] < yd[c] {
            knees.push(Knee {
                x: xs[c],
                y: ys[c],
                index: c,
            });
        }
    }
    knees
}

/// Convenience wrapper returning only the rightmost knee, if any.
pub fn rightmost_knee(xs: &[f64], ys: &[f64], params: &KneedleParams) -> Option<Knee> {
    detect_knees(xs, ys, params).into_iter().last()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn finds_knee_of_saturating_exponential() {
        let xs = unit_grid(500);
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - (-8.0 * x).exp()).collect();
        let knee = rightmost_knee(&xs, &ys, &KneedleParams::default()).unwrap();
        // Kneedle's knee for 1 - e^-8x is where curvature is maximal,
        // roughly x ~ 0.2-0.3.
        assert!(knee.x > 0.1 && knee.x < 0.4, "knee.x = {}", knee.x);
    }

    #[test]
    fn no_knee_on_straight_line() {
        let xs = unit_grid(100);
        let ys = xs.clone();
        assert!(detect_knees(&xs, &ys, &KneedleParams::default()).is_empty());
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let p = KneedleParams::default();
        assert!(detect_knees(&[], &[], &p).is_empty());
        assert!(detect_knees(&[0.0, 1.0], &[0.0, 1.0], &p).is_empty());
        assert!(detect_knees(&[0.0, 0.0, 0.0], &[0.0, 0.5, 1.0], &p).is_empty());
        assert!(detect_knees(&[0.0, 0.5, 1.0], &[1.0, 1.0, 1.0], &p).is_empty());
        assert!(detect_knees(&[0.0, 0.5, f64::NAN], &[0.0, 0.5, 1.0], &p).is_empty());
    }

    #[test]
    fn piecewise_linear_elbow() {
        // y rises steeply to 1 at x = 0.1, then stays flat: knee at 0.1.
        let xs = unit_grid(1000);
        let ys: Vec<f64> = xs.iter().map(|&x| (x / 0.1).min(1.0)).collect();
        let knee = rightmost_knee(&xs, &ys, &KneedleParams::default()).unwrap();
        assert!((knee.x - 0.1).abs() < 0.02, "knee.x = {}", knee.x);
    }

    #[test]
    fn multiple_knees_detected_on_double_staircase() {
        // Two plateaus -> two knees; the rightmost must be the later one.
        let xs = unit_grid(1000);
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                if x < 0.1 {
                    x * 5.0
                } else if x < 0.5 {
                    0.5
                } else if x < 0.6 {
                    0.5 + (x - 0.5) * 5.0
                } else {
                    1.0
                }
            })
            .collect();
        let knees = detect_knees(&xs, &ys, &KneedleParams::default());
        assert!(knees.len() >= 2, "expected two knees, got {knees:?}");
        let last = knees.last().unwrap();
        assert!((last.x - 0.6).abs() < 0.05, "rightmost knee at {}", last.x);
    }

    #[test]
    fn higher_sensitivity_detects_fewer_knees() {
        let xs = unit_grid(300);
        // Slightly wavy saturating curve.
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| (1.0 - (-6.0 * x).exp()) + 0.004 * (40.0 * x).sin())
            .collect();
        let low = detect_knees(&xs, &ys, &KneedleParams { sensitivity: 0.1 });
        let high = detect_knees(&xs, &ys, &KneedleParams { sensitivity: 5.0 });
        assert!(low.len() >= high.len());
    }
}
