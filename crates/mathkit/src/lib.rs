#![warn(missing_docs)]
//! Statistics toolbox underpinning the field data type clustering pipeline.
//!
//! This crate bundles the numeric building blocks the paper's method relies
//! on (Kleber et al., DSN-W 2022):
//!
//! * [`Ecdf`] — empirical cumulative distribution functions over
//!   dissimilarity samples (§III-D of the paper),
//! * [`spline::SmoothingSpline`] — least-squares cubic B-spline smoothing
//!   used to de-noise the ECDF before knee detection,
//! * [`kneedle`] — the Kneedle knee-point detection algorithm
//!   (Satopää et al., ICDCSW 2011),
//! * [`smooth`] — Gaussian filtering used by the NEMESYS segmenter,
//! * [`stats`] — descriptive statistics, percent rank, Pearson correlation
//!   and Shannon entropy used across segmenters and the FieldHunter
//!   baseline.
//!
//! # Examples
//!
//! Detecting the knee of a saturating curve:
//!
//! ```
//! use mathkit::kneedle::{self, KneedleParams};
//!
//! let xs: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 1.0 - (-10.0 * x).exp()).collect();
//! let knees = kneedle::detect_knees(&xs, &ys, &KneedleParams::default());
//! assert!(!knees.is_empty());
//! assert!(knees[0].x < 0.4, "knee of 1-e^-10x sits well left of 0.4");
//! ```

pub mod ecdf;
pub mod kneedle;
pub mod mds;
pub mod smooth;
pub mod spline;
pub mod stats;

pub use ecdf::Ecdf;
pub use kneedle::{Knee, KneedleParams};
pub use spline::SmoothingSpline;
