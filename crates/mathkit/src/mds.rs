//! Classical multidimensional scaling (Torgerson MDS).
//!
//! Projects items with known pairwise dissimilarities into a
//! low-dimensional embedding that approximately preserves them — the
//! "visual analytics" the paper's §V envisions for analysts: a 2-D map
//! of the segment space where pseudo data types appear as visible
//! islands. Eigenvectors of the double-centered Gram matrix are computed
//! by power iteration with deflation (no linear-algebra dependency).

/// A low-dimensional embedding: one coordinate vector per item.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// `coords[i]` is the position of item `i` (length = `dimensions`).
    pub coords: Vec<Vec<f64>>,
    /// Eigenvalue magnitude per dimension (how much structure each axis
    /// carries).
    pub eigenvalues: Vec<f64>,
}

/// Error from [`classical_mds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdsError {
    /// Fewer than two items.
    TooFewItems,
    /// The dissimilarity accessor returned a non-finite value.
    NotFinite,
}

impl std::fmt::Display for MdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdsError::TooFewItems => write!(f, "need at least two items to embed"),
            MdsError::NotFinite => write!(f, "dissimilarities must be finite"),
        }
    }
}

impl std::error::Error for MdsError {}

/// Embeds `n` items into `dimensions` dimensions from their pairwise
/// dissimilarities (`dissim(i, j)`, assumed symmetric with zero
/// diagonal).
///
/// # Errors
///
/// See [`MdsError`].
pub fn classical_mds(
    n: usize,
    dimensions: usize,
    dissim: impl Fn(usize, usize) -> f64,
) -> Result<Embedding, MdsError> {
    if n < 2 {
        return Err(MdsError::TooFewItems);
    }
    let dims = dimensions.max(1).min(n - 1);

    // Squared dissimilarity matrix.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dissim(i, j);
            if !d.is_finite() {
                return Err(MdsError::NotFinite);
            }
            d2[i * n + j] = d * d;
            d2[j * n + i] = d * d;
        }
    }
    // Double centering: B = -1/2 * J D² J with J = I - 1/n 11ᵀ.
    let mut row_mean = vec![0.0f64; n];
    let mut total = 0.0;
    for i in 0..n {
        let sum: f64 = (0..n).map(|j| d2[i * n + j]).sum();
        row_mean[i] = sum / n as f64;
        total += sum;
    }
    let grand = total / (n * n) as f64;
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (d2[i * n + j] - row_mean[i] - row_mean[j] + grand);
        }
    }

    // Top eigenpairs by power iteration with deflation.
    let mut coords = vec![vec![0.0f64; dims]; n];
    let mut eigenvalues = Vec::with_capacity(dims);
    let mut work = b;
    for dim in 0..dims {
        let (lambda, v) = power_iteration(&work, n, 200 + 13 * dim);
        let lambda_pos = lambda.max(0.0);
        let scale = lambda_pos.sqrt();
        for (row, &vi) in coords.iter_mut().zip(&v) {
            row[dim] = vi * scale;
        }
        eigenvalues.push(lambda_pos);
        // Deflate: B <- B - λ v vᵀ.
        for i in 0..n {
            for j in 0..n {
                work[i * n + j] -= lambda * v[i] * v[j];
            }
        }
    }
    Ok(Embedding {
        coords,
        eigenvalues,
    })
}

/// Dominant eigenpair of a symmetric matrix via power iteration with a
/// deterministic start vector.
fn power_iteration(m: &[f64], n: usize, seed_stride: usize) -> (f64, Vec<f64>) {
    // Deterministic pseudo-random start (avoids Symmetry traps).
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i * 2_654_435_761 + seed_stride) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..256 {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += m[i * n + j] * v[j];
            }
            next[i] = acc;
        }
        let new_lambda: f64 = next.iter().zip(&v).map(|(a, b)| a * b).sum();
        normalize(&mut next);
        let converged = (new_lambda - lambda).abs() <= 1e-10 * new_lambda.abs().max(1.0);
        lambda = new_lambda;
        v = next;
        if converged {
            break;
        }
    }
    (lambda, v)
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else if let Some(first) = v.first_mut() {
        *first = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(coords: &[Vec<f64>], i: usize, j: usize) -> f64 {
        coords[i]
            .iter()
            .zip(&coords[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn recovers_line_geometry() {
        // Items on a line: 0, 1, 2, ..., 9.
        let pts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let e = classical_mds(10, 2, |i, j| (pts[i] - pts[j]).abs()).unwrap();
        // Pairwise embedded distances must match the input closely (a
        // line embeds exactly).
        for i in 0..10 {
            for j in (i + 1)..10 {
                let want = (pts[i] - pts[j]).abs();
                let got = dist(&e.coords, i, j);
                assert!((want - got).abs() < 0.05, "({i},{j}): {want} vs {got}");
            }
        }
        // Second axis carries almost nothing.
        assert!(e.eigenvalues[1] < e.eigenvalues[0] * 0.01);
    }

    #[test]
    fn separates_two_groups() {
        // Two groups with small intra- and large inter-distance.
        let group = |i: usize| -> f64 {
            if i < 5 {
                0.0
            } else {
                10.0
            }
        };
        let e = classical_mds(10, 2, |i, j| {
            (group(i) - group(j)).abs() + if i != j { 0.1 } else { 0.0 }
        })
        .unwrap();
        // All intra-group embedded distances < inter-group distances.
        let intra = dist(&e.coords, 0, 1);
        let inter = dist(&e.coords, 0, 7);
        assert!(inter > 5.0 * intra, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn rejects_degenerate_input() {
        assert_eq!(
            classical_mds(1, 2, |_, _| 0.0).unwrap_err(),
            MdsError::TooFewItems
        );
        assert_eq!(
            classical_mds(3, 2, |_, _| f64::NAN).unwrap_err(),
            MdsError::NotFinite
        );
    }

    #[test]
    fn identical_items_collapse() {
        let e = classical_mds(6, 2, |_, _| 0.0).unwrap();
        for i in 1..6 {
            assert!(dist(&e.coords, 0, i) < 1e-6);
        }
    }

    #[test]
    fn deterministic() {
        let f = |i: usize, j: usize| {
            ((i * 7 + j * 3) % 10) as f64 / 10.0 + if i == j { 0.0 } else { 0.5 }
        };
        let sym = |i: usize, j: usize| if i == j { 0.0 } else { f(i.min(j), i.max(j)) };
        let a = classical_mds(12, 2, sym).unwrap();
        let b = classical_mds(12, 2, sym).unwrap();
        assert_eq!(a, b);
    }
}
